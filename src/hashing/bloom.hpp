// Bloom filters: plain (bit) and counting (saturating n-bit counters).
//
// The counting filter matches the paper's construction: "Each bit index
// counter is represented in 10 bits, for a count saturation ... of 1024.
// Beyond 1024, we treat a keypoint as not unique enough for consideration."
// Counters are bit-packed so the serialized size matches the real memory
// footprint reported in Fig. 15.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace vp {

/// Classic bit-vector Bloom filter (the "verification" filter role).
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64.
  explicit BloomFilter(std::size_t bits);

  /// Size a filter for `capacity` elements at `fp_rate` false positives;
  /// returns the optimal bit count (m = -n ln p / ln^2 2).
  static std::size_t optimal_bits(std::size_t capacity, double fp_rate);
  static std::size_t optimal_hashes(std::size_t bits, std::size_t capacity);

  void set(std::size_t index) noexcept;
  bool test(std::size_t index) const noexcept;

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t set_bit_count() const noexcept;
  std::size_t byte_size() const noexcept { return words_.size() * 8; }

  /// Fraction of bits set — predicts the false-positive rate (q^k).
  double fill_ratio() const noexcept;

  Bytes serialize() const;
  static BloomFilter deserialize(ByteReader& r);

  bool operator==(const BloomFilter&) const = default;

 private:
  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

/// Counting Bloom filter with bit-packed saturating counters.
class CountingBloomFilter {
 public:
  /// `counters` cells of `counter_bits` bits each (range [1, 16]).
  CountingBloomFilter(std::size_t counters, unsigned counter_bits);

  /// Saturating increment; returns the post-increment value.
  std::uint32_t increment(std::size_t index) noexcept;

  /// Saturating decrement (supports deletion, a counting-filter property).
  std::uint32_t decrement(std::size_t index) noexcept;

  std::uint32_t count(std::size_t index) const noexcept;

  std::size_t counter_count() const noexcept { return counters_; }
  unsigned counter_bits() const noexcept { return counter_bits_; }
  std::uint32_t saturation() const noexcept { return max_value_; }
  std::size_t byte_size() const noexcept { return words_.size() * 8; }

  /// Fraction of nonzero counters.
  double fill_ratio() const noexcept;

  Bytes serialize() const;
  static CountingBloomFilter deserialize(ByteReader& r);

  bool operator==(const CountingBloomFilter&) const = default;

 private:
  std::size_t counters_;
  unsigned counter_bits_;
  std::uint32_t max_value_;
  std::vector<std::uint64_t> words_;

  std::uint32_t get(std::size_t index) const noexcept;
  void put(std::size_t index, std::uint32_t value) noexcept;
};

}  // namespace vp
