// E2LSH: Euclidean locality-sensitive hashing with p-stable (Gaussian)
// random projections (Datar et al. 2004), parameterized exactly as the
// paper: L buckets, each an M-dimensional projection quantized with width
// W. Two descriptors within small L2 distance land in the same bucket for
// most of the L tables with high probability.
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace vp {

struct LshConfig {
  std::size_t tables = 10;      ///< L, paper: 10
  std::size_t projections = 7;  ///< M, paper: 7
  double width = 500.0;         ///< W quantization width, paper: 500
  std::uint64_t seed = 0x5eedULL;
};

/// One quantized LSH bucket: M signed quantization indices.
using LshBucket = std::vector<std::int32_t>;

/// The family of L x M Gaussian projections, fixed for the life of the
/// index ("each of the M x L randomly-chosen projections is held constant
/// for the life of the data structure").
class E2Lsh {
 public:
  E2Lsh(std::size_t tables, std::size_t projections, double width,
        std::uint64_t seed);

  std::size_t tables() const noexcept { return tables_; }
  std::size_t projections() const noexcept { return projections_; }
  double width() const noexcept { return width_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Raw (unquantized) projection value for table t, projection m.
  double project(const Descriptor& d, std::size_t t,
                 std::size_t m) const noexcept;

  /// Quantized bucket of descriptor `d` for table `t`.
  LshBucket bucket(const Descriptor& d, std::size_t t) const;

  /// As bucket(), but writes into `out` (resized to M) — allocation-free
  /// once `out` has capacity; the batch scoring hot path.
  void bucket_into(const Descriptor& d, std::size_t t, LshBucket& out) const;

  /// All L buckets at once (the per-keypoint hot path).
  std::vector<LshBucket> all_buckets(const Descriptor& d) const;

  /// Serialize bucket contents to bytes for hashing/storage. A neighboring
  /// bucket along dimension `perturb_dim` offset by `delta` can be encoded
  /// without materializing a new bucket (multiprobe support).
  static Bytes encode_bucket(const LshBucket& bucket);

  /// Byte size of the projection family when serialized (client download
  /// accounting): L * M * (128 + 1) coefficients as f32.
  std::size_t serialized_size() const noexcept;

 private:
  std::size_t tables_;
  std::size_t projections_;
  double width_;
  std::uint64_t seed_;
  /// [t][m][dim] projection coefficients; +1 slot for the random offset b.
  std::vector<float> coeffs_;
  std::vector<float> offsets_;

  const float* coeff_ptr(std::size_t t, std::size_t m) const noexcept {
    return coeffs_.data() + ((t * projections_) + m) * kDescriptorDims;
  }
};

}  // namespace vp
