#include "hashing/lsh.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vp {

E2Lsh::E2Lsh(std::size_t tables, std::size_t projections, double width,
             std::uint64_t seed)
    : tables_(tables), projections_(projections), width_(width), seed_(seed) {
  VP_REQUIRE(tables >= 1 && tables <= 64, "LSH tables in [1,64]");
  VP_REQUIRE(projections >= 1 && projections <= 32, "LSH projections in [1,32]");
  VP_REQUIRE(width > 0, "LSH width must be positive");

  // Gaussian coefficients (2-stable, preserving L2) and uniform offsets in
  // [0, W) per the E2LSH construction h(v) = floor((a.v + b) / W).
  Rng rng(seed);
  coeffs_.resize(tables * projections * kDescriptorDims);
  offsets_.resize(tables * projections);
  for (auto& c : coeffs_) c = static_cast<float>(rng.gaussian());
  for (auto& b : offsets_) b = static_cast<float>(rng.uniform(0.0, width));
}

double E2Lsh::project(const Descriptor& d, std::size_t t,
                      std::size_t m) const noexcept {
  const float* a = coeff_ptr(t, m);
  double acc = 0;
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    acc += static_cast<double>(a[i]) * d[i];
  }
  return acc + offsets_[t * projections_ + m];
}

LshBucket E2Lsh::bucket(const Descriptor& d, std::size_t t) const {
  LshBucket b;
  bucket_into(d, t, b);
  return b;
}

void E2Lsh::bucket_into(const Descriptor& d, std::size_t t,
                        LshBucket& out) const {
  VP_REQUIRE(t < tables_, "LSH table index out of range");
  out.resize(projections_);
  for (std::size_t m = 0; m < projections_; ++m) {
    out[m] = static_cast<std::int32_t>(std::floor(project(d, t, m) / width_));
  }
}

std::vector<LshBucket> E2Lsh::all_buckets(const Descriptor& d) const {
  std::vector<LshBucket> out;
  out.reserve(tables_);
  for (std::size_t t = 0; t < tables_; ++t) out.push_back(bucket(d, t));
  return out;
}

Bytes E2Lsh::encode_bucket(const LshBucket& bucket) {
  ByteWriter w(bucket.size() * 4);
  for (std::int32_t v : bucket) w.i32(v);
  return w.take();
}

std::size_t E2Lsh::serialized_size() const noexcept {
  return coeffs_.size() * sizeof(float) + offsets_.size() * sizeof(float);
}

}  // namespace vp
