#include "hashing/binary_oracle.hpp"

#include <algorithm>

#include "hashing/murmur3.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

constexpr std::uint32_t kPrimarySeedBase = 0x2545f491u;
constexpr std::uint32_t kVerifySeed = 0x27d4eb2fu;

void primary_indices(std::uint64_t bucket, std::size_t table, std::size_t k,
                     std::size_t counters, std::vector<std::size_t>& out) {
  ByteWriter w(8);
  w.u64(bucket);
  out.clear();
  bloom_indices(w.bytes(), kPrimarySeedBase + static_cast<std::uint32_t>(table),
                k, counters, std::back_inserter(out));
}

std::size_t verification_index(std::span<const std::size_t> positions,
                               std::size_t bits) {
  ByteWriter w(positions.size() * 8);
  for (std::size_t p : positions) w.u64(p);
  const auto [h1, h2] = murmur3_x64_128(w.bytes(), kVerifySeed);
  (void)h2;
  return static_cast<std::size_t>(h1 % bits);
}

}  // namespace

std::size_t BinaryOracleConfig::effective_counters() const {
  if (counters_override != 0) return counters_override;
  return BloomFilter::optimal_bits(capacity * std::max<std::size_t>(1, tables),
                                   fp_rate);
}

BinaryUniquenessOracle::BinaryUniquenessOracle(BinaryOracleConfig config)
    : config_(config),
      primary_(config.effective_counters(), config.counter_bits),
      verification_(config.effective_counters()) {
  VP_REQUIRE(config.tables >= 1 && config.tables <= 64,
             "binary oracle tables in [1,64]");
  VP_REQUIRE(config.sample_bits >= 1 && config.sample_bits <= 64,
             "sample_bits in [1,64]");
  Rng rng(config.seed);
  sampled_bits_.resize(config.tables);
  for (auto& table : sampled_bits_) {
    table.reserve(config.sample_bits);
    for (std::size_t m = 0; m < config.sample_bits; ++m) {
      table.push_back(static_cast<std::uint16_t>(
          rng.uniform_u64(kBinaryDescriptorBits)));
    }
  }
}

std::uint64_t BinaryUniquenessOracle::bucket_of(const BinaryDescriptor& d,
                                                std::size_t table) const {
  std::uint64_t bucket = 0;
  const auto& bits = sampled_bits_[table];
  for (std::size_t m = 0; m < bits.size(); ++m) {
    const std::uint16_t pos = bits[m];
    const std::uint64_t bit = (d[pos / 64] >> (pos % 64)) & 1ULL;
    bucket |= bit << m;
  }
  return bucket;
}

std::optional<std::uint32_t> BinaryUniquenessOracle::bucket_count(
    std::uint64_t bucket, std::size_t table) const {
  std::vector<std::size_t> idx;
  primary_indices(bucket, table, config_.hashes, primary_.counter_count(),
                  idx);
  std::uint32_t min_count = primary_.saturation() + 1;
  for (std::size_t i : idx) min_count = std::min(min_count, primary_.count(i));
  if (min_count == 0) return std::nullopt;
  if (config_.verification &&
      !verification_.test(verification_index(idx, verification_.bit_count()))) {
    return std::nullopt;
  }
  return min_count;
}

void BinaryUniquenessOracle::insert(const BinaryDescriptor& descriptor) {
  std::vector<std::size_t> idx;
  for (std::size_t t = 0; t < config_.tables; ++t) {
    primary_indices(bucket_of(descriptor, t), t, config_.hashes,
                    primary_.counter_count(), idx);
    for (std::size_t i : idx) primary_.increment(i);
    if (config_.verification) {
      verification_.set(verification_index(idx, verification_.bit_count()));
    }
  }
  ++insertions_;
}

std::uint32_t BinaryUniquenessOracle::aggregate_counts(
    std::span<const std::uint32_t> counts) const {
  VP_ASSERT(!counts.empty());
  switch (config_.aggregate) {
    case OracleAggregate::kMin:
      return *std::min_element(counts.begin(), counts.end());
    case OracleAggregate::kMax:
      return *std::max_element(counts.begin(), counts.end());
    case OracleAggregate::kMean: {
      std::uint64_t sum = 0;
      for (auto c : counts) sum += c;
      return static_cast<std::uint32_t>(sum / counts.size());
    }
    case OracleAggregate::kMedian:
    default: {
      std::vector<std::uint32_t> v(counts.begin(), counts.end());
      std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
      return v[v.size() / 2];
    }
  }
}

std::uint32_t BinaryUniquenessOracle::count(
    const BinaryDescriptor& descriptor) const {
  std::vector<std::uint32_t> per_table;
  per_table.reserve(config_.tables);
  for (std::size_t t = 0; t < config_.tables; ++t) {
    const std::uint64_t bucket = bucket_of(descriptor, t);
    std::uint32_t best = 0;
    if (const auto exact = bucket_count(bucket, t)) {
      best = *exact;
    } else if (config_.multiprobe) {
      // Hamming multiprobe: flip each sampled bit in turn.
      for (std::size_t m = 0; m < config_.sample_bits && best == 0; ++m) {
        if (const auto probed = bucket_count(bucket ^ (1ULL << m), t)) {
          best = *probed;
        }
      }
    }
    per_table.push_back(best);
  }
  return aggregate_counts(per_table);
}

std::size_t BinaryUniquenessOracle::byte_size() const noexcept {
  return primary_.byte_size() + verification_.byte_size() +
         sampled_bits_.size() * config_.sample_bits * sizeof(std::uint16_t);
}

}  // namespace vp
