#include "hashing/bloom.hpp"

#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace vp {

BloomFilter::BloomFilter(std::size_t bits)
    : bits_((bits + 63) / 64 * 64), words_(bits_ / 64, 0) {
  VP_REQUIRE(bits > 0, "BloomFilter needs at least one bit");
}

std::size_t BloomFilter::optimal_bits(std::size_t capacity, double fp_rate) {
  VP_REQUIRE(capacity > 0, "optimal_bits: zero capacity");
  VP_REQUIRE(fp_rate > 0 && fp_rate < 1, "fp_rate in (0,1)");
  const double ln2 = std::log(2.0);
  const double m =
      -static_cast<double>(capacity) * std::log(fp_rate) / (ln2 * ln2);
  return static_cast<std::size_t>(std::ceil(m));
}

std::size_t BloomFilter::optimal_hashes(std::size_t bits,
                                        std::size_t capacity) {
  VP_REQUIRE(capacity > 0, "optimal_hashes: zero capacity");
  const double k = std::log(2.0) * static_cast<double>(bits) /
                   static_cast<double>(capacity);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(k)));
}

void BloomFilter::set(std::size_t index) noexcept {
  index %= bits_;
  words_[index / 64] |= (1ULL << (index % 64));
}

bool BloomFilter::test(std::size_t index) const noexcept {
  index %= bits_;
  return (words_[index / 64] >> (index % 64)) & 1ULL;
}

std::size_t BloomFilter::set_bit_count() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

double BloomFilter::fill_ratio() const noexcept {
  return static_cast<double>(set_bit_count()) / static_cast<double>(bits_);
}

Bytes BloomFilter::serialize() const {
  ByteWriter w(16 + words_.size() * 8);
  w.u64(bits_);
  for (auto word : words_) w.u64(word);
  return w.take();
}

BloomFilter BloomFilter::deserialize(ByteReader& r) {
  const std::uint64_t bits = r.u64();
  if (bits == 0 || bits % 64 != 0 || bits > (1ULL << 40)) {
    throw DecodeError{"bloom filter: implausible bit count"};
  }
  // Validate against the remaining payload BEFORE allocating, so a
  // corrupted header can never trigger a giant allocation.
  if (r.remaining() < bits / 8) {
    throw DecodeError{"bloom filter: payload shorter than header claims"};
  }
  BloomFilter f(static_cast<std::size_t>(bits));
  for (auto& word : f.words_) word = r.u64();
  return f;
}

CountingBloomFilter::CountingBloomFilter(std::size_t counters,
                                         unsigned counter_bits)
    : counters_(counters),
      counter_bits_(counter_bits),
      max_value_((1u << counter_bits) - 1),
      words_((counters * counter_bits + 63) / 64, 0) {
  VP_REQUIRE(counters > 0, "CountingBloomFilter needs counters");
  VP_REQUIRE(counter_bits >= 1 && counter_bits <= 16,
             "counter_bits in [1,16]");
}

std::uint32_t CountingBloomFilter::get(std::size_t index) const noexcept {
  const std::size_t bit = index * counter_bits_;
  const std::size_t word = bit / 64;
  const unsigned shift = bit % 64;
  std::uint64_t v = words_[word] >> shift;
  if (shift + counter_bits_ > 64) {
    v |= words_[word + 1] << (64 - shift);
  }
  return static_cast<std::uint32_t>(v & max_value_);
}

void CountingBloomFilter::put(std::size_t index, std::uint32_t value) noexcept {
  const std::size_t bit = index * counter_bits_;
  const std::size_t word = bit / 64;
  const unsigned shift = bit % 64;
  const std::uint64_t mask = static_cast<std::uint64_t>(max_value_) << shift;
  words_[word] = (words_[word] & ~mask) |
                 (static_cast<std::uint64_t>(value) << shift);
  if (shift + counter_bits_ > 64) {
    const unsigned spill = shift + counter_bits_ - 64;
    const std::uint64_t hi_mask = (1ULL << spill) - 1;
    words_[word + 1] = (words_[word + 1] & ~hi_mask) |
                       (static_cast<std::uint64_t>(value) >>
                        (counter_bits_ - spill));
  }
}

std::uint32_t CountingBloomFilter::increment(std::size_t index) noexcept {
  index %= counters_;
  std::uint32_t v = get(index);
  if (v < max_value_) put(index, ++v);
  return v;
}

std::uint32_t CountingBloomFilter::decrement(std::size_t index) noexcept {
  index %= counters_;
  std::uint32_t v = get(index);
  if (v > 0) put(index, --v);
  return v;
}

std::uint32_t CountingBloomFilter::count(std::size_t index) const noexcept {
  return get(index % counters_);
}

double CountingBloomFilter::fill_ratio() const noexcept {
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < counters_; ++i) {
    if (get(i) != 0) ++nonzero;
  }
  return static_cast<double>(nonzero) / static_cast<double>(counters_);
}

Bytes CountingBloomFilter::serialize() const {
  ByteWriter w(24 + words_.size() * 8);
  w.u64(counters_);
  w.u32(counter_bits_);
  for (auto word : words_) w.u64(word);
  return w.take();
}

CountingBloomFilter CountingBloomFilter::deserialize(ByteReader& r) {
  const std::uint64_t counters = r.u64();
  const std::uint32_t bits = r.u32();
  if (counters == 0 || bits < 1 || bits > 16 || counters > (1ULL << 40)) {
    throw DecodeError{"counting bloom: implausible header"};
  }
  const std::uint64_t words = (counters * bits + 63) / 64;
  // Validate against the remaining payload BEFORE allocating, so a
  // corrupted header can never trigger a giant allocation.
  if (r.remaining() < words * 8) {
    throw DecodeError{"counting bloom: payload shorter than header claims"};
  }
  CountingBloomFilter f(static_cast<std::size_t>(counters),
                        static_cast<unsigned>(bits));
  for (auto& word : f.words_) word = r.u64();
  return f;
}

}  // namespace vp
