#include "hashing/oracle.hpp"

#include <algorithm>
#include <cmath>

#include "hashing/murmur3.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

/// Hash seed namespaces so the primary indices, the verification hash, and
/// each LSH table draw from independent hash streams.
constexpr std::uint32_t kPrimarySeedBase = 0x9d2c5680u;
constexpr std::uint32_t kVerifySeed = 0x5f3759dfu;

/// Little-endian bucket encoding into a reusable buffer; byte-compatible
/// with E2Lsh::encode_bucket.
void encode_bucket_into(const LshBucket& bucket, Bytes& out) {
  out.clear();
  for (const std::int32_t v : bucket) {
    const auto u = static_cast<std::uint32_t>(v);
    out.push_back(static_cast<std::uint8_t>(u));
    out.push_back(static_cast<std::uint8_t>(u >> 8));
    out.push_back(static_cast<std::uint8_t>(u >> 16));
    out.push_back(static_cast<std::uint8_t>(u >> 24));
  }
}

/// K primary-filter indices for a bucket of table `t`. `enc` is scratch
/// for the bucket encoding (hoisted so batch scoring never reallocates).
void primary_indices(const LshBucket& bucket, std::size_t table,
                     std::size_t k, std::size_t counters, Bytes& enc,
                     std::vector<std::size_t>& out) {
  encode_bucket_into(bucket, enc);
  out.clear();
  bloom_indices(enc, kPrimarySeedBase + static_cast<std::uint32_t>(table), k,
                counters, std::back_inserter(out));
}

/// Verification-filter index: hash of the concatenated primary positions.
std::size_t verification_index(std::span<const std::size_t> positions,
                               std::size_t bits) {
  ByteWriter w(positions.size() * 8);
  for (std::size_t p : positions) w.u64(p);
  const auto [h1, h2] = murmur3_x64_128(w.bytes(), kVerifySeed);
  (void)h2;
  return static_cast<std::size_t>(h1 % bits);
}

}  // namespace

std::size_t OracleConfig::effective_counters() const {
  if (counters_override != 0) return counters_override;
  // Each descriptor is inserted once per LSH table, so the primary filter
  // effectively stores capacity * L elements.
  return BloomFilter::optimal_bits(capacity * std::max<std::size_t>(1, lsh.tables),
                                   fp_rate);
}

UniquenessOracle::UniquenessOracle(OracleConfig config)
    : config_(config),
      lsh_(config.lsh.tables, config.lsh.projections, config.lsh.width,
           config.lsh.seed),
      primary_(config.effective_counters(), config.counter_bits),
      verification_(config.effective_counters()) {
  VP_REQUIRE(config.hashes >= 1 && config.hashes <= 32,
             "oracle hashes in [1,32]");
}

void UniquenessOracle::insert(const Descriptor& descriptor) {
  LshBucket bucket;
  Bytes enc;
  std::vector<std::size_t> idx;
  for (std::size_t t = 0; t < lsh_.tables(); ++t) {
    lsh_.bucket_into(descriptor, t, bucket);
    primary_indices(bucket, t, config_.hashes, primary_.counter_count(), enc,
                    idx);
    for (std::size_t i : idx) primary_.increment(i);
    if (config_.verification) {
      verification_.set(verification_index(idx, verification_.bit_count()));
    }
  }
  ++insertions_;
}

std::optional<std::uint32_t> UniquenessOracle::bucket_count(
    const LshBucket& bucket, std::size_t table, Scratch& s) const {
  primary_indices(bucket, table, config_.hashes, primary_.counter_count(),
                  s.encoded, s.indices);
  std::uint32_t min_count = primary_.saturation() + 1;
  for (std::size_t i : s.indices) {
    min_count = std::min(min_count, primary_.count(i));
  }
  if (min_count == 0) return std::nullopt;
  if (config_.verification &&
      !verification_.test(
          verification_index(s.indices, verification_.bit_count()))) {
    return std::nullopt;  // primary hit was a false positive
  }
  return min_count;
}

std::uint32_t UniquenessOracle::aggregate_counts(
    std::span<std::uint32_t> counts) const {
  VP_ASSERT(!counts.empty());
  switch (config_.aggregate) {
    case OracleAggregate::kMin:
      return *std::min_element(counts.begin(), counts.end());
    case OracleAggregate::kMax:
      return *std::max_element(counts.begin(), counts.end());
    case OracleAggregate::kMean: {
      std::uint64_t sum = 0;
      for (auto c : counts) sum += c;
      return static_cast<std::uint32_t>(sum / counts.size());
    }
    case OracleAggregate::kMedian:
    default: {
      // In-place selection: counts is the caller's scratch accumulator.
      std::nth_element(counts.begin(),
                       counts.begin() + static_cast<std::ptrdiff_t>(counts.size() / 2),
                       counts.end());
      return counts[counts.size() / 2];
    }
  }
}

std::uint32_t UniquenessOracle::count_with(const Descriptor& descriptor,
                                           Scratch& s) const {
  s.per_table.clear();
  for (std::size_t t = 0; t < lsh_.tables(); ++t) {
    lsh_.bucket_into(descriptor, t, s.bucket);
    std::uint32_t best = 0;
    if (const auto exact = bucket_count(s.bucket, t, s)) {
      best = *exact;
    } else if (config_.multiprobe) {
      // Off-by-one rescue: probe the 2M adjacent quantization buckets and
      // keep the first verified hit (paper §3, "multi-probe" checks into
      // adjacent quantization buckets).
      for (std::size_t m = 0; m < s.bucket.size() && best == 0; ++m) {
        for (const std::int32_t delta : {-1, +1}) {
          s.bucket[m] += delta;
          const auto probed = bucket_count(s.bucket, t, s);
          s.bucket[m] -= delta;
          if (probed) {
            best = *probed;
            break;
          }
        }
      }
    }
    s.per_table.push_back(best);
  }
  return aggregate_counts(s.per_table);
}

std::uint32_t UniquenessOracle::count(const Descriptor& descriptor) const {
  Scratch s;
  return count_with(descriptor, s);
}

std::vector<std::uint32_t> UniquenessOracle::count_batch(
    std::span<const Descriptor> batch, ThreadPool* pool) const {
  VP_OBS_SPAN("oracle.score");
  std::vector<std::uint32_t> out(batch.size());
  if (batch.empty()) return out;
  if (pool == nullptr) {
    Scratch s;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = count_with(batch[i], s);
    }
    return out;
  }
  // One scratch per contiguous chunk, one chunk per pool slot; lookups are
  // read-only against the filters so the only shared write is `out`, which
  // every chunk addresses disjointly.
  const std::size_t chunks =
      std::min<std::size_t>(batch.size(), std::max<std::size_t>(1, pool->thread_count()));
  const std::size_t per = (batch.size() + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    Scratch s;
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(batch.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) out[i] = count_with(batch[i], s);
  });
  return out;
}

std::size_t UniquenessOracle::byte_size() const noexcept {
  return primary_.byte_size() + verification_.byte_size() +
         lsh_.serialized_size();
}

Bytes UniquenessOracle::serialize() const {
  ByteWriter w;
  w.u32(0x56504f52u);  // "VPOR"
  w.u16(1);            // version
  w.u16(static_cast<std::uint16_t>(config_.lsh.tables));
  w.u16(static_cast<std::uint16_t>(config_.lsh.projections));
  w.u16(static_cast<std::uint16_t>(config_.hashes));
  w.f64(config_.lsh.width);
  w.u64(config_.lsh.seed);
  w.u8(static_cast<std::uint8_t>(config_.counter_bits));
  w.u8(static_cast<std::uint8_t>(config_.multiprobe ? 1 : 0));
  w.u8(static_cast<std::uint8_t>(config_.verification ? 1 : 0));
  w.u8(static_cast<std::uint8_t>(config_.aggregate));
  w.u64(config_.capacity);
  w.f64(config_.fp_rate);
  w.u64(config_.counters_override);
  w.u64(insertions_);
  const Bytes p = primary_.serialize();
  const Bytes v = verification_.serialize();
  w.blob(p);
  w.blob(v);
  return w.take();
}

UniquenessOracle UniquenessOracle::deserialize(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != 0x56504f52u) throw DecodeError{"oracle: bad magic"};
  if (r.u16() != 1) throw DecodeError{"oracle: unsupported version"};
  OracleConfig cfg;
  cfg.lsh.tables = r.u16();
  cfg.lsh.projections = r.u16();
  cfg.hashes = r.u16();
  cfg.lsh.width = r.f64();
  cfg.lsh.seed = r.u64();
  cfg.counter_bits = r.u8();
  cfg.multiprobe = r.u8() != 0;
  cfg.verification = r.u8() != 0;
  cfg.aggregate = static_cast<OracleAggregate>(r.u8());
  cfg.capacity = r.u64();
  cfg.fp_rate = r.f64();
  cfg.counters_override = r.u64();
  const std::uint64_t insertions = r.u64();

  // Reject implausible configurations before any allocation, and verify
  // the payload actually carries the filter data the header implies: a
  // flipped capacity/override byte must not trigger a giant allocation.
  if (cfg.lsh.tables < 1 || cfg.lsh.tables > 64 || cfg.lsh.projections < 1 ||
      cfg.lsh.projections > 32 || !(cfg.lsh.width > 0) ||
      cfg.counter_bits < 1 || cfg.counter_bits > 16 || cfg.capacity == 0 ||
      cfg.capacity > (1ULL << 40) ||
      !(cfg.fp_rate > 0 && cfg.fp_rate < 1) ||
      cfg.counters_override > (1ULL << 40)) {
    throw DecodeError{"oracle: implausible configuration header"};
  }
  const std::uint64_t counters = cfg.effective_counters();
  const std::uint64_t primary_bytes =
      (counters * cfg.counter_bits + 63) / 64 * 8;
  const std::uint64_t verify_bytes = (counters + 63) / 64 * 8;
  if (r.remaining() < primary_bytes + verify_bytes) {
    throw DecodeError{"oracle: payload shorter than configuration implies"};
  }

  UniquenessOracle oracle(cfg);
  {
    const auto p = r.blob();
    ByteReader pr(p);
    oracle.primary_ = CountingBloomFilter::deserialize(pr);
  }
  {
    const auto v = r.blob();
    ByteReader vr(v);
    oracle.verification_ = BloomFilter::deserialize(vr);
  }
  oracle.insertions_ = insertions;
  if (!r.done()) throw DecodeError{"oracle: trailing bytes"};
  return oracle;
}

}  // namespace vp
