// MurmurHash3 (x86_32 and x64_128 variants), the non-cryptographic hash the
// paper selects for Bloom-filter indexing ("a hash is selected for
// execution speed over cryptographic guarantees, such as Murmur-3").
// Public-domain algorithm by Austin Appleby, reimplemented.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

namespace vp {

/// 32-bit MurmurHash3 of a byte span.
std::uint32_t murmur3_x86_32(std::span<const std::uint8_t> data,
                             std::uint32_t seed) noexcept;

/// 128-bit MurmurHash3 (x64 variant); returned as a pair of 64-bit halves.
std::pair<std::uint64_t, std::uint64_t> murmur3_x64_128(
    std::span<const std::uint8_t> data, std::uint32_t seed) noexcept;

/// Kirsch–Mitzenmacher double hashing: derive K indices into [0, m) from a
/// single 128-bit hash, h_i = h1 + i*h2 (mod m). Standard technique for
/// multi-index Bloom filters without K independent hash computations.
template <typename OutputIt>
void bloom_indices(std::span<const std::uint8_t> data, std::uint32_t seed,
                   std::size_t k, std::size_t m, OutputIt out) noexcept {
  const auto [h1, h2] = murmur3_x64_128(data, seed);
  for (std::size_t i = 0; i < k; ++i) {
    *out++ = static_cast<std::size_t>((h1 + i * h2) % m);
  }
}

}  // namespace vp
