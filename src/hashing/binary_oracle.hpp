// Uniqueness oracle for binary descriptors (paper §5 extension).
//
// The oracle construction is descriptor-agnostic: only the LSH family
// changes. For Hamming space the classic family is bit sampling (Indyk &
// Motwani): each table fixes M random bit positions; the bucket is the
// M sampled bits. Two descriptors within small Hamming distance agree on
// most sampled positions, so they share buckets in most tables. The
// counting/verification Bloom machinery is shared with the Euclidean
// oracle. Multiprobe flips each sampled bit in turn (the Hamming analogue
// of the off-by-one quantization probe).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "features/brief.hpp"
#include "hashing/bloom.hpp"
#include "hashing/oracle.hpp"  // OracleAggregate

namespace vp {

struct BinaryOracleConfig {
  std::size_t tables = 10;      ///< L
  std::size_t sample_bits = 24; ///< M bit positions per table
  std::size_t hashes = 8;       ///< K Bloom indices per bucket
  unsigned counter_bits = 10;
  std::size_t capacity = 2'500'000;
  double fp_rate = 0.01;
  std::size_t counters_override = 0;
  bool multiprobe = true;
  bool verification = true;
  OracleAggregate aggregate = OracleAggregate::kMedian;
  std::uint64_t seed = 0xb1faceULL;

  std::size_t effective_counters() const;
};

class BinaryUniquenessOracle {
 public:
  explicit BinaryUniquenessOracle(BinaryOracleConfig config);

  void insert(const BinaryDescriptor& descriptor);
  std::uint32_t count(const BinaryDescriptor& descriptor) const;

  const BinaryOracleConfig& config() const noexcept { return config_; }
  std::uint64_t insertions() const noexcept { return insertions_; }
  std::size_t byte_size() const noexcept;

 private:
  /// Packed M sampled bits of `d` for table `t`.
  std::uint64_t bucket_of(const BinaryDescriptor& d, std::size_t table) const;
  std::optional<std::uint32_t> bucket_count(std::uint64_t bucket,
                                            std::size_t table) const;
  std::uint32_t aggregate_counts(std::span<const std::uint32_t> counts) const;

  BinaryOracleConfig config_;
  /// [table][m] -> bit position in [0, 256).
  std::vector<std::vector<std::uint16_t>> sampled_bits_;
  CountingBloomFilter primary_;
  BloomFilter verification_;
  std::uint64_t insertions_ = 0;
};

}  // namespace vp
