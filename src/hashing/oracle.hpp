// The uniqueness "oracle": locality-sensitive Bloom filters (paper Fig. 8).
//
// Indexing a descriptor:
//   1. E2LSH maps the 128-d descriptor into L quantized M-dimensional
//      buckets (Gaussian projections, width W).
//   2. Each bucket is Murmur3-hashed into K indices of a shared counting
//      Bloom filter; each index's saturating counter is incremented.
//   3. The K bit positions are concatenated and hashed into a plain
//      verification Bloom filter ("hash(concat(bitPositions))"), which
//      suppresses false positives at query time.
//
// Querying a descriptor returns an estimated global occurrence count:
// per table, the minimum of the K counters (classic counting-Bloom
// estimate), gated by the verification filter; optionally multiprobing
// the 2M adjacent quantization buckets to rescue off-by-one LSH false
// negatives; finally aggregated across the L tables.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "features/keypoint.hpp"
#include "hashing/bloom.hpp"
#include "hashing/lsh.hpp"

namespace vp {

class ThreadPool;

/// How per-table count estimates are combined into one uniqueness score.
enum class OracleAggregate : std::uint8_t {
  kMin = 0,
  kMedian = 1,
  kMean = 2,
  kMax = 3,
};

struct OracleConfig {
  LshConfig lsh{};                 ///< L=10, M=7, W=500 (paper defaults)
  std::size_t hashes = 8;          ///< K indices per bucket (paper: 8)
  unsigned counter_bits = 10;      ///< saturation at 1023 (paper: "1024")
  std::size_t capacity = 2'500'000;///< descriptors the filter is sized for
  double fp_rate = 0.01;           ///< target Bloom false-positive rate
  std::size_t counters_override = 0; ///< nonzero: explicit counter count
  bool multiprobe = true;          ///< probe adjacent quantization buckets
  bool verification = true;        ///< verification Bloom filter enabled
  OracleAggregate aggregate = OracleAggregate::kMedian;

  /// Counter cells in the primary filter (derived unless overridden).
  std::size_t effective_counters() const;
};

class UniquenessOracle {
 public:
  explicit UniquenessOracle(OracleConfig config);

  /// Index one training descriptor (server-side ingest path; constant time).
  void insert(const Descriptor& descriptor);

  /// Estimated global occurrence count of (descriptors similar to) `d`.
  /// 0 means "definitely not seen" (up to LSH false negatives).
  std::uint32_t count(const Descriptor& descriptor) const;

  /// count() for a whole frame's descriptors at once — the client's
  /// keypoint-scoring hot path. Reuses per-worker scratch buffers (bucket,
  /// index and encode storage are hoisted out of the per-descriptor loop)
  /// and, when `pool` is non-null, splits the batch across it. Results are
  /// index-addressed, so output is identical for any pool size.
  std::vector<std::uint32_t> count_batch(std::span<const Descriptor> batch,
                                         ThreadPool* pool = nullptr) const;

  /// Rank helper: lower = more unique. Currently the raw count; kept as a
  /// distinct name so callers express intent.
  std::uint32_t uniqueness_score(const Descriptor& d) const { return count(d); }

  const OracleConfig& config() const noexcept { return config_; }
  const E2Lsh& lsh() const noexcept { return lsh_; }
  std::uint64_t insertions() const noexcept { return insertions_; }

  /// In-memory footprint: primary + verification filters + projections.
  std::size_t byte_size() const noexcept;

  /// Wire format (uncompressed). The client downloads zlib-compressed
  /// bytes of exactly this blob; see net/wire.hpp.
  Bytes serialize() const;
  static UniquenessOracle deserialize(std::span<const std::uint8_t> data);

  /// Fill ratio of the primary filter (hotspot diagnostics, §3).
  double primary_fill() const noexcept { return primary_.fill_ratio(); }
  double verification_fill() const noexcept {
    return verification_.fill_ratio();
  }

 private:
  /// Reusable per-worker buffers for the scoring hot path: the quantized
  /// bucket, its byte encoding, the K filter indices, and the per-table
  /// count accumulator.
  struct Scratch {
    LshBucket bucket;
    Bytes encoded;
    std::vector<std::size_t> indices;
    std::vector<std::uint32_t> per_table;
  };

  std::uint32_t count_with(const Descriptor& descriptor, Scratch& s) const;

  /// Count estimate for one table's bucket: min over the K counters, gated
  /// by the verification filter. Returns nullopt when not present.
  std::optional<std::uint32_t> bucket_count(const LshBucket& bucket,
                                            std::size_t table,
                                            Scratch& s) const;

  /// Combine per-table counts into one score; may reorder `counts`
  /// in place (median selection).
  std::uint32_t aggregate_counts(std::span<std::uint32_t> counts) const;

  OracleConfig config_;
  E2Lsh lsh_;
  CountingBloomFilter primary_;
  BloomFilter verification_;
  std::uint64_t insertions_ = 0;
};

}  // namespace vp
