// H.264-like video bitrate model for Fig. 2.
//
// We do not ship a full video encoder; the figure only needs *bytes per
// frame* under each encoding. JPEG/PNG/RAW sizes are measured with real
// codecs (see codec.hpp). For H.264 we model a GOP of one intra frame
// followed by predicted frames, with the well-established behaviour that an
// intra frame costs roughly a same-quality JPEG and an inter frame costs a
// fraction of that proportional to scene motion (residual energy).
#pragma once

#include <cstddef>

#include "imaging/image.hpp"

namespace vp {

struct VideoModelConfig {
  int gop_length = 30;           ///< frames per group of pictures (1 I + N-1 P)
  int intra_jpeg_quality = 60;   ///< JPEG quality equivalent of the I-frame
  double inter_base_ratio = 0.05;///< P-frame floor as fraction of I-frame size
  double motion_gain = 0.9;      ///< extra P-frame bytes per unit motion
};

/// Stateful per-stream model: feed frames in order, receive encoded sizes.
class H264SizeModel {
 public:
  explicit H264SizeModel(VideoModelConfig config = {});

  /// Returns the modeled encoded byte size of the next frame in the stream.
  std::size_t frame_bytes(const ImageU8& frame);

  /// Mean absolute pixel difference between two equally-sized frames,
  /// normalized to [0,1]; the motion proxy the P-frame model uses.
  static double motion_energy(const ImageU8& a, const ImageU8& b);

  void reset() noexcept;

 private:
  VideoModelConfig config_;
  ImageU8 prev_;
  int frame_index_ = 0;
};

}  // namespace vp
