// Lossless / lossy codec wrappers used for honest byte counts in the
// bandwidth experiments (Figs. 2, 3, 5, 14) and for the GZIP-compressed
// oracle downloads. RAII wrappers around libjpeg, libpng, and zlib.
#pragma once

#include <cstdint>

#include "imaging/image.hpp"
#include "util/bytes.hpp"

namespace vp {

/// Encode an interleaved 1- or 3-channel u8 image as JPEG at the given
/// quality (1..100).
Bytes jpeg_encode(const ImageU8& img, int quality);

/// Decode a JPEG byte stream (grayscale or RGB output matching the stream).
ImageU8 jpeg_decode(std::span<const std::uint8_t> data);

/// Encode a 1- or 3-channel u8 image as PNG (lossless, zlib level 6).
Bytes png_encode(const ImageU8& img);

/// Decode a PNG byte stream.
ImageU8 png_decode(std::span<const std::uint8_t> data);

/// zlib (DEFLATE) compression of an arbitrary byte blob.
/// level in [1..9]; the paper's "heavy GZIP" corresponds to level 9.
Bytes zlib_compress(std::span<const std::uint8_t> data, int level = 9);

/// Inverse of zlib_compress. Throws DecodeError on corrupt input.
Bytes zlib_decompress(std::span<const std::uint8_t> data);

/// CRC-32 (zlib polynomial) of a byte span; 0 for an empty span. Used to
/// checksum the uncompressed v4 database segments, which bypass zlib's
/// own integrity check precisely because they are stored raw for mmap.
std::uint32_t crc32_of(std::span<const std::uint8_t> data) noexcept;

}  // namespace vp
