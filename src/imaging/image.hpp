// Image containers.
//
// Two concrete image types cover the whole pipeline:
//   * ImageU8  — interleaved 8-bit images (1 or 3 channels), what cameras
//                produce and codecs consume.
//   * ImageF   — single-channel float images used by the SIFT scale space.
// Pixels are stored row-major; (x, y) indexing with x the column.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace vp {

template <typename T>
class Image {
 public:
  Image() = default;

  Image(int width, int height, int channels = 1, T fill = T{})
      : width_(width), height_(height), channels_(channels) {
    VP_REQUIRE(width >= 0 && height >= 0, "negative image dimensions");
    VP_REQUIRE(channels >= 1 && channels <= 4, "channels must be in [1,4]");
    data_.assign(static_cast<std::size_t>(width) * height * channels, fill);
  }

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int channels() const noexcept { return channels_; }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t pixel_count() const noexcept {
    return static_cast<std::size_t>(width_) * height_;
  }
  std::size_t byte_size() const noexcept { return data_.size() * sizeof(T); }

  T& at(int x, int y, int c = 0) {
    VP_ASSERT(in_bounds(x, y) && c >= 0 && c < channels_);
    return data_[index(x, y, c)];
  }
  const T& at(int x, int y, int c = 0) const {
    VP_ASSERT(in_bounds(x, y) && c >= 0 && c < channels_);
    return data_[index(x, y, c)];
  }

  /// Unchecked access for hot loops (SIFT inner loops).
  T& operator()(int x, int y, int c = 0) noexcept { return data_[index(x, y, c)]; }
  const T& operator()(int x, int y, int c = 0) const noexcept {
    return data_[index(x, y, c)];
  }

  /// Clamped border access (used by convolution kernels).
  const T& at_clamped(int x, int y, int c = 0) const noexcept {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[index(x, y, c)];
  }

  bool in_bounds(int x, int y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  std::span<T> pixels() noexcept { return data_; }
  std::span<const T> pixels() const noexcept { return data_; }
  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Row pointer (start of row y, channel-interleaved).
  T* row(int y) noexcept { return data_.data() + index(0, y, 0); }
  const T* row(int y) const noexcept { return data_.data() + index(0, y, 0); }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.channels_ == b.channels_ && a.data_ == b.data_;
  }

 private:
  std::size_t index(int x, int y, int c) const noexcept {
    return (static_cast<std::size_t>(y) * width_ + x) * channels_ + c;
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 1;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageF = Image<float>;

/// RGB -> single-channel float luma (Rec.601 weights), range [0,255].
ImageF to_gray(const ImageU8& img);

/// Float [0,255] -> clamped u8 grayscale.
ImageU8 to_u8(const ImageF& img);

/// Grayscale u8 -> 3-channel RGB (replicated).
ImageU8 gray_to_rgb(const ImageU8& gray);

}  // namespace vp
