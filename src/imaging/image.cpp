#include "imaging/image.hpp"

#include <algorithm>
#include <cmath>

namespace vp {

ImageF to_gray(const ImageU8& img) {
  ImageF out(img.width(), img.height(), 1);
  if (img.channels() == 1) {
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        out(x, y) = static_cast<float>(img(x, y));
      }
    }
    return out;
  }
  VP_REQUIRE(img.channels() >= 3, "to_gray expects 1 or 3+ channels");
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const float r = img(x, y, 0);
      const float g = img(x, y, 1);
      const float b = img(x, y, 2);
      out(x, y) = 0.299f * r + 0.587f * g + 0.114f * b;
    }
  }
  return out;
}

ImageU8 to_u8(const ImageF& img) {
  ImageU8 out(img.width(), img.height(), 1);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const float v = std::clamp(img(x, y), 0.0f, 255.0f);
      out(x, y) = static_cast<std::uint8_t>(std::lround(v));
    }
  }
  return out;
}

ImageU8 gray_to_rgb(const ImageU8& gray) {
  VP_REQUIRE(gray.channels() == 1, "gray_to_rgb expects 1 channel");
  ImageU8 out(gray.width(), gray.height(), 3);
  for (int y = 0; y < gray.height(); ++y) {
    for (int x = 0; x < gray.width(); ++x) {
      const auto v = gray(x, y);
      out(x, y, 0) = v;
      out(x, y, 1) = v;
      out(x, y, 2) = v;
    }
  }
  return out;
}

}  // namespace vp
