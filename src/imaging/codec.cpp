#include "imaging/codec.hpp"

#include <csetjmp>
#include <cstdio>
#include <cstring>

#include <jpeglib.h>
#include <png.h>
#include <zlib.h>

namespace vp {
namespace {

// libjpeg reports fatal errors through a callback; convert to exceptions
// via longjmp out of the library (the documented pattern), then throw.
struct JpegErrorMgr {
  jpeg_error_mgr pub;
  std::jmp_buf jump;
  char message[JMSG_LENGTH_MAX] = {};
};

void jpeg_error_exit(j_common_ptr cinfo) {
  auto* err = reinterpret_cast<JpegErrorMgr*>(cinfo->err);
  (*cinfo->err->format_message)(cinfo, err->message);
  std::longjmp(err->jump, 1);
}

}  // namespace

Bytes jpeg_encode(const ImageU8& img, int quality) {
  VP_REQUIRE(!img.empty(), "jpeg_encode: empty image");
  VP_REQUIRE(img.channels() == 1 || img.channels() == 3,
             "jpeg_encode: 1 or 3 channels required");
  VP_REQUIRE(quality >= 1 && quality <= 100, "jpeg quality in [1,100]");

  jpeg_compress_struct cinfo{};
  JpegErrorMgr err{};
  cinfo.err = jpeg_std_error(&err.pub);
  err.pub.error_exit = jpeg_error_exit;

  unsigned char* out_buf = nullptr;
  unsigned long out_size = 0;

  if (setjmp(err.jump)) {
    jpeg_destroy_compress(&cinfo);
    std::free(out_buf);
    throw IoError{std::string("jpeg encode: ") + err.message};
  }

  jpeg_create_compress(&cinfo);
  jpeg_mem_dest(&cinfo, &out_buf, &out_size);

  cinfo.image_width = static_cast<JDIMENSION>(img.width());
  cinfo.image_height = static_cast<JDIMENSION>(img.height());
  cinfo.input_components = img.channels();
  cinfo.in_color_space = img.channels() == 1 ? JCS_GRAYSCALE : JCS_RGB;
  jpeg_set_defaults(&cinfo);
  jpeg_set_quality(&cinfo, quality, TRUE);
  jpeg_start_compress(&cinfo, TRUE);

  while (cinfo.next_scanline < cinfo.image_height) {
    // libjpeg takes a non-const row pointer but does not modify input rows.
    JSAMPROW row = const_cast<JSAMPROW>(
        img.row(static_cast<int>(cinfo.next_scanline)));
    jpeg_write_scanlines(&cinfo, &row, 1);
  }
  jpeg_finish_compress(&cinfo);
  jpeg_destroy_compress(&cinfo);

  Bytes out(out_buf, out_buf + out_size);
  std::free(out_buf);
  return out;
}

ImageU8 jpeg_decode(std::span<const std::uint8_t> data) {
  jpeg_decompress_struct cinfo{};
  JpegErrorMgr err{};
  cinfo.err = jpeg_std_error(&err.pub);
  err.pub.error_exit = jpeg_error_exit;

  if (setjmp(err.jump)) {
    jpeg_destroy_decompress(&cinfo);
    throw DecodeError{std::string("jpeg decode: ") + err.message};
  }

  jpeg_create_decompress(&cinfo);
  jpeg_mem_src(&cinfo, data.data(), static_cast<unsigned long>(data.size()));
  if (jpeg_read_header(&cinfo, TRUE) != JPEG_HEADER_OK) {
    jpeg_destroy_decompress(&cinfo);
    throw DecodeError{"jpeg decode: bad header"};
  }
  jpeg_start_decompress(&cinfo);

  ImageU8 img(static_cast<int>(cinfo.output_width),
              static_cast<int>(cinfo.output_height),
              static_cast<int>(cinfo.output_components));
  while (cinfo.output_scanline < cinfo.output_height) {
    JSAMPROW row = img.row(static_cast<int>(cinfo.output_scanline));
    jpeg_read_scanlines(&cinfo, &row, 1);
  }
  jpeg_finish_decompress(&cinfo);
  jpeg_destroy_decompress(&cinfo);
  return img;
}

namespace {

void png_write_to_vector(png_structp png, png_bytep data, png_size_t len) {
  auto* out = static_cast<Bytes*>(png_get_io_ptr(png));
  out->insert(out->end(), data, data + len);
}

struct PngReadState {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
};

void png_read_from_span(png_structp png, png_bytep out, png_size_t len) {
  auto* st = static_cast<PngReadState*>(png_get_io_ptr(png));
  if (st->pos + len > st->data.size()) {
    png_error(png, "png stream truncated");
  }
  std::memcpy(out, st->data.data() + st->pos, len);
  st->pos += len;
}

}  // namespace

Bytes png_encode(const ImageU8& img) {
  VP_REQUIRE(!img.empty(), "png_encode: empty image");
  VP_REQUIRE(img.channels() == 1 || img.channels() == 3,
             "png_encode: 1 or 3 channels required");

  png_structp png =
      png_create_write_struct(PNG_LIBPNG_VER_STRING, nullptr, nullptr, nullptr);
  VP_ASSERT(png != nullptr);
  png_infop info = png_create_info_struct(png);
  VP_ASSERT(info != nullptr);

  Bytes out;
  if (setjmp(png_jmpbuf(png))) {
    png_destroy_write_struct(&png, &info);
    throw IoError{"png encode failed"};
  }
  png_set_write_fn(png, &out, png_write_to_vector, nullptr);
  png_set_IHDR(png, info, static_cast<png_uint_32>(img.width()),
               static_cast<png_uint_32>(img.height()), 8,
               img.channels() == 1 ? PNG_COLOR_TYPE_GRAY : PNG_COLOR_TYPE_RGB,
               PNG_INTERLACE_NONE, PNG_COMPRESSION_TYPE_DEFAULT,
               PNG_FILTER_TYPE_DEFAULT);
  png_write_info(png, info);
  for (int y = 0; y < img.height(); ++y) {
    png_write_row(png, const_cast<png_bytep>(img.row(y)));
  }
  png_write_end(png, nullptr);
  png_destroy_write_struct(&png, &info);
  return out;
}

ImageU8 png_decode(std::span<const std::uint8_t> data) {
  png_structp png =
      png_create_read_struct(PNG_LIBPNG_VER_STRING, nullptr, nullptr, nullptr);
  VP_ASSERT(png != nullptr);
  png_infop info = png_create_info_struct(png);
  VP_ASSERT(info != nullptr);

  PngReadState st{data};
  if (setjmp(png_jmpbuf(png))) {
    png_destroy_read_struct(&png, &info, nullptr);
    throw DecodeError{"png decode failed"};
  }
  png_set_read_fn(png, &st, png_read_from_span);
  png_read_info(png, info);

  const auto width = png_get_image_width(png, info);
  const auto height = png_get_image_height(png, info);
  const auto color = png_get_color_type(png, info);
  const auto depth = png_get_bit_depth(png, info);

  if (depth == 16) png_set_strip_16(png);
  if (color == PNG_COLOR_TYPE_PALETTE) png_set_palette_to_rgb(png);
  if (color == PNG_COLOR_TYPE_GRAY && depth < 8) png_set_expand_gray_1_2_4_to_8(png);
  if (png_get_valid(png, info, PNG_INFO_tRNS)) png_set_tRNS_to_alpha(png);
  if (color & PNG_COLOR_MASK_ALPHA) png_set_strip_alpha(png);
  png_read_update_info(png, info);

  const int channels = static_cast<int>(png_get_channels(png, info));
  ImageU8 img(static_cast<int>(width), static_cast<int>(height), channels);
  for (int y = 0; y < img.height(); ++y) {
    png_read_row(png, img.row(y), nullptr);
  }
  png_read_end(png, nullptr);
  png_destroy_read_struct(&png, &info, nullptr);
  return img;
}

Bytes zlib_compress(std::span<const std::uint8_t> data, int level) {
  VP_REQUIRE(level >= 1 && level <= 9, "zlib level in [1,9]");
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  Bytes out(bound);
  const int rc = compress2(out.data(), &bound, data.data(),
                           static_cast<uLong>(data.size()), level);
  if (rc != Z_OK) throw IoError{"zlib compress failed"};
  out.resize(bound);
  return out;
}

Bytes zlib_decompress(std::span<const std::uint8_t> data) {
  z_stream zs{};
  if (inflateInit(&zs) != Z_OK) throw IoError{"zlib inflateInit failed"};
  zs.next_in = const_cast<Bytef*>(data.data());
  zs.avail_in = static_cast<uInt>(data.size());

  Bytes out;
  Bytes chunk(64 * 1024);
  int rc = Z_OK;
  while (rc != Z_STREAM_END) {
    zs.next_out = chunk.data();
    zs.avail_out = static_cast<uInt>(chunk.size());
    rc = inflate(&zs, Z_NO_FLUSH);
    if (rc != Z_OK && rc != Z_STREAM_END) {
      inflateEnd(&zs);
      throw DecodeError{"zlib stream corrupt"};
    }
    out.insert(out.end(), chunk.data(),
               chunk.data() + (chunk.size() - zs.avail_out));
    if (rc == Z_OK && zs.avail_out != 0 && zs.avail_in == 0) {
      inflateEnd(&zs);
      throw DecodeError{"zlib stream truncated"};
    }
  }
  inflateEnd(&zs);
  return out;
}

std::uint32_t crc32_of(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint32_t>(
      ::crc32(0L, data.empty() ? Z_NULL : data.data(),
              static_cast<uInt>(data.size())));
}

}  // namespace vp
