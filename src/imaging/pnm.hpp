// Minimal PGM/PPM (binary P5/P6) reader/writer — the dependency-free image
// dump format used by examples and the Fig. 4 keypoint visualization.
#pragma once

#include <string>

#include "imaging/image.hpp"

namespace vp {

/// Write 1-channel (P5) or 3-channel (P6) image. Throws IoError on failure.
void write_pnm(const std::string& path, const ImageU8& img);

/// Read a binary P5/P6 file.
ImageU8 read_pnm(const std::string& path);

}  // namespace vp
