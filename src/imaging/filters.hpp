// Spatial filters: separable Gaussian blur, resampling, gradients, and the
// variance-of-Laplacian blur metric the client app uses to gate frames.
#pragma once

#include <cstddef>

#include "imaging/image.hpp"

namespace vp {

class ThreadPool;

/// Separable Gaussian blur with kernel radius ceil(3*sigma). sigma <= 0
/// returns a copy. When `pool` is non-null the horizontal and vertical
/// passes are row-parallelized across it; the output is bit-identical to
/// the sequential path for any pool size (each row is computed
/// independently by one task).
ImageF gaussian_blur(const ImageF& src, double sigma,
                     ThreadPool* pool = nullptr);

/// Number of distinct Gaussian kernels currently memoized (kernels are
/// cached across calls keyed by quantized sigma; exposed for tests).
std::size_t gaussian_kernel_cache_size();

/// Downsample by exactly 2x (nearest, as in Lowe's SIFT octave step).
/// Odd trailing row/column is dropped: out(x, y) = src(2x, 2y).
ImageF downsample_2x(const ImageF& src);

/// Bilinear resize to (new_w, new_h).
ImageF resize_bilinear(const ImageF& src, int new_w, int new_h);

/// Per-pixel subtraction a - b (same dimensions required).
ImageF subtract(const ImageF& a, const ImageF& b);

/// Central-difference gradients; writes dx and dy images.
void gradients(const ImageF& src, ImageF& dx, ImageF& dy);

/// Variance of the 3x3 Laplacian response. Low values indicate blur; the
/// client discards frames below a threshold (paper §3, "quick check on each
/// frame to detect blur").
double variance_of_laplacian(const ImageF& src);

/// Simulated motion blur: box blur along direction (dx, dy) of given pixel
/// length. Used by the scene renderer to model camera shake.
ImageF motion_blur(const ImageF& src, double dx, double dy, double length);

/// Additive Gaussian sensor noise, clamped to [0,255].
void add_gaussian_noise(ImageF& img, double stddev, class Rng& rng);

}  // namespace vp
