#include "imaging/pnm.hpp"

#include <cstdio>
#include <fstream>

namespace vp {

void write_pnm(const std::string& path, const ImageU8& img) {
  VP_REQUIRE(img.channels() == 1 || img.channels() == 3,
             "write_pnm: 1 or 3 channels required");
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IoError{"cannot open for write: " + path};
  f << (img.channels() == 1 ? "P5" : "P6") << '\n'
    << img.width() << ' ' << img.height() << "\n255\n";
  f.write(reinterpret_cast<const char*>(img.data()),
          static_cast<std::streamsize>(img.byte_size()));
  if (!f) throw IoError{"short write: " + path};
}

ImageU8 read_pnm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError{"cannot open for read: " + path};
  std::string magic;
  f >> magic;
  if (magic != "P5" && magic != "P6") {
    throw DecodeError{"not a binary PNM: " + path};
  }
  auto skip_ws_and_comments = [&f] {
    for (;;) {
      const int c = f.peek();
      if (c == '#') {
        std::string line;
        std::getline(f, line);
      } else if (std::isspace(c)) {
        f.get();
      } else {
        break;
      }
    }
  };
  int w = 0, h = 0, maxval = 0;
  skip_ws_and_comments();
  f >> w;
  skip_ws_and_comments();
  f >> h;
  skip_ws_and_comments();
  f >> maxval;
  if (!f || w <= 0 || h <= 0 || maxval != 255) {
    throw DecodeError{"bad PNM header: " + path};
  }
  f.get();  // single whitespace after header
  ImageU8 img(w, h, magic == "P5" ? 1 : 3);
  f.read(reinterpret_cast<char*>(img.data()),
         static_cast<std::streamsize>(img.byte_size()));
  if (!f) throw DecodeError{"truncated PNM payload: " + path};
  return img;
}

}  // namespace vp
