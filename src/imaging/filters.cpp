#include "imaging/filters.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

std::vector<float> make_gaussian_kernel(double sigma) {
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> k(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-(i * i) / (2.0 * sigma * sigma));
    k[static_cast<std::size_t>(i + radius)] = static_cast<float>(v);
    sum += v;
  }
  for (auto& v : k) v = static_cast<float>(v / sum);
  return k;
}

// Kernel memo. The SIFT pyramid re-blurs with the same handful of sigmas on
// every frame; exp() + normalization per call is measurable there. Keyed by
// sigma quantized to 1e-6 (well below any meaningful sigma difference).
// Entries are never evicted: the working set is a few dozen kernels.
std::mutex g_kernel_mutex;
std::map<std::int64_t, std::unique_ptr<const std::vector<float>>>
    g_kernel_cache;

const std::vector<float>& cached_gaussian_kernel(double sigma) {
  const auto key = static_cast<std::int64_t>(std::llround(sigma * 1e6));
  std::lock_guard lock(g_kernel_mutex);
  auto& slot = g_kernel_cache[key];
  if (!slot) {
    slot = std::make_unique<const std::vector<float>>(
        make_gaussian_kernel(sigma));
  }
  return *slot;  // stable address: values are never erased or replaced
}

/// Horizontal tap sum with the source index clamped to [0, w).
float hblur_clamped(const float* s, int w, int x, const float* k,
                    int radius) {
  float acc = 0;
  for (int i = -radius; i <= radius; ++i) {
    const int xi = std::clamp(x + i, 0, w - 1);
    acc += k[i + radius] * s[xi];
  }
  return acc;
}

/// One row of the horizontal pass: clamped borders, raw pointer interior.
void hblur_row(const float* s, float* t, int w, const float* k, int radius) {
  const int lo = std::min(radius, w);
  const int hi = std::max(lo, w - radius);
  for (int x = 0; x < lo; ++x) t[x] = hblur_clamped(s, w, x, k, radius);
  const int taps = 2 * radius + 1;
  for (int x = lo; x < hi; ++x) {
    const float* p = s + (x - radius);
    float acc = 0;
    for (int i = 0; i < taps; ++i) acc += k[i] * p[i];
    t[x] = acc;
  }
  for (int x = hi; x < w; ++x) t[x] = hblur_clamped(s, w, x, k, radius);
}

/// One row of the vertical pass: row-major accumulation over the taps so
/// every memory access is sequential. The row index clamp costs one clamp
/// per tap per row (not per pixel).
void vblur_row(const ImageF& tmp, float* o, int y, const float* k,
               int radius) {
  const int w = tmp.width();
  const int h = tmp.height();
  {
    const float* r = tmp.row(std::clamp(y - radius, 0, h - 1));
    for (int x = 0; x < w; ++x) o[x] = k[0] * r[x];
  }
  const int taps = 2 * radius + 1;
  for (int i = 1; i < taps; ++i) {
    const float* r = tmp.row(std::clamp(y - radius + i, 0, h - 1));
    const float ki = k[i];
    for (int x = 0; x < w; ++x) o[x] += ki * r[x];
  }
}

/// Run fn(y) for y in [0, h), on the pool when given.
void for_each_row(int h, ThreadPool* pool,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(h), fn);
  } else {
    for (int y = 0; y < h; ++y) fn(static_cast<std::size_t>(y));
  }
}

}  // namespace

std::size_t gaussian_kernel_cache_size() {
  std::lock_guard lock(g_kernel_mutex);
  return g_kernel_cache.size();
}

ImageF gaussian_blur(const ImageF& src, double sigma, ThreadPool* pool) {
  VP_REQUIRE(src.channels() == 1, "gaussian_blur expects grayscale");
  if (sigma <= 0.0 || src.empty()) return src;
  const auto& k = cached_gaussian_kernel(sigma);
  const int radius = static_cast<int>(k.size() / 2);
  const float* kp = k.data();
  const int w = src.width();
  const int h = src.height();

  ImageF tmp(w, h);
  for_each_row(h, pool, [&](std::size_t y) {
    const int yi = static_cast<int>(y);
    hblur_row(src.row(yi), tmp.row(yi), w, kp, radius);
  });
  ImageF out(w, h);
  for_each_row(h, pool, [&](std::size_t y) {
    const int yi = static_cast<int>(y);
    vblur_row(tmp, out.row(yi), yi, kp, radius);
  });
  return out;
}

ImageF downsample_2x(const ImageF& src) {
  const int w = std::max(1, src.width() / 2);
  const int h = std::max(1, src.height() / 2);
  ImageF out(w, h);
  for (int y = 0; y < h; ++y) {
    const float* s = src.row(2 * y);
    float* o = out.row(y);
    for (int x = 0; x < w; ++x) o[x] = s[2 * x];
  }
  return out;
}

ImageF resize_bilinear(const ImageF& src, int new_w, int new_h) {
  VP_REQUIRE(new_w > 0 && new_h > 0, "resize target must be positive");
  VP_REQUIRE(!src.empty(), "resize of empty image");
  ImageF out(new_w, new_h);
  const double sx = static_cast<double>(src.width()) / new_w;
  const double sy = static_cast<double>(src.height()) / new_h;
  for (int y = 0; y < new_h; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const int y0 = static_cast<int>(std::floor(fy));
    const float wy = static_cast<float>(fy - y0);
    for (int x = 0; x < new_w; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const int x0 = static_cast<int>(std::floor(fx));
      const float wx = static_cast<float>(fx - x0);
      const float p00 = src.at_clamped(x0, y0);
      const float p10 = src.at_clamped(x0 + 1, y0);
      const float p01 = src.at_clamped(x0, y0 + 1);
      const float p11 = src.at_clamped(x0 + 1, y0 + 1);
      out(x, y) = (1 - wy) * ((1 - wx) * p00 + wx * p10) +
                  wy * ((1 - wx) * p01 + wx * p11);
    }
  }
  return out;
}

ImageF subtract(const ImageF& a, const ImageF& b) {
  VP_REQUIRE(a.width() == b.width() && a.height() == b.height(),
             "subtract: dimension mismatch");
  ImageF out(a.width(), a.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

void gradients(const ImageF& src, ImageF& dx, ImageF& dy) {
  const int w = src.width();
  const int h = src.height();
  dx = ImageF(w, h);
  dy = ImageF(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      dx(x, y) = 0.5f * (src.at_clamped(x + 1, y) - src.at_clamped(x - 1, y));
      dy(x, y) = 0.5f * (src.at_clamped(x, y + 1) - src.at_clamped(x, y - 1));
    }
  }
}

double variance_of_laplacian(const ImageF& src) {
  if (src.width() < 3 || src.height() < 3) return 0.0;
  double sum = 0, sum2 = 0;
  const std::size_t n =
      static_cast<std::size_t>(src.width() - 2) * (src.height() - 2);
  for (int y = 1; y < src.height() - 1; ++y) {
    for (int x = 1; x < src.width() - 1; ++x) {
      const double lap = src(x - 1, y) + src(x + 1, y) + src(x, y - 1) +
                         src(x, y + 1) - 4.0 * src(x, y);
      sum += lap;
      sum2 += lap * lap;
    }
  }
  const double m = sum / static_cast<double>(n);
  return sum2 / static_cast<double>(n) - m * m;
}

ImageF motion_blur(const ImageF& src, double dx, double dy, double length) {
  if (length < 1.0) return src;
  const double norm = std::hypot(dx, dy);
  if (norm < 1e-9) return src;
  const double ux = dx / norm;
  const double uy = dy / norm;
  const int taps = std::max(2, static_cast<int>(std::lround(length)));
  ImageF out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      float acc = 0;
      for (int t = 0; t < taps; ++t) {
        const double s = (t - (taps - 1) / 2.0);
        acc += src.at_clamped(x + static_cast<int>(std::lround(ux * s)),
                              y + static_cast<int>(std::lround(uy * s)));
      }
      out(x, y) = acc / static_cast<float>(taps);
    }
  }
  return out;
}

void add_gaussian_noise(ImageF& img, double stddev, Rng& rng) {
  if (stddev <= 0) return;
  for (auto& p : img.pixels()) {
    p = std::clamp(p + static_cast<float>(rng.gaussian(0.0, stddev)), 0.0f,
                   255.0f);
  }
}

}  // namespace vp
