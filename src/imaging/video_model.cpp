#include "imaging/video_model.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/codec.hpp"

namespace vp {

H264SizeModel::H264SizeModel(VideoModelConfig config) : config_(config) {
  VP_REQUIRE(config_.gop_length >= 1, "GOP length must be >= 1");
  VP_REQUIRE(config_.intra_jpeg_quality >= 1 && config_.intra_jpeg_quality <= 100,
             "intra quality in [1,100]");
}

double H264SizeModel::motion_energy(const ImageU8& a, const ImageU8& b) {
  VP_REQUIRE(a.width() == b.width() && a.height() == b.height() &&
                 a.channels() == b.channels(),
             "motion_energy: frame geometry mismatch");
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  double sum = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    sum += std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i]));
  }
  return sum / (255.0 * static_cast<double>(pa.size()));
}

std::size_t H264SizeModel::frame_bytes(const ImageU8& frame) {
  const bool is_intra = (frame_index_ % config_.gop_length) == 0 ||
                        prev_.empty() ||
                        prev_.width() != frame.width() ||
                        prev_.height() != frame.height();
  // I-frame cost: measured with a real JPEG encode at the configured
  // quality (H.264 intra coding is comparable at matched quality).
  const std::size_t intra_size =
      jpeg_encode(frame, config_.intra_jpeg_quality).size();

  std::size_t bytes;
  if (is_intra) {
    bytes = intra_size;
  } else {
    const double motion = motion_energy(prev_, frame);
    const double ratio = std::min(
        1.0, config_.inter_base_ratio + config_.motion_gain * motion);
    bytes = static_cast<std::size_t>(
        std::lround(ratio * static_cast<double>(intra_size)));
  }
  prev_ = frame;
  ++frame_index_;
  return bytes;
}

void H264SizeModel::reset() noexcept {
  prev_ = ImageU8{};
  frame_index_ = 0;
}

}  // namespace vp
