// RF fingerprinting substrate (paper conclusion: "the VisualPrint approach
// can be productively reapplied in other high-dimensional sensory domains,
// such as wireless RF").
//
// An RF fingerprint is the vector of received signal strengths (RSSI)
// from the audible access points at a location. This module simulates a
// building-scale AP deployment with a log-distance path-loss model, wall
// attenuation, and shadow fading, and quantizes fingerprints into the
// same 128-byte descriptor the uniqueness oracle consumes — so the exact
// VisualPrint machinery ranks *locations* by how RF-unique they are.
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "geometry/vec.hpp"
#include "util/rng.hpp"

namespace vp {

struct AccessPoint {
  Vec3 position;
  double tx_power_dbm = -30.0;  ///< RSSI at 1 m
};

struct RfEnvironmentConfig {
  double width = 60.0;    ///< building extent, meters
  double depth = 30.0;
  int num_aps = 24;       ///< capped at kDescriptorDims
  double path_loss_exponent = 3.0;  ///< indoor: 2.5 - 4
  double shadow_sigma_db = 3.0;     ///< log-normal shadowing
  double noise_floor_dbm = -95.0;   ///< below this an AP is inaudible
  /// Fraction of the building width containing APs (1.0 = everywhere).
  /// Below 1.0 the remaining wing becomes an "RF desert": few, weak,
  /// slowly-varying signals — the RF analogue of blank white walls.
  double ap_region_fraction = 1.0;
  std::uint64_t seed = 7;
};

/// A deployed building: fixed APs plus deterministic per-(AP, location
/// cell) shadowing so repeated measurements at one spot agree while
/// different spots differ.
class RfEnvironment {
 public:
  explicit RfEnvironment(RfEnvironmentConfig config);

  /// RSSI vector (dBm per AP) at a position, with measurement noise.
  std::vector<double> measure_rssi(Vec3 position, Rng& rng) const;

  /// Quantize an RSSI vector into the oracle's 128-byte descriptor:
  /// element i = clamp(rssi_i - noise_floor, 0, 90) scaled to [0, 255]
  /// (inaudible APs map to 0). Unused dimensions stay 0.
  Descriptor to_descriptor(std::span<const double> rssi_dbm) const;

  /// Convenience: measure and quantize.
  Descriptor fingerprint(Vec3 position, Rng& rng) const;

  const std::vector<AccessPoint>& access_points() const noexcept {
    return aps_;
  }
  const RfEnvironmentConfig& config() const noexcept { return config_; }

 private:
  double shadow_db(std::size_t ap, Vec3 position) const;

  RfEnvironmentConfig config_;
  std::vector<AccessPoint> aps_;
  std::uint64_t shadow_seed_;
};

}  // namespace vp
