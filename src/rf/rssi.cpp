#include "rf/rssi.hpp"

#include <algorithm>
#include <cmath>

#include "hashing/murmur3.hpp"
#include "util/error.hpp"

namespace vp {

RfEnvironment::RfEnvironment(RfEnvironmentConfig config) : config_(config) {
  VP_REQUIRE(config.num_aps >= 1 &&
                 config.num_aps <= static_cast<int>(kDescriptorDims),
             "num_aps in [1,128]");
  Rng rng(config.seed);
  shadow_seed_ = rng.next_u64();
  aps_.reserve(static_cast<std::size_t>(config.num_aps));
  for (int i = 0; i < config.num_aps; ++i) {
    AccessPoint ap;
    ap.position = {rng.uniform(0, config.width * config.ap_region_fraction),
                   rng.uniform(0, config.depth),
                   rng.uniform(2.2, 2.8)};
    ap.tx_power_dbm = rng.uniform(-34, -26);
    aps_.push_back(ap);
  }
}

double RfEnvironment::shadow_db(std::size_t ap, Vec3 position) const {
  // Deterministic shadowing per (AP, 1m grid cell): hash -> gaussian-ish
  // via sum of uniforms. Static obstructions don't move between visits.
  const auto cx = static_cast<std::int64_t>(std::floor(position.x));
  const auto cy = static_cast<std::int64_t>(std::floor(position.y));
  ByteWriter w(32);
  w.u64(shadow_seed_);
  w.u64(static_cast<std::uint64_t>(ap));
  w.i64(cx);
  w.i64(cy);
  const auto [h1, h2] = murmur3_x64_128(w.bytes(), 0x5AD0u);
  // Irwin-Hall approximation of a standard normal from four uniforms.
  double sum = 0;
  for (int i = 0; i < 4; ++i) {
    sum += static_cast<double>((i < 2 ? h1 : h2) >> ((i % 2) * 32 & 31) &
                               0xFFFFFFFFull) /
           4294967295.0;
  }
  const double z = (sum - 2.0) * std::sqrt(3.0);
  return z * config_.shadow_sigma_db;
}

std::vector<double> RfEnvironment::measure_rssi(Vec3 position,
                                                Rng& rng) const {
  std::vector<double> rssi;
  rssi.reserve(aps_.size());
  for (std::size_t i = 0; i < aps_.size(); ++i) {
    const double d = std::max(1.0, aps_[i].position.distance(position));
    double level = aps_[i].tx_power_dbm -
                   10.0 * config_.path_loss_exponent * std::log10(d) +
                   shadow_db(i, position) + rng.gaussian(0, 1.0);
    if (level < config_.noise_floor_dbm) level = -120.0;  // inaudible
    rssi.push_back(level);
  }
  return rssi;
}

Descriptor RfEnvironment::to_descriptor(std::span<const double> rssi) const {
  Descriptor d{};
  const std::size_t n = std::min(rssi.size(), kDescriptorDims);
  for (std::size_t i = 0; i < n; ++i) {
    const double above_floor =
        std::clamp(rssi[i] - config_.noise_floor_dbm, 0.0, 90.0);
    d[i] = static_cast<std::uint8_t>(std::lround(above_floor * 255.0 / 90.0));
  }
  return d;
}

Descriptor RfEnvironment::fingerprint(Vec3 position, Rng& rng) const {
  return to_descriptor(measure_rssi(position, rng));
}

}  // namespace vp
