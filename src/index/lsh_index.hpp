// LSH-indexed nearest-neighbor search over descriptors — the server's
// "large-scale image-based content retrieval table" (§3). Each of the L
// tables maps a hashed quantized bucket to the list of descriptor ids that
// landed there; a query unions candidates from all tables (optionally
// multiprobing adjacent buckets) and ranks them by exact L2 distance.
//
// This is the baseline "LSH" scheme of Fig. 13/15, and doubles as the
// keypoint-to-3D lookup table when the caller keeps a parallel array of
// 3-D positions per descriptor id.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "features/keypoint.hpp"
#include "hashing/lsh.hpp"

namespace vp {

struct LshIndexConfig {
  LshConfig lsh{};
  bool multiprobe = false;       ///< probe 2M adjacent buckets on query
  std::size_t max_candidates = 4096;  ///< cap candidate set per query
};

struct Match {
  std::uint32_t id = 0;          ///< descriptor id (insertion order)
  std::uint32_t distance2 = 0;   ///< exact squared L2 distance
};

class LshIndex {
 public:
  explicit LshIndex(LshIndexConfig config = {});

  /// Insert a descriptor; returns its id (dense, insertion order).
  std::uint32_t insert(const Descriptor& descriptor);

  /// k nearest neighbors among LSH candidates, ascending distance.
  std::vector<Match> query(const Descriptor& descriptor, std::size_t k) const;

  /// Pre-size the descriptor array and per-table bucket maps for `n`
  /// inserts (bulk shard rebuilds on database load).
  void reserve(std::size_t n);

  std::size_t size() const noexcept { return descriptors_.size(); }
  const Descriptor& descriptor(std::uint32_t id) const {
    return descriptors_.at(id);
  }

  /// Approximate resident memory of THIS implementation: descriptors
  /// stored once + per-table id lists + hash-map node overhead.
  std::size_t byte_size() const noexcept;

  /// Memory model of the reference E2LSH implementation the paper
  /// benchmarks against, which replicates the indexed vectors into every
  /// table ("an extremely large memory footprint, much larger than the
  /// input data, due to multiple replications supporting multiple
  /// projections"): per table, a full descriptor copy plus ~2 pointers of
  /// node overhead per entry.
  std::size_t reference_e2lsh_byte_size() const noexcept;

  const E2Lsh& lsh() const noexcept { return lsh_; }

 private:
  using BucketMap = std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>;

  std::uint64_t bucket_key(const LshBucket& bucket, std::size_t table) const;
  void gather(const LshBucket& bucket, std::size_t table,
              std::vector<std::uint32_t>& out) const;

  LshIndexConfig config_;
  E2Lsh lsh_;
  std::vector<Descriptor> descriptors_;
  std::vector<BucketMap> tables_;
};

}  // namespace vp
