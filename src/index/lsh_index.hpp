// LSH-indexed nearest-neighbor search over descriptors — the server's
// "large-scale image-based content retrieval table" (§3). Each of the L
// tables maps a hashed quantized bucket to the list of descriptor ids that
// landed there; a query unions candidates from all tables (optionally
// multiprobing adjacent buckets) and ranks them by exact L2 distance.
//
// This is the baseline "LSH" scheme of Fig. 13/15, and doubles as the
// keypoint-to-3D lookup table when the caller keeps a parallel array of
// 3-D positions per descriptor id.
//
// Hot-path layout: descriptors live in one contiguous 128-byte-stride byte
// array, so exact ranking walks a flat buffer with the SIMD distance
// kernel (features/distance.hpp) instead of chasing per-descriptor
// objects. Ranking itself is a bounded max-heap top-k (`select_top_k`),
// and whole-query batches score on a borrowed ThreadPool with per-worker
// scratch (`query_batch`) — same determinism contract as the client path:
// identical results for any pool size.
//
// Optional PQ mode (LshIndexConfig::pq, off by default): a parallel
// 16-byte-stride code buffer mirrors the flat descriptor array, and
// queries whose LSH candidate set exceeds the rerank depth run two
// stages — a cheap asymmetric-distance (ADC) scan over every candidate's
// code keeps the top R in deterministic (adc, id) order, then only those
// R pay the exact 128-dim u8-L2 rerank. Exact-only mode is untouched and
// stays the bit-identity baseline.
//
// Storage ownership: the flat descriptor buffer (and the PQ code buffer)
// can be *owned* (grown by insert) or *borrowed* — a `std::span` over
// bytes someone else keeps alive, typically an mmap'd v4 database segment
// (util/mmap_file.hpp). `bulk_load` installs a borrowed buffer plus a
// type-erased keepalive and rebuilds only the bucket maps, so a cold
// shard faults in without copying its descriptor payload. A borrowed
// index is read-only in spirit; the first insert() transparently
// materializes private copies (copy-on-write), so every mutating caller
// keeps working.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "features/keypoint.hpp"
#include "features/pq.hpp"
#include "hashing/lsh.hpp"

namespace vp {

class ThreadPool;

struct LshIndexConfig {
  LshConfig lsh{};
  bool multiprobe = false;       ///< probe 2M adjacent buckets on query
  std::size_t max_candidates = 4096;  ///< cap candidate set per query
  PqIndexConfig pq{};            ///< coarse-scan-then-exact-rerank storage
};

struct Match {
  std::uint32_t id = 0;          ///< descriptor id (insertion order)
  std::uint32_t distance2 = 0;   ///< exact squared L2 distance
};

/// Strict-weak ranking order for matches: ascending distance, ties broken
/// by ascending id — a total order, so every top-k selection below is
/// deterministic regardless of kernel, pool size, or traversal order.
inline bool match_less(const Match& a, const Match& b) noexcept {
  return a.distance2 != b.distance2 ? a.distance2 < b.distance2
                                    : a.id < b.id;
}

/// Keep the k smallest matches (by match_less) in `matches`, sorted
/// ascending, via a bounded max-heap over the first k slots: O(n log k)
/// and in place, replacing the sort-everything top-k.
void select_top_k(std::vector<Match>& matches, std::size_t k);

class LshIndex {
 public:
  explicit LshIndex(LshIndexConfig config = {});

  /// Insert a descriptor; returns its id (dense, insertion order).
  std::uint32_t insert(const Descriptor& descriptor);

  /// k nearest neighbors among LSH candidates, ascending distance.
  std::vector<Match> query(const Descriptor& descriptor, std::size_t k) const;

  /// query() for a whole fingerprint's descriptors at once — the server's
  /// retrieval hot path. Reuses per-worker scratch (candidate ids and
  /// scored matches are hoisted out of the per-descriptor loop) and, when
  /// `pool` is non-null, splits the batch across it in contiguous chunks.
  /// Results are index-addressed: out[i] == query(queries[i], k) for any
  /// pool size.
  std::vector<std::vector<Match>> query_batch(
      std::span<const Descriptor> queries, std::size_t k,
      ThreadPool* pool = nullptr) const;

  /// query_batch for compact (PQ-coded) queries: `queries` holds the
  /// reconstructed descriptors (the LSH bucketing and the exact rerank use
  /// them) and `codes` the original 16-byte codes, kPqCodeBytes stride,
  /// index-parallel. The coarse ADC stage gathers each query's table rows
  /// from the codebook's precomputed symmetric matrix instead of building
  /// the table from the descriptor — bit-identical results (a reconstructed
  /// subvector IS a centroid), one table-build cheaper per query
  /// descriptor. Requires pq_ready(); falls back to query_batch otherwise.
  std::vector<std::vector<Match>> query_batch_codes(
      std::span<const Descriptor> queries,
      std::span<const std::uint8_t> codes, std::size_t k,
      ThreadPool* pool = nullptr) const;

  /// Pre-size the descriptor array and per-table bucket maps for `n`
  /// inserts (bulk shard rebuilds on database load).
  void reserve(std::size_t n);

  /// Install `count` descriptors at once from a contiguous 128-byte-stride
  /// buffer and rebuild the bucket maps. With a `keepalive` the buffer is
  /// *borrowed* — the index stores only the span and the keepalive keeps
  /// the bytes (an mmap'd segment) valid for the index's lifetime; without
  /// one the bytes are copied into owned storage. Requires an empty index.
  void bulk_load(std::span<const std::uint8_t> descriptors, std::size_t count,
                 std::shared_ptr<const void> keepalive = nullptr);

  /// True when the descriptor (or code) payload is a borrowed span rather
  /// than owned vectors. insert() on a borrowed index copies first.
  bool borrows_storage() const noexcept {
    return !borrowed_flat_.empty() || !borrowed_codes_.empty();
  }

  std::size_t size() const noexcept { return size_; }
  /// Copy of a stored descriptor (the storage itself is a flat byte array).
  Descriptor descriptor(std::uint32_t id) const;
  /// Borrowed pointer to a stored descriptor's 128 contiguous bytes.
  const std::uint8_t* descriptor_ptr(std::uint32_t id) const noexcept {
    return flat_data() + static_cast<std::size_t>(id) * kDescriptorDims;
  }

  // --- PQ storage (coarse-scan-then-exact-rerank) -----------------------

  /// True when PQ mode is configured AND usable: the codebook is trained
  /// and every stored descriptor has a code. Published shards in PQ mode
  /// are always ready; a builder that inserted since the last train_pq()
  /// falls back to exact scans until the next publish.
  bool pq_ready() const noexcept {
    return config_.pq.enabled && codebook_.trained() &&
           codes_span().size() == size_ * kPqCodeBytes;
  }

  /// Train the codebook from the stored descriptors (first call with a
  /// non-empty index; later calls are cheap) and encode any descriptors
  /// inserted since. No-op unless config().pq.enabled. Deterministic:
  /// same descriptors + train config => same codebook and codes.
  void train_pq();

  /// Install a trained codebook + codes (persistence load path). Throws
  /// InvalidArgument unless codes covers exactly size() descriptors.
  void restore_pq(PqCodebook codebook, std::vector<std::uint8_t> codes);

  /// Borrowed-buffer variant: the code bytes stay where they are (an
  /// mmap'd v4 segment) and `keepalive` pins them; a null keepalive
  /// copies. Same size contract as the owning overload.
  void restore_pq(PqCodebook codebook, std::span<const std::uint8_t> codes,
                  std::shared_ptr<const void> keepalive);

  const PqCodebook& pq_codebook() const noexcept { return codebook_; }
  /// All codes, kPqCodeBytes stride, id order (empty before training).
  std::span<const std::uint8_t> pq_codes() const noexcept {
    return codes_span();
  }
  const std::uint8_t* code_ptr(std::uint32_t id) const noexcept {
    return codes_span().data() + static_cast<std::size_t>(id) * kPqCodeBytes;
  }

  /// Raw descriptor payload bytes (size() * 128).
  std::size_t descriptor_bytes() const noexcept {
    return size_ * kDescriptorDims;
  }
  /// PQ payload bytes: codes + codebook (0 when untrained).
  std::size_t pq_bytes() const noexcept {
    return codes_span().size() + (codebook_.trained() ? kPqCodebookBytes : 0);
  }

  const LshIndexConfig& config() const noexcept { return config_; }

  /// Approximate resident memory of THIS implementation: descriptors
  /// stored once + per-table id lists + hash-map node overhead (+ PQ
  /// codes and codebook when trained).
  std::size_t byte_size() const noexcept;

  /// Memory model of the reference E2LSH implementation the paper
  /// benchmarks against, which replicates the indexed vectors into every
  /// table ("an extremely large memory footprint, much larger than the
  /// input data, due to multiple replications supporting multiple
  /// projections"): per table, a full descriptor copy plus ~2 pointers of
  /// node overhead per entry.
  std::size_t reference_e2lsh_byte_size() const noexcept;

  const E2Lsh& lsh() const noexcept { return lsh_; }

 private:
  using BucketMap = std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>;

  /// Per-worker reusable buffers for the query hot path. The ADC members
  /// are only touched in PQ mode (the 8 KB table lives here so each
  /// worker builds it once per query descriptor, never per candidate).
  struct Scratch {
    std::vector<std::uint32_t> candidates;
    std::vector<Match> matches;
    AdcTable adc_table;
    std::vector<std::uint32_t> adc_dists;
    std::vector<Match> adc_matches;
  };

  std::uint64_t bucket_key(const LshBucket& bucket, std::size_t table) const;
  void gather(const LshBucket& bucket, std::size_t table,
              std::vector<std::uint32_t>& out) const;
  /// `query_code`, when non-null, is the query's own 16-byte PQ code: the
  /// coarse ADC table is then gathered from the symmetric matrix rather
  /// than built from `descriptor` (same table, cheaper).
  void query_into(const Descriptor& descriptor, std::size_t k, Scratch& s,
                  std::vector<Match>& out,
                  const std::uint8_t* query_code = nullptr) const;

  /// Base of the descriptor payload, owned or borrowed.
  const std::uint8_t* flat_data() const noexcept {
    return borrowed_flat_.empty() ? flat_.data() : borrowed_flat_.data();
  }
  /// The code payload view, owned or borrowed.
  std::span<const std::uint8_t> codes_span() const noexcept {
    return borrowed_codes_.empty()
               ? std::span<const std::uint8_t>(codes_)
               : borrowed_codes_;
  }
  /// Copy any borrowed payloads into owned vectors (first mutation).
  void materialize();
  /// Hash descriptor `id` into every table's bucket map.
  void index_descriptor(std::uint32_t id);

  LshIndexConfig config_;
  E2Lsh lsh_;
  std::vector<std::uint8_t> flat_;  ///< owned descriptors (empty if borrowed)
  std::span<const std::uint8_t> borrowed_flat_;  ///< mmap'd descriptors
  std::size_t size_ = 0;
  std::vector<BucketMap> tables_;
  PqCodebook codebook_;             ///< untrained unless PQ mode trained
  std::vector<std::uint8_t> codes_; ///< owned codes (empty if borrowed)
  std::span<const std::uint8_t> borrowed_codes_;  ///< mmap'd codes
  std::shared_ptr<const void> keepalive_;  ///< pins both borrowed spans
};

}  // namespace vp
