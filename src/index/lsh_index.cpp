#include "index/lsh_index.hpp"

#include <algorithm>

#include "features/distance.hpp"
#include "hashing/murmur3.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vp {

void select_top_k(std::vector<Match>& matches, std::size_t k) {
  if (k == 0) {
    matches.clear();
    return;
  }
  if (k >= matches.size()) {
    std::sort(matches.begin(), matches.end(), match_less);
    return;
  }
  // Max-heap over the first k slots (largest-so-far on top), then stream
  // the tail through it: each survivor displaces the current worst.
  const auto first = matches.begin();
  const auto kth = first + static_cast<std::ptrdiff_t>(k);
  std::make_heap(first, kth, match_less);
  for (std::size_t i = k; i < matches.size(); ++i) {
    if (match_less(matches[i], matches[0])) {
      std::pop_heap(first, kth, match_less);
      matches[k - 1] = matches[i];
      std::push_heap(first, kth, match_less);
    }
  }
  matches.resize(k);
  std::sort_heap(matches.begin(), matches.end(), match_less);
}

LshIndex::LshIndex(LshIndexConfig config)
    : config_(config),
      lsh_(config.lsh.tables, config.lsh.projections, config.lsh.width,
           config.lsh.seed),
      tables_(config.lsh.tables) {}

std::uint64_t LshIndex::bucket_key(const LshBucket& bucket,
                                   std::size_t table) const {
  const Bytes enc = E2Lsh::encode_bucket(bucket);
  const auto [h1, h2] =
      murmur3_x64_128(enc, 0xa5a50000u + static_cast<std::uint32_t>(table));
  (void)h2;
  return h1;
}

void LshIndex::reserve(std::size_t n) {
  flat_.reserve(n * kDescriptorDims);
  // Bucket occupancy is roughly n ids spread across the map; reserving at
  // that count keeps the rebuild loop from rehashing log(n) times.
  for (auto& table : tables_) table.reserve(n);
}

std::uint32_t LshIndex::insert(const Descriptor& descriptor) {
  VP_REQUIRE(size_ < UINT32_MAX, "index full");
  if (borrows_storage()) materialize();  // copy-on-write for mmap'd shards
  const auto id = static_cast<std::uint32_t>(size_);
  flat_.insert(flat_.end(), descriptor.begin(), descriptor.end());
  ++size_;
  if (codebook_.trained()) {
    // Keep codes in lockstep with the flat buffer once trained, so
    // incremental ingest after the first publish stays PQ-ready.
    codes_.resize(size_ * kPqCodeBytes);
    codebook_.encode(descriptor.data(),
                     codes_.data() + static_cast<std::size_t>(id) *
                                         kPqCodeBytes);
  }
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t][bucket_key(lsh_.bucket(descriptor, t), t)].push_back(id);
  }
  return id;
}

void LshIndex::materialize() {
  if (!borrowed_flat_.empty()) {
    flat_.assign(borrowed_flat_.begin(), borrowed_flat_.end());
    borrowed_flat_ = {};
  }
  if (!borrowed_codes_.empty()) {
    codes_.assign(borrowed_codes_.begin(), borrowed_codes_.end());
    borrowed_codes_ = {};
  }
  keepalive_.reset();
}

void LshIndex::index_descriptor(std::uint32_t id) {
  Descriptor d;
  std::copy_n(descriptor_ptr(id), kDescriptorDims, d.begin());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t][bucket_key(lsh_.bucket(d, t), t)].push_back(id);
  }
}

void LshIndex::bulk_load(std::span<const std::uint8_t> descriptors,
                         std::size_t count,
                         std::shared_ptr<const void> keepalive) {
  VP_REQUIRE(size_ == 0, "bulk_load: index not empty");
  VP_REQUIRE(descriptors.size() == count * kDescriptorDims,
             "bulk_load: descriptor bytes do not match count");
  VP_REQUIRE(count < UINT32_MAX, "bulk_load: too many descriptors");
  if (keepalive != nullptr && !descriptors.empty()) {
    borrowed_flat_ = descriptors;
    keepalive_ = std::move(keepalive);
  } else {
    flat_.assign(descriptors.begin(), descriptors.end());
  }
  size_ = count;
  // The bucket maps are the only derived state rebuilt here — the whole
  // point of the borrowed path: a cold-shard fault is hash work, not a
  // payload copy.
  for (auto& table : tables_) table.reserve(count);
  for (std::uint32_t id = 0; id < count; ++id) index_descriptor(id);
}

void LshIndex::train_pq() {
  if (!config_.pq.enabled || size_ == 0) return;
  if (!codebook_.trained()) {
    codebook_ = PqCodebook::train(flat_data(), size_, config_.pq.train);
  }
  // Encode everything the codes buffer does not cover yet (all of it on
  // the first call; nothing on later calls, since insert() encodes
  // incrementally once the codebook exists).
  const std::size_t encoded = codes_span().size() / kPqCodeBytes;
  if (encoded < size_) {
    if (!borrowed_codes_.empty()) materialize();
    codes_.resize(size_ * kPqCodeBytes);
    for (std::size_t id = encoded; id < size_; ++id) {
      codebook_.encode(flat_data() + id * kDescriptorDims,
                       codes_.data() + id * kPqCodeBytes);
    }
  }
}

void LshIndex::restore_pq(PqCodebook codebook,
                          std::vector<std::uint8_t> codes) {
  VP_REQUIRE(codebook.trained(), "restore_pq: untrained codebook");
  VP_REQUIRE(codes.size() == size_ * kPqCodeBytes,
             "restore_pq: code bytes do not cover the stored descriptors");
  codebook_ = std::move(codebook);
  codes_ = std::move(codes);
  borrowed_codes_ = {};
}

void LshIndex::restore_pq(PqCodebook codebook,
                          std::span<const std::uint8_t> codes,
                          std::shared_ptr<const void> keepalive) {
  if (keepalive == nullptr || codes.empty()) {
    restore_pq(std::move(codebook),
               std::vector<std::uint8_t>(codes.begin(), codes.end()));
    return;
  }
  VP_REQUIRE(codebook.trained(), "restore_pq: untrained codebook");
  VP_REQUIRE(codes.size() == size_ * kPqCodeBytes,
             "restore_pq: code bytes do not cover the stored descriptors");
  codebook_ = std::move(codebook);
  codes_.clear();
  borrowed_codes_ = codes;
  // Either payload may already borrow from the same mapping; the single
  // keepalive slot pins both (same underlying file).
  keepalive_ = std::move(keepalive);
}

Descriptor LshIndex::descriptor(std::uint32_t id) const {
  VP_REQUIRE(id < size_, "descriptor id out of range");
  Descriptor d;
  std::copy_n(descriptor_ptr(id), kDescriptorDims, d.begin());
  return d;
}

void LshIndex::gather(const LshBucket& bucket, std::size_t table,
                      std::vector<std::uint32_t>& out) const {
  const auto it = tables_[table].find(bucket_key(bucket, table));
  if (it == tables_[table].end()) return;
  out.insert(out.end(), it->second.begin(), it->second.end());
}

void LshIndex::query_into(const Descriptor& descriptor, std::size_t k,
                          Scratch& s, std::vector<Match>& out,
                          const std::uint8_t* query_code) const {
  out.clear();
  auto& candidates = s.candidates;
  candidates.clear();
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    LshBucket bucket = lsh_.bucket(descriptor, t);
    gather(bucket, t, candidates);
    if (config_.multiprobe) {
      for (std::size_t m = 0; m < bucket.size(); ++m) {
        for (const std::int32_t delta : {-1, +1}) {
          bucket[m] += delta;
          gather(bucket, t, candidates);
          bucket[m] -= delta;
        }
      }
    }
    if (candidates.size() > config_.max_candidates) break;
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Cap *before* any ranking work: the distance sweep and heap selection
  // below never see more than max_candidates ids.
  if (candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
    VP_OBS_COUNT("index.candidates_truncated", 1);
  }

  const std::uint8_t* q = descriptor.data();

  // Coarse ADC stage (PQ mode): when the candidate set is larger than
  // the rerank depth, score every candidate's 16-byte code against the
  // per-query table and keep only the top R in deterministic (adc, id)
  // order — those alone pay the exact 128-dim rerank below. Skipped when
  // it cannot prune (the exact stage would rank them all anyway).
  const std::size_t rerank =
      std::max<std::size_t>(config_.pq.rerank_depth, k);
  if (pq_ready() && candidates.size() > rerank) {
    if (query_code != nullptr) {
      // Compact query: its code names 16 centroids, whose precomputed
      // distance rows ARE this query's ADC table — gather instead of
      // recompute (bit-identical by construction).
      codebook_.build_symmetric_adc_table(query_code, s.adc_table);
      VP_OBS_COUNT("index.symmetric_tables", 1);
    } else {
      codebook_.build_adc_table(q, s.adc_table);
    }
    s.adc_dists.resize(candidates.size());
    adc_scan(s.adc_table, codes_span().data(), candidates.data(),
             candidates.size(), s.adc_dists.data());
    VP_OBS_COUNT("index.adc_scans",
                 static_cast<std::uint64_t>(candidates.size()));
    VP_OBS_TRACE_NOTE("index.adc_scans", candidates.size());
    auto& coarse = s.adc_matches;
    coarse.clear();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      coarse.push_back({candidates[i], s.adc_dists[i]});
    }
    select_top_k(coarse, rerank);
    candidates.clear();
    for (const Match& m : coarse) candidates.push_back(m.id);
  }

  auto& matches = s.matches;
  matches.clear();
  for (const std::uint32_t id : candidates) {
    matches.push_back({id, distance2_u8_128(descriptor_ptr(id), q)});
  }
  select_top_k(matches, k);
  out.assign(matches.begin(), matches.end());
}

std::vector<Match> LshIndex::query(const Descriptor& descriptor,
                                   std::size_t k) const {
  Scratch s;
  std::vector<Match> out;
  query_into(descriptor, k, s, out);
  return out;
}

std::vector<std::vector<Match>> LshIndex::query_batch(
    std::span<const Descriptor> queries, std::size_t k,
    ThreadPool* pool) const {
  std::vector<std::vector<Match>> out(queries.size());
  if (queries.empty()) return out;
  if (pool == nullptr) {
    Scratch s;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      query_into(queries[i], k, s, out[i]);
    }
    return out;
  }
  // One scratch per contiguous chunk, one chunk per pool slot; the tables
  // and flat descriptor array are read-only here and every chunk writes a
  // disjoint slice of `out`.
  const std::size_t chunks = std::min<std::size_t>(
      queries.size(), std::max<std::size_t>(1, pool->thread_count()));
  const std::size_t per = (queries.size() + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    Scratch s;
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(queries.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) query_into(queries[i], k, s, out[i]);
  });
  return out;
}

std::vector<std::vector<Match>> LshIndex::query_batch_codes(
    std::span<const Descriptor> queries, std::span<const std::uint8_t> codes,
    std::size_t k, ThreadPool* pool) const {
  if (!pq_ready()) return query_batch(queries, k, pool);
  VP_REQUIRE(codes.size() == queries.size() * kPqCodeBytes,
             "query_batch_codes: codes do not cover the queries");
  std::vector<std::vector<Match>> out(queries.size());
  if (queries.empty()) return out;
  const auto code_of = [&codes](std::size_t i) {
    return codes.data() + i * kPqCodeBytes;
  };
  if (pool == nullptr) {
    Scratch s;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      query_into(queries[i], k, s, out[i], code_of(i));
    }
    return out;
  }
  const std::size_t chunks = std::min<std::size_t>(
      queries.size(), std::max<std::size_t>(1, pool->thread_count()));
  const std::size_t per = (queries.size() + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    Scratch s;
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(queries.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) {
      query_into(queries[i], k, s, out[i], code_of(i));
    }
  });
  return out;
}

std::size_t LshIndex::reference_e2lsh_byte_size() const noexcept {
  const std::size_t per_entry = sizeof(Descriptor) + 2 * sizeof(void*) + 16;
  return size_ * (sizeof(Descriptor) + tables_.size() * per_entry);
}

std::size_t LshIndex::byte_size() const noexcept {
  // Borrowed (mmap'd) payloads count at face value: their pages become
  // resident as queries touch them, and the residency budget is about
  // what a hot shard costs, not what a cold mapping reserves.
  std::size_t bytes = (borrowed_flat_.empty() ? flat_.capacity()
                                              : borrowed_flat_.size()) +
                      codes_span().size() +
                      (codebook_.trained() ? kPqCodebookBytes : 0);
  for (const auto& table : tables_) {
    // Per-node overhead of unordered_map (bucket array + node allocation)
    // plus the id vectors themselves.
    bytes += table.bucket_count() * sizeof(void*);
    for (const auto& [key, ids] : table) {
      (void)key;
      bytes += 48;  // node + key + vector header (typical libstdc++ cost)
      bytes += ids.capacity() * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

}  // namespace vp
