#include "index/lsh_index.hpp"

#include <algorithm>

#include "hashing/murmur3.hpp"
#include "util/error.hpp"

namespace vp {

LshIndex::LshIndex(LshIndexConfig config)
    : config_(config),
      lsh_(config.lsh.tables, config.lsh.projections, config.lsh.width,
           config.lsh.seed),
      tables_(config.lsh.tables) {}

std::uint64_t LshIndex::bucket_key(const LshBucket& bucket,
                                   std::size_t table) const {
  const Bytes enc = E2Lsh::encode_bucket(bucket);
  const auto [h1, h2] =
      murmur3_x64_128(enc, 0xa5a50000u + static_cast<std::uint32_t>(table));
  (void)h2;
  return h1;
}

void LshIndex::reserve(std::size_t n) {
  descriptors_.reserve(n);
  // Bucket occupancy is roughly n ids spread across the map; reserving at
  // that count keeps the rebuild loop from rehashing log(n) times.
  for (auto& table : tables_) table.reserve(n);
}

std::uint32_t LshIndex::insert(const Descriptor& descriptor) {
  VP_REQUIRE(descriptors_.size() < UINT32_MAX, "index full");
  const auto id = static_cast<std::uint32_t>(descriptors_.size());
  descriptors_.push_back(descriptor);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t][bucket_key(lsh_.bucket(descriptor, t), t)].push_back(id);
  }
  return id;
}

void LshIndex::gather(const LshBucket& bucket, std::size_t table,
                      std::vector<std::uint32_t>& out) const {
  const auto it = tables_[table].find(bucket_key(bucket, table));
  if (it == tables_[table].end()) return;
  out.insert(out.end(), it->second.begin(), it->second.end());
}

std::vector<Match> LshIndex::query(const Descriptor& descriptor,
                                   std::size_t k) const {
  std::vector<std::uint32_t> candidates;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    LshBucket bucket = lsh_.bucket(descriptor, t);
    gather(bucket, t, candidates);
    if (config_.multiprobe) {
      for (std::size_t m = 0; m < bucket.size(); ++m) {
        for (const std::int32_t delta : {-1, +1}) {
          bucket[m] += delta;
          gather(bucket, t, candidates);
          bucket[m] -= delta;
        }
      }
    }
    if (candidates.size() > config_.max_candidates) break;
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
  }

  std::vector<Match> matches;
  matches.reserve(candidates.size());
  for (std::uint32_t id : candidates) {
    matches.push_back({id, descriptor_distance2(descriptors_[id], descriptor)});
  }
  const std::size_t keep = std::min(k, matches.size());
  std::partial_sort(matches.begin(), matches.begin() + keep, matches.end(),
                    [](const Match& a, const Match& b) {
                      return a.distance2 < b.distance2;
                    });
  matches.resize(keep);
  return matches;
}

std::size_t LshIndex::reference_e2lsh_byte_size() const noexcept {
  const std::size_t per_entry = sizeof(Descriptor) + 2 * sizeof(void*) + 16;
  return descriptors_.size() * (sizeof(Descriptor) +
                                tables_.size() * per_entry);
}

std::size_t LshIndex::byte_size() const noexcept {
  std::size_t bytes = descriptors_.size() * sizeof(Descriptor);
  for (const auto& table : tables_) {
    // Per-node overhead of unordered_map (bucket array + node allocation)
    // plus the id vectors themselves.
    bytes += table.bucket_count() * sizeof(void*);
    for (const auto& [key, ids] : table) {
      (void)key;
      bytes += 48;  // node + key + vector header (typical libstdc++ cost)
      bytes += ids.capacity() * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

}  // namespace vp
