#include "index/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace vp {

BruteForceMatcher::BruteForceMatcher(std::span<const Descriptor> database,
                                     ThreadPool* pool)
    : database_(database), pool_(pool) {}

Match BruteForceMatcher::nearest(const Descriptor& query) const {
  VP_REQUIRE(!database_.empty(), "brute force: empty database");
  Match best{0, std::numeric_limits<std::uint32_t>::max()};
  for (std::size_t i = 0; i < database_.size(); ++i) {
    const std::uint32_t d = descriptor_distance2(database_[i], query);
    if (d < best.distance2) {
      best = {static_cast<std::uint32_t>(i), d};
    }
  }
  return best;
}

std::vector<Match> BruteForceMatcher::knn(const Descriptor& query,
                                          std::size_t k) const {
  VP_REQUIRE(!database_.empty(), "brute force: empty database");
  k = std::min(k, database_.size());
  std::vector<Match> all(database_.size());
  for (std::size_t i = 0; i < database_.size(); ++i) {
    all[i] = {static_cast<std::uint32_t>(i),
              descriptor_distance2(database_[i], query)};
  }
  std::partial_sort(all.begin(), all.begin() + k, all.end(),
                    [](const Match& a, const Match& b) {
                      return a.distance2 < b.distance2;
                    });
  all.resize(k);
  return all;
}

std::vector<Match> BruteForceMatcher::nearest_batch(
    std::span<const Descriptor> queries) const {
  std::vector<Match> out(queries.size());
  auto work = [&](std::size_t i) { out[i] = nearest(queries[i]); };
  if (pool_ != nullptr) {
    pool_->parallel_for(queries.size(), work);
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) work(i);
  }
  return out;
}

std::vector<std::size_t> random_subselect(std::size_t total, std::size_t count,
                                          Rng& rng) {
  std::vector<std::size_t> ids(total);
  std::iota(ids.begin(), ids.end(), 0);
  if (count >= total) return ids;
  // Partial Fisher-Yates: shuffle only the first `count` slots.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.uniform_u64(total - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

}  // namespace vp
