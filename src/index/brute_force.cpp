#include "index/brute_force.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "features/distance.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vp {

BruteForceMatcher::BruteForceMatcher(std::span<const Descriptor> database,
                                     ThreadPool* pool)
    : database_(database), pool_(pool) {}

Match BruteForceMatcher::nearest(const Descriptor& query) const {
  VP_REQUIRE(!database_.empty(), "brute force: empty database");
  const std::uint8_t* q = query.data();
  Match best{0, std::numeric_limits<std::uint32_t>::max()};
  for (std::size_t i = 0; i < database_.size(); ++i) {
    const std::uint32_t d = distance2_u8_128(database_[i].data(), q);
    if (d < best.distance2) {
      best = {static_cast<std::uint32_t>(i), d};
    }
  }
  return best;
}

void BruteForceMatcher::knn_into(const Descriptor& query, std::size_t k,
                                 std::vector<Match>& scratch,
                                 std::vector<Match>& out) const {
  k = std::min(k, database_.size());
  scratch.resize(database_.size());
  const std::uint8_t* q = query.data();
  for (std::size_t i = 0; i < database_.size(); ++i) {
    scratch[i] = {static_cast<std::uint32_t>(i),
                  distance2_u8_128(database_[i].data(), q)};
  }
  // Partition the k smallest to the front (O(N)), then order only that
  // prefix — the full N log N sort the old path paid is gone.
  const auto kth = scratch.begin() + static_cast<std::ptrdiff_t>(k);
  if (kth != scratch.end()) {
    std::nth_element(scratch.begin(), kth, scratch.end(), match_less);
  }
  std::partial_sort(scratch.begin(), kth, kth, match_less);
  out.assign(scratch.begin(), kth);
}

std::vector<Match> BruteForceMatcher::knn(const Descriptor& query,
                                          std::size_t k) const {
  VP_REQUIRE(!database_.empty(), "brute force: empty database");
  std::vector<Match> scratch;
  std::vector<Match> out;
  knn_into(query, k, scratch, out);
  return out;
}

std::vector<Match> BruteForceMatcher::nearest_batch(
    std::span<const Descriptor> queries) const {
  std::vector<Match> out(queries.size());
  if (queries.empty()) return out;
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = nearest(queries[i]);
  };
  if (pool_ == nullptr) {
    run_range(0, queries.size());
    return out;
  }
  // Contiguous chunks, one per pool slot: far fewer task handoffs than a
  // task per query, and each worker streams the database cache-linearly.
  const std::size_t chunks = std::min<std::size_t>(
      queries.size(), std::max<std::size_t>(1, pool_->thread_count()));
  const std::size_t per = (queries.size() + chunks - 1) / chunks;
  pool_->parallel_for(chunks, [&](std::size_t c) {
    run_range(c * per, std::min(queries.size(), c * per + per));
  });
  return out;
}

std::vector<std::vector<Match>> BruteForceMatcher::knn_batch(
    std::span<const Descriptor> queries, std::size_t k) const {
  std::vector<std::vector<Match>> out(queries.size());
  if (queries.empty()) return out;
  const auto run_range = [&](std::size_t lo, std::size_t hi) {
    std::vector<Match> scratch;  // one N-sized buffer per worker chunk
    for (std::size_t i = lo; i < hi; ++i) {
      knn_into(queries[i], k, scratch, out[i]);
    }
  };
  if (pool_ == nullptr) {
    run_range(0, queries.size());
    return out;
  }
  const std::size_t chunks = std::min<std::size_t>(
      queries.size(), std::max<std::size_t>(1, pool_->thread_count()));
  const std::size_t per = (queries.size() + chunks - 1) / chunks;
  pool_->parallel_for(chunks, [&](std::size_t c) {
    run_range(c * per, std::min(queries.size(), c * per + per));
  });
  return out;
}

std::vector<std::size_t> random_subselect(std::size_t total, std::size_t count,
                                          Rng& rng) {
  std::vector<std::size_t> ids(total);
  std::iota(ids.begin(), ids.end(), 0);
  if (count >= total) return ids;
  // Partial Fisher-Yates: shuffle only the first `count` slots.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.uniform_u64(total - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

}  // namespace vp
