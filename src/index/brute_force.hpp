// Exact nearest-neighbor matcher.
//
// The paper runs BruteForce "on GPU as a SIMD matching"; here the distance
// sweep is blocked across a thread pool, which preserves the semantics
// (exact answers, database resident in memory — the Fig. 15 footprint)
// while running on CPU.
#pragma once

#include <span>
#include <vector>

#include "features/keypoint.hpp"
#include "index/lsh_index.hpp"  // for Match
#include "util/thread_pool.hpp"

namespace vp {

class BruteForceMatcher {
 public:
  /// References `database` for its lifetime (no copy: mirrors the paper's
  /// "loading all database keypoints into memory" accounting).
  explicit BruteForceMatcher(std::span<const Descriptor> database,
                             ThreadPool* pool = nullptr);

  /// Exact nearest neighbor.
  Match nearest(const Descriptor& query) const;

  /// Exact k nearest neighbors, ascending distance.
  std::vector<Match> knn(const Descriptor& query, std::size_t k) const;

  /// Nearest neighbor for each query, parallelized across the pool.
  std::vector<Match> nearest_batch(std::span<const Descriptor> queries) const;

  std::size_t size() const noexcept { return database_.size(); }

  /// Fig. 15 accounting: the whole database resident in memory.
  std::size_t byte_size() const noexcept {
    return database_.size() * sizeof(Descriptor);
  }

 private:
  std::span<const Descriptor> database_;
  ThreadPool* pool_;
};

/// Uniform random subselection of `count` features — the paper's Random-500
/// strawman baseline. Deterministic given `rng`.
std::vector<std::size_t> random_subselect(std::size_t total, std::size_t count,
                                          Rng& rng);

}  // namespace vp
