// Exact nearest-neighbor matcher.
//
// The paper runs BruteForce "on GPU as a SIMD matching"; here the distance
// sweep runs the SIMD CPU kernel (features/distance.hpp) over the flat
// descriptor array and is blocked across a thread pool, which preserves
// the semantics (exact answers, database resident in memory — the Fig. 15
// footprint) while running on CPU.
#pragma once

#include <span>
#include <vector>

#include "features/keypoint.hpp"
#include "index/lsh_index.hpp"  // for Match
#include "util/thread_pool.hpp"

namespace vp {

class BruteForceMatcher {
 public:
  /// References `database` for its lifetime (no copy: mirrors the paper's
  /// "loading all database keypoints into memory" accounting). The vector
  /// of 128-byte arrays is already a contiguous 128-byte-stride buffer,
  /// which is exactly what the SIMD sweep wants.
  explicit BruteForceMatcher(std::span<const Descriptor> database,
                             ThreadPool* pool = nullptr);

  /// Exact nearest neighbor (ties break toward the smaller id).
  Match nearest(const Descriptor& query) const;

  /// Exact k nearest neighbors, ascending (distance, id). Scores every
  /// database entry once, then nth_element + partial_sort of the k prefix
  /// — never a full sort of all N distances.
  std::vector<Match> knn(const Descriptor& query, std::size_t k) const;

  /// Nearest neighbor for each query, blocked across the pool in
  /// contiguous chunks. out[i] == nearest(queries[i]) for any pool size.
  std::vector<Match> nearest_batch(std::span<const Descriptor> queries) const;

  /// knn for each query, blocked across the pool; the per-worker distance
  /// scratch is reused across that worker's queries instead of being
  /// reallocated N times. out[i] == knn(queries[i], k) for any pool size.
  std::vector<std::vector<Match>> knn_batch(std::span<const Descriptor> queries,
                                            std::size_t k) const;

  std::size_t size() const noexcept { return database_.size(); }

  /// Fig. 15 accounting: the whole database resident in memory.
  std::size_t byte_size() const noexcept {
    return database_.size() * sizeof(Descriptor);
  }

 private:
  void knn_into(const Descriptor& query, std::size_t k,
                std::vector<Match>& scratch, std::vector<Match>& out) const;

  std::span<const Descriptor> database_;
  ThreadPool* pool_;
};

/// Uniform random subselection of `count` features — the paper's Random-500
/// strawman baseline. Deterministic given `rng`.
std::vector<std::size_t> random_subselect(std::size_t total, std::size_t count,
                                          Rng& rng);

}  // namespace vp
