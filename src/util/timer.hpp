// Wall-clock timing helper for latency measurements (Fig. 16).
#pragma once

#include <chrono>

namespace vp {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()), lap_(start_) {}

  /// Restart both the total and the lap clock.
  void reset() noexcept { start_ = lap_ = Clock::now(); }

  /// Seconds since construction/reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const noexcept { return seconds() * 1e3; }

  /// Seconds since the previous lap()/reset() (or construction), then
  /// restart the lap clock. The total (seconds()/millis()) is unaffected,
  /// so one Timer can both split a loop into laps and time the whole run.
  double lap() noexcept {
    const auto now = Clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }
  double lap_millis() noexcept { return lap() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace vp
