// Wall-clock timing helper for latency measurements (Fig. 16).
#pragma once

#include <chrono>

namespace vp {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vp
