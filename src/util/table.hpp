// Plain-text table / series printer for the figure-reproduction benches.
// Each bench prints the same rows or series the paper's figure plots, so
// output can be diffed against the paper's reported shape.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vp {

/// Fixed-width console table with a title row; column widths auto-fit.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 3);
  static std::string bytes_human(double bytes);

  /// Render to stdout.
  void print() const;

  /// Render as a string (used by tests).
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a named (x, y) series as two columns — one per CDF / curve in a
/// figure. `points` are printed in order.
void print_series(const std::string& name,
                  const std::vector<std::pair<double, double>>& points,
                  const std::string& x_label, const std::string& y_label,
                  int precision = 4);

}  // namespace vp
