#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace vp::detail {

void assert_fail(const char* expr, std::source_location loc) {
  std::fprintf(stderr, "VP_ASSERT failed: %s at %s:%u (%s)\n", expr,
               loc.file_name(), static_cast<unsigned>(loc.line()),
               loc.function_name());
  std::abort();
}

}  // namespace vp::detail
