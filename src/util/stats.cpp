#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vp {

double percentile(std::span<const double> values, double p) {
  VP_REQUIRE(!values.empty(), "percentile of empty sample");
  VP_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p outside [0,100]");
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double percentile_or(std::span<const double> values, double p,
                     double fallback) {
  if (values.empty()) return fallback;
  return percentile(values, p);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double s = 0;
  for (double x : values) s += x;
  return s / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double s = 0;
  for (double x : values) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = percentile(values, 0);
  s.q1 = percentile(values, 25);
  s.median = percentile(values, 50);
  s.q3 = percentile(values, 75);
  s.max = percentile(values, 100);
  s.mean = mean(values);
  s.stddev = stddev(values);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::span<const double> values)
    : sorted_(values.begin(), values.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  VP_REQUIRE(!sorted_.empty(), "quantile of empty CDF");
  VP_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  return percentile(sorted_, q * 100.0);
}

double EmpiricalCdf::quantile_or(double q, double fallback) const {
  if (sorted_.empty()) return fallback;
  return quantile(q);
}

std::vector<std::pair<double, double>> EmpiricalCdf::sample_points(
    std::size_t n) const {
  std::vector<std::pair<double, double>> pts;
  if (sorted_.empty() || n == 0) return pts;
  pts.reserve(n);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        n == 1 ? hi
               : lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(n - 1);
    pts.emplace_back(x, at(x));
  }
  return pts;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  VP_REQUIRE(bins > 0, "histogram needs at least one bin");
  VP_REQUIRE(hi > lo, "histogram range must be nonempty");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::uint64_t Histogram::count(std::size_t bin) const {
  VP_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  VP_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * (static_cast<double>(bin) + 0.5);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace vp
