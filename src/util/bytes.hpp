// Endian-stable byte serialization used by all wire formats (fingerprint
// uploads, oracle table downloads, location responses) and on-disk blobs.
// All multi-byte integers are little-endian on the wire.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace vp {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u32) byte blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads primitives back out of a byte span; throws DecodeError on
/// truncation so malformed network input can never read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Raw bytes of exact length.
  std::span<const std::uint8_t> raw(std::size_t n) { return take(n); }

  /// Length-prefixed blob.
  std::span<const std::uint8_t> blob() {
    const std::uint32_t n = u32();
    return take(n);
  }

  std::string str() {
    const auto b = blob();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) {
      throw DecodeError{"buffer truncated: need " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining())};
    }
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T>
  T get_le() {
    const auto b = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(b[i]) << (8 * i)));
    }
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace vp
