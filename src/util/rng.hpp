// Deterministic random number generation.
//
// Every stochastic component of VisualPrint (scene synthesis, LSH projection
// sampling, wardriving drift, differential evolution) takes an explicit
// `vp::Rng` so runs are reproducible from a single seed. The generator is
// xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace vp {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the member helpers below are preferred: they are
/// deterministic across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double gaussian() noexcept;

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Derive an independent child generator (for parallel determinism).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_gauss_ = 0.0;
  bool has_cached_gauss_ = false;
};

/// Fisher-Yates shuffle of a random-access range.
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const auto j = rng.uniform_u64(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace vp
