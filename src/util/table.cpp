#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vp {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::bytes_human(double bytes) {
  static constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[u]);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto fit = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  fit(header_);
  for (const auto& r : rows_) fit(r);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << c << std::string(widths[i] - c.size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

void print_series(const std::string& name,
                  const std::vector<std::pair<double, double>>& points,
                  const std::string& x_label, const std::string& y_label,
                  int precision) {
  std::printf("# series: %s  (%s vs %s)\n", name.c_str(), x_label.c_str(),
              y_label.c_str());
  for (const auto& [x, y] : points) {
    std::printf("%.*f\t%.*f\n", precision, x, precision, y);
  }
  std::printf("\n");
}

}  // namespace vp
