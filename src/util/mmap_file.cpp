#include "util/mmap_file.hpp"

#include <fstream>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define VP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define VP_HAVE_MMAP 0
#endif

namespace vp {

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->path_ = path;
#if VP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw IoError{"cannot open for mmap: " + path};
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError{"cannot stat: " + path};
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    file->mapped_ = false;
    return file;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The fd is not needed once mapped; the mapping pins the inode.
  ::close(fd);
  if (addr == MAP_FAILED) throw IoError{"mmap failed: " + path};
  file->data_ = static_cast<const std::uint8_t*>(addr);
  file->size_ = size;
  file->mapped_ = true;
#else
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError{"cannot open for read: " + path};
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  file->fallback_.resize(size);
  f.read(reinterpret_cast<char*>(file->fallback_.data()),
         static_cast<std::streamsize>(size));
  if (!f) throw IoError{"short read: " + path};
  file->data_ = file->fallback_.data();
  file->size_ = size;
  file->mapped_ = false;
#endif
  return file;
}

MappedFile::~MappedFile() {
#if VP_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

}  // namespace vp
