// Read-only memory-mapped file. The mapping is the ownership unit for
// every borrowed-buffer shard load (index/lsh_index.hpp bulk_load): a
// PlaceShard restored from a v4 database keeps a shared_ptr to the
// MappedFile alive through its LshIndex keepalive, so eviction is just
// dropping the last reference — the kernel reclaims the pages, and
// in-flight queries holding an RCU snapshot keep the mapping valid.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace vp {

/// An immutable byte view of a whole file. On POSIX this is a real
/// `mmap(PROT_READ, MAP_PRIVATE)` — resident cost is paged in on first
/// touch and reclaimable under memory pressure; elsewhere it degrades to
/// an ordinary heap read of the file (same interface, eager bytes).
class MappedFile {
 public:
  /// Map `path` read-only. Throws IoError when the file cannot be
  /// opened, stat'd, or mapped. An empty file maps to an empty span.
  static std::shared_ptr<const MappedFile> open(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }
  /// True when backed by a real mapping (false on the heap fallback).
  bool mapped() const noexcept { return mapped_; }

 private:
  MappedFile() = default;

  std::string path_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  ///< owns bytes when !mapped_
};

}  // namespace vp
