// Error handling primitives for VisualPrint.
//
// The library throws `vp::Error` (derived from std::runtime_error) for
// recoverable failures (bad input data, I/O problems, protocol violations)
// and uses VP_ASSERT for programming-contract violations that indicate a
// bug in the library itself.
#pragma once

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>

namespace vp {

/// Base exception for all recoverable VisualPrint failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when decoding a wire message or file fails.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// Raised for filesystem / codec I/O failures.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io: " + what) {}
};

/// Raised when a socket deadline (connect/recv/send timeout) expires.
/// Derives from IoError so transport-agnostic `catch (IoError&)` sites
/// keep working; retry layers catch it specifically to count timeouts.
class TimeoutError : public IoError {
 public:
  explicit TimeoutError(const std::string& what)
      : IoError("timeout: " + what) {}
};

/// Raised when the peer answered with a structured ErrorResponse (the
/// `VPE!` wire message) that is not worth retrying: the transport worked,
/// the remote handler failed.
class RemoteError : public Error {
 public:
  RemoteError(std::uint16_t error_code, const std::string& what)
      : Error("remote: " + what), code_(error_code) {}
  std::uint16_t code() const noexcept { return code_; }

 private:
  std::uint16_t code_;
};

/// Raised when a caller violates a documented API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, std::source_location loc);
}  // namespace detail

}  // namespace vp

/// Contract check that stays on in release builds; failure indicates a bug
/// inside the library (not bad user input) and aborts with a location.
#define VP_ASSERT(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::vp::detail::assert_fail(#expr, std::source_location::current()); \
    }                                                                    \
  } while (false)

/// Precondition check on public API arguments: throws vp::InvalidArgument.
#define VP_REQUIRE(expr, msg)                  \
  do {                                         \
    if (!(expr)) {                             \
      throw ::vp::InvalidArgument{(msg)};      \
    }                                          \
  } while (false)
