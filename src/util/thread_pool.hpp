// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the brute-force matcher (the paper runs it as GPU SIMD; we block
// the distance matrix across threads) and by batch feature extraction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vp {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), partitioned into contiguous blocks across
  /// the pool, and wait for completion. Exceptions propagate to the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace vp
