// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used by the brute-force matcher (the paper runs it as GPU SIMD; we block
// the distance matrix across threads), by the client frame path (blur /
// SIFT / oracle batch scoring), and by batch feature extraction.
//
// Nesting: parallel_for called from one of the pool's own worker threads
// runs the loop inline on that thread instead of re-submitting, so nested
// parallel sections degrade to sequential execution rather than
// deadlocking (all workers blocked waiting on tasks nobody can run).
// submit() from a worker is safe but the caller must not block on the
// future from that worker thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vp {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), partitioned into contiguous blocks across
  /// the pool, and wait for completion. Exceptions propagate to the caller.
  /// Safe to call from a worker thread of this pool: the loop then runs
  /// inline (sequentially) on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace vp
