#include "util/thread_pool.hpp"

#include <algorithm>

namespace vp {
namespace {

/// Pool the calling thread belongs to, if any. Lets parallel_for detect
/// re-entrant calls from its own workers and degrade to an inline loop
/// instead of deadlocking on tasks no free worker can ever run.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  auto fut = pt.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || thread_count() == 1 || on_worker_thread()) {
    // Inline path: trivial loops, single-worker pools, and nested calls
    // from a worker (submitting would deadlock the blocked worker).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t blocks = std::min(n, thread_count());
  const std::size_t per = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futs;
  futs.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();  // rethrows worker exceptions
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace vp
