// Descriptive statistics used across the evaluation benches: empirical CDFs
// (every figure in the paper is a CDF or a boxplot), percentiles, summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vp {

/// Five-number summary plus mean, matching the boxplots of Fig. 6.
struct Summary {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  std::size_t count = 0;
};

/// Compute a summary of `values` (empty input yields an all-zero summary).
Summary summarize(std::span<const double> values);

/// p-th percentile (p in [0,100]) by linear interpolation of the sorted
/// sample. Throws InvalidArgument on empty input or p outside [0,100];
/// use percentile_or when the sample may legitimately be empty.
double percentile(std::span<const double> values, double p);

/// Empty-safe percentile: like `percentile`, but returns `fallback`
/// instead of throwing when `values` is empty. This is the documented safe
/// path for bench/exporter code that aggregates possibly-empty series
/// (e.g. a session where every frame was rejected). p outside [0,100]
/// still throws — that is a caller bug, not a data condition.
double percentile_or(std::span<const double> values, double p,
                     double fallback = 0.0);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> values);

/// Empirical CDF: sorted (value, cumulative fraction) pairs, one per sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::span<const double> values);

  /// Fraction of samples <= x.
  double at(double x) const noexcept;

  /// Inverse CDF (quantile). q in [0,1]. Throws InvalidArgument on an
  /// empty CDF (or q outside [0,1]); see quantile_or for the safe path.
  double quantile(double q) const;

  /// Empty-safe quantile: `fallback` when the CDF holds no samples.
  double quantile_or(double q, double fallback = 0.0) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  bool empty() const noexcept { return sorted_.empty(); }
  const std::vector<double>& sorted_values() const noexcept { return sorted_; }

  /// Evaluate the CDF at `n` evenly spaced points across [min, max] and
  /// return (x, F(x)) rows — the series benches print for each figure.
  std::vector<std::pair<double, double>> sample_points(std::size_t n) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const;
  std::uint64_t total() const noexcept { return total_; }
  double bin_center(std::size_t bin) const;
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Online mean/variance (Welford), for streaming benches.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace vp
