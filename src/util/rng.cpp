#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace vp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection-free-ish: reject only in the biased tail.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::gaussian() noexcept {
  if (has_cached_gauss_) {
    has_cached_gauss_ = false;
    return cached_gauss_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gauss_ = r * std::sin(theta);
  has_cached_gauss_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept {
  // Mix two outputs so the child stream is decorrelated from the parent.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng{a ^ rotl(b, 31) ^ 0xd1b54a32d192ed03ULL};
}

}  // namespace vp
