// Exporters over a MetricsSnapshot: JSON-lines (the format every bench
// already prints, shared via bench_common) and Prometheus-style text (what
// the example server returns for a kStatsRequest scrape).
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vp::obs {

/// One JSON object per line, e.g.
///   {"type":"counter","name":"client.frames","value":42}
///   {"type":"histogram","name":"stage.select","count":3,"sum_ms":1.5,
///    "p50_ms":0.4,"p90_ms":0.9,"p99_ms":0.9,
///    "buckets":[[0.05,1],[0.1,2],["+inf",0]]}
/// A non-empty `bench` tag prefixes every line with "bench":"<tag>", matching
/// the existing bench output convention so downstream parsing stays uniform.
std::string to_json_lines(const MetricsSnapshot& snapshot,
                          std::string_view bench = {});

/// Prometheus text exposition (untyped timestamps-free subset):
/// counters as vp_<name>_total, gauges as vp_<name>, histograms as
/// vp_<name>_ms with cumulative le-labelled buckets, _sum, and _count.
/// Metric names are sanitized to [a-zA-Z0-9_].
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Chrome trace event format (the JSON object variant with "traceEvents"),
/// loadable in Perfetto or chrome://tracing. Each StitchedTrace renders as
/// complete ("ph":"X") events on three named lanes — client (tid 1),
/// link (tid 2), server (tid 3) — under one pid, with per-event args
/// carrying the hex trace_id, frame_id, and place so frames remain
/// correlatable after sorting. Timestamps are microseconds:
/// base_ms + span.start_ms converted to µs.
std::string to_chrome_trace(std::span<const StitchedTrace> traces);

}  // namespace vp::obs
