#include "obs/slow_log.hpp"

#include <algorithm>
#include <cstdio>

namespace vp::obs {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

// Place labels and stage names are code- or config-controlled; escape the
// two characters that could break a JSON string anyway.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string kv_array(const std::vector<std::pair<std::string, double>>& kvs) {
  std::string out = "[";
  for (std::size_t i = 0; i < kvs.size(); ++i) {
    if (i != 0) out += ",";
    out += "[\"" + json_escape(kvs[i].first) + "\"," + fmt(kvs[i].second) + "]";
  }
  return out + "]";
}

}  // namespace

SlowQueryLog::SlowQueryLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  entries_.reserve(capacity_);
}

void SlowQueryLog::record(SlowQuery query) {
  seen_.fetch_add(1, std::memory_order_relaxed);
  // Fast path: once the log is full, anything at or below the published
  // Nth-worst total can't displace an entry. A stale (too-low) threshold
  // only sends a borderline query through the mutex, never drops one
  // that belongs.
  if (query.total_ms <= threshold_ms_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(query));
  } else {
    auto fastest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const SlowQuery& a, const SlowQuery& b) {
          return a.total_ms < b.total_ms;
        });
    if (query.total_ms <= fastest->total_ms) return;
    *fastest = std::move(query);
  }
  if (entries_.size() == capacity_) {
    auto fastest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const SlowQuery& a, const SlowQuery& b) {
          return a.total_ms < b.total_ms;
        });
    threshold_ms_.store(fastest->total_ms, std::memory_order_relaxed);
  }
}

std::vector<SlowQuery> SlowQueryLog::worst() const {
  std::vector<SlowQuery> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const SlowQuery& a, const SlowQuery& b) {
    return a.total_ms > b.total_ms;
  });
  return out;
}

std::string SlowQueryLog::to_json_lines() const {
  const std::vector<SlowQuery> queries = worst();
  std::string out;
  char id[32];
  for (const SlowQuery& q : queries) {
    std::snprintf(id, sizeof id, "%016llx",
                  static_cast<unsigned long long>(q.trace_id));
    out += "{\"type\":\"slow_query\",\"trace_id\":\"";
    out += id;
    out += "\",\"frame_id\":" + std::to_string(q.frame_id);
    out += ",\"place\":\"" + json_escape(q.place) + "\"";
    out += ",\"total_ms\":" + fmt(q.total_ms);
    out += ",\"error_code\":" + std::to_string(q.error_code);
    out += ",\"stages\":" + kv_array(q.stages);
    out += ",\"notes\":" + kv_array(q.notes);
    out += "}\n";
  }
  out += "{\"type\":\"slow_query_summary\",\"retained\":" +
         std::to_string(queries.size()) +
         ",\"capacity\":" + std::to_string(capacity_) +
         ",\"seen\":" + std::to_string(seen()) +
         ",\"threshold_ms\":" + fmt(threshold_ms()) + "}\n";
  return out;
}

}  // namespace vp::obs
