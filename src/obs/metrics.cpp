#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/error.hpp"

namespace vp::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  // Round-robin assignment at first touch spreads threads evenly even when
  // a pool spawns them in a burst; the id is stable for the thread's life.
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return id;
}

void add_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

void Counter::add(std::uint64_t n) noexcept {
  shards_[detail::shard_index()].value.fetch_add(n,
                                                 std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

HistogramBuckets HistogramBuckets::latency_ms() {
  // 0.05 ms doubling 20 times tops out at ~26.2 s — above the slowest
  // phone-scaled SIFT stage the simulator produces.
  return exponential(0.05, 2.0, 20);
}

HistogramBuckets HistogramBuckets::exponential(double lo, double factor,
                                               std::size_t n) {
  VP_REQUIRE(lo > 0 && factor > 1 && n > 0,
             "exponential buckets need lo > 0, factor > 1, n > 0");
  HistogramBuckets b;
  b.upper_bounds.reserve(n);
  double bound = lo;
  for (std::size_t i = 0; i < n; ++i) {
    b.upper_bounds.push_back(bound);
    bound *= factor;
  }
  return b;
}

LatencyHistogram::LatencyHistogram(HistogramBuckets buckets)
    : bounds_(std::move(buckets.upper_bounds)) {
  VP_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  VP_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
  shards_.reserve(kMetricShards);
  for (std::size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void LatencyHistogram::record(double ms) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), ms);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = *shards_[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::add_double(shard.sum, ms);
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += shard->counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t LatencyHistogram::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& c : shard->counts) {
      total += c.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double LatencyHistogram::total_sum() const noexcept {
  double total = 0;
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::percentile(double p) const {
  const auto counts = bucket_counts();
  return estimate_percentile(bounds_, counts, p);
}

void LatencyHistogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
}

double estimate_percentile(std::span<const double> bounds,
                           std::span<const std::uint64_t> counts, double p) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double exact = (p / 100.0) * static_cast<double>(total);
  const auto rank =
      std::min(total, std::max<std::uint64_t>(
                          1, static_cast<std::uint64_t>(std::ceil(exact))));

  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[b];
    if (cumulative < rank) continue;
    if (b >= bounds.size()) {
      // +Inf bucket: no finite upper edge to interpolate toward; report
      // the last finite bound as the (under-)estimate.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    const double frac = static_cast<double>(rank - before) /
                        static_cast<double>(counts[b]);
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0.0 : bounds.back();  // unreachable
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  return histogram(name, HistogramBuckets::latency_ms());
}

LatencyHistogram& Registry::histogram(std::string_view name,
                                      const HistogramBuckets& buckets) {
  {
    std::shared_lock lock(mutex_);
    if (const auto it = histograms_.find(name); it != histograms_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<LatencyHistogram>(buckets);
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::shared_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.upper_bounds = h->upper_bounds();
    s.counts = h->bucket_counts();
    for (std::uint64_t c : s.counts) s.count += c;
    s.sum = h->total_sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset_values() {
  std::shared_lock lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->set(0.0);
  for (const auto& [name, h] : histograms_) h->reset();
}

void Registry::clear() {
  std::unique_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace vp::obs
