// Process-wide metrics registry: counters, gauges, and fixed-bucket latency
// histograms with lock-free thread-sharded updates, safe under the borrowed
// ThreadPool that drives the client frame path.
//
// Updates never take a lock: each metric keeps a small power-of-two array of
// cache-line-aligned shards and a thread hashes to a fixed shard for its
// lifetime, so concurrent writers from pool workers touch disjoint lines.
// Reads (snapshot/export) sum the shards; they are monotonic but not an
// atomic cross-metric cut, which is fine for telemetry.
//
// Instrumentation call sites use the VP_OBS_* macros below, which compile to
// nothing unless the build defines VP_OBS_ENABLED=1 (CMake option VP_OBS).
// The library itself always builds so exporters, tests, and the stats wire
// message work in either configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vp::obs {

/// Number of per-metric shards. Power of two; large enough that the handful
/// of pool workers in this codebase rarely collide on a line.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// Stable per-thread shard index in [0, kMetricShards).
std::size_t shard_index() noexcept;

/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS fallback).
void add_double(std::atomic<double>& target, double delta) noexcept;
}  // namespace detail

/// Monotonic event counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins instantaneous value (e.g. a configured bandwidth).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::add_double(value_, delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout for a LatencyHistogram: strictly increasing finite upper
/// bounds; an implicit +Inf bucket catches everything above the last bound.
struct HistogramBuckets {
  std::vector<double> upper_bounds;

  /// Default latency layout: 0.05 ms .. ~26 s, geometric (x2 per bucket).
  /// Covers sub-ms span costs through multi-second phone-scaled SIFT.
  static HistogramBuckets latency_ms();

  /// `n` bounds starting at `lo`, each `factor` times the previous.
  static HistogramBuckets exponential(double lo, double factor, std::size_t n);
};

/// Fixed-bucket histogram of millisecond latencies.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(HistogramBuckets buckets);
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(double ms) noexcept;

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Per-bucket counts, size upper_bounds().size() + 1 (last is +Inf).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t total_count() const noexcept;
  double total_sum() const noexcept;

  /// Estimated p-th percentile (p in [0,100]) by linear interpolation
  /// within the bucket holding the target rank. Empty-safe: returns 0 for
  /// an empty histogram. Cross-checked against vp::percentile in tests.
  double percentile(double p) const;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;  // bounds + 1 (+Inf)
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Point-in-time copies of every registered metric, for the exporters.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0;
};
struct HistogramSample {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;  ///< size upper_bounds + 1 (+Inf last)
  std::uint64_t count = 0;
  double sum = 0;
};
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Percentile estimate over (bounds, counts) as produced by a
/// HistogramSample: target rank walked through cumulative counts, linearly
/// interpolated within its bucket. Empty-safe (0 when total count is 0);
/// a rank landing in the +Inf bucket reports the last finite bound.
double estimate_percentile(std::span<const double> bounds,
                           std::span<const std::uint64_t> counts, double p);

/// Name -> metric registry. Lookup takes a shared lock and only the first
/// use of a name takes the exclusive lock, so steady-state instrumentation
/// is uncontended. Returned references stay valid for the registry's life.
class Registry {
 public:
  /// The process-wide instance every VP_OBS_* macro targets.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First creation fixes the bucket layout; later calls (with or without
  /// buckets) return the existing histogram unchanged.
  LatencyHistogram& histogram(std::string_view name);
  LatencyHistogram& histogram(std::string_view name,
                              const HistogramBuckets& buckets);

  /// Metrics sorted by name (deterministic export order).
  MetricsSnapshot snapshot() const;

  /// Zero every metric's state, keeping registrations. Benches/tests call
  /// this between phases; live readers may observe partial zeros.
  void reset_values();

  /// Drop every registration. Invalidates outstanding references — only
  /// for test isolation, never while instrumented code may run.
  void clear();

 private:
  Registry() = default;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace vp::obs

#ifndef VP_OBS_ENABLED
#define VP_OBS_ENABLED 0
#endif

// Call-site instrumentation. These are the only pieces that compile out
// under VP_OBS=OFF; the obs library itself is always available.
#if VP_OBS_ENABLED
#define VP_OBS_COUNT(name, n)                 \
  ::vp::obs::Registry::global().counter(name).add( \
      static_cast<std::uint64_t>(n))
#define VP_OBS_GAUGE_SET(name, v) \
  ::vp::obs::Registry::global().gauge(name).set(v)
#define VP_OBS_OBSERVE(name, ms) \
  ::vp::obs::Registry::global().histogram(name).record(ms)
#else
#define VP_OBS_COUNT(name, n) static_cast<void>(0)
#define VP_OBS_GAUGE_SET(name, v) static_cast<void>(0)
#define VP_OBS_OBSERVE(name, ms) static_cast<void>(0)
#endif
