#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

namespace vp::obs {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t next_trace_id() noexcept {
  // Seeded from the clock once so concurrent processes (client + server on
  // one host) draw from different streams; the atomic counter keeps ids
  // unique within the process.
  static std::atomic<std::uint64_t> counter{static_cast<std::uint64_t>(
      Clock::now().time_since_epoch().count())};
  const std::uint64_t id =
      splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

void StageTimings::add(std::string_view stage, double ms) {
  for (auto& [name, total] : entries_) {
    if (name == stage) {
      total += ms;
      return;
    }
  }
  entries_.emplace_back(std::string(stage), ms);
}

bool StageTimings::contains(std::string_view stage) const noexcept {
  for (const auto& [name, total] : entries_) {
    if (name == stage) return true;
  }
  return false;
}

double StageTimings::value(std::string_view stage) const noexcept {
  for (const auto& [name, total] : entries_) {
    if (name == stage) return total;
  }
  return 0.0;
}

void StageTimings::scale(double factor) noexcept {
  for (auto& [name, total] : entries_) total *= factor;
}

namespace detail {

TraceState*& active_trace() noexcept {
  thread_local TraceState* current = nullptr;
  return current;
}

}  // namespace detail

void trace_note(const char* key, double value) {
  detail::TraceState* state = detail::active_trace();
  if (state == nullptr) return;
  state->notes.emplace_back(key, value);
}

const std::vector<SpanRecord>* active_trace_records() noexcept {
  detail::TraceState* state = detail::active_trace();
  return state == nullptr ? nullptr : &state->records;
}

double active_trace_ms_at(Clock::time_point at) noexcept {
  detail::TraceState* state = detail::active_trace();
  return state == nullptr ? 0.0 : ms_between(state->epoch, at);
}

std::vector<StitchedSpan> to_stitched_spans(std::span<const SpanRecord> records,
                                            double scale, double offset_ms) {
  std::vector<StitchedSpan> out;
  out.reserve(records.size());
  for (const SpanRecord& rec : records) {
    StitchedSpan s;
    s.name = rec.name;
    s.parent = rec.parent;
    s.start_ms = offset_ms + rec.start_ms * scale;
    s.duration_ms = rec.duration_ms * scale;
    out.push_back(std::move(s));
  }
  return out;
}

FrameTrace::FrameTrace() : previous_(detail::active_trace()) {
  state_.epoch = Clock::now();
  detail::active_trace() = &state_;
}

FrameTrace::~FrameTrace() { detail::active_trace() = previous_; }

StageTimings FrameTrace::stage_timings() const {
  StageTimings timings;
  for (std::size_t i = 0; i < state_.records.size(); ++i) {
    const bool still_open =
        std::find(state_.open.begin(), state_.open.end(),
                  static_cast<std::int32_t>(i)) != state_.open.end();
    if (still_open) continue;
    timings.add(state_.records[i].name, state_.records[i].duration_ms);
  }
  return timings;
}

Span::Span(const char* name)
    : histogram_(&Registry::global().histogram(std::string("stage.") + name)),
      start_(Clock::now()),
      trace_(detail::active_trace()) {
  if (trace_ == nullptr) return;
  index_ = static_cast<std::int32_t>(trace_->records.size());
  SpanRecord rec;
  rec.name = name;
  rec.parent = trace_->open.empty() ? -1 : trace_->open.back();
  rec.depth = static_cast<std::int32_t>(trace_->open.size());
  rec.start_ms = ms_between(trace_->epoch, start_);
  trace_->records.push_back(rec);
  trace_->open.push_back(index_);
}

Span::~Span() {
  const double ms = ms_between(start_, Clock::now());
  histogram_->record(ms);
  if (index_ < 0) return;
  trace_->records[static_cast<std::size_t>(index_)].duration_ms = ms;
  trace_->open.pop_back();
}

}  // namespace vp::obs
