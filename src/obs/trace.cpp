#include "obs/trace.hpp"

#include <algorithm>

namespace vp::obs {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

void StageTimings::add(std::string_view stage, double ms) {
  for (auto& [name, total] : entries_) {
    if (name == stage) {
      total += ms;
      return;
    }
  }
  entries_.emplace_back(std::string(stage), ms);
}

bool StageTimings::contains(std::string_view stage) const noexcept {
  for (const auto& [name, total] : entries_) {
    if (name == stage) return true;
  }
  return false;
}

double StageTimings::value(std::string_view stage) const noexcept {
  for (const auto& [name, total] : entries_) {
    if (name == stage) return total;
  }
  return 0.0;
}

void StageTimings::scale(double factor) noexcept {
  for (auto& [name, total] : entries_) total *= factor;
}

namespace detail {

TraceState*& active_trace() noexcept {
  thread_local TraceState* current = nullptr;
  return current;
}

}  // namespace detail

FrameTrace::FrameTrace() : previous_(detail::active_trace()) {
  state_.epoch = Clock::now();
  detail::active_trace() = &state_;
}

FrameTrace::~FrameTrace() { detail::active_trace() = previous_; }

StageTimings FrameTrace::stage_timings() const {
  StageTimings timings;
  for (std::size_t i = 0; i < state_.records.size(); ++i) {
    const bool still_open =
        std::find(state_.open.begin(), state_.open.end(),
                  static_cast<std::int32_t>(i)) != state_.open.end();
    if (still_open) continue;
    timings.add(state_.records[i].name, state_.records[i].duration_ms);
  }
  return timings;
}

Span::Span(const char* name)
    : histogram_(&Registry::global().histogram(std::string("stage.") + name)),
      start_(Clock::now()),
      trace_(detail::active_trace()) {
  if (trace_ == nullptr) return;
  index_ = static_cast<std::int32_t>(trace_->records.size());
  SpanRecord rec;
  rec.name = name;
  rec.parent = trace_->open.empty() ? -1 : trace_->open.back();
  rec.depth = static_cast<std::int32_t>(trace_->open.size());
  rec.start_ms = ms_between(trace_->epoch, start_);
  trace_->records.push_back(rec);
  trace_->open.push_back(index_);
}

Span::~Span() {
  const double ms = ms_between(start_, Clock::now());
  histogram_->record(ms);
  if (index_ < 0) return;
  trace_->records[static_cast<std::size_t>(index_)].duration_ms = ms;
  trace_->open.pop_back();
}

}  // namespace vp::obs
