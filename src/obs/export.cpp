#include "obs/export.hpp"

#include <cctype>
#include <cstdio>

namespace vp::obs {
namespace {

/// Shortest round-trippable-enough representation; %.10g keeps the golden
/// tests stable ("0.05" stays "0.05", never "0.050000000000000003").
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Metric names are code-controlled ("stage.sift.pyramid"); escape the two
/// JSON-active characters anyway so a stray name cannot corrupt the stream.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string line_prefix(std::string_view bench) {
  std::string p = "{";
  if (!bench.empty()) {
    p += "\"bench\":\"" + json_escape(bench) + "\",";
  }
  return p;
}

std::string prom_name(std::string_view name) {
  std::string out = "vp_";
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_json_lines(const MetricsSnapshot& snapshot,
                          std::string_view bench) {
  const std::string prefix = line_prefix(bench);
  std::string out;
  for (const auto& c : snapshot.counters) {
    out += prefix + "\"type\":\"counter\",\"name\":\"" + json_escape(c.name) +
           "\",\"value\":" + std::to_string(c.value) + "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += prefix + "\"type\":\"gauge\",\"name\":\"" + json_escape(g.name) +
           "\",\"value\":" + fmt(g.value) + "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += prefix + "\"type\":\"histogram\",\"name\":\"" +
           json_escape(h.name) + "\",\"count\":" + std::to_string(h.count) +
           ",\"sum_ms\":" + fmt(h.sum);
    for (const double p : {50.0, 90.0, 99.0}) {
      out += ",\"p" + std::to_string(static_cast<int>(p)) +
             "_ms\":" + fmt(estimate_percentile(h.upper_bounds, h.counts, p));
    }
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b != 0) out += ",";
      out += "[";
      out += b < h.upper_bounds.size() ? fmt(h.upper_bounds[b]) : "\"+inf\"";
      out += "," + std::to_string(h.counts[b]) + "]";
    }
    out += "]}\n";
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = prom_name(c.name) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + fmt(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = prom_name(h.name) + "_ms";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.upper_bounds.size() ? fmt(h.upper_bounds[b]) : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + fmt(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

namespace {

/// Microsecond timestamp with sub-µs precision preserved (%.3f keeps the
/// output stable and chrome://tracing accepts fractional ts).
std::string usec(double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ms * 1000.0);
  return buf;
}

constexpr int kClientLane = 1;
constexpr int kLinkLane = 2;
constexpr int kServerLane = 3;

void append_lane(std::string& out, const StitchedTrace& trace, int lane,
                 std::span<const StitchedSpan> spans) {
  char id[32];
  std::snprintf(id, sizeof id, "%016llx",
                static_cast<unsigned long long>(trace.trace_id));
  for (const StitchedSpan& s : spans) {
    if (!out.empty()) out += ",\n";
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(lane);
    out += ",\"name\":\"" + json_escape(s.name) + "\"";
    out += ",\"ts\":" + usec(trace.base_ms + s.start_ms);
    out += ",\"dur\":" + usec(s.duration_ms);
    out += ",\"args\":{\"trace_id\":\"";
    out += id;
    out += "\",\"frame_id\":" + std::to_string(trace.frame_id);
    out += ",\"place\":\"" + json_escape(trace.place) + "\"}}";
  }
}

}  // namespace

std::string to_chrome_trace(std::span<const StitchedTrace> traces) {
  std::string events;
  constexpr std::pair<int, const char*> kLanes[] = {
      {kClientLane, "client"}, {kLinkLane, "link"}, {kServerLane, "server"}};
  for (const auto& [lane, label] : kLanes) {
    if (!events.empty()) events += ",\n";
    events += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane) +
              ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
              std::string(label) + "\"}}";
  }
  for (const StitchedTrace& trace : traces) {
    append_lane(events, trace, kClientLane, trace.client);
    append_lane(events, trace, kLinkLane, trace.link);
    append_lane(events, trace, kServerLane, trace.server);
  }
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" + events + "\n]}\n";
}

}  // namespace vp::obs
