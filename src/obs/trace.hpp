// Scoped tracing spans: an RAII Span times a named pipeline stage on
// steady_clock and records the duration into the registry histogram
// "stage.<name>". While a FrameTrace is active on the current thread, each
// Span additionally appends a SpanRecord (with parent/child nesting) to the
// per-frame trace, which the session simulator flattens into a per-frame
// stage-timing record (SessionFrame::stages).
//
// Threading: a FrameTrace is thread-local — spans opened on ThreadPool
// workers while the coordinating thread holds a trace go histogram-only
// instead of racing on the trace buffer. Histograms are lock-free, so spans
// are safe on any thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace vp::obs {

/// One completed (or still-open) span inside a FrameTrace.
struct SpanRecord {
  const char* name = "";     ///< static-storage stage name
  std::int32_t parent = -1;  ///< index of enclosing span; -1 for roots
  std::int32_t depth = 0;    ///< nesting depth (roots are 0)
  double start_ms = 0;       ///< offset from the trace epoch
  double duration_ms = 0;    ///< 0 until the span closes
};

/// Ordered (stage name, milliseconds) record assembled from a trace.
/// Repeated stage names accumulate. Lookup is linear — a frame has on the
/// order of ten stages.
class StageTimings {
 public:
  void add(std::string_view stage, double ms);
  bool contains(std::string_view stage) const noexcept;
  /// Milliseconds recorded for `stage`; 0 when absent.
  double value(std::string_view stage) const noexcept;
  /// Multiply every entry (host -> phone latency scaling).
  void scale(double factor) noexcept;
  const std::vector<std::pair<std::string, double>>& entries() const noexcept {
    return entries_;
  }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

namespace detail {
struct TraceState {
  std::chrono::steady_clock::time_point epoch;
  std::vector<SpanRecord> records;
  std::vector<std::int32_t> open;  ///< indices of currently open spans
};
/// The thread's active trace, or nullptr.
TraceState*& active_trace() noexcept;
}  // namespace detail

/// Collects every Span opened on this thread between construction and
/// destruction. Nests: constructing a second FrameTrace shadows the first
/// until it is destroyed (destruction must be LIFO, i.e. scoped).
class FrameTrace {
 public:
  FrameTrace();
  ~FrameTrace();
  FrameTrace(const FrameTrace&) = delete;
  FrameTrace& operator=(const FrameTrace&) = delete;

  const std::vector<SpanRecord>& records() const noexcept {
    return state_.records;
  }

  /// Flatten into per-stage totals, in first-seen order. Open spans are
  /// skipped (their duration is not known yet).
  StageTimings stage_timings() const;

 private:
  detail::TraceState state_;
  detail::TraceState* previous_ = nullptr;
};

/// RAII stage timer. Always records into the "stage.<name>" histogram of
/// the global registry; additionally appends to the thread's active
/// FrameTrace, if any. `name` must have static storage duration (the
/// VP_OBS_SPAN macro passes string literals).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  detail::TraceState* trace_;  ///< trace active at construction, if any
  std::int32_t index_ = -1;    ///< slot in that trace; -1 if none
};

}  // namespace vp::obs

#if VP_OBS_ENABLED
#define VP_OBS_SPAN_CONCAT2_(a, b) a##b
#define VP_OBS_SPAN_CONCAT_(a, b) VP_OBS_SPAN_CONCAT2_(a, b)
#define VP_OBS_SPAN(name) \
  const ::vp::obs::Span VP_OBS_SPAN_CONCAT_(vp_obs_span_, __LINE__)(name)
#else
#define VP_OBS_SPAN(name) static_cast<void>(0)
#endif
