// Scoped tracing spans: an RAII Span times a named pipeline stage on
// steady_clock and records the duration into the registry histogram
// "stage.<name>". While a FrameTrace is active on the current thread, each
// Span additionally appends a SpanRecord (with parent/child nesting) to the
// per-frame trace, which the session simulator flattens into a per-frame
// stage-timing record (SessionFrame::stages).
//
// Threading: a FrameTrace is thread-local — spans opened on ThreadPool
// workers while the coordinating thread holds a trace go histogram-only
// instead of racing on the trace buffer. Histograms are lock-free, so spans
// are safe on any thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace vp::obs {

/// One completed (or still-open) span inside a FrameTrace.
struct SpanRecord {
  const char* name = "";     ///< static-storage stage name
  std::int32_t parent = -1;  ///< index of enclosing span; -1 for roots
  std::int32_t depth = 0;    ///< nesting depth (roots are 0)
  double start_ms = 0;       ///< offset from the trace epoch
  double duration_ms = 0;    ///< 0 until the span closes
};

/// Per-frame trace context carried across the wire (FingerprintQuery v3):
/// a nonzero id correlates client, link, and server records of the same
/// frame; the sampled bit asks the server to echo its span block back.
inline constexpr std::uint8_t kTraceSampled = 0x01;

/// Fresh process-unique nonzero trace id (splitmix64 over an atomic
/// counter seeded from the clock at first use). Deterministic callers
/// (the session simulator) derive ids from their own seeds instead.
std::uint64_t next_trace_id() noexcept;

/// Ordered (stage name, milliseconds) record assembled from a trace.
/// Repeated stage names accumulate. Lookup is linear — a frame has on the
/// order of ten stages.
class StageTimings {
 public:
  void add(std::string_view stage, double ms);
  bool contains(std::string_view stage) const noexcept;
  /// Milliseconds recorded for `stage`; 0 when absent.
  double value(std::string_view stage) const noexcept;
  /// Multiply every entry (host -> phone latency scaling).
  void scale(double factor) noexcept;
  const std::vector<std::pair<std::string, double>>& entries() const noexcept {
    return entries_;
  }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

namespace detail {
struct TraceState {
  std::chrono::steady_clock::time_point epoch;
  std::vector<SpanRecord> records;
  std::vector<std::int32_t> open;  ///< indices of currently open spans
  /// Named numeric annotations (candidate counts, scan sizes) attached by
  /// trace_note(). Keys have static storage; repeated keys accumulate at
  /// read time, not append time.
  std::vector<std::pair<const char*, double>> notes;
};
/// The thread's active trace, or nullptr.
TraceState*& active_trace() noexcept;
}  // namespace detail

/// Attach a named numeric annotation to the thread's active FrameTrace
/// (no-op without one). `key` must have static storage duration — the
/// VP_OBS_TRACE_NOTE macro passes string literals. Like spans, notes made
/// on ThreadPool workers while the coordinating thread holds the trace are
/// dropped rather than raced.
void trace_note(const char* key, double value);

/// Span records of the thread's active FrameTrace; nullptr when none.
/// Borrowed view — valid only while the trace stays alive and no further
/// spans open (callers copy immediately).
const std::vector<SpanRecord>* active_trace_records() noexcept;

/// Milliseconds from the active trace's epoch to `at` (0 when no trace is
/// active) — lets transports place wire events on the trace's timeline.
double active_trace_ms_at(std::chrono::steady_clock::time_point at) noexcept;

/// Collects every Span opened on this thread between construction and
/// destruction. Nests: constructing a second FrameTrace shadows the first
/// until it is destroyed (destruction must be LIFO, i.e. scoped).
class FrameTrace {
 public:
  FrameTrace();
  ~FrameTrace();
  FrameTrace(const FrameTrace&) = delete;
  FrameTrace& operator=(const FrameTrace&) = delete;

  const std::vector<SpanRecord>& records() const noexcept {
    return state_.records;
  }

  /// Annotations attached via trace_note() while this trace was active.
  const std::vector<std::pair<const char*, double>>& notes() const noexcept {
    return state_.notes;
  }

  /// Flatten into per-stage totals, in first-seen order. Open spans are
  /// skipped (their duration is not known yet).
  StageTimings stage_timings() const;

 private:
  detail::TraceState state_;
  detail::TraceState* previous_ = nullptr;
};

/// RAII stage timer. Always records into the "stage.<name>" histogram of
/// the global registry; additionally appends to the thread's active
/// FrameTrace, if any. `name` must have static storage duration (the
/// VP_OBS_SPAN macro passes string literals).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  detail::TraceState* trace_;  ///< trace active at construction, if any
  std::int32_t index_ = -1;    ///< slot in that trace; -1 if none
};

// ---------------------------------------------------------------------------
// Stitched cross-process traces
//
// One frame's journey through the offload pipeline, assembled on the
// client from three sources: its own FrameTrace, the (simulated or
// measured) link timing, and the server span block echoed back on a
// LocationResponse v3. Rendered by obs::to_chrome_trace (export.hpp) as
// client/link/server lanes loadable in Perfetto or chrome://tracing.

/// One span inside a stitched lane. Times are milliseconds relative to
/// the owning StitchedTrace's base; `parent` indexes within the same lane.
struct StitchedSpan {
  std::string name;
  std::int32_t parent = -1;
  double start_ms = 0;
  double duration_ms = 0;
};

/// One frame's stitched, cross-process trace.
struct StitchedTrace {
  std::uint64_t trace_id = 0;
  std::uint32_t frame_id = 0;
  std::string place;       ///< place that answered (response place)
  double base_ms = 0;      ///< session-relative start of this frame's trace
  std::vector<StitchedSpan> client;  ///< phone-side pipeline spans
  std::vector<StitchedSpan> link;    ///< uplink/downlink or queue/transfer
  std::vector<StitchedSpan> server;  ///< echoed server span block
};

/// Copy a FrameTrace's records into stitched spans: `scale` multiplies
/// start/duration (host→phone latency modeling), `offset_ms` shifts every
/// start. Spans still open at copy time carry their (zero) duration.
std::vector<StitchedSpan> to_stitched_spans(std::span<const SpanRecord> records,
                                            double scale = 1.0,
                                            double offset_ms = 0.0);

}  // namespace vp::obs

#if VP_OBS_ENABLED
#define VP_OBS_SPAN_CONCAT2_(a, b) a##b
#define VP_OBS_SPAN_CONCAT_(a, b) VP_OBS_SPAN_CONCAT2_(a, b)
#define VP_OBS_SPAN(name) \
  const ::vp::obs::Span VP_OBS_SPAN_CONCAT_(vp_obs_span_, __LINE__)(name)
#define VP_OBS_TRACE_NOTE(key, v) \
  ::vp::obs::trace_note(key, static_cast<double>(v))
#else
#define VP_OBS_SPAN(name) static_cast<void>(0)
#define VP_OBS_TRACE_NOTE(key, v) static_cast<void>(0)
#endif
