// Lock-light worst-N slow-query log for the server. The handler records
// every query's total milliseconds plus its stage breakdown and trace
// annotations; the log keeps only the N slowest. The common case — a
// query faster than the current Nth-worst — is rejected by a single
// relaxed atomic load without taking the mutex, so steady-state serving
// pays one load per query once the ring is warm. Insertions (rare by
// construction) take a short mutex to swap out the fastest resident
// entry and republish the admission threshold.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vp::obs {

/// One retained slow query.
struct SlowQuery {
  std::uint64_t trace_id = 0;  ///< 0 when the client sent no trace context
  std::uint32_t frame_id = 0;
  std::string place;
  double total_ms = 0;
  std::uint16_t error_code = 0;  ///< wire ErrorResponse code; 0 = success
  /// Per-stage milliseconds in first-seen order (from FrameTrace).
  std::vector<std::pair<std::string, double>> stages;
  /// Numeric annotations (candidate counts, ADC scans) from trace notes.
  std::vector<std::pair<std::string, double>> notes;
};

/// Fixed-capacity worst-N log. Thread-safe; `record` is wait-free for
/// queries below the admission threshold once the log is full.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::size_t capacity = 32);

  /// Consider one completed query for retention.
  void record(SlowQuery query);

  /// Retained queries, slowest first.
  std::vector<SlowQuery> worst() const;

  /// Total queries offered to `record` (retained or not).
  std::uint64_t seen() const noexcept {
    return seen_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Current admission threshold: queries at or below this total are
  /// dropped without locking. 0 until the log fills.
  double threshold_ms() const noexcept {
    return threshold_ms_.load(std::memory_order_relaxed);
  }

  /// Render as JSON lines: one `{"type":"slow_query",...}` object per
  /// retained query (slowest first) followed by a summary line.
  std::string to_json_lines() const;

 private:
  std::size_t capacity_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<double> threshold_ms_{0.0};
  mutable std::mutex mutex_;
  std::vector<SlowQuery> entries_;  ///< unordered; sorted on read
};

}  // namespace vp::obs
