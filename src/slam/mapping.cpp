#include "slam/mapping.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

/// Extract one snapshot's keypoint→3D mappings (pure per-snapshot work).
std::vector<KeypointMapping> extract_one(const Snapshot& snap,
                                         const Pose& pose, std::size_t index,
                                         const MappingConfig& cfg,
                                         const SiftConfig& sift) {
  std::vector<KeypointMapping> out;
  const auto features = sift_detect(snap.image, sift);
  out.reserve(features.size());
  for (const auto& f : features) {
    // Depth pixel covering this keypoint.
    const int dx = std::clamp(
        static_cast<int>(f.keypoint.x) / snap.depth_downscale, 0,
        snap.depth.width() - 1);
    const int dy = std::clamp(
        static_cast<int>(f.keypoint.y) / snap.depth_downscale, 0,
        snap.depth.height() - 1);
    const float t = snap.depth(dx, dy);
    if (t <= 0.0f || t > cfg.max_depth) continue;
    // Back-project the keypoint's own pixel (full resolution) with the
    // depth sampled from the coarser IR map.
    const Vec3 ray = snap.intrinsics.pixel_ray({f.keypoint.x, f.keypoint.y});
    KeypointMapping m;
    m.feature = f;
    m.world_position = pose.to_world(ray * static_cast<double>(t));
    m.snapshot = static_cast<std::uint32_t>(index);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

std::vector<KeypointMapping> extract_mappings(
    std::span<const Snapshot> snapshots, std::span<const Pose> poses,
    const MappingConfig& cfg) {
  VP_REQUIRE(snapshots.size() == poses.size(),
             "extract_mappings: pose count mismatch");

  // With a pool, fan out over snapshots (the coarse grain: one SIFT run
  // each) and disable intra-SIFT threading — the outer fan-out already
  // fills the pool. Per-snapshot results merge in snapshot order, so the
  // output is identical to the sequential path.
  std::vector<std::vector<KeypointMapping>> per_snap(snapshots.size());
  if (cfg.pool != nullptr && snapshots.size() > 1) {
    SiftConfig inner = cfg.sift;
    inner.pool = nullptr;
    cfg.pool->parallel_for(snapshots.size(), [&](std::size_t i) {
      per_snap[i] = extract_one(snapshots[i], poses[i], i, cfg, inner);
    });
  } else {
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      per_snap[i] = extract_one(snapshots[i], poses[i], i, cfg, cfg.sift);
    }
  }

  std::vector<KeypointMapping> mappings;
  for (auto& snap_mappings : per_snap) {
    mappings.insert(mappings.end(),
                    std::make_move_iterator(snap_mappings.begin()),
                    std::make_move_iterator(snap_mappings.end()));
  }
  return mappings;
}

PlaceMappings extract_place_mappings(std::string place,
                                     std::span<const Snapshot> snapshots,
                                     std::span<const Pose> poses,
                                     const MappingConfig& config) {
  return {std::move(place), extract_mappings(snapshots, poses, config)};
}

}  // namespace vp
