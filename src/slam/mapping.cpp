#include "slam/mapping.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vp {

std::vector<KeypointMapping> extract_mappings(
    std::span<const Snapshot> snapshots, std::span<const Pose> poses,
    const MappingConfig& cfg) {
  VP_REQUIRE(snapshots.size() == poses.size(),
             "extract_mappings: pose count mismatch");
  std::vector<KeypointMapping> mappings;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const auto& snap = snapshots[i];
    const auto features = sift_detect(snap.image, cfg.sift);
    for (const auto& f : features) {
      // Depth pixel covering this keypoint.
      const int dx = std::clamp(
          static_cast<int>(f.keypoint.x) / snap.depth_downscale, 0,
          snap.depth.width() - 1);
      const int dy = std::clamp(
          static_cast<int>(f.keypoint.y) / snap.depth_downscale, 0,
          snap.depth.height() - 1);
      const float t = snap.depth(dx, dy);
      if (t <= 0.0f || t > cfg.max_depth) continue;
      // Back-project the keypoint's own pixel (full resolution) with the
      // depth sampled from the coarser IR map.
      const Vec3 ray = snap.intrinsics.pixel_ray({f.keypoint.x, f.keypoint.y});
      KeypointMapping m;
      m.feature = f;
      m.world_position = poses[i].to_world(ray * static_cast<double>(t));
      m.snapshot = static_cast<std::uint32_t>(i);
      mappings.push_back(std::move(m));
    }
  }
  return mappings;
}

}  // namespace vp
