// Keypoint-to-3D-position extraction: the wardriving app's actual output
// (paper §3, "Keypoint-to-3D Position Wardriving"). SIFT keypoints from
// each RGB snapshot are paired with the depth return at their pixel and
// back-projected through the snapshot's (ICP-corrected) pose.
#pragma once

#include <string>
#include <vector>

#include "features/sift.hpp"
#include "slam/map_merge.hpp"
#include "slam/wardrive.hpp"

namespace vp {

/// One keypoint-to-3D mapping shipped to the cloud service.
struct KeypointMapping {
  Feature feature;
  Vec3 world_position;
  std::uint32_t snapshot = 0;
};

struct MappingConfig {
  SiftConfig sift{};
  double max_depth = 25.0;  ///< discard returns beyond the IR sensor range
  /// Optional worker pool (not owned): snapshots are extracted in parallel
  /// across it, results merged in snapshot order (output identical to the
  /// sequential path). Each snapshot's SIFT then runs single-threaded —
  /// snapshot-level parallelism already saturates the pool, and the pool
  /// does not support nested fan-out (nested parallel_for runs inline).
  class ThreadPool* pool = nullptr;
};

/// Extract mappings from all snapshots under the given per-snapshot poses
/// (typically MapMergeResult::corrected_poses).
std::vector<KeypointMapping> extract_mappings(
    std::span<const Snapshot> snapshots, std::span<const Pose> poses,
    const MappingConfig& config = {});

/// A wardrive result addressed to a named map shard: the unit a
/// multi-place server ingests (MapStore::ingest_wardrive).
struct PlaceMappings {
  std::string place;  ///< target shard id, e.g. "louvre-denon"
  std::vector<KeypointMapping> mappings;
};

/// extract_mappings, addressed to `place`.
PlaceMappings extract_place_mappings(std::string place,
                                     std::span<const Snapshot> snapshots,
                                     std::span<const Pose> poses,
                                     const MappingConfig& config = {});

}  // namespace vp
