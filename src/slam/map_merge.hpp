// ICP-based map merging (paper §3): fold per-snapshot depth clouds into one
// coherent point cloud, correcting each snapshot's drifted pose against the
// accumulated map. "Only from this converged, comprehensive depth map we
// can be sure that two keypoints reflect truly independent locations."
#pragma once

#include <vector>

#include "geometry/icp.hpp"
#include "slam/wardrive.hpp"

namespace vp {

struct MapMergeConfig {
  IcpConfig icp{.max_correspondence_dist = 0.75};
  int cloud_stride = 3;          ///< depth subsampling for ICP clouds
  std::size_t max_map_points = 400'000;  ///< cap on the reference map
  bool enabled = true;           ///< false = trust reported poses (ablation)
  /// Dead-reckoning drift between consecutive snapshots is small, so a
  /// large ICP "correction" means the solver latched onto the wrong
  /// geometry (e.g. the opposite corridor wall). Such corrections are
  /// rejected and the reported pose kept.
  double max_position_correction = 1.0;   ///< meters
  double max_rotation_correction = 0.35;  ///< radians
  double min_overlap_fraction = 0.25;     ///< correspondences / cloud size
};

struct MapMergeResult {
  std::vector<Pose> corrected_poses;  ///< one per snapshot
  std::vector<Vec3> map_points;       ///< the merged global cloud
  double mean_icp_error = 0;          ///< mean residual across snapshots
  std::size_t snapshots_corrected = 0;
};

/// Sequentially registers each snapshot's cloud against the growing map.
/// The first snapshot anchors the frame. With `enabled=false`, reported
/// poses pass through untouched (the no-ICP ablation).
MapMergeResult merge_snapshots(std::span<const Snapshot> snapshots,
                               const MapMergeConfig& config = {});

/// Evaluation helper: mean position error of poses vs ground truth.
double mean_pose_error(std::span<const Snapshot> snapshots,
                       std::span<const Pose> poses);

}  // namespace vp
