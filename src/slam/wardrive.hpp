// Wardriving simulator — the Google Tango substitute.
//
// The paper's wardriving app walks a building recording, per snapshot:
// a 6-DoF pose (VSLAM dead reckoning, which drifts), an RGB image, and a
// lower-resolution IR depth map. This simulator walks a lawnmower path
// through a World, renders the same artifacts with the ray-cast renderer,
// and corrupts the reported poses with an integrating drift model — the
// exact error source the paper's ICP post-processing exists to fix.
#pragma once

#include <vector>

#include "geometry/camera.hpp"
#include "scene/render.hpp"
#include "scene/world.hpp"
#include "util/rng.hpp"

namespace vp {

struct DriftModel {
  double pos_per_meter = 0.015;  ///< position random-walk stddev per meter
  double yaw_per_meter = 0.0025; ///< yaw random-walk stddev (rad) per meter
  double pos_jitter = 0.01;      ///< per-snapshot measurement noise, meters
  double yaw_jitter = 0.002;     ///< per-snapshot measurement noise, rad
};

struct WardriveConfig {
  CameraIntrinsics intrinsics{640, 480, 1.15192};
  double stop_spacing = 1.5;     ///< meters between capture stops
  double lane_spacing = 3.0;     ///< meters between lawnmower lanes
  double margin = 1.5;           ///< keep-away from walls, meters
  double eye_height = 1.5;       ///< camera height, meters
  int views_per_stop = 2;        ///< look directions captured per stop
  DriftModel drift{};
  RenderOptions render{};        ///< want_depth is forced on
};

/// One wardriving capture.
struct Snapshot {
  Pose true_pose;       ///< ground truth (evaluation only — never used by
                        ///< the pipeline itself)
  Pose reported_pose;   ///< drift-corrupted dead-reckoned pose ("Tango")
  ImageF image;         ///< RGB frame (grayscale here)
  ImageF depth;         ///< depth map, `depth_downscale` lower resolution
  CameraIntrinsics intrinsics;
  int depth_downscale = 4;
};

/// Walk the world and capture snapshots. Deterministic given `rng`.
std::vector<Snapshot> wardrive(const World& world, const WardriveConfig& config,
                               Rng& rng);

/// Back-project depth pixel (dx, dy) of a snapshot into world space using
/// the given pose (reported, corrected, or true). Returns nullopt where the
/// depth map has no return.
std::optional<Vec3> depth_to_world(const Snapshot& snap, const Pose& pose,
                                   int dx, int dy);

/// Dense point cloud of one snapshot under `pose` (subsampled by `stride`).
std::vector<Vec3> snapshot_point_cloud(const Snapshot& snap, const Pose& pose,
                                       int stride = 2);

}  // namespace vp
