#include "slam/map_merge.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vp {

MapMergeResult merge_snapshots(std::span<const Snapshot> snapshots,
                               const MapMergeConfig& cfg) {
  MapMergeResult result;
  result.corrected_poses.reserve(snapshots.size());

  if (!cfg.enabled) {
    for (const auto& s : snapshots) {
      result.corrected_poses.push_back(s.reported_pose);
    }
    return result;
  }

  double err_sum = 0;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const auto& snap = snapshots[i];
    Pose pose = snap.reported_pose;
    if (i == 0) {
      // First snapshot anchors the global frame at its reported pose.
      result.corrected_poses.push_back(pose);
    } else {
      const auto cloud = snapshot_point_cloud(snap, pose, cfg.cloud_stride);
      const IcpResult icp = icp_align(cloud, result.map_points, cfg.icp);
      const Pose corrected = icp.transform * pose;
      const double moved =
          (corrected.translation - pose.translation).norm();
      const double rotated =
          rotation_angle_between(corrected.rotation, pose.rotation);
      const double overlap =
          cloud.empty() ? 0.0
                        : static_cast<double>(icp.correspondences) /
                              static_cast<double>(cloud.size());
      if (icp.converged && moved <= cfg.max_position_correction &&
          rotated <= cfg.max_rotation_correction &&
          overlap >= cfg.min_overlap_fraction) {
        pose = corrected;
        err_sum += icp.mean_error;
        ++result.snapshots_corrected;
      }
      result.corrected_poses.push_back(pose);
    }
    // Grow the reference map with the (corrected) snapshot cloud.
    if (result.map_points.size() < cfg.max_map_points) {
      auto cloud = snapshot_point_cloud(snapshots[i],
                                        result.corrected_poses.back(),
                                        cfg.cloud_stride);
      const std::size_t room = cfg.max_map_points - result.map_points.size();
      if (cloud.size() > room) cloud.resize(room);
      result.map_points.insert(result.map_points.end(), cloud.begin(),
                               cloud.end());
    }
  }
  if (result.snapshots_corrected > 0) {
    result.mean_icp_error =
        err_sum / static_cast<double>(result.snapshots_corrected);
  }
  return result;
}

double mean_pose_error(std::span<const Snapshot> snapshots,
                       std::span<const Pose> poses) {
  VP_REQUIRE(snapshots.size() == poses.size(),
             "mean_pose_error: size mismatch");
  if (snapshots.empty()) return 0.0;
  double sum = 0;
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    sum += (snapshots[i].true_pose.translation - poses[i].translation).norm();
  }
  return sum / static_cast<double>(snapshots.size());
}

}  // namespace vp
