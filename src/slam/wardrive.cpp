#include "slam/wardrive.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace vp {
namespace {

/// Lawnmower waypoints covering the floor rectangle, respecting margins.
std::vector<Vec3> plan_path(const World& world, const WardriveConfig& cfg) {
  Vec3 lo, hi;
  world.bounds(lo, hi);
  const double x0 = lo.x + cfg.margin;
  const double x1 = hi.x - cfg.margin;
  const double y0 = lo.y + cfg.margin;
  const double y1 = hi.y - cfg.margin;
  VP_REQUIRE(x1 > x0 && y1 > y0, "world too small for wardriving margins");

  std::vector<Vec3> stops;
  bool forward = true;
  for (double y = y0; y <= y1 + 1e-9; y += cfg.lane_spacing) {
    std::vector<double> xs;
    for (double x = x0; x <= x1 + 1e-9; x += cfg.stop_spacing) xs.push_back(x);
    if (!forward) std::reverse(xs.begin(), xs.end());
    for (double x : xs) stops.push_back({x, y, cfg.eye_height});
    forward = !forward;
  }
  return stops;
}

}  // namespace

std::vector<Snapshot> wardrive(const World& world, const WardriveConfig& cfg,
                               Rng& rng) {
  const auto stops = plan_path(world, cfg);
  std::vector<Snapshot> snaps;
  snaps.reserve(stops.size() * static_cast<std::size_t>(cfg.views_per_stop));

  RenderOptions render_opts = cfg.render;
  render_opts.want_depth = true;

  // Integrating drift state (random walk in position and heading).
  Vec3 drift_pos{};
  double drift_yaw = 0.0;
  Vec3 prev_stop = stops.empty() ? Vec3{} : stops.front();

  for (const Vec3& stop : stops) {
    const double walked = (stop - prev_stop).norm();
    prev_stop = stop;
    const double s = std::sqrt(std::max(walked, 1e-9));
    drift_pos.x += rng.gaussian(0, cfg.drift.pos_per_meter * s);
    drift_pos.y += rng.gaussian(0, cfg.drift.pos_per_meter * s);
    drift_pos.z += rng.gaussian(0, cfg.drift.pos_per_meter * s * 0.3);
    drift_yaw += rng.gaussian(0, cfg.drift.yaw_per_meter * s);

    for (int v = 0; v < cfg.views_per_stop; ++v) {
      // Alternate looking toward the two side walls, with jitter, the way
      // a person sweeps the device while walking. Every third view looks
      // along the walking direction — those views see the corridor end
      // walls, which is what pins the along-corridor axis during ICP map
      // merging (side-wall views alone leave it unconstrained).
      double base_yaw;
      if (v % 3 == 2) {
        base_yaw = (snaps.size() % 2 == 0 ? 0.0 : std::numbers::pi) +
                   rng.uniform(-0.3, 0.3);
      } else {
        base_yaw = (v % 2 == 0 ? 0.5 : -0.5) * std::numbers::pi +
                   rng.uniform(-0.45, 0.45);
      }
      const Vec3 look_dir{std::cos(base_yaw), std::sin(base_yaw),
                          rng.uniform(-0.12, 0.12)};
      const Camera true_cam =
          look_at(cfg.intrinsics, stop, stop + look_dir * 3.0);

      Snapshot snap;
      snap.true_pose = true_cam.pose;
      snap.intrinsics = cfg.intrinsics;
      snap.depth_downscale = render_opts.depth_downscale;

      auto out = render(world, true_cam, render_opts, rng);
      snap.image = std::move(out.image);
      snap.depth = std::move(out.depth);

      // Reported pose = truth corrupted by accumulated drift plus
      // per-snapshot measurement jitter, with the drift rotation applied
      // about the vertical axis (heading drift).
      const double yaw_err =
          drift_yaw + rng.gaussian(0, cfg.drift.yaw_jitter);
      const Mat3 r_err = rotation_zyx(yaw_err, 0, 0);
      snap.reported_pose.rotation = r_err * snap.true_pose.rotation;
      snap.reported_pose.translation =
          r_err * snap.true_pose.translation + drift_pos +
          Vec3{rng.gaussian(0, cfg.drift.pos_jitter),
               rng.gaussian(0, cfg.drift.pos_jitter),
               rng.gaussian(0, cfg.drift.pos_jitter * 0.3)};
      snaps.push_back(std::move(snap));
    }
  }
  return snaps;
}

std::optional<Vec3> depth_to_world(const Snapshot& snap, const Pose& pose,
                                   int dx, int dy) {
  VP_REQUIRE(snap.depth.in_bounds(dx, dy), "depth pixel out of range");
  const float t = snap.depth(dx, dy);
  if (t <= 0.0f) return std::nullopt;
  const Vec2 pixel{(dx + 0.5) * snap.depth_downscale,
                   (dy + 0.5) * snap.depth_downscale};
  const Vec3 body_ray = snap.intrinsics.pixel_ray(pixel);
  return pose.to_world(body_ray * static_cast<double>(t));
}

std::vector<Vec3> snapshot_point_cloud(const Snapshot& snap, const Pose& pose,
                                       int stride) {
  VP_REQUIRE(stride >= 1, "stride must be >= 1");
  std::vector<Vec3> cloud;
  for (int y = 0; y < snap.depth.height(); y += stride) {
    for (int x = 0; x < snap.depth.width(); x += stride) {
      if (auto p = depth_to_world(snap, pose, x, y)) cloud.push_back(*p);
    }
  }
  return cloud;
}

}  // namespace vp
