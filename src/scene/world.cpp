#include "scene/world.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace vp {

std::size_t World::add_texture(ImageF texture) {
  VP_REQUIRE(!texture.empty(), "add_texture: empty texture");
  textures_.push_back(std::move(texture));
  return textures_.size() - 1;
}

void World::add_quad(TexturedQuad quad) {
  VP_REQUIRE(quad.texture < textures_.size(),
             "add_quad: texture index out of range");
  VP_REQUIRE(quad.area() > 1e-12, "add_quad: degenerate quad");
  quads_.push_back(std::move(quad));
}

void World::add_surface(Vec3 origin, Vec3 edge_u, Vec3 edge_v, ImageF texture,
                        int scene_id, std::string name) {
  TexturedQuad q;
  q.origin = origin;
  q.edge_u = edge_u;
  q.edge_v = edge_v;
  q.texture = add_texture(std::move(texture));
  q.scene_id = scene_id;
  q.name = std::move(name);
  add_quad(std::move(q));
}

int World::scene_count() const noexcept {
  int max_id = -1;
  for (const auto& q : quads_) max_id = std::max(max_id, q.scene_id);
  return max_id + 1;
}

void World::bounds(Vec3& lo, Vec3& hi) const {
  lo = {std::numeric_limits<double>::max(), std::numeric_limits<double>::max(),
        std::numeric_limits<double>::max()};
  hi = {std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::lowest()};
  auto grow = [&](Vec3 p) {
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  };
  for (const auto& q : quads_) {
    grow(q.origin);
    grow(q.origin + q.edge_u);
    grow(q.origin + q.edge_v);
    grow(q.origin + q.edge_u + q.edge_v);
  }
  if (quads_.empty()) lo = hi = Vec3{};
}

std::optional<RayHit> raycast(const World& world, Vec3 origin, Vec3 dir,
                              double t_min) {
  std::optional<RayHit> best;
  for (std::size_t qi = 0; qi < world.quads().size(); ++qi) {
    const auto& q = world.quads()[qi];
    const Vec3 n = q.edge_u.cross(q.edge_v);
    const double denom = dir.dot(n);
    if (std::abs(denom) < 1e-12) continue;  // parallel
    const double t = (q.origin - origin).dot(n) / denom;
    if (t <= t_min) continue;
    if (best && t >= best->t) continue;
    const Vec3 p = origin + dir * t;
    const Vec3 rel = p - q.origin;
    // Builders keep edges orthogonal, so the local coordinates decouple.
    const double uu = q.edge_u.norm2();
    const double vv = q.edge_v.norm2();
    const double u = rel.dot(q.edge_u) / uu;
    const double v = rel.dot(q.edge_v) / vv;
    if (u < 0 || u > 1 || v < 0 || v > 1) continue;
    best = RayHit{t, qi, u, v};
  }
  return best;
}

}  // namespace vp
