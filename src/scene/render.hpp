// Ray-cast renderer: the "camera" of the simulated smartphone and of the
// simulated Tango rig. Produces grayscale frames (with sensor noise and
// optional motion blur) plus the depth map the wardriving app records from
// Tango's IR sensor.
#pragma once

#include "geometry/camera.hpp"
#include "scene/world.hpp"
#include "util/rng.hpp"

namespace vp {

struct RenderOptions {
  double noise_stddev = 1.5;      ///< additive sensor noise, gray levels
  double motion_blur_px = 0.0;    ///< motion blur streak length, pixels
  Vec2 motion_dir{1.0, 0.0};      ///< blur direction in image space
  bool want_depth = false;        ///< also produce the depth map
  int depth_downscale = 4;        ///< Tango depth is lower-res than RGB
  float background = 8.0f;        ///< gray level where no quad is hit
  double ambient = 0.55;          ///< base illumination factor
  double distance_falloff = 0.012;///< light falloff per meter of depth
};

struct RenderOutput {
  ImageF image;   ///< grayscale frame, [0,255]
  ImageF depth;   ///< meters; 0 where nothing hit (empty unless requested)
};

/// Render the world from a camera.
RenderOutput render(const World& world, const Camera& camera,
                    const RenderOptions& options, Rng& rng);

/// Ground truth for retrieval experiments: scene ids whose quads are
/// actually visible (center or a corner survives an occlusion ray test)
/// and cover at least `min_pixels` of the frame.
std::vector<int> visible_scene_ids(const World& world, const Camera& camera,
                                   std::size_t min_pixels = 400);

/// Ground truth for wardriving: the 3-D world point seen at a given pixel,
/// or nullopt if the pixel sees background.
std::optional<Vec3> world_point_at_pixel(const World& world,
                                         const Camera& camera, Vec2 pixel);

/// A camera pose looking at a target point from `position`, with the image
/// "up" direction chosen as close to world -Y ... (we use +Z-up worlds and
/// -Z-down image convention; see implementation).
Camera look_at(const CameraIntrinsics& intrinsics, Vec3 position, Vec3 target,
               double roll = 0.0);

}  // namespace vp
