#include "scene/environments.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "scene/render.hpp"
#include "scene/texture.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

/// Adds floor, ceiling, and four perimeter walls to a rectangular room
/// spanning [0,w] x [0,d] with height h. Wall/floor/ceiling textures are
/// shared (registered once) — globally repeated content by construction.
void add_room_shell(World& world, double w, double d, double h, Rng& rng) {
  const int floor_px = 18;  // px per meter for large surfaces
  // Floor: checkerboard tiles, the paper's canonical low-entropy repeater.
  world.add_surface({0, 0, 0}, {w, 0, 0}, {0, d, 0},
                    checkerboard_texture(static_cast<int>(w * floor_px),
                                         static_cast<int>(d * floor_px), 24,
                                         120, 180, rng),
                    kBackgroundScene, "floor");
  // Ceiling (normal facing down into the room).
  world.add_surface({0, 0, h}, {0, d, 0}, {w, 0, 0},
                    ceiling_texture(static_cast<int>(d * floor_px),
                                    static_cast<int>(w * floor_px), 22, rng),
                    kBackgroundScene, "ceiling");
  // Walls: near-featureless drywall.
  const int wall_px = 16;
  auto wall_tex = [&](double len) {
    return wall_texture(static_cast<int>(len * wall_px),
                        static_cast<int>(h * wall_px), 200, rng);
  };
  world.add_surface({0, 0, 0}, {w, 0, 0}, {0, 0, h}, wall_tex(w),
                    kBackgroundScene, "wall_south");
  world.add_surface({w, d, 0}, {-w, 0, 0}, {0, 0, h}, wall_tex(w),
                    kBackgroundScene, "wall_north");
  world.add_surface({0, d, 0}, {0, -d, 0}, {0, 0, h}, wall_tex(d),
                    kBackgroundScene, "wall_west");
  world.add_surface({w, 0, 0}, {0, d, 0}, {0, 0, h}, wall_tex(d),
                    kBackgroundScene, "wall_east");
}

/// Shared door texture (identical knob hardware across all doors — the
/// paper's door-knob example). Registered once, reused by index.
std::size_t add_shared_door_texture(World& world, Rng& rng) {
  return world.add_texture(door_texture(110, 240, /*knob_seed=*/42, rng));
}

void add_door(World& world, std::size_t door_tex, Vec3 base, Vec3 along,
              double height) {
  TexturedQuad q;
  q.origin = base;
  q.edge_u = along;
  q.edge_v = {0, 0, height};
  q.texture = door_tex;
  q.scene_id = kBackgroundScene;
  q.name = "door";
  world.add_quad(q);
}

}  // namespace

World build_gallery(const GalleryConfig& cfg, Rng& rng) {
  VP_REQUIRE(cfg.num_scenes >= 1, "gallery needs at least one scene");
  World world;
  const double w = cfg.hall_length;
  const double d = cfg.hall_width;
  const double h = cfg.wall_height;
  add_room_shell(world, w, d, h, rng);
  const std::size_t door_tex = add_shared_door_texture(world, rng);
  const std::size_t plate_tex =
      world.add_texture(nameplate_texture(90, 30, rng));

  // Paintings alternate along the two long walls, interleaved with
  // repeated doors and nameplates.
  const double painting_w = 1.6, painting_h = 1.2, painting_z = 1.1;
  const int per_wall = (cfg.num_scenes + 1) / 2;
  const double pitch = w / (per_wall + 1);
  const int tex_w = static_cast<int>(painting_w * cfg.texture_px_per_m);
  const int tex_h = static_cast<int>(painting_h * cfg.texture_px_per_m);

  for (int s = 0; s < cfg.num_scenes; ++s) {
    const bool south = (s % 2) == 0;
    const int slot = s / 2;
    const double cx = (slot + 1) * pitch;
    const double x0 = cx - painting_w / 2;
    // South wall at y=0 faces +y; north wall at y=d faces -y. Flip the
    // u direction on the north wall so textures read left-to-right.
    TexturedQuad q;
    if (south) {
      q.origin = {x0, 0.02, painting_z};
      q.edge_u = {painting_w, 0, 0};
    } else {
      q.origin = {x0 + painting_w, d - 0.02, painting_z};
      q.edge_u = {-painting_w, 0, 0};
    }
    q.edge_v = {0, 0, painting_h};
    q.texture = world.add_texture(painting_texture(tex_w, tex_h, rng));
    q.scene_id = s;
    q.name = "painting_" + std::to_string(s);
    world.add_quad(q);

    // Repeated content near every painting: a door and a nameplate.
    for (int k = 0; k < cfg.doors_between; ++k) {
      const double door_x = cx + pitch / 2 - 0.45;
      if (door_x + 0.9 < w) {
        if (south) {
          add_door(world, door_tex, {door_x, 0.02, 0}, {0.9, 0, 0}, 2.1);
        } else {
          add_door(world, door_tex, {door_x + 0.9, d - 0.02, 0}, {-0.9, 0, 0},
                   2.1);
        }
      }
    }
    TexturedQuad plate;
    const double plate_x = south ? x0 - 0.35 : x0 + painting_w + 0.05;
    if (plate_x > 0 && plate_x + 0.3 < w) {
      plate.origin = south ? Vec3{plate_x, 0.02, 1.4}
                           : Vec3{plate_x + 0.3, d - 0.02, 1.4};
      plate.edge_u = south ? Vec3{0.3, 0, 0} : Vec3{-0.3, 0, 0};
      plate.edge_v = {0, 0, 0.1};
      plate.texture = plate_tex;
      plate.name = "nameplate";
      world.add_quad(plate);
    }
  }
  return world;
}

World build_office(const RoomConfig& cfg, Rng& rng) {
  World world;
  add_room_shell(world, cfg.width, cfg.depth, cfg.height, rng);
  const std::size_t door_tex = add_shared_door_texture(world, rng);
  // Repeated cubicle partition texture, instanced as free-standing panels.
  const std::size_t partition_tex = world.add_texture(
      noise_texture(160, 90, 2, 150, 175, rng));

  const int rows = 3, cols = 6;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = 4.0 + c * 7.0;
      const double y = 4.0 + r * 5.5;
      if (x + 3.0 > cfg.width || y > cfg.depth - 2) continue;
      TexturedQuad p;
      p.origin = {x, y, 0};
      p.edge_u = {3.0, 0, 0};
      p.edge_v = {0, 0, 1.4};
      p.texture = partition_tex;
      p.name = "partition";
      world.add_quad(p);
      // Back side so it is visible from both directions.
      TexturedQuad b = p;
      b.origin = {x + 3.0, y + 0.001, 0};
      b.edge_u = {-3.0, 0, 0};
      world.add_quad(b);
    }
  }

  // Unique posters on walls: these are the office's fingerprintable scenes.
  const double poster_w = 1.0, poster_h = 0.75;
  for (int s = 0; s < cfg.num_scenes; ++s) {
    const double x = 2.5 + s * (cfg.width - 5.0) / std::max(1, cfg.num_scenes);
    const bool south = (s % 2) == 0;
    TexturedQuad q;
    if (south) {
      q.origin = {x, 0.02, 1.2};
      q.edge_u = {poster_w, 0, 0};
    } else {
      q.origin = {x + poster_w, cfg.depth - 0.02, 1.2};
      q.edge_u = {-poster_w, 0, 0};
    }
    q.edge_v = {0, 0, poster_h};
    q.texture = world.add_texture(painting_texture(130, 100, rng));
    q.scene_id = s;
    q.name = "poster_" + std::to_string(s);
    world.add_quad(q);
  }

  for (int i = 0; i < 4; ++i) {
    add_door(world, door_tex, {6.0 + i * 10.0, 0.03, 0}, {0.9, 0, 0}, 2.1);
  }
  return world;
}

World build_cafeteria(const RoomConfig& cfg, Rng& rng) {
  World world;
  add_room_shell(world, cfg.width, cfg.depth, cfg.height, rng);

  // Identical tables: repeated top panels at seating height.
  const std::size_t table_tex =
      world.add_texture(wood_texture(120, 80, rng));
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 10; ++c) {
      const double x = 3.0 + c * 4.5;
      const double y = 3.0 + r * 3.2;
      if (x + 1.8 > cfg.width || y + 1.0 > cfg.depth) continue;
      TexturedQuad t;
      t.origin = {x, y, 0.75};
      t.edge_u = {1.8, 0, 0};
      t.edge_v = {0, 1.0, 0};
      t.texture = table_tex;
      t.name = "table";
      world.add_quad(t);
    }
  }

  // Menu boards: unique, high-entropy — the cafeteria's scenes.
  for (int s = 0; s < cfg.num_scenes; ++s) {
    const double x = 2.0 + s * (cfg.width - 4.0) / std::max(1, cfg.num_scenes);
    TexturedQuad q;
    q.origin = {x, cfg.depth - 0.02, 1.5};
    q.edge_u = {-1.4, 0, 0};
    q.origin.x += 1.4;
    q.edge_v = {0, 0, 0.9};
    q.texture = world.add_texture(painting_texture(170, 110, rng));
    q.scene_id = s;
    q.name = "menu_" + std::to_string(s);
    world.add_quad(q);
  }

  // Foodservice counter along the south wall.
  const std::size_t counter_tex =
      world.add_texture(noise_texture(400, 40, 2, 90, 120, rng));
  TexturedQuad counter;
  counter.origin = {2.0, 1.2, 0};
  counter.edge_u = {cfg.width - 4.0, 0, 0};
  counter.edge_v = {0, 0, 1.1};
  counter.texture = counter_tex;
  counter.name = "counter";
  world.add_quad(counter);
  return world;
}

World build_grocery(const RoomConfig& cfg, Rng& rng) {
  World world;
  add_room_shell(world, cfg.width, cfg.depth, cfg.height, rng);

  // Aisles: double-sided shelves. Product patterns repeat across aisles
  // (only a few variants) — heavy global repetition.
  const int num_aisles = std::max(2, static_cast<int>(cfg.depth / 6.0));
  const double aisle_len = cfg.width * 0.7;
  const double shelf_h = 1.9;
  std::vector<std::size_t> shelf_variants;
  for (std::uint64_t v = 0; v < 4; ++v) {
    shelf_variants.push_back(world.add_texture(
        shelf_texture(static_cast<int>(aisle_len * 14),
                      static_cast<int>(shelf_h * 40), v, rng)));
  }
  for (int a = 0; a < num_aisles; ++a) {
    const double y = 4.0 + a * (cfg.depth - 8.0) / num_aisles;
    const double x0 = (cfg.width - aisle_len) / 2;
    for (int side = 0; side < 2; ++side) {
      TexturedQuad s;
      if (side == 0) {
        s.origin = {x0, y, 0};
        s.edge_u = {aisle_len, 0, 0};
      } else {
        s.origin = {x0 + aisle_len, y + 0.6, 0};
        s.edge_u = {-aisle_len, 0, 0};
      }
      s.edge_v = {0, 0, shelf_h};
      s.texture = shelf_variants[static_cast<std::size_t>(
          (a + side) % static_cast<int>(shelf_variants.size()))];
      s.name = "shelf_a" + std::to_string(a) + "_s" + std::to_string(side);
      world.add_quad(s);
    }
    // Unique aisle sign above each aisle: the store's scenes.
    if (a < cfg.num_scenes) {
      TexturedQuad sign;
      sign.origin = {cfg.width / 2 - 0.8, y + 0.3, 2.2};
      sign.edge_u = {1.6, 0, 0};
      sign.edge_v = {0, 0, 0.5};
      sign.texture = world.add_texture(painting_texture(180, 60, rng));
      sign.scene_id = a;
      sign.name = "aisle_sign_" + std::to_string(a);
      world.add_quad(sign);
    }
  }
  return world;
}

std::vector<std::size_t> scene_quads(const World& world) {
  std::vector<std::size_t> out(
      static_cast<std::size_t>(std::max(0, world.scene_count())),
      static_cast<std::size_t>(-1));
  for (std::size_t qi = 0; qi < world.quads().size(); ++qi) {
    const int sid = world.quads()[qi].scene_id;
    if (sid >= 0) out[static_cast<std::size_t>(sid)] = qi;
  }
  return out;
}

Camera view_of_quad(const World& world, std::size_t quad_index,
                    const CameraIntrinsics& intrinsics, double azimuth_deg,
                    double distance, Rng& rng) {
  VP_REQUIRE(quad_index < world.quads().size(), "view_of_quad: bad index");
  const auto& q = world.quads()[quad_index];
  const Vec3 center = q.center();
  Vec3 n = q.normal();
  // Ensure the normal points into the room (away from the nearest world
  // boundary): probe a short step along the normal; if it immediately hits
  // the same quad's backing wall, flip.
  Vec3 lo, hi;
  world.bounds(lo, hi);
  const Vec3 probe = center + n * 0.3;
  if (probe.x < lo.x || probe.x > hi.x || probe.y < lo.y || probe.y > hi.y ||
      probe.z < lo.z || probe.z > hi.z) {
    n = n * -1.0;
  }

  // Rotate the viewing direction around the world-Z axis by the azimuth.
  const double az = azimuth_deg * kDegToRad;
  const double c = std::cos(az), s = std::sin(az);
  const Vec3 dir{c * n.x - s * n.y, s * n.x + c * n.y, n.z};
  Vec3 position = center + dir.normalized() * distance;
  // Keep a sensible eye height with a little jitter.
  position.z = std::clamp(1.5 + rng.gaussian(0, 0.1), 0.5, 2.4);
  return look_at(intrinsics, position, center, rng.gaussian(0, 0.02));
}

}  // namespace vp
