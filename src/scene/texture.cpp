#include "scene/texture.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace vp {
namespace {

/// Single-octave value noise: random lattice values, bilinear interpolation,
/// smoothstep easing.
ImageF value_noise(int w, int h, int cell, Rng& rng) {
  const int gw = w / cell + 2;
  const int gh = h / cell + 2;
  std::vector<float> lattice(static_cast<std::size_t>(gw) * gh);
  for (auto& v : lattice) v = static_cast<float>(rng.uniform());
  ImageF out(w, h);
  for (int y = 0; y < h; ++y) {
    const double fy = static_cast<double>(y) / cell;
    const int y0 = static_cast<int>(fy);
    double ty = fy - y0;
    ty = ty * ty * (3 - 2 * ty);
    for (int x = 0; x < w; ++x) {
      const double fx = static_cast<double>(x) / cell;
      const int x0 = static_cast<int>(fx);
      double tx = fx - x0;
      tx = tx * tx * (3 - 2 * tx);
      const float v00 = lattice[static_cast<std::size_t>(y0) * gw + x0];
      const float v10 = lattice[static_cast<std::size_t>(y0) * gw + x0 + 1];
      const float v01 = lattice[static_cast<std::size_t>(y0 + 1) * gw + x0];
      const float v11 = lattice[static_cast<std::size_t>(y0 + 1) * gw + x0 + 1];
      out(x, y) = static_cast<float>((1 - ty) * ((1 - tx) * v00 + tx * v10) +
                                     ty * ((1 - tx) * v01 + tx * v11));
    }
  }
  return out;
}

void fill_rect(ImageF& img, int x0, int y0, int x1, int y1, float v) {
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(img.width(), x1);
  y1 = std::min(img.height(), y1);
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) img(x, y) = v;
  }
}

void fill_disc(ImageF& img, int cx, int cy, int r, float v) {
  for (int y = std::max(0, cy - r); y < std::min(img.height(), cy + r + 1); ++y) {
    for (int x = std::max(0, cx - r); x < std::min(img.width(), cx + r + 1); ++x) {
      const int dx = x - cx, dy = y - cy;
      if (dx * dx + dy * dy <= r * r) img(x, y) = v;
    }
  }
}

}  // namespace

ImageF noise_texture(int w, int h, int octaves, double lo, double hi,
                     Rng& rng) {
  VP_REQUIRE(w > 0 && h > 0, "noise_texture: empty size");
  VP_REQUIRE(octaves >= 1 && octaves <= 10, "noise octaves in [1,10]");
  ImageF acc(w, h, 1, 0.0f);
  double amp = 1.0, total_amp = 0.0;
  int cell = std::max(2, std::min(w, h) / 4);
  for (int o = 0; o < octaves; ++o) {
    const ImageF layer = value_noise(w, h, std::max(1, cell), rng);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        acc(x, y) += static_cast<float>(amp) * layer(x, y);
      }
    }
    total_amp += amp;
    amp *= 0.55;
    cell = std::max(1, cell / 2);
  }
  for (auto& v : acc.pixels()) {
    v = static_cast<float>(lo + (hi - lo) * (v / total_amp));
  }
  return acc;
}

ImageF painting_texture(int w, int h, Rng& rng) {
  // Layer 1: smooth colorful-ish background (low-frequency noise).
  ImageF img = noise_texture(w, h, 3, 40, 220, rng);

  // Layer 2: a handful of bold geometric shapes at random tones.
  const int shapes = static_cast<int>(6 + rng.uniform_u64(8));
  for (int s = 0; s < shapes; ++s) {
    const float tone = static_cast<float>(rng.uniform(10, 245));
    if (rng.chance(0.5)) {
      const int cx = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(w)));
      const int cy = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(h)));
      fill_disc(img, cx, cy, static_cast<int>(4 + rng.uniform_u64(static_cast<std::uint64_t>(std::min(w, h) / 4))), tone);
    } else {
      const int x0 = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(w)));
      const int y0 = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(h)));
      fill_rect(img, x0, y0, x0 + static_cast<int>(8 + rng.uniform_u64(static_cast<std::uint64_t>(w / 3))),
                y0 + static_cast<int>(8 + rng.uniform_u64(static_cast<std::uint64_t>(h / 3))), tone);
    }
  }

  // Layer 3: brush strokes — short dark/light line segments.
  const int strokes = static_cast<int>(30 + rng.uniform_u64(40));
  for (int s = 0; s < strokes; ++s) {
    const double angle = rng.uniform(0, 2 * std::numbers::pi);
    const double len = rng.uniform(5, std::min(w, h) / 3.0);
    double x = rng.uniform(0, w);
    double y = rng.uniform(0, h);
    const float tone = static_cast<float>(rng.uniform(0, 255));
    const int steps = static_cast<int>(len);
    for (int t = 0; t < steps; ++t) {
      const int xi = static_cast<int>(x), yi = static_cast<int>(y);
      if (xi >= 0 && xi < w && yi >= 0 && yi < h) img(xi, yi) = tone;
      x += std::cos(angle);
      y += std::sin(angle);
    }
  }

  // Layer 4: fine texture grain so every painting is unique at pixel level.
  for (auto& v : img.pixels()) {
    v = std::clamp(v + static_cast<float>(rng.gaussian(0, 6)), 0.0f, 255.0f);
  }

  // Ornate frame, IDENTICAL across all paintings (fixed seed): each
  // painting's frame keypoints are unique within the image but repeated
  // across every scene — the exact cross-scene confusion ("unique in a
  // room, but repeated in every room") the uniqueness oracle must filter.
  Rng frame_rng(0x0F4A3Eu);
  const int border = std::max(4, std::min(w, h) / 14);
  const float frame_tone = 25.0f;
  fill_rect(img, 0, 0, w, border, frame_tone);
  fill_rect(img, 0, h - border, w, h, frame_tone);
  fill_rect(img, 0, 0, border, h, frame_tone);
  fill_rect(img, w - border, 0, w, h, frame_tone);
  // Repeating ornamental studs along the frame.
  const int pitch = std::max(6, border);
  for (int x = pitch / 2; x < w; x += pitch) {
    const float tone = static_cast<float>(frame_rng.uniform(120, 230));
    fill_disc(img, x, border / 2, border / 4, tone);
    fill_disc(img, x, h - border / 2, border / 4, tone);
  }
  for (int y = pitch / 2; y < h; y += pitch) {
    const float tone = static_cast<float>(frame_rng.uniform(120, 230));
    fill_disc(img, border / 2, y, border / 4, tone);
    fill_disc(img, w - border / 2, y, border / 4, tone);
  }
  return img;
}

ImageF checkerboard_texture(int w, int h, int tile, double a, double b,
                            Rng& rng) {
  VP_REQUIRE(tile > 0, "checkerboard tile must be positive");
  ImageF img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int tx = x / tile, ty = y / tile;
      img(x, y) = static_cast<float>(((tx + ty) % 2 == 0) ? a : b);
    }
  }
  // Slight per-tile brightness variation + grout lines.
  for (int ty = 0; ty * tile < h; ++ty) {
    for (int tx = 0; tx * tile < w; ++tx) {
      const float dv = static_cast<float>(rng.gaussian(0, 2.5));
      for (int y = ty * tile; y < std::min(h, (ty + 1) * tile); ++y) {
        for (int x = tx * tile; x < std::min(w, (tx + 1) * tile); ++x) {
          if (x % tile == 0 || y % tile == 0) {
            img(x, y) = 60.0f;
          } else {
            img(x, y) = std::clamp(img(x, y) + dv, 0.0f, 255.0f);
          }
        }
      }
    }
  }
  return img;
}

ImageF ceiling_texture(int w, int h, int cell, Rng& rng) {
  VP_REQUIRE(cell > 2, "ceiling cell too small");
  ImageF img(w, h, 1, 225.0f);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x % cell <= 1 || y % cell <= 1) img(x, y) = 140.0f;
    }
  }
  // Speckle the panels like acoustic tiles.
  const std::size_t speckles = static_cast<std::size_t>(w) * h / 60;
  for (std::size_t s = 0; s < speckles; ++s) {
    const int x = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(w)));
    const int y = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(h)));
    if (x % cell > 1 && y % cell > 1) {
      img(x, y) = static_cast<float>(205 + rng.uniform(-12, 12));
    }
  }
  return img;
}

ImageF wood_texture(int w, int h, Rng& rng) {
  const ImageF warp = noise_texture(w, h, 3, -18, 18, rng);
  ImageF img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double band =
          std::sin((y + warp(x, y)) * 0.35) * 0.5 + 0.5;  // grain bands
      img(x, y) = static_cast<float>(95 + band * 60);
    }
  }
  return img;
}

ImageF door_texture(int w, int h, std::uint64_t knob_seed, Rng& rng) {
  ImageF img = wood_texture(w, h, rng);
  // Two panel insets.
  const int margin = w / 6;
  fill_rect(img, margin, h / 10, w - margin, h / 10 + 2, 70.0f);
  fill_rect(img, margin, h * 4 / 10, w - margin, h * 4 / 10 + 2, 70.0f);
  fill_rect(img, margin, h * 5 / 10, w - margin, h * 5 / 10 + 2, 70.0f);
  fill_rect(img, margin, h * 9 / 10, w - margin, h * 9 / 10 + 2, 70.0f);
  fill_rect(img, margin, h / 10, margin + 2, h * 9 / 10, 70.0f);
  fill_rect(img, w - margin - 2, h / 10, w - margin, h * 9 / 10, 70.0f);

  // Knob: deterministic from knob_seed, so identical across doors.
  Rng knob_rng(knob_seed);
  const int kx = w * 5 / 6;
  const int ky = h / 2;
  const int kr = std::max(3, w / 16);
  fill_disc(img, kx, ky, kr, 30.0f);
  fill_disc(img, kx, ky, std::max(1, kr - 2),
            static_cast<float>(170 + knob_rng.uniform(-30, 30)));
  // Distinctive-but-repeated detail pattern on the knob plate.
  for (int s = 0; s < 5; ++s) {
    const int ox = static_cast<int>(knob_rng.uniform(-kr, kr));
    const int oy = static_cast<int>(knob_rng.uniform(-kr, kr));
    fill_disc(img, kx + ox / 2, ky + oy / 2, 1,
              static_cast<float>(knob_rng.uniform(20, 240)));
  }
  return img;
}

ImageF nameplate_texture(int w, int h, Rng& rng) {
  ImageF img(w, h, 1, 230.0f);
  fill_rect(img, 0, 0, w, 2, 90.0f);
  fill_rect(img, 0, h - 2, w, h, 90.0f);
  fill_rect(img, 0, 0, 2, h, 90.0f);
  fill_rect(img, w - 2, 0, w, h, 90.0f);
  // Rows of glyph-like marks.
  const int rows = 2 + static_cast<int>(rng.uniform_u64(2));
  for (int r = 0; r < rows; ++r) {
    const int cy = (r + 1) * h / (rows + 1);
    int x = w / 10;
    while (x < w * 9 / 10) {
      const int glyph_w = 2 + static_cast<int>(rng.uniform_u64(4));
      const int glyph_h = h / (rows + 2);
      if (rng.chance(0.8)) {
        fill_rect(img, x, cy - glyph_h / 2, x + glyph_w, cy + glyph_h / 2,
                  40.0f);
      }
      x += glyph_w + 2;
    }
  }
  return img;
}

ImageF shelf_texture(int w, int h, std::uint64_t variant, Rng& rng) {
  ImageF img(w, h, 1, 190.0f);
  Rng vr(variant * 0x9e3779b97f4a7c15ULL + 17);
  const int shelf_rows = 4;
  const int row_h = h / shelf_rows;
  // One product-box style per variant, repeated along every shelf.
  const int box_w = 8 + static_cast<int>(vr.uniform_u64(14));
  const float box_tone = static_cast<float>(vr.uniform(50, 200));
  const float label_tone = static_cast<float>(vr.uniform(0, 255));
  for (int r = 0; r < shelf_rows; ++r) {
    const int y0 = r * row_h;
    fill_rect(img, 0, y0 + row_h - 3, w, y0 + row_h, 80.0f);  // shelf board
    int x = 1 + static_cast<int>(rng.uniform_u64(4));
    while (x + box_w < w) {
      const int bh = row_h * 2 / 3 + static_cast<int>(rng.uniform_u64(4));
      fill_rect(img, x, y0 + row_h - 3 - bh, x + box_w, y0 + row_h - 3,
                box_tone);
      fill_rect(img, x + 2, y0 + row_h - 3 - bh / 2, x + box_w - 2,
                y0 + row_h - 3 - bh / 2 + 3, label_tone);
      x += box_w + 2;
    }
  }
  return img;
}

ImageF wall_texture(int w, int h, double base_level, Rng& rng) {
  ImageF img(w, h, 1, static_cast<float>(base_level));
  // Minuscule drywall imperfections: sparse faint specks.
  const std::size_t specks = static_cast<std::size_t>(w) * h / 400;
  for (std::size_t s = 0; s < specks; ++s) {
    const int x = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(w)));
    const int y = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(h)));
    img(x, y) = std::clamp(
        static_cast<float>(base_level + rng.gaussian(0, 7)), 0.0f, 255.0f);
  }
  return img;
}

}  // namespace vp
