// 3-D indoor world model: textured rectangular quads (walls, floors,
// ceilings, paintings, doors, shelves) positioned in meters. Quads carry a
// scene id so experiments have ground truth for "this frame captures scene
// k" (Fig. 13) and for keypoint 3-D positions (localization figures).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "geometry/camera.hpp"
#include "geometry/vec.hpp"
#include "imaging/image.hpp"

namespace vp {

inline constexpr int kBackgroundScene = -1;

/// A rectangle in 3-D: corners origin, origin+u, origin+v, origin+u+v.
/// Builders keep u ⟂ v; texture coordinates are affine in (u, v).
struct TexturedQuad {
  Vec3 origin;
  Vec3 edge_u;
  Vec3 edge_v;
  std::size_t texture = 0;          ///< index into World's texture pool
  int scene_id = kBackgroundScene;  ///< ground-truth scene label
  std::string name;

  Vec3 normal() const noexcept { return edge_u.cross(edge_v).normalized(); }
  Vec3 center() const noexcept {
    return origin + edge_u * 0.5 + edge_v * 0.5;
  }
  double area() const noexcept {
    return edge_u.cross(edge_v).norm();
  }
};

class World {
 public:
  /// Registers a texture; returns its index.
  std::size_t add_texture(ImageF texture);

  /// Adds a quad referencing a registered texture index.
  void add_quad(TexturedQuad quad);

  /// Convenience: register texture and quad together.
  void add_surface(Vec3 origin, Vec3 edge_u, Vec3 edge_v, ImageF texture,
                   int scene_id = kBackgroundScene, std::string name = {});

  const std::vector<TexturedQuad>& quads() const noexcept { return quads_; }
  const ImageF& texture(std::size_t id) const { return textures_.at(id); }
  std::size_t texture_count() const noexcept { return textures_.size(); }

  /// Highest scene id present plus one (0 when only background).
  int scene_count() const noexcept;

  /// Axis-aligned bounds of all quad corners.
  void bounds(Vec3& lo, Vec3& hi) const;

 private:
  std::vector<ImageF> textures_;
  std::vector<TexturedQuad> quads_;
};

/// First quad intersection along a ray.
struct RayHit {
  double t = 0;           ///< distance along the (unit) ray
  std::size_t quad = 0;   ///< index into world.quads()
  double u = 0, v = 0;    ///< texture coordinates in [0,1]
};

/// Cast `origin + t*dir` against every quad; nearest hit with t > t_min.
std::optional<RayHit> raycast(const World& world, Vec3 origin, Vec3 dir,
                              double t_min = 1e-6);

}  // namespace vp
