// Indoor environment presets.
//
// Each builder assembles a room (or building section) out of textured
// quads, mixing globally unique content ("scenes": paintings, posters,
// menu boards, aisle signs — the things one photographs) with globally
// repeated content (floor tiles, ceiling grids, doors sharing identical
// knobs, shelf products repeated across aisles). The repeated content is
// what confuses brute-force matching (paper Fig. 13 discussion) and what
// the uniqueness oracle is designed to discard.
//
// World frame: Z-up, floor at z = 0, dimensions in meters.
#pragma once

#include "scene/world.hpp"
#include "util/rng.hpp"

namespace vp {

struct GalleryConfig {
  int num_scenes = 20;        ///< unique paintings (retrieval ground truth)
  double hall_length = 50.0;  ///< meters (one CSL floor is 50 x 10)
  double hall_width = 10.0;
  double wall_height = 3.0;
  int texture_px_per_m = 110; ///< resolution of unique scene textures
  int doors_between = 1;      ///< repeated doors interleaved with scenes
};

/// Gallery / research-facility corridor: the Fig. 13 "100 scenes across
/// three floors" analogue. Scene ids are 0..num_scenes-1.
World build_gallery(const GalleryConfig& config, Rng& rng);

struct RoomConfig {
  double width = 50.0;
  double depth = 20.0;
  double height = 3.0;
  int num_scenes = 12;  ///< unique wall content items
};

/// Office: cubicle partitions (repeated), unique posters, doors, plates.
/// Paper dimensions: 50 m x 20 m.
World build_office(const RoomConfig& config, Rng& rng);

/// Cafeteria: repeated tables/counters, unique menu boards.
/// Paper dimensions: 50 m x 15 m.
World build_cafeteria(const RoomConfig& config, Rng& rng);

/// Grocery store: aisle shelving with repeated product patterns, unique
/// aisle signage. Paper dimensions: 80 m x 50 m.
World build_grocery(const RoomConfig& config, Rng& rng);

/// Quad index for each scene id (scene id -> quad index).
std::vector<std::size_t> scene_quads(const World& world);

/// A camera looking at scene quad `quad_index` from a viewpoint offset by
/// `azimuth_deg` around the quad normal at `distance` meters, with small
/// height jitter — the paper's "five photographs from substantially
/// different angles".
Camera view_of_quad(const World& world, std::size_t quad_index,
                    const CameraIntrinsics& intrinsics, double azimuth_deg,
                    double distance, Rng& rng);

}  // namespace vp
