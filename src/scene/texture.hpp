// Procedural texture synthesis.
//
// The paper's datasets are photographs of real indoor spaces whose defining
// property is the *mix* of visual content: one-of-a-kind paintings and
// posters (high entropy, globally unique keypoints) against repeated floor
// tiles, ceiling grids, door hardware, and furniture (locally interesting
// but globally common keypoints). These generators synthesize both kinds
// with controllable entropy, which is exactly the axis VisualPrint's
// uniqueness oracle discriminates.
//
// All textures are grayscale ImageF with values in [0, 255].
#pragma once

#include "imaging/image.hpp"
#include "util/rng.hpp"

namespace vp {

/// Multi-octave value noise (fractal), values spanning roughly [lo, hi].
ImageF noise_texture(int w, int h, int octaves, double lo, double hi,
                     Rng& rng);

/// A unique "painting": layered blobs, strokes and noise. Every call with a
/// fresh rng state yields a distinct, high-entropy texture.
ImageF painting_texture(int w, int h, Rng& rng);

/// Checkerboard floor tiles: `tile` pixel squares, two gray levels, plus a
/// little per-tile shading variation. Repeating and low-entropy by design.
ImageF checkerboard_texture(int w, int h, int tile, double a, double b,
                            Rng& rng);

/// Suspended-ceiling grid: light panels with dark seams every `cell` px.
ImageF ceiling_texture(int w, int h, int cell, Rng& rng);

/// Wood grain: horizontal bands warped by low-frequency noise.
ImageF wood_texture(int w, int h, Rng& rng);

/// A door with panel insets and a knob. `knob_seed` controls the knob
/// pattern: doors built with the same knob_seed carry identical hardware —
/// the paper's door-knob example of "unique in a room, repeated across
/// rooms."
ImageF door_texture(int w, int h, std::uint64_t knob_seed, Rng& rng);

/// Text-like nameplate: rows of dark glyph-ish rectangles on a light
/// plate. Distractor content (paper's "name-plates").
ImageF nameplate_texture(int w, int h, Rng& rng);

/// Grocery shelf: regular shelf boards with rows of similar product boxes;
/// `variant` selects one of a few box patterns so different aisles repeat.
ImageF shelf_texture(int w, int h, std::uint64_t variant, Rng& rng);

/// Flat drywall with tiny imperfections (near-featureless).
ImageF wall_texture(int w, int h, double base_level, Rng& rng);

}  // namespace vp
