#include "scene/render.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/filters.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

float sample_texture(const ImageF& tex, double u, double v) {
  // Bilinear sample with clamped edges; (u,v) in [0,1].
  const double fx = u * (tex.width() - 1);
  const double fy = v * (tex.height() - 1);
  const int x0 = static_cast<int>(std::floor(fx));
  const int y0 = static_cast<int>(std::floor(fy));
  const float tx = static_cast<float>(fx - x0);
  const float ty = static_cast<float>(fy - y0);
  const float p00 = tex.at_clamped(x0, y0);
  const float p10 = tex.at_clamped(x0 + 1, y0);
  const float p01 = tex.at_clamped(x0, y0 + 1);
  const float p11 = tex.at_clamped(x0 + 1, y0 + 1);
  return (1 - ty) * ((1 - tx) * p00 + tx * p10) +
         ty * ((1 - tx) * p01 + tx * p11);
}

}  // namespace

RenderOutput render(const World& world, const Camera& camera,
                    const RenderOptions& options, Rng& rng) {
  const auto& cam = camera.intrinsics;
  VP_REQUIRE(cam.width > 0 && cam.height > 0, "render: empty viewport");

  RenderOutput out;
  out.image = ImageF(cam.width, cam.height, 1, options.background);
  const bool depth = options.want_depth;
  const int dw = depth ? std::max(1, cam.width / options.depth_downscale) : 0;
  const int dh = depth ? std::max(1, cam.height / options.depth_downscale) : 0;
  if (depth) out.depth = ImageF(dw, dh, 1, 0.0f);

  const Vec3 origin = camera.pose.translation;
  for (int y = 0; y < cam.height; ++y) {
    for (int x = 0; x < cam.width; ++x) {
      const Vec3 dir = camera.world_ray({x + 0.5, y + 0.5});
      const auto hit = raycast(world, origin, dir);
      if (!hit) continue;
      const auto& quad = world.quads()[hit->quad];
      const float albedo =
          sample_texture(world.texture(quad.texture), hit->u, hit->v);
      // Simple lighting: ambient plus distance falloff, plus a grazing-angle
      // dimming so oblique surfaces shade like real walls do.
      const double facing =
          std::abs(dir.dot(quad.normal()));
      const double light =
          options.ambient + (1.0 - options.ambient) * facing;
      const double falloff =
          1.0 / (1.0 + options.distance_falloff * hit->t * hit->t);
      out.image(x, y) = static_cast<float>(
          std::clamp(albedo * light * falloff, 0.0, 255.0));
    }
  }

  if (depth) {
    for (int y = 0; y < dh; ++y) {
      for (int x = 0; x < dw; ++x) {
        const Vec2 px{(x + 0.5) * options.depth_downscale,
                      (y + 0.5) * options.depth_downscale};
        const Vec3 dir = camera.world_ray(px);
        if (const auto hit = raycast(world, origin, dir)) {
          out.depth(x, y) = static_cast<float>(hit->t);
        }
      }
    }
  }

  if (options.motion_blur_px >= 1.0) {
    out.image = motion_blur(out.image, options.motion_dir.x,
                            options.motion_dir.y, options.motion_blur_px);
  }
  if (options.noise_stddev > 0) {
    add_gaussian_noise(out.image, options.noise_stddev, rng);
  }
  return out;
}

std::vector<int> visible_scene_ids(const World& world, const Camera& camera,
                                   std::size_t min_pixels) {
  // Sample a 5x5 grid on each labeled quad; count samples that project into
  // the frame AND win the occlusion ray test. Estimate covered pixels from
  // the projected footprint of the winning samples.
  std::vector<int> visible;
  const Vec3 origin = camera.pose.translation;
  for (std::size_t qi = 0; qi < world.quads().size(); ++qi) {
    const auto& q = world.quads()[qi];
    if (q.scene_id == kBackgroundScene) continue;

    int hits = 0;
    Vec2 lo{1e18, 1e18}, hi{-1e18, -1e18};
    constexpr int kGrid = 5;
    for (int a = 0; a < kGrid; ++a) {
      for (int b = 0; b < kGrid; ++b) {
        const double ua = (a + 0.5) / kGrid;
        const double vb = (b + 0.5) / kGrid;
        const Vec3 p = q.origin + q.edge_u * ua + q.edge_v * vb;
        const auto px = camera.project_world(p);
        if (!px) continue;
        const Vec3 dir = (p - origin).normalized();
        const auto hit = raycast(world, origin, dir);
        if (!hit || hit->quad != qi) continue;  // occluded
        ++hits;
        lo.x = std::min(lo.x, px->x);
        lo.y = std::min(lo.y, px->y);
        hi.x = std::max(hi.x, px->x);
        hi.y = std::max(hi.y, px->y);
      }
    }
    if (hits < 3) continue;
    const double footprint = std::max(0.0, hi.x - lo.x) *
                             std::max(0.0, hi.y - lo.y) *
                             (static_cast<double>(hits) / (kGrid * kGrid));
    if (footprint >= static_cast<double>(min_pixels)) {
      visible.push_back(q.scene_id);
    }
  }
  std::sort(visible.begin(), visible.end());
  visible.erase(std::unique(visible.begin(), visible.end()), visible.end());
  return visible;
}

std::optional<Vec3> world_point_at_pixel(const World& world,
                                         const Camera& camera, Vec2 pixel) {
  const Vec3 dir = camera.world_ray(pixel);
  const auto hit = raycast(world, camera.pose.translation, dir);
  if (!hit) return std::nullopt;
  return camera.pose.translation + dir * hit->t;
}

Camera look_at(const CameraIntrinsics& intrinsics, Vec3 position, Vec3 target,
               double roll) {
  // World is Z-up. Camera body: +Z forward, +X right, +Y down.
  // Right-handed basis: right = forward x up, down = forward x right,
  // which satisfies right x down = forward.
  const Vec3 forward = (target - position).normalized();
  VP_REQUIRE(forward.norm() > 0.5, "look_at: position equals target");
  const Vec3 world_up{0, 0, 1};
  Vec3 r = forward.cross(world_up);
  if (r.norm() < 1e-9) {
    // Looking straight up/down; pick an arbitrary horizontal right.
    r = Vec3{0, -1, 0};
  }
  r = r.normalized();
  Vec3 d = forward.cross(r);

  if (std::abs(roll) > 1e-12) {
    // Rotate right/down about the forward axis (Rodrigues).
    auto rotate_about = [&](Vec3 v) {
      const double c = std::cos(roll), s = std::sin(roll);
      return v * c + forward.cross(v) * s + forward * (forward.dot(v) * (1 - c));
    };
    r = rotate_about(r);
    d = rotate_about(d);
  }

  Camera camera;
  camera.intrinsics = intrinsics;
  camera.pose.translation = position;
  camera.pose.rotation.m[0][0] = r.x;
  camera.pose.rotation.m[1][0] = r.y;
  camera.pose.rotation.m[2][0] = r.z;
  camera.pose.rotation.m[0][1] = d.x;
  camera.pose.rotation.m[1][1] = d.y;
  camera.pose.rotation.m[2][1] = d.z;
  camera.pose.rotation.m[0][2] = forward.x;
  camera.pose.rotation.m[1][2] = forward.y;
  camera.pose.rotation.m[2][2] = forward.z;
  return camera;
}

}  // namespace vp
