// Uplink model: bandwidth + RTT + jitter, with a FIFO send queue. Stands in
// for the paper's WiFi/LTE uplinks in Figs. 2 and 14 — the figures are
// byte-count arithmetic over a rate-limited channel, which this reproduces
// with honest payload sizes from the real codecs.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace vp {

struct LinkConfig {
  double bandwidth_mbps = 8.0;  ///< uplink throughput
  double rtt_ms = 40.0;         ///< round-trip latency
  double jitter_ms = 8.0;       ///< stddev of per-transfer latency noise
};

/// One completed transfer on the simulated link.
struct TransferRecord {
  double submit_time = 0;    ///< when the payload was enqueued, seconds
  double start_time = 0;     ///< when bytes started flowing
  double complete_time = 0;  ///< when fully delivered (incl. half-RTT)
  std::size_t bytes = 0;
};

/// Sequential (FIFO) link: transfers queue behind each other, so a payload
/// submitted while the link is busy waits — exactly why oversized frames
/// crater sustainable FPS.
class SimulatedLink {
 public:
  explicit SimulatedLink(LinkConfig config, std::uint64_t seed = 1);

  /// Enqueue `bytes` at `submit_time` (seconds); returns the record.
  TransferRecord submit(double submit_time, std::size_t bytes);

  /// Time the link becomes idle.
  double busy_until() const noexcept { return busy_until_; }

  const std::vector<TransferRecord>& history() const noexcept {
    return history_;
  }

  /// Total bytes delivered with complete_time <= t.
  std::size_t bytes_delivered_by(double t) const noexcept;

  /// Steady-state sustainable transfers per second for a payload size:
  /// bandwidth / payload (latency pipelines away). The Fig. 2 quantity.
  static double sustainable_fps(double bandwidth_mbps, std::size_t bytes);

  void reset() noexcept;

 private:
  LinkConfig config_;
  Rng rng_;
  double busy_until_ = 0;
  std::vector<TransferRecord> history_;
};

}  // namespace vp
