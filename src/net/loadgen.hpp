// Closed-loop population load generator (DESIGN.md §13).
//
// Drives N simulated clients — each a real RetryingClient on its own
// thread, real sockets, real deadlines — against a served port, cycling a
// set of pre-encoded request payloads chosen by a per-client seeded RNG.
// Closed loop: every client waits for its reply (or structured shed)
// before issuing the next request, so offered load is governed by client
// count and think time, exactly like a fleet of phones.
//
// Determinism story (the part CI leans on): the *request ledger* — which
// payload every client sends, in which order — is a pure function of the
// workload seed (`payload_pick_sequence`), and `deterministic_smoke` runs
// the timing-independent slices of the harness (seeded schedule, admission
// accounting on a saturated gate, the retry/backoff contract against a
// scripted shedding server) into a ledger whose serialization is
// byte-identical across runs with the same seed. Wall-clock measurements
// (latency percentiles, goodput) are reported next to it but never enter
// the ledger. bench/bench_load.cpp is the CLI; tests/test_load.cpp pins
// the invariants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/retry.hpp"
#include "util/bytes.hpp"

namespace vp::load {

/// Per-client closed-loop behaviour.
struct ClientOptions {
  int requests = 30;         ///< requests issued per client (fixed, so
                             ///< offered load is exact: clients * requests)
  double think_ms = 0.0;     ///< pause after every answered request
  double shed_pause_ms = 2.0;  ///< extra pause after a shed reply — a real
                               ///< client backs off; also keeps shed churn
                               ///< from starving admitted work of CPU
  RetryPolicy policy;  ///< transport policy; measurement loops usually set
                       ///< retry_overloaded=false so sheds are counted,
                       ///< not hidden inside retries
};

/// One load phase: who to hammer, with what, how hard.
struct Workload {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Pre-encoded request frames (tag byte + body); each client picks per
  /// request via its seeded RNG.
  std::vector<Bytes> payloads;
  std::size_t clients = 4;
  ClientOptions client;
  std::uint64_t seed = 1;
};

/// Everything one client did. `payload_sequence` is seed-derived and
/// timing-independent; the outcome counters and latencies are measured.
struct ClientLedger {
  std::vector<std::uint32_t> payload_sequence;
  std::uint64_t ok = 0;      ///< LocationResponse with found=true
  std::uint64_t no_fix = 0;  ///< LocationResponse with found=false
  std::uint64_t shed = 0;    ///< RemoteError{kOverloaded} (server shed us)
  std::uint64_t errors = 0;  ///< transport/decoding failures
  RetryStats net;            ///< the client's full retry ledger
  std::vector<double> served_latency_ms;  ///< per answered request
};

/// Aggregated result of run_closed_loop.
struct LoadReport {
  std::vector<ClientLedger> clients;
  double wall_ms = 0;

  std::uint64_t offered() const noexcept;  ///< requests issued
  std::uint64_t served() const noexcept;   ///< ok + no_fix
  std::uint64_t ok() const noexcept;
  std::uint64_t shed() const noexcept;
  std::uint64_t errors() const noexcept;
  std::uint64_t retries() const noexcept;
  std::uint64_t overloaded_replies() const noexcept;
  /// Served requests per second over the phase wall time.
  double goodput_rps() const noexcept;
  /// Percentile (p in [0,100]) over every served request latency.
  double served_percentile_ms(double p) const;
};

/// The seed-derived payload pick sequence for one client: request r of
/// client c is payloads[sequence[r]]. Pure function of its arguments —
/// this IS the request ledger's determinism guarantee.
std::vector<std::uint32_t> payload_pick_sequence(std::uint64_t seed,
                                                 std::size_t client,
                                                 int requests,
                                                 std::size_t n_payloads);

/// Run one closed-loop phase: spawn `clients` threads, release them
/// together, join when every client has issued its full request budget.
LoadReport run_closed_loop(const Workload& workload);

/// The timing-independent smoke ledger: identical across runs for a given
/// seed ("modulo wall-clock timings" — nothing wall-clock enters it).
struct DeterministicLedger {
  std::uint64_t seed = 0;
  std::size_t clients = 0;
  int requests_per_client = 0;
  std::vector<std::uint32_t> request_sequence;  ///< client-major picks
  std::uint64_t offered = 0;   ///< gate phase: try_enter calls
  std::uint64_t admitted = 0;  ///< gate phase: admissions
  std::uint64_t shed = 0;      ///< gate phase: sheds (gate held full)
  std::uint64_t retries = 0;   ///< retry phase: resends after kOverloaded
  std::vector<double> backoff_ms;  ///< retry phase: honored backoff delays

  /// FNV-1a over every field above; two runs with one seed must agree.
  std::uint64_t crc() const noexcept;
  /// One JSON line (section "ledger") — the CI artifact row that gets
  /// diffed across runs.
  std::string to_json() const;
};

/// Run the deterministic slices of the harness:
///   1. the seeded request schedule (no I/O),
///   2. admission accounting against a gate held at capacity — every
///      offer while full sheds, every offer after drain admits,
///   3. the retry/backoff contract: a RetryingClient against a scripted
///      server that sheds the first k replies with kOverloaded, recording
///      the honored backoff schedule.
/// Real sockets are used in (3), but no outcome depends on timing.
DeterministicLedger deterministic_smoke(std::uint64_t seed);

}  // namespace vp::load
