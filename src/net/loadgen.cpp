#include "net/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "net/admission.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace vp::load {
namespace {

/// Per-client RNG stream: decorrelated from neighbouring clients and from
/// the RetryingClient jitter stream (which uses its own derivation below).
Rng client_rng(std::uint64_t seed, std::size_t client) {
  return Rng(seed ^ (0x10adULL << 40) ^
             (static_cast<std::uint64_t>(client) * 0x9e3779b97f4a7c15ULL));
}

void sleep_ms(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::vector<std::uint32_t> payload_pick_sequence(std::uint64_t seed,
                                                 std::size_t client,
                                                 int requests,
                                                 std::size_t n_payloads) {
  std::vector<std::uint32_t> seq;
  seq.reserve(static_cast<std::size_t>(std::max(requests, 0)));
  Rng rng = client_rng(seed, client);
  for (int r = 0; r < requests; ++r) {
    seq.push_back(static_cast<std::uint32_t>(
        n_payloads == 0 ? 0 : rng.uniform_u64(n_payloads)));
  }
  return seq;
}

std::uint64_t LoadReport::offered() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.payload_sequence.size();
  return n;
}
std::uint64_t LoadReport::served() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.ok + c.no_fix;
  return n;
}
std::uint64_t LoadReport::ok() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.ok;
  return n;
}
std::uint64_t LoadReport::shed() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.shed;
  return n;
}
std::uint64_t LoadReport::errors() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.errors;
  return n;
}
std::uint64_t LoadReport::retries() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.net.retries;
  return n;
}
std::uint64_t LoadReport::overloaded_replies() const noexcept {
  std::uint64_t n = 0;
  for (const auto& c : clients) n += c.net.overloaded;
  return n;
}
double LoadReport::goodput_rps() const noexcept {
  return wall_ms <= 0 ? 0.0
                      : static_cast<double>(served()) / (wall_ms / 1e3);
}
double LoadReport::served_percentile_ms(double p) const {
  std::vector<double> all;
  for (const auto& c : clients) {
    all.insert(all.end(), c.served_latency_ms.begin(),
               c.served_latency_ms.end());
  }
  if (all.empty()) return 0.0;
  std::sort(all.begin(), all.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(all.size() - 1);
  return all[static_cast<std::size_t>(rank)];
}

LoadReport run_closed_loop(const Workload& workload) {
  LoadReport report;
  report.clients.resize(workload.clients);

  // Start barrier: every client connects and computes its schedule first,
  // then all are released together so the phase's offered load steps up as
  // one front instead of a ragged ramp.
  std::mutex start_mutex;
  std::condition_variable start_cv;
  bool go = false;
  std::size_t ready = 0;

  std::vector<std::thread> threads;
  threads.reserve(workload.clients);
  for (std::size_t c = 0; c < workload.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientLedger& ledger = report.clients[c];
      ledger.payload_sequence = payload_pick_sequence(
          workload.seed, c, workload.client.requests,
          workload.payloads.size());
      RetryingClient net(workload.host, workload.port, workload.client.policy,
                         workload.seed ^ (0xc11eULL << 32) ^ c);
      {
        std::unique_lock lock(start_mutex);
        ++ready;
        start_cv.notify_all();
        start_cv.wait(lock, [&] { return go; });
      }
      for (const std::uint32_t pick : ledger.payload_sequence) {
        Timer t;
        try {
          const Bytes reply = net.request(workload.payloads[pick]);
          const double ms = t.millis();
          const LocationResponse resp = LocationResponse::decode(reply);
          ledger.served_latency_ms.push_back(ms);
          if (resp.found) {
            ++ledger.ok;
          } else {
            ++ledger.no_fix;
          }
          sleep_ms(workload.client.think_ms);
        } catch (const RemoteError& e) {
          if (e.code() == ErrorResponse::kOverloaded) {
            ++ledger.shed;
            sleep_ms(workload.client.shed_pause_ms);
          } else {
            ++ledger.errors;
          }
        } catch (const Error&) {
          // Transport budget exhausted or a fault-mangled reply; the
          // request is charged to the ledger either way.
          ++ledger.errors;
        }
      }
      ledger.net = net.stats();
    });
  }

  Timer wall;
  {
    std::unique_lock lock(start_mutex);
    start_cv.wait(lock, [&] { return ready == workload.clients; });
    go = true;
    wall.reset();
    start_cv.notify_all();
  }
  for (auto& t : threads) t.join();
  report.wall_ms = wall.millis();
  return report;
}

std::uint64_t DeterministicLedger::crc() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, seed);
  h = fnv1a(h, clients);
  h = fnv1a(h, static_cast<std::uint64_t>(requests_per_client));
  for (const std::uint32_t v : request_sequence) h = fnv1a(h, v);
  h = fnv1a(h, offered);
  h = fnv1a(h, admitted);
  h = fnv1a(h, shed);
  h = fnv1a(h, retries);
  for (const double b : backoff_ms) h = fnv1a(h, std::bit_cast<std::uint64_t>(b));
  return h;
}

std::string DeterministicLedger::to_json() const {
  std::uint64_t sequence_crc = 0xcbf29ce484222325ULL;
  for (const std::uint32_t v : request_sequence) {
    sequence_crc = fnv1a(sequence_crc, v);
  }
  std::ostringstream out;
  out << "{\"bench\":\"load\",\"section\":\"ledger\",\"seed\":" << seed
      << ",\"clients\":" << clients
      << ",\"requests_per_client\":" << requests_per_client
      << ",\"sequence_crc\":" << sequence_crc << ",\"offered\":" << offered
      << ",\"admitted\":" << admitted << ",\"shed\":" << shed
      << ",\"retries\":" << retries << ",\"backoff_ms\":[";
  char buf[32];
  for (std::size_t i = 0; i < backoff_ms.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.4f", backoff_ms[i]);
    out << (i == 0 ? "" : ",") << buf;
  }
  out << "],\"crc\":" << crc() << "}";
  return out.str();
}

DeterministicLedger deterministic_smoke(std::uint64_t seed) {
  DeterministicLedger ledger;
  ledger.seed = seed;
  ledger.clients = 4;
  ledger.requests_per_client = 10;

  // 1. The seeded request schedule — exactly what run_closed_loop's
  // clients would send against a 5-payload workload.
  for (std::size_t c = 0; c < ledger.clients; ++c) {
    const auto seq = payload_pick_sequence(
        seed, c, ledger.requests_per_client, /*n_payloads=*/5);
    ledger.request_sequence.insert(ledger.request_sequence.end(), seq.begin(),
                                   seq.end());
  }

  // 2. Admission accounting with the gate pinned at capacity: outcomes
  // depend only on the gate's state, never on timing.
  constexpr std::size_t kCap = 4;
  constexpr std::size_t kBurst = 8;
  AdmissionGate gate(kCap);
  for (std::size_t i = 0; i < kCap; ++i) gate.try_enter();  // fill to cap
  for (std::size_t i = 0; i < kBurst; ++i) gate.try_enter();  // all shed
  for (std::size_t i = 0; i < kCap; ++i) gate.exit();  // drain
  for (std::size_t i = 0; i < kBurst; ++i) {  // all admitted
    gate.try_enter();
    gate.exit();
  }
  ledger.offered = gate.admitted() + gate.shed();
  ledger.admitted = gate.admitted();
  ledger.shed = gate.shed();

  // 3. The retry/backoff contract against a scripted shedding server: the
  // first k replies are kOverloaded, then the request is echoed. k and
  // every recorded backoff delay derive from the seed alone.
  const int k = 2 + static_cast<int>(seed % 3);
  TcpListener listener(0);
  std::thread server([&] {
    Socket conn = listener.accept_one();
    Bytes request;
    int replies = 0;
    while (conn.recv_message(request)) {
      if (replies < k) {
        ErrorResponse err;
        err.code = ErrorResponse::kOverloaded;
        err.message = "scripted shed";
        conn.send_message(err.encode());
      } else {
        conn.send_message(request);
      }
      ++replies;
    }
  });

  RetryPolicy policy;
  policy.max_attempts = k + 2;
  policy.backoff_ms = 5.0;
  policy.backoff_factor = 2.0;
  policy.max_backoff_ms = 40.0;
  policy.jitter = 0.25;
  policy.io_timeout_ms = 5000;
  policy.connect_timeout_ms = 5000;
  RetryingClient client("127.0.0.1", listener.port(), policy, seed);
  client.set_sleep_fn(
      [&](double ms) { ledger.backoff_ms.push_back(ms); });
  const Bytes probe{0xAB, 0xCD};
  const Bytes reply = client.request(probe);
  VP_ASSERT(reply == probe);
  ledger.retries = client.stats().retries;
  client.close();
  server.join();
  return ledger;
}

}  // namespace vp::load
