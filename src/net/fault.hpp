// Deterministic fault injection for the client<->server link.
//
// FaultProxy is an in-process TCP proxy: it listens on its own loopback
// port, opens one upstream connection per client session, and forwards the
// framed request/response protocol message-by-message, rolling a seeded RNG
// per message to delay, drop, truncate, corrupt, duplicate, or sever
// traffic. Pointing a RetryingClient at the proxy port exercises the real
// sockets, real deadlines, and real retry machinery on both ends — tests
// and bench_fault_recovery share this one shim (DESIGN.md §8).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tcp.hpp"
#include "util/rng.hpp"

namespace vp {

/// Per-message fault probabilities. At most one structural fault fires per
/// message (priority: sever > drop > truncate > corrupt > duplicate);
/// delay is rolled independently and can combine with a clean forward.
struct FaultConfig {
  double sever = 0;      ///< close both directions mid-session
  double drop = 0;       ///< swallow the message (receiver hits its deadline)
  double truncate = 0;   ///< deliver a strict prefix, then sever
  double corrupt = 0;    ///< flip 1-8 random payload bits (framing intact)
  double duplicate = 0;  ///< requests only: forward twice, discard the
                         ///< extra response (models a blind retransmit)
  double delay = 0;      ///< hold the message before forwarding
  double delay_ms = 20.0;
  std::uint64_t seed = 1;

  /// Evenly spread `rate` across sever/drop/truncate/corrupt/duplicate
  /// (the soak-test shape: total message fault probability == rate).
  static FaultConfig uniform(double rate, std::uint64_t seed);
};

/// Injection counts, readable from any thread while the proxy runs.
struct FaultStats {
  std::atomic<std::uint64_t> sessions{0};
  std::atomic<std::uint64_t> messages{0};  ///< both directions
  std::atomic<std::uint64_t> severed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> delayed{0};

  std::uint64_t faults() const noexcept {
    return severed.load() + dropped.load() + truncated.load() +
           corrupted.load() + duplicated.load();
  }
};

class FaultProxy {
 public:
  /// Starts listening on an ephemeral loopback port and forwarding to
  /// 127.0.0.1:upstream_port.
  FaultProxy(std::uint16_t upstream_port, FaultConfig config);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Port clients should connect to.
  std::uint16_t port() const noexcept { return listener_.port(); }

  const FaultStats& stats() const noexcept { return stats_; }

  /// Stop accepting, unwind every session, join all threads. Idempotent.
  void stop();

 private:
  void accept_loop();
  void session(Socket client, std::uint64_t session_seed);

  std::uint16_t upstream_port_;
  FaultConfig config_;
  FaultStats stats_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::mutex sessions_mutex_;
  std::vector<std::thread> sessions_;
  std::thread acceptor_;
};

}  // namespace vp
