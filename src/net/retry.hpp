// Client-side retry transport: request/response over TCP with per-attempt
// deadlines, reconnect-and-resend on timeout/EOF, and bounded exponential
// backoff with jitter. VisualPrint queries are idempotent (a fingerprint
// query can be answered any number of times), so resending a request whose
// response never arrived is always safe — the paper's mobile uplink drops
// and stalls are exactly the faults this absorbs (DESIGN.md §8).
//
// Counters surface through the obs registry (net.retries, net.timeouts,
// net.conn_dropped, net.remote_errors) and through RetryStats for callers
// that need exact values in VP_OBS=OFF builds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/tcp.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace vp {

struct RetryPolicy {
  int max_attempts = 5;          ///< total tries per request (first + retries)
  double backoff_ms = 25.0;      ///< delay before the first retry
  double backoff_factor = 2.0;   ///< growth per retry, capped below
  double max_backoff_ms = 1000.0;
  double jitter = 0.25;          ///< +/- fraction applied to each delay
  int io_timeout_ms = 2000;      ///< per-attempt recv/send deadline; <=0 none
  int connect_timeout_ms = 2000; ///< connect deadline; <=0 blocking
  std::size_t max_response_bytes = 256 * 1024 * 1024;
  /// A kBadRequest ErrorResponse usually means the request was corrupted
  /// in flight (the server could not even decode it); since queries are
  /// idempotent, resending the original bytes is worth the attempts.
  bool retry_bad_request = true;
  /// A kOverloaded ErrorResponse is the server shedding load (admission
  /// control, DESIGN.md §13): transient by definition, so the default is
  /// to resend on the same connection after the honored backoff — exactly
  /// the pause the server is asking for. Load-measurement clients set
  /// this false to count sheds instead of hiding them behind retries;
  /// exhaustion then throws RemoteError{kOverloaded} either way.
  bool retry_overloaded = true;
};

/// Per-client counters (exact, independent of VP_OBS).
struct RetryStats {
  std::uint64_t attempts = 0;       ///< request send attempts
  std::uint64_t retries = 0;        ///< attempts after the first
  std::uint64_t timeouts = 0;       ///< attempts ended by a deadline
  std::uint64_t conn_dropped = 0;   ///< attempts ended by EOF/reset/refusal
  std::uint64_t remote_errors = 0;  ///< structured ErrorResponse replies
  std::uint64_t stale_oracles = 0;  ///< kStaleOracle replies (never retried
                                    ///< here; RemoteLocalizer refreshes)
  std::uint64_t overloaded = 0;     ///< kOverloaded replies (server shed us)
  std::uint64_t reconnects = 0;     ///< sockets (re-)established
};

/// One logical connection to a VisualPrint server that survives transport
/// faults. Not thread-safe: one instance per client thread.
class RetryingClient {
 public:
  RetryingClient(std::string host, std::uint16_t port, RetryPolicy policy = {},
                 std::uint64_t seed = 1);

  /// Send `payload` as one framed request and return the framed response.
  /// Retries per the policy on timeout, EOF, connection failure, and (when
  /// enabled) kBadRequest error replies. Throws the last transport error
  /// (TimeoutError/IoError) once attempts are exhausted, and RemoteError
  /// immediately for non-retryable ErrorResponse replies.
  Bytes request(std::span<const std::uint8_t> payload);

  bool connected() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }

  const RetryStats& stats() const noexcept { return stats_; }
  const RetryPolicy& policy() const noexcept { return policy_; }

  /// Replace the backoff sleep (tests inject a recorder; default really
  /// sleeps the given milliseconds).
  void set_sleep_fn(std::function<void(double)> fn) {
    sleep_fn_ = std::move(fn);
  }

  /// The jittered backoff delay before retry number `retry` (1-based),
  /// exposed so tests can pin the bounded-growth contract.
  double backoff_for(int retry, double unit_jitter) const noexcept;

 private:
  void ensure_connected();

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  Rng rng_;
  Socket sock_;
  RetryStats stats_;
  std::function<void(double)> sleep_fn_;
};

}  // namespace vp
