// TCP transport for running the VisualPrint client and cloud service as
// real processes. RAII sockets, length-prefixed message framing, per-socket
// deadlines, and a concurrent accept loop that borrows the shared
// ThreadPool (see examples/vp_server_main.cpp, examples/vp_client_main.cpp).
//
// Framing: every message is u32 little-endian length followed by that many
// bytes (the encoded wire messages of net/wire.hpp). Length is capped to
// protect the receiver from hostile peers.
//
// Fault model (DESIGN.md §8): deadlines turn a stalled peer into a
// TimeoutError instead of a wedged thread; `serve` turns handler failures
// into structured ErrorResponse (`VPE!`) replies instead of dropped
// connections, and counts every failure class in ServeStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace vp {

class AdmissionGate;
class ThreadPool;

/// Owning socket handle (move-only RAII).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Per-socket deadlines (SO_RCVTIMEO / SO_SNDTIMEO). Once set, a recv or
  /// send that stalls past the deadline throws TimeoutError instead of
  /// blocking forever. `ms <= 0` clears the deadline (block indefinitely).
  void set_recv_timeout(int ms);
  void set_send_timeout(int ms);

  /// Send all bytes (loops over partial writes). Throws IoError, or
  /// TimeoutError when a send deadline is set and expires.
  void send_all(std::span<const std::uint8_t> data);

  /// Receive exactly n bytes. Returns false on clean EOF at a message
  /// boundary (start of the read); throws IoError on partial reads/errors
  /// and TimeoutError when a recv deadline expires.
  bool recv_exact(std::span<std::uint8_t> out);

  /// Length-prefixed framing over this socket.
  void send_message(std::span<const std::uint8_t> payload);
  /// Returns false on clean EOF. Throws DecodeError for oversized frames
  /// (checked against `max_bytes` before any allocation).
  bool recv_message(Bytes& out, std::size_t max_bytes = 256 * 1024 * 1024);

 private:
  int fd_ = -1;
};

/// Connect to host:port (IPv4 dotted or "localhost"). Throws IoError on
/// refusal/unreachability and TimeoutError when `connect_timeout_ms > 0`
/// and the peer does not answer the handshake in time (a dead IP would
/// otherwise block for the kernel's multi-minute SYN retry schedule).
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   int connect_timeout_ms = 0);

/// Failure/throughput counters for one `serve` call. All fields are
/// monotonic; read them from any thread. `serve` counts failures instead
/// of swallowing them — a misbehaving client costs its own connection and
/// leaves an audit trail here (mirrored into the obs registry under
/// net.server.*).
struct ServeStats {
  std::atomic<std::uint64_t> accepted{0};        ///< connections accepted
  std::atomic<std::uint64_t> responses{0};       ///< replies sent (incl. errors)
  std::atomic<std::uint64_t> handler_errors{0};  ///< handler threw -> VPE! reply
  std::atomic<std::uint64_t> decode_errors{0};   ///< unframeable input -> VPE! + close
  std::atomic<std::uint64_t> timeouts{0};        ///< peer stalled past deadline
  std::atomic<std::uint64_t> io_errors{0};       ///< connection died mid-exchange
  std::atomic<std::uint64_t> shed{0};            ///< admission-shed -> VPE! kOverloaded
};

/// Tuning for `TcpListener::serve`.
struct ServeOptions {
  /// Borrowed worker pool; connections are serviced concurrently on it.
  /// nullptr = service each connection inline on the accept thread (the
  /// pre-existing single-client behaviour).
  ThreadPool* pool = nullptr;
  /// Bound on concurrently serviced connections. Accepting blocks once the
  /// bound is reached; deadlines guarantee the wait is finite.
  std::size_t max_connections = 32;
  /// Per-socket recv/send deadline for accepted connections; a stalled
  /// client can hold a worker for at most this long. <= 0 disables.
  int io_timeout_ms = 10'000;
  /// Frame size cap for incoming requests.
  std::size_t max_message_bytes = 256 * 1024 * 1024;
  /// How often the accept loop re-checks `keep_going` while idle.
  int poll_interval_ms = 50;
  /// Optional request-level admission gate (borrowed; see
  /// net/admission.hpp). When set, every received frame must enter the
  /// gate before the handler runs; a shed request is answered with a
  /// structured ErrorResponse{kOverloaded} on the live connection — the
  /// connection survives, the reply is sent after the slot is released so
  /// a slow reader never holds capacity. nullptr = admit everything.
  /// Servers that should shed only their expensive request kind (e.g.
  /// queries but not stats scrapes) gate inside their handler instead —
  /// VisualPrintServer::handle_query does exactly that.
  AdmissionGate* admission = nullptr;
};

/// Listening socket bound to 127.0.0.1:port (port 0 = ephemeral).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port, int backlog = 8);

  /// Port actually bound (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Block until one client connects.
  Socket accept_one();

  /// Wait up to `timeout_ms` for a client; nullopt on timeout.
  std::optional<Socket> accept_for(int timeout_ms);

  /// Serve until `handler` returns false. One response per request; the
  /// handler runs once per received frame. Handler exceptions become
  /// structured ErrorResponse replies (the connection survives); framing
  /// and I/O failures close only the offending connection. With
  /// `options.pool` set, connections are serviced concurrently (bounded by
  /// `options.max_connections`); `serve` returns only after every
  /// in-flight connection has drained.
  using Handler = std::function<Bytes(std::span<const std::uint8_t>)>;
  void serve(const Handler& handler, const std::function<bool()>& keep_going,
             const ServeOptions& options = {}, ServeStats* stats = nullptr);

 private:
  Socket listen_fd_;
  std::uint16_t port_ = 0;
};

}  // namespace vp
