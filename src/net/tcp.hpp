// Minimal TCP transport for running the VisualPrint client and cloud
// service as real processes. RAII sockets, length-prefixed message
// framing, and a simple blocking accept loop — enough to demonstrate the
// protocol end-to-end over a real network stack (see
// examples/vp_server_main.cpp and examples/vp_client_main.cpp).
//
// Framing: every message is u32 little-endian length followed by that many
// bytes (the encoded wire messages of net/wire.hpp). Length is capped to
// protect the receiver from hostile peers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "util/bytes.hpp"

namespace vp {

/// Owning socket handle (move-only RAII).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Send all bytes (loops over partial writes). Throws IoError.
  void send_all(std::span<const std::uint8_t> data);

  /// Receive exactly n bytes. Returns false on clean EOF at a message
  /// boundary (start of the read); throws IoError on partial reads/errors.
  bool recv_exact(std::span<std::uint8_t> out);

  /// Length-prefixed framing over this socket.
  void send_message(std::span<const std::uint8_t> payload);
  /// Returns false on clean EOF. Throws DecodeError for oversized frames.
  bool recv_message(Bytes& out, std::size_t max_bytes = 256 * 1024 * 1024);

 private:
  int fd_ = -1;
};

/// Connect to host:port (IPv4 dotted or "localhost"). Throws IoError.
Socket tcp_connect(const std::string& host, std::uint16_t port);

/// Listening socket bound to 127.0.0.1:port (port 0 = ephemeral).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);

  /// Port actually bound (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Block until one client connects.
  Socket accept_one();

  /// Serve forever (or until `handler` returns false): one client at a
  /// time, one response per request. Used by the demo cloud service.
  using Handler = std::function<Bytes(std::span<const std::uint8_t>)>;
  void serve(const Handler& handler, const std::function<bool()>& keep_going);

 private:
  Socket listen_fd_;
  std::uint16_t port_ = 0;
};

}  // namespace vp
