#include "net/admission.hpp"

namespace vp {

bool AdmissionGate::try_enter() noexcept {
  const std::size_t cap = cap_.load(std::memory_order_relaxed);
  std::size_t cur = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    if (cap != 0 && cur >= cap) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // CAS keeps the cap strict: two racing admitters cannot both move
    // inflight past it, so `inflight() <= cap` holds at every instant.
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now = cur + 1;
  std::size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void AdmissionGate::exit() noexcept {
  inflight_.fetch_sub(1, std::memory_order_release);
}

double AdmissionGate::shed_rate() const noexcept {
  const double a = static_cast<double>(admitted());
  const double s = static_cast<double>(shed());
  return a + s == 0.0 ? 0.0 : s / (a + s);
}

}  // namespace vp
