#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace vp {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw IoError{std::string(what) + ": " + std::strerror(errno)};
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(std::span<const std::uint8_t> data) {
  VP_REQUIRE(valid(), "send on closed socket");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out) {
  VP_REQUIRE(valid(), "recv on closed socket");
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at message boundary
      throw IoError{"connection closed mid-message"};
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::send_message(std::span<const std::uint8_t> payload) {
  ByteWriter w(4 + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  send_all(w.bytes());
}

bool Socket::recv_message(Bytes& out, std::size_t max_bytes) {
  std::uint8_t header[4];
  if (!recv_exact(header)) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > max_bytes) {
    throw DecodeError{"frame length " + std::to_string(len) +
                      " exceeds limit"};
  }
  out.resize(len);
  if (len > 0 && !recv_exact(out)) {
    throw IoError{"connection closed mid-message"};
  }
  return true;
}

Socket tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw IoError{"invalid IPv4 address: " + host};
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  listen_fd_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd, 8) != 0) throw_errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept_one() {
  for (;;) {
    const int fd = ::accept(listen_fd_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void TcpListener::serve(const Handler& handler,
                        const std::function<bool()>& keep_going) {
  while (keep_going()) {
    Socket client = accept_one();
    Bytes request;
    try {
      while (client.recv_message(request)) {
        const Bytes response = handler(request);
        client.send_message(response);
      }
    } catch (const Error&) {
      // A misbehaving client only costs its own connection.
    }
  }
}

}  // namespace vp
