#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>

#include "net/admission.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw IoError{std::string(what) + ": " + std::strerror(errno)};
}

bool errno_is_timeout() noexcept {
  return errno == EAGAIN || errno == EWOULDBLOCK;
}

void set_socket_timeout(int fd, int optname, int ms) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  }
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(timeout)");
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_recv_timeout(int ms) {
  VP_REQUIRE(valid(), "timeout on closed socket");
  set_socket_timeout(fd_, SO_RCVTIMEO, ms);
}

void Socket::set_send_timeout(int ms) {
  VP_REQUIRE(valid(), "timeout on closed socket");
  set_socket_timeout(fd_, SO_SNDTIMEO, ms);
}

void Socket::send_all(std::span<const std::uint8_t> data) {
  VP_REQUIRE(valid(), "send on closed socket");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno_is_timeout()) throw TimeoutError{"send deadline expired"};
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(std::span<std::uint8_t> out) {
  VP_REQUIRE(valid(), "recv on closed socket");
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd_, out.data() + got, out.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno_is_timeout()) throw TimeoutError{"recv deadline expired"};
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at message boundary
      throw IoError{"connection closed mid-message"};
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::send_message(std::span<const std::uint8_t> payload) {
  ByteWriter w(4 + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  send_all(w.bytes());
}

bool Socket::recv_message(Bytes& out, std::size_t max_bytes) {
  std::uint8_t header[4];
  if (!recv_exact(header)) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > max_bytes) {
    throw DecodeError{"frame length " + std::to_string(len) +
                      " exceeds limit"};
  }
  out.resize(len);
  if (len > 0 && !recv_exact(out)) {
    throw IoError{"connection closed mid-message"};
  }
  return true;
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   int connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw IoError{"invalid IPv4 address: " + host};
  }

  if (connect_timeout_ms > 0) {
    // Non-blocking connect + poll: a dead IP fails in connect_timeout_ms
    // instead of the kernel's multi-minute SYN retry schedule.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      throw_errno("fcntl");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno != EINPROGRESS) throw_errno("connect");
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, connect_timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) throw_errno("poll");
      if (rc == 0) {
        throw TimeoutError{"connect to " + host + ":" + std::to_string(port)};
      }
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("getsockopt(SO_ERROR)");
      }
      if (err != 0) {
        errno = err;
        throw_errno("connect");
      }
    }
    if (::fcntl(fd, F_SETFL, flags) != 0) throw_errno("fcntl");
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) != 0) {
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  listen_fd_ = Socket(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd, backlog) != 0) throw_errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::accept_one() {
  for (;;) {
    const int fd = ::accept(listen_fd_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

std::optional<Socket> TcpListener::accept_for(int timeout_ms) {
  pollfd pfd{listen_fd_.fd(), POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw_errno("poll");
  if (rc == 0) return std::nullopt;
  return accept_one();
}

namespace {

/// One connection's request/response loop. Handler failures become
/// structured ErrorResponse replies so the client learns *why*; only
/// framing and transport failures end the connection.
void service_connection(Socket& client, const TcpListener::Handler& handler,
                        const ServeOptions& options, ServeStats& stats) {
  Bytes request;
  try {
    for (;;) {
      try {
        if (!client.recv_message(request, options.max_message_bytes)) {
          return;  // clean hangup
        }
      } catch (const DecodeError& e) {
        // Oversized frame header: the stream position is unrecoverable, so
        // answer with a structured error and drop the connection.
        stats.decode_errors.fetch_add(1, std::memory_order_relaxed);
        VP_OBS_COUNT("net.server.decode_errors", 1);
        ErrorResponse err;
        err.code = ErrorResponse::kBadRequest;
        err.message = e.what();
        client.send_message(err.encode());
        stats.responses.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Bytes response;
      {
        // The admission slot spans only handler execution: the reply is
        // sent after the ticket releases, so a slow-reading client cannot
        // hold server capacity through its own socket.
        const AdmissionTicket ticket(options.admission);
        if (!ticket.admitted()) {
          stats.shed.fetch_add(1, std::memory_order_relaxed);
          VP_OBS_COUNT("net.server.shed", 1);
          ErrorResponse err;
          err.code = ErrorResponse::kOverloaded;
          err.message = "server at capacity (" +
                        std::to_string(options.admission->max_inflight()) +
                        " inflight requests)";
          response = err.encode();
        } else {
          try {
            response = handler(request);
          } catch (const DecodeError& e) {
            stats.handler_errors.fetch_add(1, std::memory_order_relaxed);
            VP_OBS_COUNT("net.server.handler_errors", 1);
            ErrorResponse err;
            err.code = ErrorResponse::kBadRequest;
            err.message = e.what();
            response = err.encode();
          } catch (const std::exception& e) {
            stats.handler_errors.fetch_add(1, std::memory_order_relaxed);
            VP_OBS_COUNT("net.server.handler_errors", 1);
            ErrorResponse err;
            err.code = ErrorResponse::kHandlerFailure;
            err.message = e.what();
            response = err.encode();
          }
        }
      }
      client.send_message(response);
      stats.responses.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const TimeoutError&) {
    // Peer stalled past the deadline: free the worker, count it.
    stats.timeouts.fetch_add(1, std::memory_order_relaxed);
    VP_OBS_COUNT("net.server.timeouts", 1);
  } catch (const Error&) {
    stats.io_errors.fetch_add(1, std::memory_order_relaxed);
    VP_OBS_COUNT("net.server.io_errors", 1);
  }
}

}  // namespace

void TcpListener::serve(const Handler& handler,
                        const std::function<bool()>& keep_going,
                        const ServeOptions& options, ServeStats* stats) {
  ServeStats local_stats;
  ServeStats& s = stats ? *stats : local_stats;

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t active = 0;

  while (keep_going()) {
    std::optional<Socket> client = accept_for(options.poll_interval_ms);
    if (!client) continue;
    s.accepted.fetch_add(1, std::memory_order_relaxed);
    VP_OBS_COUNT("net.server.accepted", 1);
    if (options.io_timeout_ms > 0) {
      client->set_recv_timeout(options.io_timeout_ms);
      client->set_send_timeout(options.io_timeout_ms);
    }
    if (options.pool == nullptr) {
      service_connection(*client, handler, options, s);
      continue;
    }
    {
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return active < options.max_connections; });
      ++active;
      // Connections currently handed to workers (servicing or queued on
      // the pool): the backlog signal behind admission decisions.
      VP_OBS_GAUGE_SET("server.queue_depth", static_cast<double>(active));
    }
    // shared_ptr because std::function requires copyable captures.
    auto conn = std::make_shared<Socket>(std::move(*client));
    options.pool->submit([&handler, &options, &s, &mutex, &cv, &active,
                          conn] {
      service_connection(*conn, handler, options, s);
      // Notify under the lock: the drain below may destroy `cv` the moment
      // it observes active == 0, and it can only re-check the predicate
      // once this task has released the mutex — i.e. after notify_all has
      // fully returned.
      std::lock_guard lock(mutex);
      --active;
      VP_OBS_GAUGE_SET("server.queue_depth", static_cast<double>(active));
      cv.notify_all();
    });
  }
  // Drain: serve owns the handler/options lifetimes the tasks reference.
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return active == 0; });
}

}  // namespace vp
