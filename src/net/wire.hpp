// Wire formats for the client <-> cloud protocol.
//
// Four message types cover the system: the fingerprint query (the ~200
// most-unique keypoints, the paper's ~30-50 KB upload), the whole-frame
// upload (the baseline VisualPrint replaces), the oracle download (the
// ~10 MB GZIP-compressed Bloom tables), and the location response.
// All messages carry a 4-byte magic + u16 version header.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "features/keypoint.hpp"
#include "features/pq.hpp"
#include "geometry/pose.hpp"
#include "hashing/oracle.hpp"
#include "util/bytes.hpp"

namespace vp {

/// One compact (v4) query feature on the wire: quantized pixel position
/// (2 x u16, quarter-pixel fixed point) plus the 16-byte PQ code — 20
/// bytes instead of the 144-byte raw feature (7.2x). Scale and
/// orientation are dropped: the server-side localization pipeline reads
/// only pixel position and descriptor.
inline constexpr std::size_t kCompactFeatureWireBytes = 2 * 2 + kPqCodeBytes;

/// Fixed-point scale of compact keypoint coordinates: quarter pixels
/// (u16 range covers images up to 16383 px wide).
inline constexpr float kCompactCoordScale = 4.0f;

/// Client -> server: selected keypoints of one frame, plus the camera
/// geometry the Fig. 12 localization needs (image size and field of view).
struct FingerprintQuery {
  std::uint32_t frame_id = 0;
  double capture_time = 0;  ///< seconds since session start
  std::uint16_t image_width = 1920;
  std::uint16_t image_height = 1080;
  float fov_h = 1.15192f;   ///< horizontal field of view, radians
  /// Target place (map shard). Empty = let the server fan out across all
  /// shards and answer with the best-scoring place.
  std::string place;
  /// Epoch of the oracle the client selected keypoints against; 0 = the
  /// client holds no epoch'd oracle (skip the staleness check). A nonzero
  /// epoch that no longer matches the place's published epoch makes the
  /// server answer `kStaleOracle` instead of localizing against keypoints
  /// ranked by an outdated uniqueness table.
  std::uint32_t oracle_epoch = 0;
  std::vector<Feature> features;
  /// Compact uplink (v4): one kPqCodeBytes PQ code per feature, flat
  /// kPqCodeBytes stride, index-parallel with `features`. Non-empty codes
  /// switch encode() to the v4 compact wire format — quantized keypoint
  /// positions plus codes, no raw descriptors — cutting the per-feature
  /// payload from 144 to 20 bytes. Empty codes (the default) keep the raw
  /// v2/v3 format, so compact and raw clients interoperate untouched.
  Bytes codes;
  /// Epoch of the place's codebook the codes were encoded against (the
  /// OracleDownload that carried it). Required nonzero on the v4 wire; a
  /// mismatch with the place's published epoch makes the server answer
  /// `kStaleOracle` so the client refreshes codebook + oracle and resends.
  std::uint32_t codebook_epoch = 0;
  /// Cross-process trace context (v3). A nonzero id correlates this query
  /// with the client's FrameTrace; the server keys its handler trace and
  /// slow-query log entry by it. 0 = untraced — the query encodes as v2,
  /// byte-identical to a pre-trace client, so traced and untraced peers
  /// interoperate without negotiation.
  std::uint64_t trace_id = 0;
  /// Bit 0 (`obs::kTraceSampled`): ask the server to echo its span block
  /// back on the LocationResponse. Other bits reserved (must decode, are
  /// ignored).
  std::uint8_t trace_flags = 0;

  /// True when this query ships PQ codes instead of raw descriptors.
  bool compact() const noexcept { return !codes.empty(); }

  Bytes encode() const;
  static FingerprintQuery decode(std::span<const std::uint8_t> data);

  /// Exact wire size without materializing the buffer.
  std::size_t wire_size() const noexcept;
};

/// Client -> server: a whole compressed frame (baseline offload).
struct FrameUpload {
  std::uint32_t frame_id = 0;
  double capture_time = 0;
  std::uint8_t codec = 0;  ///< 0 = PNG, 1 = JPEG, 2 = raw
  Bytes payload;           ///< encoded image bytes

  Bytes encode() const;
  static FrameUpload decode(std::span<const std::uint8_t> data);
};

/// One server-side span echoed back on a LocationResponse v3: a compact
/// projection of obs::SpanRecord (f32 times, i16 parent) sized for the
/// wire — a full server trace is ~5 spans, so the block stays under 200
/// bytes.
struct WireSpan {
  std::string name;          ///< stage name ("decode", "lsh.retrieve", ...)
  std::int16_t parent = -1;  ///< index within the same block; -1 for roots
  float start_ms = 0;        ///< offset from the server trace epoch
  float duration_ms = 0;

  /// Decode rejects blocks claiming more spans than this — a handler
  /// trace is ~5 spans deep, so anything larger is corruption.
  static constexpr std::size_t kMaxWireSpans = 64;
};

/// Server -> client: estimated 6-DoF pose for a query.
struct LocationResponse {
  std::uint32_t frame_id = 0;
  bool found = false;
  Vec3 position;
  double yaw = 0, pitch = 0, roll = 0;
  double residual = 0;
  std::uint32_t matched_keypoints = 0;
  std::string place_label;  ///< e.g. "Paris, Louvre, Denon Wing" (Fig. 1)
  /// Shard id that answered (matters for fan-out queries; echoes the
  /// request's place for targeted ones, "" for a miss on an empty store).
  std::string place;
  /// Echo of the query's trace_id (v3). 0 = untraced — encodes as v2, so
  /// a v2 client that sent no trace context gets a v2 reply.
  std::uint64_t trace_id = 0;
  /// Server handler span block (v3, present only when the query set the
  /// sampled flag). Empty blocks encode as zero spans, not as v2: the
  /// trace_id echo alone is worth the 9 bytes.
  std::vector<WireSpan> server_spans;

  Bytes encode() const;
  static LocationResponse decode(std::span<const std::uint8_t> data);
};

/// Server -> client: uniqueness-oracle snapshot, zlib-compressed ("we
/// compress them with GZIP for efficient retrieval"). Carries the shard's
/// place id and publish epoch so a client can cache one oracle per place
/// and detect staleness (see FingerprintQuery::oracle_epoch).
struct OracleDownload {
  std::uint32_t epoch = 0;  ///< shard publish epoch at pack time
  std::string place;        ///< owning shard ("" = pre-shard snapshot)
  Bytes compressed;  ///< zlib stream of UniquenessOracle::serialize()
  /// The place's PQ codebook (exactly kPqCodebookBytes), present when the
  /// shard serves product-quantized storage — the client encodes compact
  /// (v4) query fingerprints against it. Empty when the shard is exact-
  /// only; the message then encodes as v2, byte-identical to a pre-compact
  /// server, so old clients and codebook-less servers interoperate.
  Bytes codebook;

  static OracleDownload pack(const UniquenessOracle& oracle,
                             std::uint32_t epoch, std::string place = {},
                             std::span<const std::uint8_t> codebook = {});
  UniquenessOracle unpack() const;

  Bytes encode() const;
  static OracleDownload decode(std::span<const std::uint8_t> data);
};

/// Client -> server: fetch the oracle of a named place. The legacy bare
/// `'O'` request (empty body) still resolves to the server's default
/// place; this message targets any shard.
struct OracleRequest {
  std::string place;  ///< "" = the server's default place

  Bytes encode() const;
  static OracleRequest decode(std::span<const std::uint8_t> data);
};

/// Single-byte request tags for the framed TCP demo protocol
/// (examples/vp_server_main.cpp): the first payload byte selects the
/// handler; anything after it is the encoded request message, if any.
inline constexpr std::uint8_t kOracleRequest = 'O';
inline constexpr std::uint8_t kQueryRequest = 'Q';
inline constexpr std::uint8_t kStatsRequest = 'S';

/// Server -> client: structured failure report (`VPE!`, the kError
/// message). Sent instead of dropping the connection when a request could
/// not be answered: the handler threw, the request failed to decode, or
/// the server is shedding load. `is_error_frame` lets a client cheaply
/// distinguish it from the reply it expected before decoding.
struct ErrorResponse {
  enum Code : std::uint16_t {
    kBadRequest = 1,      ///< request undecodable (likely corrupt in flight)
    kHandlerFailure = 2,  ///< handler raised; retrying the same bytes won't help
    kOverloaded = 3,      ///< transient server-side pressure
    /// The query's oracle_epoch no longer matches the place's published
    /// epoch: the client ranked keypoints against an outdated uniqueness
    /// table. Refetch the place's oracle (OracleRequest) and resend —
    /// resending the same bytes without refreshing cannot succeed, so the
    /// transport layer must NOT blindly retry this code.
    kStaleOracle = 4,
  };
  std::uint16_t code = kHandlerFailure;
  std::string message;  ///< human-readable cause (truncated on encode)

  /// Longest message carried on the wire; longer ones are truncated so a
  /// failure report can never balloon a response.
  static constexpr std::size_t kMaxMessageBytes = 1024;

  Bytes encode() const;
  static ErrorResponse decode(std::span<const std::uint8_t> data);
};

/// True when an (undecoded) reply frame carries the ErrorResponse magic.
bool is_error_frame(std::span<const std::uint8_t> frame) noexcept;

/// Client -> server: scrape the server's metrics registry.
struct StatsRequest {
  /// Export format: 0 = JSON lines, 1 = Prometheus text, 2 = slow-query
  /// log (JSON lines; see obs::SlowQueryLog::to_json_lines).
  std::uint8_t format = 0;

  static constexpr std::uint8_t kFormatJsonLines = 0;
  static constexpr std::uint8_t kFormatPrometheus = 1;
  static constexpr std::uint8_t kFormatSlowLog = 2;

  Bytes encode() const;
  static StatsRequest decode(std::span<const std::uint8_t> data);
};

/// Server -> client: the rendered export text for a StatsRequest.
struct StatsResponse {
  std::uint8_t format = 0;  ///< echoes the request format
  std::string text;         ///< exporter output (see src/obs/export.hpp)

  Bytes encode() const;
  static StatsResponse decode(std::span<const std::uint8_t> data);
};

/// Server -> client incremental refresh: XOR diff between two oracle
/// snapshots, compressed. The paper lists this as not-yet-implemented
/// ("We could reduce data transfer by sending only a compressed bitmask
/// representing the diff between versions"); implemented here.
struct OracleDiff {
  std::uint32_t from_version = 0;
  std::uint32_t to_version = 0;
  Bytes compressed_xor;  ///< zlib of (new_blob XOR old_blob), size-padded

  /// Diff between serialized snapshots (old may be shorter after growth).
  static OracleDiff make(std::span<const std::uint8_t> old_blob,
                         std::span<const std::uint8_t> new_blob,
                         std::uint32_t from_version, std::uint32_t to_version);

  /// Reconstruct the new serialized snapshot from the old one.
  Bytes apply(std::span<const std::uint8_t> old_blob) const;

  Bytes encode() const;
  static OracleDiff decode(std::span<const std::uint8_t> data);
};

}  // namespace vp
