#include "net/wire.hpp"

#include <algorithm>
#include <string_view>

#include "imaging/codec.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

constexpr std::uint32_t kQueryMagic = 0x56505121u;   // "VPQ!"
constexpr std::uint32_t kFrameMagic = 0x56504621u;   // "VPF!"
constexpr std::uint32_t kLocMagic = 0x56504c21u;     // "VPL!"
constexpr std::uint32_t kOracleMagic = 0x56504f21u;  // "VPO!"
constexpr std::uint32_t kDiffMagic = 0x56504421u;    // "VPD!"
constexpr std::uint32_t kStatsReqMagic = 0x56505321u;   // "VPS!"
constexpr std::uint32_t kStatsRespMagic = 0x56505421u;  // "VPT!"
constexpr std::uint32_t kErrorMagic = 0x56504521u;      // "VPE!"
constexpr std::uint32_t kOracleReqMagic = 0x56505221u;  // "VPR!"
constexpr std::uint16_t kVersion = 1;
/// Messages that grew place/epoch fields for the sharded MapStore encode
/// at v2; their decoders still accept v1 frames (fields default).
constexpr std::uint16_t kPlacedVersion = 2;
/// Query/response pairs carrying cross-process trace context encode at v3
/// — but only when a nonzero trace_id is present, so untraced messages
/// stay byte-identical to v2 and pre-trace peers interoperate untouched.
constexpr std::uint16_t kTracedVersion = 3;
/// Compact-uplink queries (PQ codes instead of raw descriptors) encode at
/// v4 — only when codes are present, so raw queries keep their v2/v3
/// bytes. The v4 trace tail is unconditional (trace_id 0 allowed).
constexpr std::uint16_t kCompactVersion = 4;
/// Oracle downloads carrying the place's PQ codebook encode at v3; the
/// codebook-less message stays byte-identical v2.
constexpr std::uint16_t kCodebookVersion = 3;

/// Quarter-pixel fixed-point coordinate for the v4 compact feature.
std::uint16_t quantize_coord(float v) noexcept {
  const float scaled = v * kCompactCoordScale + 0.5f;
  if (!(scaled > 0.0f)) return 0;  // negatives and NaN clamp to 0
  if (scaled >= 65535.0f) return 65535;
  return static_cast<std::uint16_t>(scaled);
}

void expect_header(ByteReader& r, std::uint32_t magic, const char* what) {
  if (r.u32() != magic) throw DecodeError{std::string(what) + ": bad magic"};
  if (r.u16() != kVersion) {
    throw DecodeError{std::string(what) + ": unsupported version"};
  }
}

/// Header check for the place/epoch-aware messages: accepts versions
/// 1..max_version and returns the one on the wire.
std::uint16_t read_header_upto(ByteReader& r, std::uint32_t magic,
                               std::uint16_t max_version, const char* what) {
  if (r.u32() != magic) throw DecodeError{std::string(what) + ": bad magic"};
  const std::uint16_t version = r.u16();
  if (version < 1 || version > max_version) {
    throw DecodeError{std::string(what) + ": unsupported version"};
  }
  return version;
}

}  // namespace

Bytes FingerprintQuery::encode() const {
  VP_OBS_SPAN("encode");
  if (compact()) {
    VP_REQUIRE(codes.size() == features.size() * kPqCodeBytes,
               "fingerprint query: codes do not cover the features");
    VP_REQUIRE(codebook_epoch != 0,
               "fingerprint query: compact encode needs a codebook epoch");
  }
  ByteWriter w(wire_size());
  w.u32(kQueryMagic);
  w.u16(compact() ? kCompactVersion
                  : (trace_id != 0 ? kTracedVersion : kPlacedVersion));
  w.u32(frame_id);
  w.f64(capture_time);
  w.u16(image_width);
  w.u16(image_height);
  w.f32(fov_h);
  w.str(place);
  w.u32(oracle_epoch);
  if (compact()) {
    w.u32(codebook_epoch);
    w.u32(static_cast<std::uint32_t>(features.size()));
    for (std::size_t i = 0; i < features.size(); ++i) {
      w.u16(quantize_coord(features[i].keypoint.x));
      w.u16(quantize_coord(features[i].keypoint.y));
      w.raw(std::span<const std::uint8_t>(codes.data() + i * kPqCodeBytes,
                                          kPqCodeBytes));
    }
    // The trace tail is unconditional in v4: the version byte already
    // departed from the v2/v3 stream, so there is no compat reason to
    // make the tail optional, and trace_id 0 (untraced) stays encodable.
    w.u64(trace_id);
    w.u8(trace_flags);
    return w.take();
  }
  w.u32(static_cast<std::uint32_t>(features.size()));
  for (const auto& f : features) serialize_feature(f, w);
  if (trace_id != 0) {
    w.u64(trace_id);
    w.u8(trace_flags);
  }
  return w.take();
}

FingerprintQuery FingerprintQuery::decode(std::span<const std::uint8_t> data) {
  VP_OBS_SPAN("decode");
  ByteReader r(data);
  const std::uint16_t version =
      read_header_upto(r, kQueryMagic, kCompactVersion, "fingerprint query");
  FingerprintQuery q;
  q.frame_id = r.u32();
  q.capture_time = r.f64();
  q.image_width = r.u16();
  q.image_height = r.u16();
  q.fov_h = r.f32();
  if (version >= 2) {
    q.place = r.str();
    q.oracle_epoch = r.u32();
  }
  if (version == kCompactVersion) {
    q.codebook_epoch = r.u32();
    if (q.codebook_epoch == 0) {
      throw DecodeError{"fingerprint query: v4 frame with zero codebook epoch"};
    }
    const std::uint32_t n = r.u32();
    if (static_cast<std::uint64_t>(n) * kCompactFeatureWireBytes >
        r.remaining()) {
      throw DecodeError{"fingerprint query: compact feature count " +
                        std::to_string(n) + " exceeds payload"};
    }
    q.features.resize(n);
    q.codes.reserve(static_cast<std::size_t>(n) * kPqCodeBytes);
    for (std::uint32_t i = 0; i < n; ++i) {
      // Only pixel position survives the compact format; scale/orientation
      // default to 0 (the localization pipeline never reads them) and the
      // raw descriptor stays zeroed — ranking goes through the codes.
      q.features[i].keypoint.x =
          static_cast<float>(r.u16()) / kCompactCoordScale;
      q.features[i].keypoint.y =
          static_cast<float>(r.u16()) / kCompactCoordScale;
      const auto code = r.raw(kPqCodeBytes);
      q.codes.insert(q.codes.end(), code.begin(), code.end());
    }
    q.trace_id = r.u64();
    q.trace_flags = r.u8();
    if (!r.done()) throw DecodeError{"fingerprint query: trailing bytes"};
    return q;
  }
  const std::uint32_t n = r.u32();
  // Validate the count against the bytes actually present before reserving:
  // a lying length field must throw, never over-allocate.
  if (static_cast<std::uint64_t>(n) * kFeatureWireBytes > r.remaining()) {
    throw DecodeError{"fingerprint query: feature count " + std::to_string(n) +
                      " exceeds payload"};
  }
  q.features.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    q.features.push_back(deserialize_feature(r));
  }
  if (version >= 3) {
    q.trace_id = r.u64();
    q.trace_flags = r.u8();
    if (q.trace_id == 0) {
      throw DecodeError{"fingerprint query: v3 frame with zero trace_id"};
    }
  }
  if (!r.done()) throw DecodeError{"fingerprint query: trailing bytes"};
  return q;
}

std::size_t FingerprintQuery::wire_size() const noexcept {
  const std::size_t head = 4 + 2 + 4 + 8 + 2 + 2 + 4 + (4 + place.size()) + 4;
  if (compact()) {
    return head + 4 + 4 + features.size() * kCompactFeatureWireBytes + 8 + 1;
  }
  return head + 4 + features.size() * kFeatureWireBytes +
         (trace_id != 0 ? 8 + 1 : 0);
}

Bytes FrameUpload::encode() const {
  ByteWriter w(32 + payload.size());
  w.u32(kFrameMagic);
  w.u16(kVersion);
  w.u32(frame_id);
  w.f64(capture_time);
  w.u8(codec);
  w.blob(payload);
  return w.take();
}

FrameUpload FrameUpload::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  expect_header(r, kFrameMagic, "frame upload");
  FrameUpload f;
  f.frame_id = r.u32();
  f.capture_time = r.f64();
  f.codec = r.u8();
  const auto b = r.blob();
  f.payload.assign(b.begin(), b.end());
  if (!r.done()) throw DecodeError{"frame upload: trailing bytes"};
  return f;
}

Bytes LocationResponse::encode() const {
  ByteWriter w(96 + place_label.size() + place.size() +
               (trace_id != 0 ? 16 + server_spans.size() * 32 : 0));
  w.u32(kLocMagic);
  w.u16(trace_id != 0 ? kTracedVersion : kPlacedVersion);
  w.u32(frame_id);
  w.u8(found ? 1 : 0);
  w.f64(position.x);
  w.f64(position.y);
  w.f64(position.z);
  w.f64(yaw);
  w.f64(pitch);
  w.f64(roll);
  w.f64(residual);
  w.u32(matched_keypoints);
  w.str(place_label);
  w.str(place);
  if (trace_id != 0) {
    w.u64(trace_id);
    const std::size_t count =
        std::min(server_spans.size(), WireSpan::kMaxWireSpans);
    w.u8(static_cast<std::uint8_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
      const WireSpan& s = server_spans[i];
      // Stage names are short literals; 255 bytes is generous headroom.
      const std::string_view name = std::string_view(s.name).substr(0, 255);
      w.u8(static_cast<std::uint8_t>(name.size()));
      w.raw(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
      w.u16(static_cast<std::uint16_t>(s.parent));
      w.f32(s.start_ms);
      w.f32(s.duration_ms);
    }
  }
  return w.take();
}

LocationResponse LocationResponse::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint16_t version =
      read_header_upto(r, kLocMagic, kTracedVersion, "location response");
  LocationResponse resp;
  resp.frame_id = r.u32();
  resp.found = r.u8() != 0;
  resp.position = {r.f64(), r.f64(), r.f64()};
  resp.yaw = r.f64();
  resp.pitch = r.f64();
  resp.roll = r.f64();
  resp.residual = r.f64();
  resp.matched_keypoints = r.u32();
  resp.place_label = r.str();
  if (version >= 2) resp.place = r.str();
  if (version >= 3) {
    resp.trace_id = r.u64();
    if (resp.trace_id == 0) {
      throw DecodeError{"location response: v3 frame with zero trace_id"};
    }
    const std::uint8_t count = r.u8();
    if (count > WireSpan::kMaxWireSpans) {
      throw DecodeError{"location response: span block too large"};
    }
    resp.server_spans.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
      WireSpan s;
      const std::uint8_t name_len = r.u8();
      const auto name = r.raw(name_len);
      s.name.assign(reinterpret_cast<const char*>(name.data()), name.size());
      s.parent = static_cast<std::int16_t>(r.u16());
      // A parent must precede its child in the block (-1 = root); anything
      // else is corruption and would break tree reconstruction downstream.
      if (s.parent < -1 || s.parent >= static_cast<std::int16_t>(i)) {
        throw DecodeError{"location response: span parent out of range"};
      }
      s.start_ms = r.f32();
      s.duration_ms = r.f32();
      resp.server_spans.push_back(std::move(s));
    }
  }
  if (!r.done()) throw DecodeError{"location response: trailing bytes"};
  return resp;
}

OracleDownload OracleDownload::pack(const UniquenessOracle& oracle,
                                    std::uint32_t epoch, std::string place,
                                    std::span<const std::uint8_t> codebook) {
  OracleDownload d;
  d.epoch = epoch;
  d.place = std::move(place);
  d.compressed = zlib_compress(oracle.serialize(), 9);
  d.codebook.assign(codebook.begin(), codebook.end());
  return d;
}

UniquenessOracle OracleDownload::unpack() const {
  return UniquenessOracle::deserialize(zlib_decompress(compressed));
}

Bytes OracleDownload::encode() const {
  ByteWriter w(16 + place.size() + compressed.size() + codebook.size());
  w.u32(kOracleMagic);
  w.u16(codebook.empty() ? kPlacedVersion : kCodebookVersion);
  w.u32(epoch);
  w.str(place);
  w.blob(compressed);
  if (!codebook.empty()) w.blob(codebook);
  return w.take();
}

OracleDownload OracleDownload::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint16_t version =
      read_header_upto(r, kOracleMagic, kCodebookVersion, "oracle download");
  OracleDownload d;
  d.epoch = r.u32();  // v1 frames: the old `version` counter reads as epoch
  if (version >= 2) d.place = r.str();
  const auto b = r.blob();
  d.compressed.assign(b.begin(), b.end());
  if (version >= kCodebookVersion) {
    const auto cb = r.blob();
    // The v3 codebook payload has exactly one valid size; anything else is
    // corruption (a codebook-less download encodes as v2, never as an
    // empty v3 blob).
    if (cb.size() != kPqCodebookBytes) {
      throw DecodeError{"oracle download: codebook payload of " +
                        std::to_string(cb.size()) + " bytes"};
    }
    d.codebook.assign(cb.begin(), cb.end());
  }
  if (!r.done()) throw DecodeError{"oracle download: trailing bytes"};
  return d;
}

Bytes OracleRequest::encode() const {
  ByteWriter w(16 + place.size());
  w.u32(kOracleReqMagic);
  w.u16(kVersion);
  w.str(place);
  return w.take();
}

OracleRequest OracleRequest::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  expect_header(r, kOracleReqMagic, "oracle request");
  OracleRequest q;
  q.place = r.str();
  if (!r.done()) throw DecodeError{"oracle request: trailing bytes"};
  return q;
}

OracleDiff OracleDiff::make(std::span<const std::uint8_t> old_blob,
                            std::span<const std::uint8_t> new_blob,
                            std::uint32_t from_version,
                            std::uint32_t to_version) {
  // XOR against the old blob (zero-padded); unsaturated Bloom words rarely
  // change between refreshes, so the XOR is mostly zeros and compresses
  // far better than a full snapshot.
  Bytes x(new_blob.size());
  for (std::size_t i = 0; i < new_blob.size(); ++i) {
    x[i] = new_blob[i] ^ (i < old_blob.size() ? old_blob[i] : 0);
  }
  OracleDiff d;
  d.from_version = from_version;
  d.to_version = to_version;
  ByteWriter w(8 + x.size());
  w.u64(new_blob.size());
  w.raw(x);
  d.compressed_xor = zlib_compress(w.bytes(), 9);
  return d;
}

Bytes OracleDiff::apply(std::span<const std::uint8_t> old_blob) const {
  const Bytes raw = zlib_decompress(compressed_xor);
  ByteReader r(raw);
  const std::uint64_t new_size = r.u64();
  const auto x = r.raw(static_cast<std::size_t>(new_size));
  Bytes out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] ^ (i < old_blob.size() ? old_blob[i] : 0);
  }
  return out;
}

Bytes OracleDiff::encode() const {
  ByteWriter w(24 + compressed_xor.size());
  w.u32(kDiffMagic);
  w.u16(kVersion);
  w.u32(from_version);
  w.u32(to_version);
  w.blob(compressed_xor);
  return w.take();
}

OracleDiff OracleDiff::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  expect_header(r, kDiffMagic, "oracle diff");
  OracleDiff d;
  d.from_version = r.u32();
  d.to_version = r.u32();
  const auto b = r.blob();
  d.compressed_xor.assign(b.begin(), b.end());
  if (!r.done()) throw DecodeError{"oracle diff: trailing bytes"};
  return d;
}

Bytes ErrorResponse::encode() const {
  const std::string_view trimmed =
      std::string_view(message).substr(0, kMaxMessageBytes);
  ByteWriter w(16 + trimmed.size());
  w.u32(kErrorMagic);
  w.u16(kVersion);
  w.u16(code);
  w.str(trimmed);
  return w.take();
}

ErrorResponse ErrorResponse::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  expect_header(r, kErrorMagic, "error response");
  ErrorResponse e;
  e.code = r.u16();
  if (e.code == 0 || e.code > kStaleOracle) {
    throw DecodeError{"error response: unknown code"};
  }
  e.message = r.str();
  if (e.message.size() > kMaxMessageBytes) {
    throw DecodeError{"error response: oversized message"};
  }
  if (!r.done()) throw DecodeError{"error response: trailing bytes"};
  return e;
}

bool is_error_frame(std::span<const std::uint8_t> frame) noexcept {
  if (frame.size() < 4) return false;
  const std::uint32_t magic = static_cast<std::uint32_t>(frame[0]) |
                              (static_cast<std::uint32_t>(frame[1]) << 8) |
                              (static_cast<std::uint32_t>(frame[2]) << 16) |
                              (static_cast<std::uint32_t>(frame[3]) << 24);
  return magic == kErrorMagic;
}

Bytes StatsRequest::encode() const {
  ByteWriter w(8);
  w.u32(kStatsReqMagic);
  w.u16(kVersion);
  w.u8(format);
  return w.take();
}

StatsRequest StatsRequest::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  expect_header(r, kStatsReqMagic, "stats request");
  StatsRequest q;
  q.format = r.u8();
  if (q.format > kFormatSlowLog) {
    throw DecodeError{"stats request: unknown format"};
  }
  if (!r.done()) throw DecodeError{"stats request: trailing bytes"};
  return q;
}

Bytes StatsResponse::encode() const {
  ByteWriter w(16 + text.size());
  w.u32(kStatsRespMagic);
  w.u16(kVersion);
  w.u8(format);
  w.str(text);
  return w.take();
}

StatsResponse StatsResponse::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  expect_header(r, kStatsRespMagic, "stats response");
  StatsResponse resp;
  resp.format = r.u8();
  resp.text = r.str();
  if (!r.done()) throw DecodeError{"stats response: trailing bytes"};
  return resp;
}

}  // namespace vp
