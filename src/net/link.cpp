#include "net/link.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace vp {

SimulatedLink::SimulatedLink(LinkConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  VP_REQUIRE(config.bandwidth_mbps > 0, "bandwidth must be positive");
  VP_REQUIRE(config.rtt_ms >= 0, "rtt must be non-negative");
}

TransferRecord SimulatedLink::submit(double submit_time, std::size_t bytes) {
  VP_REQUIRE(submit_time >= 0, "negative submit time");
  TransferRecord rec;
  rec.submit_time = submit_time;
  rec.bytes = bytes;
  rec.start_time = std::max(submit_time, busy_until_);
  const double serialize_s =
      static_cast<double>(bytes) * 8.0 / (config_.bandwidth_mbps * 1e6);
  const double latency_s =
      std::max(0.0, config_.rtt_ms / 2.0 +
                        rng_.gaussian(0, config_.jitter_ms)) /
      1e3;
  busy_until_ = rec.start_time + serialize_s;
  rec.complete_time = busy_until_ + latency_s;
  history_.push_back(rec);
  // Simulated-time link stages (not wall clock): how long the payload sat
  // behind earlier transfers, and how long it spent on the air.
  VP_OBS_OBSERVE("link.queue_wait", (rec.start_time - rec.submit_time) * 1e3);
  VP_OBS_OBSERVE("link.transfer", (rec.complete_time - rec.start_time) * 1e3);
  VP_OBS_COUNT("link.bytes", bytes);
  return rec;
}

std::size_t SimulatedLink::bytes_delivered_by(double t) const noexcept {
  std::size_t total = 0;
  for (const auto& r : history_) {
    if (r.complete_time <= t) total += r.bytes;
  }
  return total;
}

double SimulatedLink::sustainable_fps(double bandwidth_mbps,
                                      std::size_t bytes) {
  VP_REQUIRE(bytes > 0, "sustainable_fps: zero payload");
  return bandwidth_mbps * 1e6 / (static_cast<double>(bytes) * 8.0);
}

void SimulatedLink::reset() noexcept {
  busy_until_ = 0;
  history_.clear();
}

}  // namespace vp
