#include "net/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace vp {

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy, std::uint64_t seed)
    : host_(std::move(host)), port_(port), policy_(policy), rng_(seed) {
  VP_REQUIRE(policy_.max_attempts >= 1, "retry policy needs >= 1 attempt");
  VP_REQUIRE(policy_.backoff_factor >= 1.0, "backoff factor must be >= 1");
  VP_REQUIRE(policy_.jitter >= 0.0 && policy_.jitter < 1.0,
             "jitter must be in [0, 1)");
  sleep_fn_ = [](double ms) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  };
}

double RetryingClient::backoff_for(int retry, double unit_jitter) const
    noexcept {
  double delay = policy_.backoff_ms;
  for (int i = 1; i < retry; ++i) delay *= policy_.backoff_factor;
  delay = std::min(delay, policy_.max_backoff_ms);
  return delay * (1.0 + policy_.jitter * (2.0 * unit_jitter - 1.0));
}

void RetryingClient::ensure_connected() {
  if (sock_.valid()) return;
  sock_ = tcp_connect(host_, port_, policy_.connect_timeout_ms);
  if (policy_.io_timeout_ms > 0) {
    sock_.set_recv_timeout(policy_.io_timeout_ms);
    sock_.set_send_timeout(policy_.io_timeout_ms);
  }
  ++stats_.reconnects;
}

Bytes RetryingClient::request(std::span<const std::uint8_t> payload) {
  enum class Fail { kTimeout, kIo, kRemoteRetryable, kOverloaded };
  Fail fail = Fail::kIo;
  std::string why;
  std::uint16_t last_remote_code = 0;

  for (int attempt = 1;; ++attempt) {
    ++stats_.attempts;
    try {
      ensure_connected();
      sock_.send_message(payload);
      Bytes reply;
      if (!sock_.recv_message(reply, policy_.max_response_bytes)) {
        throw IoError{"server closed the connection"};
      }
      if (!is_error_frame(reply)) return reply;
      const ErrorResponse err = ErrorResponse::decode(reply);
      ++stats_.remote_errors;
      VP_OBS_COUNT("net.remote_errors", 1);
      if (err.code == ErrorResponse::kStaleOracle) {
        // Resending the same bytes cannot succeed — the client must
        // refresh its oracle first (RemoteLocalizer does), so this
        // surfaces immediately no matter the retry policy.
        ++stats_.stale_oracles;
        VP_OBS_COUNT("net.stale_oracle", 1);
        throw RemoteError{err.code, err.message};
      }
      if (err.code == ErrorResponse::kOverloaded) {
        // The server shed this request at its admission gate. The reply
        // arrived intact, so the connection is healthy: back off for the
        // pause the server asked for, then resend the same bytes.
        ++stats_.overloaded;
        VP_OBS_COUNT("net.overloaded", 1);
        if (!policy_.retry_overloaded) throw RemoteError{err.code, err.message};
        fail = Fail::kOverloaded;
        last_remote_code = err.code;
        why = err.message;
      } else if (!policy_.retry_bad_request ||
                 err.code != ErrorResponse::kBadRequest) {
        throw RemoteError{err.code, err.message};
      } else {
        // The server answered but could not decode our bytes — almost
        // certainly in-flight corruption. The connection itself is
        // healthy; resend without reconnecting.
        fail = Fail::kRemoteRetryable;
        why = err.message;
      }
    } catch (const RemoteError&) {
      throw;
    } catch (const TimeoutError& e) {
      ++stats_.timeouts;
      VP_OBS_COUNT("net.timeouts", 1);
      fail = Fail::kTimeout;
      why = e.what();
    } catch (const Error& e) {
      ++stats_.conn_dropped;
      VP_OBS_COUNT("net.conn_dropped", 1);
      fail = Fail::kIo;
      why = e.what();
    }
    if (fail != Fail::kRemoteRetryable && fail != Fail::kOverloaded) {
      // The exchange may be half-complete; only a fresh connection
      // restores request/response pairing. (A structured error reply was
      // read in full, so those paths keep the socket.)
      sock_.close();
    }
    if (attempt >= policy_.max_attempts) {
      if (fail == Fail::kTimeout) throw TimeoutError{why};
      if (fail == Fail::kOverloaded) {
        throw RemoteError{last_remote_code,
                          "still overloaded after " +
                              std::to_string(policy_.max_attempts) +
                              " attempts: " + why};
      }
      throw IoError{"request failed after " +
                    std::to_string(policy_.max_attempts) +
                    " attempts: " + why};
    }
    ++stats_.retries;
    VP_OBS_COUNT("net.retries", 1);
    sleep_fn_(backoff_for(attempt, rng_.uniform()));
  }
}

}  // namespace vp
