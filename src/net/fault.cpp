#include "net/fault.hpp"

#include <chrono>
#include <memory>

#include "util/error.hpp"

namespace vp {
namespace {

/// Poll cadence for stop-flag checks while a session waits for traffic.
constexpr int kPollMs = 100;

enum class Action { kForward, kSever, kDrop, kTruncate, kCorrupt, kDuplicate };

Action roll_action(const FaultConfig& cfg, Rng& rng, bool request_direction) {
  // One uniform draw walked through the probability bands, so the fault
  // mix is exact per message and fully determined by the session seed.
  double u = rng.uniform();
  if ((u -= cfg.sever) < 0) return Action::kSever;
  if ((u -= cfg.drop) < 0) return Action::kDrop;
  if ((u -= cfg.truncate) < 0) return Action::kTruncate;
  if ((u -= cfg.corrupt) < 0) return Action::kCorrupt;
  if ((u -= cfg.duplicate) < 0) {
    // Response duplication would desynchronize the strict request/response
    // pairing; treat it as a clean forward on that direction.
    return request_direction ? Action::kDuplicate : Action::kForward;
  }
  return Action::kForward;
}

void flip_random_bits(Bytes& msg, Rng& rng) {
  if (msg.empty()) return;
  const std::uint64_t flips = 1 + rng.uniform_u64(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t bit = rng.uniform_u64(msg.size() * 8);
    msg[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

/// Frame header claiming the full length, then a strict prefix of the
/// payload: the receiver sees EOF mid-message once the socket closes.
void send_truncated(Socket& out, const Bytes& msg, Rng& rng) {
  ByteWriter w(4 + msg.size());
  w.u32(static_cast<std::uint32_t>(msg.size()));
  const std::size_t keep =
      msg.empty() ? 0 : static_cast<std::size_t>(rng.uniform_u64(msg.size()));
  w.raw(std::span(msg.data(), keep));
  out.send_all(w.bytes());
}

}  // namespace

FaultConfig FaultConfig::uniform(double rate, std::uint64_t seed) {
  FaultConfig cfg;
  cfg.sever = cfg.drop = cfg.truncate = cfg.corrupt = cfg.duplicate =
      rate / 5.0;
  cfg.seed = seed;
  return cfg;
}

FaultProxy::FaultProxy(std::uint16_t upstream_port, FaultConfig config)
    : upstream_port_(upstream_port), config_(config), listener_(0) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

FaultProxy::~FaultProxy() { stop(); }

void FaultProxy::stop() {
  stop_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& t : sessions) t.join();
}

void FaultProxy::accept_loop() {
  std::uint64_t next_session = 0;
  while (!stop_.load()) {
    std::optional<Socket> client;
    try {
      client = listener_.accept_for(kPollMs);
    } catch (const Error&) {
      return;
    }
    if (!client) continue;
    stats_.sessions.fetch_add(1, std::memory_order_relaxed);
    // Deterministic per-session fault sequence: seed derived from the
    // configured seed and the accept index.
    const std::uint64_t seed =
        config_.seed * 0x9e3779b97f4a7c15ULL + ++next_session;
    auto conn = std::make_shared<Socket>(std::move(*client));
    std::lock_guard lock(sessions_mutex_);
    sessions_.emplace_back(
        [this, conn, seed] { session(std::move(*conn), seed); });
  }
}

void FaultProxy::session(Socket client, std::uint64_t session_seed) {
  Rng rng(session_seed);
  Socket upstream;
  try {
    upstream = tcp_connect("127.0.0.1", upstream_port_, 2000);
  } catch (const Error&) {
    return;  // upstream gone; client sees the close and retries
  }
  client.set_recv_timeout(kPollMs);
  upstream.set_recv_timeout(kPollMs);
  client.set_send_timeout(5000);
  upstream.set_send_timeout(5000);

  // Wait for one framed message, looping on the poll deadline so stop()
  // unwinds promptly. False = peer hung up / died.
  const auto recv_or_stop = [this](Socket& from, Bytes& msg) {
    for (;;) {
      try {
        return from.recv_message(msg);
      } catch (const TimeoutError&) {
        if (stop_.load()) return false;
      } catch (const Error&) {
        return false;
      }
    }
  };
  const auto maybe_delay = [&](Bytes& msg) {
    (void)msg;
    if (config_.delay > 0 && rng.uniform() < config_.delay) {
      stats_.delayed.fetch_add(1, std::memory_order_relaxed);
      const double ms = config_.delay_ms * (0.5 + rng.uniform());
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  };

  Bytes msg;
  try {
    while (!stop_.load()) {
      // --- request: client -> upstream ---
      if (!recv_or_stop(client, msg)) return;
      stats_.messages.fetch_add(1, std::memory_order_relaxed);
      maybe_delay(msg);
      int copies = 1;
      switch (roll_action(config_, rng, /*request_direction=*/true)) {
        case Action::kSever:
          stats_.severed.fetch_add(1, std::memory_order_relaxed);
          return;
        case Action::kDrop:
          stats_.dropped.fetch_add(1, std::memory_order_relaxed);
          continue;  // client's deadline fires; it reconnects and resends
        case Action::kTruncate:
          stats_.truncated.fetch_add(1, std::memory_order_relaxed);
          send_truncated(upstream, msg, rng);
          return;
        case Action::kCorrupt:
          stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
          flip_random_bits(msg, rng);
          break;
        case Action::kDuplicate:
          stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
          copies = 2;
          break;
        case Action::kForward:
          break;
      }
      for (int i = 0; i < copies; ++i) upstream.send_message(msg);

      // --- response(s): upstream -> client; only the first is forwarded,
      // a duplicate's extra response is read and discarded so the streams
      // stay paired.
      bool forwarded_or_dropped = false;
      for (int i = 0; i < copies; ++i) {
        if (!recv_or_stop(upstream, msg)) return;
        if (forwarded_or_dropped) continue;  // discard duplicate's reply
        forwarded_or_dropped = true;
        stats_.messages.fetch_add(1, std::memory_order_relaxed);
        maybe_delay(msg);
        switch (roll_action(config_, rng, /*request_direction=*/false)) {
          case Action::kSever:
            stats_.severed.fetch_add(1, std::memory_order_relaxed);
            return;
          case Action::kDrop:
            stats_.dropped.fetch_add(1, std::memory_order_relaxed);
            break;  // swallowed; client's deadline fires
          case Action::kTruncate:
            stats_.truncated.fetch_add(1, std::memory_order_relaxed);
            send_truncated(client, msg, rng);
            return;
          case Action::kCorrupt:
            stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
            flip_random_bits(msg, rng);
            client.send_message(msg);
            break;
          case Action::kDuplicate:  // unreachable on responses
          case Action::kForward:
            client.send_message(msg);
            break;
        }
      }
    }
  } catch (const Error&) {
    // Either side died mid-forward; both sockets close via RAII.
  }
}

}  // namespace vp
