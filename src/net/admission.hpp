// Adaptive admission control: bound concurrent request work and shed the
// excess with structured kOverloaded replies instead of letting queueing
// blow every deadline (DESIGN.md §13).
//
// AdmissionGate is the one shared primitive: a lock-free inflight counter
// with a configurable cap. `try_enter` either admits (inflight +1, strictly
// never above the cap — enforced by CAS, so a sampler can assert the
// invariant at any instant) or sheds, and both outcomes are counted. The
// gate carries no policy about *what* to do on shed; call sites answer with
// ErrorResponse{kOverloaded} (TcpListener::serve for protocol-agnostic
// servers, VisualPrintServer::handle_query for the query path) and
// RetryingClient treats that reply as retryable with honored backoff.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace vp {

/// Inflight-bounded admission gate. All operations are lock-free and safe
/// from any thread; a cap of 0 admits everything (counters still track).
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t max_inflight = 0) noexcept
      : cap_(max_inflight) {}
  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Admit (true; inflight grew by one and is <= the cap) or shed (false).
  /// Every call increments exactly one of admitted()/shed().
  bool try_enter() noexcept;

  /// Release one admitted slot. Must pair with a successful try_enter
  /// (AdmissionTicket does this automatically).
  void exit() noexcept;

  /// Reconfigure the cap (0 = unlimited). Takes effect for future
  /// try_enter calls; already-admitted work is never revoked, so a cap
  /// lowered below the current inflight simply sheds until it drains.
  void set_max_inflight(std::size_t cap) noexcept {
    cap_.store(cap, std::memory_order_relaxed);
  }
  std::size_t max_inflight() const noexcept {
    return cap_.load(std::memory_order_relaxed);
  }

  /// Requests currently admitted and not yet exited.
  std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// Highest inflight ever observed by an admitting thread. With a nonzero
  /// cap this never exceeds it — the property tests pin exactly that.
  std::size_t peak_inflight() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  std::uint64_t admitted() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }
  /// shed / (admitted + shed); 0 before any request was offered.
  double shed_rate() const noexcept;

 private:
  std::atomic<std::size_t> cap_;
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// RAII admission: enters the gate on construction, exits on destruction.
/// A null gate admits unconditionally (the "admission disabled" spelling at
/// call sites that take an optional gate).
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionGate* gate) noexcept
      : gate_(gate != nullptr && gate->try_enter() ? gate : nullptr),
        admitted_(gate == nullptr || gate_ != nullptr) {}
  ~AdmissionTicket() {
    if (gate_ != nullptr) gate_->exit();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const noexcept { return admitted_; }

 private:
  AdmissionGate* gate_;  ///< non-null only when this ticket holds a slot
  bool admitted_;
};

}  // namespace vp
