#include "energy/power.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vp {

double PowerModel::slot_power(const ActivitySlot& slot) const noexcept {
  const double compute = std::clamp(slot.compute_fraction, 0.0, 1.0);
  const double tx = std::clamp(slot.tx_fraction, 0.0, 1.0);
  double w = coeffs_.idle_w;
  if (slot.display_on) w += coeffs_.display_w;
  if (slot.camera_on) w += coeffs_.camera_w;
  w += compute * coeffs_.cpu_active_w;
  w += tx * coeffs_.radio_tx_w + (1.0 - tx) * coeffs_.radio_idle_w;
  return w;
}

std::vector<double> PowerModel::timeline(
    std::span<const ActivitySlot> slots) const {
  std::vector<double> out;
  out.reserve(slots.size());
  for (const auto& s : slots) out.push_back(slot_power(s));
  return out;
}

double PowerModel::total_energy(std::span<const ActivitySlot> slots,
                                double slot_seconds) const {
  VP_REQUIRE(slot_seconds > 0, "slot duration must be positive");
  double joules = 0;
  for (const auto& s : slots) joules += slot_power(s) * slot_seconds;
  return joules;
}

}  // namespace vp
