// Component power model (Fig. 18 substitute for the Monsoon power meter).
//
// Average power is modeled as a sum of component draws gated by activity:
// display and camera are on for the whole session; CPU draw scales with
// the fraction of each second spent computing (SIFT + Bloom lookups);
// radio draw scales with the fraction spent transmitting. Coefficients
// follow published smartphone measurements (LiKamWa et al., Carroll &
// Heiser) and are calibrated so the complete VisualPrint pipeline lands
// near the paper's ~6.5 W on a Galaxy-class device and whole-frame
// offload near ~4.9 W.
#pragma once

#include <span>
#include <vector>

namespace vp {

struct PowerCoefficients {
  double idle_w = 0.35;        ///< baseline device draw
  double display_w = 0.85;     ///< screen on, medium brightness
  double camera_w = 1.30;      ///< sensor + ISP streaming
  double cpu_active_w = 2.60;  ///< full-core vision workload (SIFT)
  double radio_tx_w = 1.55;    ///< WiFi transmit actively sending
  double radio_idle_w = 0.10;  ///< WiFi associated, idle
};

/// Activity of one timeline slot (one second by convention).
struct ActivitySlot {
  double compute_fraction = 0;  ///< fraction of the slot the CPU crunched
  double tx_fraction = 0;       ///< fraction of the slot the radio sent
  bool display_on = true;
  bool camera_on = true;
};

class PowerModel {
 public:
  explicit PowerModel(PowerCoefficients coeffs = {}) : coeffs_(coeffs) {}

  /// Average power of one slot, watts.
  double slot_power(const ActivitySlot& slot) const noexcept;

  /// Power series for a whole session timeline, one value per slot.
  std::vector<double> timeline(std::span<const ActivitySlot> slots) const;

  /// Energy in joules for a timeline of `slot_seconds`-long slots.
  double total_energy(std::span<const ActivitySlot> slots,
                      double slot_seconds = 1.0) const;

  const PowerCoefficients& coefficients() const noexcept { return coeffs_; }

 private:
  PowerCoefficients coeffs_;
};

}  // namespace vp
