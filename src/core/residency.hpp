// Tiered shard residency: which places are worth keeping in RAM.
//
// A deployment carrying thousands of venues cannot hold every PlaceShard
// resident (ROADMAP "millions of users, thousands of places"). The
// ShardResidencyManager is the bookkeeping half of the answer: shards are
// *registered* from a database manifest (place, epoch, byte estimate, a
// loader closure over the mmap'd file) without being loaded; the first
// query to a cold place faults it in; a configurable resident-byte budget
// evicts the least-recently-used shards once exceeded.
//
// The manager owns policy and accounting only — the MapStore owns the
// actual snapshot map and performs install/remove under its writer mutex.
// Lock order is always MapStore::write_mutex_ -> manager mutex (the
// manager never calls back into the store), and the single-flight wait
// never holds the store's mutex, so a loader blocked on I/O cannot stall
// resident queries.
//
// Single-flight: concurrent faults on the same cold place elect exactly
// one loader via the Cold->Loading transition; everyone else waits on the
// condition variable and re-reads the snapshot map. Eviction composes
// with the RCU snapshot discipline for free: removing a shard from the
// map only drops one shared_ptr reference, so in-flight queries holding
// the old snapshot keep the shard — and the mmap keepalive behind its
// borrowed buffers — alive until they finish.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vp {

struct PlaceShard;

class ShardResidencyManager {
 public:
  /// Parses one registered shard out of its database file. Captures the
  /// MappedFile shared_ptr and the parsed v4 record (or the v1-v3 blob
  /// span), so it stays valid independent of the store. Must be
  /// thread-compatible: at most one invocation per place at a time (the
  /// single-flight guarantee), arbitrary places concurrently.
  using Loader = std::function<std::unique_ptr<PlaceShard>()>;

  enum class State : std::uint8_t { kCold, kLoading, kResident, kPinned };

  /// What a fault attempt should do next.
  enum class Fault : std::uint8_t {
    kNotManaged,  ///< place was never registered; caller falls through
    kResident,    ///< already loaded (or just finished); re-read the map
    kMustLoad,    ///< caller won the single-flight race: run the loader
  };

  struct Manifest {
    std::string place;
    std::uint32_t epoch = 0;
    /// Pre-load resident-cost estimate (segment bytes + oracle bytes from
    /// the file header); replaced by the measured cost after first load.
    std::size_t bytes = 0;
    std::string storage = "exact";  ///< "pq" or "exact", from the header
    Loader loader;
  };

  struct PlaceStatus {
    std::string place;
    State state = State::kCold;
    std::size_t bytes = 0;
    std::uint32_t epoch = 0;
    std::string storage;
    std::uint64_t loads = 0;  ///< times faulted in (1 = never evicted)
  };

  struct Stats {
    std::uint64_t hits = 0;        ///< reads served by a resident shard
    std::uint64_t misses = 0;      ///< reads that found the place cold
    std::uint64_t evictions = 0;
    std::uint64_t loads = 0;       ///< loader executions (<= misses)
    std::size_t resident_bytes = 0;
    std::size_t budget_bytes = 0;  ///< 0 = unlimited
    std::size_t registered = 0;    ///< managed places
    std::size_t resident = 0;      ///< managed places currently loaded
  };

  /// Resident-byte budget; 0 disables eviction. Takes effect on the next
  /// finish_load / set_budget call (set_budget itself returns the places
  /// to evict immediately, like finish_load).
  std::vector<std::string> set_budget(std::size_t bytes);
  std::size_t budget() const;

  /// Register (or replace) a cold entry. Replacing drops any resident
  /// accounting for the old entry; the caller removes the stale snapshot.
  void register_cold(Manifest manifest);
  /// Drop an entry entirely (eager restore replaced the managed shard).
  void forget(const std::string& place);
  bool registered(const std::string& place) const;

  /// One step of the fault protocol. kMustLoad transfers loader duty to
  /// the caller, which MUST follow with finish_load or abort_load.
  /// Blocks (without any store lock) while another thread loads.
  Fault begin_fault(const std::string& place);
  /// Loader copy for the place (valid only between begin_fault ->
  /// kMustLoad and the matching finish/abort).
  Loader loader(const std::string& place) const;
  /// The shard is installed in the snapshot map; record its measured
  /// bytes and return the LRU places the caller must now evict to get
  /// back under budget (never the place itself, never pinned/loading
  /// entries). Call with the store's writer mutex held. Does NOT wake
  /// single-flight waiters — the caller calls notify_waiters() after the
  /// updated snapshot map is visible, so woken waiters find the shard
  /// instead of spinning on the kResident-but-unpublished gap.
  std::vector<std::string> finish_load(const std::string& place,
                                       std::size_t bytes);
  /// Wake single-flight waiters (after publishing a finished load).
  void notify_waiters() noexcept;
  /// The loader threw; the place returns to cold and waiters wake.
  void abort_load(const std::string& place) noexcept;

  /// A read touched a resident managed place: refresh recency, count hit.
  void touch(const std::string& place);
  /// A write diverged the place from its backing file: never evict it
  /// again (its builder is now the source of truth).
  void pin(const std::string& place);

  /// Manifest epoch/storage for cold metadata reads (no fault).
  std::uint32_t manifest_epoch(const std::string& place) const;
  std::string manifest_storage(const std::string& place) const;
  std::size_t manifest_bytes(const std::string& place) const;
  State state(const std::string& place) const;

  Stats stats() const;
  std::vector<PlaceStatus> statuses() const;

 private:
  struct Entry {
    Manifest manifest;
    State state = State::kCold;
    std::size_t bytes = 0;       ///< counted toward resident_bytes_
    std::uint64_t last_touch = 0;
    std::uint64_t loads = 0;
  };

  /// Evict LRU resident entries until under budget. Requires mu_ held.
  std::vector<std::string> plan_evictions_locked(const std::string& keep);
  void make_cold_locked(Entry& e);

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< single-flight load completion
  std::map<std::string, Entry, std::less<>> entries_;
  std::size_t budget_ = 0;
  std::size_t resident_bytes_ = 0;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t loads_ = 0;
};

}  // namespace vp
