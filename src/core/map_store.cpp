#include "core/map_store.hpp"

#include <algorithm>
#include <optional>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace vp {

// ---------------------------------------------------------------------------
// PlaceShard

LocationResponse PlaceShard::localize(const FingerprintQuery& query,
                                      Rng& rng, ThreadPool* pool,
                                      bool symmetric_adc) const {
  LocationResponse resp;
  resp.frame_id = query.frame_id;
  resp.place = place;
  resp.place_label = config.place_label;
  VP_OBS_COUNT("server.queries", 1);
  VP_OBS_COUNT("store.queries." + place, 1);

  // A compact query carries PQ codes, no raw descriptors; it can only be
  // ranked against a PQ-ready index (the server's codebook-epoch gate
  // normally guarantees this — a shard that lost PQ mode answers a
  // structured no-fix rather than ranking zeroed descriptors).
  const bool compact = query.compact();
  if (compact && !index.pq_ready()) {
    VP_OBS_COUNT("server.compact_unrankable", 1);
    return resp;  // found = false
  }

  // Retrieval: |K| * n candidate (pixel, 3-D point) pairs, scored as one
  // batch so the pool and the per-worker scratch both apply.
  std::vector<Observation> candidates;
  std::vector<Vec3> points;
  {
    VP_OBS_SPAN("lsh.retrieve");
    std::vector<Descriptor> qd;
    qd.reserve(query.features.size());
    if (compact) {
      // Reconstruct each code from its centroids: the reconstructed
      // descriptor drives LSH bucketing and the exact rerank, so the
      // compact path rejoins the raw pipeline right here. The symmetric
      // mode additionally reuses the codes for the coarse ADC tables.
      const PqCodebook& book = index.pq_codebook();
      for (std::size_t i = 0; i < query.features.size(); ++i) {
        Descriptor d;
        book.reconstruct(query.codes.data() + i * kPqCodeBytes, d.data());
        qd.push_back(d);
      }
    } else {
      for (const auto& f : query.features) qd.push_back(f.descriptor);
    }
    const auto batch =
        compact && (symmetric_adc || config.compact_symmetric)
            ? index.query_batch_codes(qd, query.codes,
                                      config.neighbors_per_keypoint, pool)
            : index.query_batch(qd, config.neighbors_per_keypoint, pool);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& f = query.features[i];
      for (const auto& m : batch[i]) {
        if (m.distance2 > config.max_match_distance2) continue;
        candidates.push_back(
            {{f.keypoint.x, f.keypoint.y}, stored[m.id].position});
        points.push_back(stored[m.id].position);
      }
    }
  }
  VP_OBS_TRACE_NOTE("server.candidates", candidates.size());
  if (candidates.size() < 3) return resp;  // found = false

  // Largest spatial cluster; discard everything else (repetitions
  // elsewhere in the building vote into other clusters).
  std::vector<std::size_t> keep;
  {
    VP_OBS_SPAN("cluster");
    keep = largest_cluster(points, config.clustering);
  }
  VP_OBS_TRACE_NOTE("server.clustered", keep.size());
  if (keep.size() < 3) return resp;
  std::vector<Observation> obs;
  obs.reserve(keep.size());
  for (std::size_t i : keep) obs.push_back(candidates[i]);

  CameraIntrinsics cam;
  cam.width = query.image_width;
  cam.height = query.image_height;
  cam.fov_h = static_cast<double>(query.fov_h);
  LocalizeConfig solve_cfg = config.localize;
  solve_cfg.de.pool = pool;  // chunked objective evaluation, same answer
  std::optional<LocalizeResult> result;
  {
    VP_OBS_SPAN("localize.solve");
    result = vp::localize(obs, cam, solve_cfg, rng);
  }
  if (!result) return resp;

  VP_OBS_COUNT("server.localized", 1);
  resp.found = true;
  resp.position = result->pose.translation;
  euler_zyx(result->pose.rotation, resp.yaw, resp.pitch, resp.roll);
  resp.residual = result->residual;
  resp.matched_keypoints = static_cast<std::uint32_t>(obs.size());
  return resp;
}

std::vector<std::uint32_t> PlaceShard::scene_votes(
    std::span<const Feature> features, ThreadPool* pool) const {
  std::vector<std::uint32_t> votes(
      static_cast<std::size_t>(std::max(0, scene_count)), 0);
  std::vector<Descriptor> qd;
  qd.reserve(features.size());
  for (const auto& f : features) qd.push_back(f.descriptor);
  for (const auto& matches : index.query_batch(qd, 1, pool)) {
    if (matches.empty()) continue;
    if (matches[0].distance2 > config.max_match_distance2) continue;
    const std::int32_t sid = stored[matches[0].id].scene_id;
    if (sid >= 0 && static_cast<std::size_t>(sid) < votes.size()) {
      ++votes[static_cast<std::size_t>(sid)];
    }
  }
  return votes;
}

namespace {

void ingest_into(PlaceShard& shard, const Feature& feature,
                 Vec3 world_position, std::int32_t scene_id,
                 std::uint32_t source_id) {
  const std::uint32_t id = shard.index.insert(feature.descriptor);
  VP_ASSERT(id == shard.stored.size());
  shard.stored.push_back({world_position, scene_id, source_id});
  shard.oracle.insert(feature.descriptor);
  shard.scene_count = std::max(shard.scene_count, scene_id + 1);
  ++shard.oracle_version;
}

/// What one resident shard costs against the LRU byte budget: index
/// (descriptors + bucket maps + PQ payload; borrowed mmap spans count at
/// face value — the budget bounds address space, not just heap), oracle
/// tables, and the stored-keypoint array.
std::size_t shard_resident_bytes(const PlaceShard& shard) {
  return shard.index.byte_size() + shard.oracle.byte_size() +
         shard.stored.capacity() * sizeof(StoredKeypoint);
}

}  // namespace

// ---------------------------------------------------------------------------
// MapStore

MapStore::MapStore(ServerConfig default_config, bool eager_default_builder)
    : default_config_(std::move(default_config)),
      default_place_(default_config_.place_label),
      state_(std::make_shared<const ShardMap>()),
      residency_(std::make_unique<ShardResidencyManager>()) {
  // The default place always exists: the monolithic-server API (ingest
  // with no place, oracle()/index() accessors) reads and writes it. The
  // lazy load path defers it (see header) — registration replaces it.
  if (eager_default_builder) {
    std::lock_guard lock(write_mutex_);
    builder_locked(default_place_, &default_config_);
  }
}

MapStore::Builder& MapStore::builder_locked(const std::string& place,
                                            const ServerConfig* cfg) {
  auto it = builders_.find(place);
  if (it == builders_.end()) {
    ServerConfig shard_cfg = cfg ? *cfg : default_config_;
    if (cfg == nullptr) shard_cfg.place_label = place;
    auto shard = std::make_unique<PlaceShard>(place, std::move(shard_cfg));
    it = builders_.emplace(place, Builder{std::move(shard), true}).first;
    any_dirty_.store(true, std::memory_order_release);
  }
  return it->second;
}

void MapStore::ingest(const std::string& place, const Feature& feature,
                      Vec3 world_position, std::int32_t scene_id,
                      std::uint32_t source_id) {
  prepare_write(place);
  std::lock_guard lock(write_mutex_);
  Builder& b = builder_locked(place, nullptr);
  ingest_into(*b.shard, feature, world_position, scene_id, source_id);
  b.dirty = true;
  any_dirty_.store(true, std::memory_order_release);
}

void MapStore::ingest_wardrive(const std::string& place,
                               std::span<const KeypointMapping> mappings,
                               const ServerConfig* config) {
  prepare_write(place);
  std::lock_guard lock(write_mutex_);
  Builder& b = builder_locked(place, config);
  for (const auto& m : mappings) {
    ingest_into(*b.shard, m.feature, m.world_position, -1, m.snapshot);
  }
  b.dirty = true;
  publish_locked(place, b);
}

void MapStore::publish(const std::string& place) {
  prepare_write(place);
  std::lock_guard lock(write_mutex_);
  Builder& b = builder_locked(place, nullptr);
  publish_locked(place, b);
}

void MapStore::publish_locked(const std::string& place, Builder& b) {
  b.shard->epoch += 1;
  // PQ mode trains on the builder *before* the copy below, so the
  // published immutable shard always carries a ready codebook + codes
  // (readers never pay training, and pq_ready() holds on snapshots).
  // First publish trains the codebook; later publishes only encode
  // whatever ingest added since.
  if (b.shard->config.index.pq.enabled) {
    b.shard->index.train_pq();
  }
  // Copy-on-publish: the builder stays the stable mutable copy (its
  // address never changes, so writer-side references remain valid); the
  // published shard is an immutable deep copy readers share.
  auto published = std::make_shared<const PlaceShard>(*b.shard);
  auto next = std::make_shared<ShardMap>(*state());
  (*next)[place] = std::move(published);
  const std::size_t shards = next->size();
  state_.store(std::shared_ptr<const ShardMap>(std::move(next)),
               std::memory_order_release);
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  b.dirty = false;
  VP_OBS_COUNT("store.swaps", 1);
  VP_OBS_GAUGE_SET("store.shards", static_cast<double>(shards));
  VP_OBS_GAUGE_SET("store.epoch." + place,
                   static_cast<double>(b.shard->epoch));
  VP_OBS_GAUGE_SET("store.bytes.descriptors." + place,
                   static_cast<double>(b.shard->index.descriptor_bytes()));
  VP_OBS_GAUGE_SET("store.bytes.pq." + place,
                   static_cast<double>(b.shard->index.pq_bytes()));
  VP_OBS_GAUGE_SET("index.rerank_depth",
                   static_cast<double>(b.shard->config.index.pq.rerank_depth));
}

void MapStore::restore_shard(std::unique_ptr<PlaceShard> shard) {
  VP_ASSERT(shard != nullptr);
  std::lock_guard lock(write_mutex_);
  const std::string place = shard->place;
  // An eagerly-restored shard supersedes any cold registration: the
  // manager must not later fault a stale disk copy over it.
  residency_->forget(place);
  auto published = std::make_shared<const PlaceShard>(*shard);
  builders_[place] = Builder{std::move(shard), false};
  auto next = std::make_shared<ShardMap>(*state());
  (*next)[place] = std::move(published);
  const std::size_t shards = next->size();
  state_.store(std::shared_ptr<const ShardMap>(std::move(next)),
               std::memory_order_release);
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  VP_OBS_GAUGE_SET("store.shards", static_cast<double>(shards));
}

void MapStore::register_cold_shard(ShardResidencyManager::Manifest manifest) {
  std::lock_guard lock(write_mutex_);
  const std::string& place = manifest.place;
  // Replace semantics (mirrors restore_shard): drop the place's builder
  // and published snapshot so the first fault loads the file's version.
  // The default place always carries an empty builder from construction;
  // dropping it here is what arms lazy loading for it.
  if (builders_.erase(place) != 0) {
    bool dirty = false;
    for (const auto& [_, b] : builders_) dirty |= b.dirty;
    any_dirty_.store(dirty, std::memory_order_release);
  }
  if (state()->find(place) != state()->end()) {
    auto next = std::make_shared<ShardMap>(*state());
    next->erase(place);
    state_.store(std::shared_ptr<const ShardMap>(std::move(next)),
                 std::memory_order_release);
    swap_count_.fetch_add(1, std::memory_order_relaxed);
  }
  residency_->register_cold(std::move(manifest));
  VP_OBS_GAUGE_SET(
      "store.resident_bytes",
      static_cast<double>(residency_->stats().resident_bytes));
}

std::shared_ptr<const PlaceShard> MapStore::fault_in(
    const std::string& place) const {
  flush();
  for (;;) {
    {
      const auto map = state();
      const auto it = map->find(place);
      if (it != map->end()) {
        if (residency_->registered(place)) {
          residency_->touch(place);
          VP_OBS_COUNT("store.lru.hits", 1);
        }
        return it->second;
      }
    }
    switch (residency_->begin_fault(place)) {
      case ShardResidencyManager::Fault::kNotManaged:
        return nullptr;
      case ShardResidencyManager::Fault::kResident: {
        // Another thread finished the load (or we raced an install).
        // Usually the map now has it; an immediate eviction loops us back
        // into a fresh fault. A spurious cv wakeup can land in the tiny
        // window between finish_load and the installer's map store —
        // yield instead of hammering the manager mutex.
        const auto map = state();
        const auto it = map->find(place);
        if (it != map->end()) return it->second;
        std::this_thread::yield();
        continue;
      }
      case ShardResidencyManager::Fault::kMustLoad:
        break;
    }
    // This thread won the single-flight race: run the loader with no
    // locks held, then install under the writer mutex. Waiters wake in
    // finish_load/abort_load.
    VP_OBS_COUNT("store.lru.misses", 1);
    auto loader = residency_->loader(place);
    std::unique_ptr<PlaceShard> loaded;
    Timer timer;
    try {
      loaded = loader();
      VP_ASSERT(loaded != nullptr && loaded->place == place);
    } catch (...) {
      residency_->abort_load(place);
      throw;
    }
    VP_OBS_OBSERVE("store.reload_latency", timer.millis());
    return install_loaded(place, std::move(loaded));
  }
}

std::shared_ptr<const PlaceShard> MapStore::install_loaded(
    const std::string& place, std::unique_ptr<PlaceShard> loaded) const {
  auto* self = const_cast<MapStore*>(this);
  std::lock_guard lock(self->write_mutex_);
  std::shared_ptr<const PlaceShard> published(std::move(loaded));
  const std::size_t bytes = shard_resident_bytes(*published);
  auto next = std::make_shared<ShardMap>(*state());
  (*next)[place] = published;
  const auto victims = self->residency_->finish_load(place, bytes);
  for (const auto& victim : victims) next->erase(victim);
  const std::size_t shards = next->size();
  self->state_.store(std::shared_ptr<const ShardMap>(std::move(next)),
                     std::memory_order_release);
  // Wake single-flight waiters only now that the map store is visible:
  // they re-read the map on wakeup and must find the shard there.
  self->residency_->notify_waiters();
  self->swap_count_.fetch_add(1, std::memory_order_relaxed);
  VP_OBS_COUNT("store.swaps", 1);
  if (!victims.empty()) {
    VP_OBS_COUNT("store.lru.evictions",
                 static_cast<std::uint64_t>(victims.size()));
  }
  VP_OBS_GAUGE_SET("store.shards", static_cast<double>(shards));
  VP_OBS_GAUGE_SET(
      "store.resident_bytes",
      static_cast<double>(residency_->stats().resident_bytes));
  return published;
}

void MapStore::set_resident_budget(std::size_t bytes) {
  std::lock_guard lock(write_mutex_);
  const auto victims = residency_->set_budget(bytes);
  if (!victims.empty()) {
    auto next = std::make_shared<ShardMap>(*state());
    for (const auto& victim : victims) next->erase(victim);
    state_.store(std::shared_ptr<const ShardMap>(std::move(next)),
                 std::memory_order_release);
    swap_count_.fetch_add(1, std::memory_order_relaxed);
    VP_OBS_COUNT("store.lru.evictions",
                 static_cast<std::uint64_t>(victims.size()));
  }
  VP_OBS_GAUGE_SET(
      "store.resident_bytes",
      static_cast<double>(residency_->stats().resident_bytes));
}

void MapStore::prepare_write(const std::string& place) {
  if (!residency_->registered(place)) return;
  for (;;) {
    const auto shard = fault_in(place);
    if (shard == nullptr) return;  // registration dropped concurrently
    residency_->pin(place);
    if (residency_->state(place) != ShardResidencyManager::State::kPinned) {
      continue;  // evicted between fault and pin; refault and retry
    }
    // Seed the builder from the resident snapshot so the write extends
    // the loaded state instead of an empty shard. Reloads of the same
    // file are bit-identical, so it does not matter which load's snapshot
    // seeds it.
    std::lock_guard lock(write_mutex_);
    if (builders_.find(place) == builders_.end()) {
      builders_.emplace(place,
                        Builder{std::make_unique<PlaceShard>(*shard), false});
    }
    return;
  }
}

void MapStore::flush() const {
  if (!any_dirty_.load(std::memory_order_acquire)) return;
  auto* self = const_cast<MapStore*>(this);
  std::lock_guard lock(self->write_mutex_);
  if (!self->any_dirty_.load(std::memory_order_acquire)) return;
  for (auto& [place, b] : self->builders_) {
    if (b.dirty) self->publish_locked(place, b);
  }
  self->any_dirty_.store(false, std::memory_order_release);
}

std::shared_ptr<const PlaceShard> MapStore::snapshot(
    const std::string& place) const {
  flush();
  const auto map = state();
  const auto it = map->find(place);
  return it == map->end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const PlaceShard>> MapStore::snapshots() const {
  flush();
  // Capture each place's shard individually through fault_in: the
  // returned shared_ptrs pin shards that a tight budget evicts while
  // later places load, so the caller still gets the complete set.
  std::map<std::string, std::shared_ptr<const PlaceShard>, std::less<>> all;
  for (const auto& [place, shard] : *state()) all.emplace(place, shard);
  for (const auto& st : residency_->statuses()) {
    if (all.find(st.place) != all.end()) continue;
    if (auto shard = fault_in(st.place)) all.emplace(st.place, shard);
  }
  std::vector<std::shared_ptr<const PlaceShard>> out;
  out.reserve(all.size());
  for (auto& [_, shard] : all) out.push_back(std::move(shard));
  return out;
}

LocationResponse MapStore::localize(const FingerprintQuery& query,
                                    Rng& rng) const {
  flush();
  const auto map = state();

  LocationResponse miss;
  miss.frame_id = query.frame_id;
  miss.place = query.place;

  ThreadPool* pool = default_config_.pool;
  // Compact queries are always targeted: their codes only mean something
  // against one place's codebook, so a place-less compact query routes to
  // the default place instead of fanning out across shards whose codebooks
  // it was not encoded with. (Clients keep fan-out queries raw.)
  if (!query.place.empty() || query.compact()) {
    // fault_in loads a registered-but-cold shard on first query (single-
    // flight) and refreshes LRU recency on hits; unmanaged places are a
    // plain map lookup.
    const auto shard =
        fault_in(query.place.empty() ? default_place_ : query.place);
    if (shard == nullptr) {
      // Unknown place is an expected client condition (wrong venue id,
      // venue not yet wardriven) — a structured no-fix, never a throw.
      VP_OBS_COUNT("store.unknown_place", 1);
      return miss;
    }
    return shard->localize(query, rng, pool,
                           default_config_.compact_symmetric);
  }

  if (map->empty()) return miss;
  if (map->size() == 1) {
    return map->begin()->second->localize(query, rng, pool);
  }

  // Fan out across every shard and keep the best answer. Per-shard rng
  // seeds are drawn sequentially up front so results are deterministic
  // for a given caller rng regardless of pool size.
  VP_OBS_COUNT("store.fanout_queries", 1);
  std::vector<std::shared_ptr<const PlaceShard>> shards;
  shards.reserve(map->size());
  for (const auto& [_, shard] : *map) shards.push_back(shard);
  std::vector<std::uint64_t> seeds(shards.size());
  for (auto& s : seeds) s = rng.next_u64();

  // Inside the fan-out each shard's own batch/solve parallelism collapses
  // to inline execution (nested parallel_for runs on the calling worker),
  // so per-shard results stay pool-size independent.
  std::vector<LocationResponse> results(shards.size());
  const auto run = [&](std::size_t i) {
    Rng shard_rng(seeds[i]);
    results[i] = shards[i]->localize(query, shard_rng, pool);
  };
  if (pool != nullptr) {
    pool->parallel_for(shards.size(), run);
  } else {
    for (std::size_t i = 0; i < shards.size(); ++i) run(i);
  }

  // Best-scoring place: a fix beats no fix; more matched keypoints beat
  // fewer; equal support ties break toward the smaller solver residual.
  const LocationResponse* best = &results[0];
  for (const auto& r : results) {
    if (r.found != best->found) {
      if (r.found) best = &r;
      continue;
    }
    if (!r.found) continue;
    if (r.matched_keypoints != best->matched_keypoints) {
      if (r.matched_keypoints > best->matched_keypoints) best = &r;
      continue;
    }
    if (r.residual < best->residual) best = &r;
  }
  return *best;
}

OracleDownload MapStore::oracle_snapshot(const std::string& place) const {
  const std::string& id = place.empty() ? default_place_ : place;
  // A client download is a first-class read: fault the shard in if cold.
  const auto shard = fault_in(id);
  VP_REQUIRE(shard != nullptr, "oracle snapshot of unknown place: " + id);
  // A PQ-ready shard ships its codebook with the oracle, so the client can
  // encode compact (v4) query fingerprints against this exact epoch.
  return OracleDownload::pack(shard->oracle, shard->epoch, shard->place,
                              shard->index.pq_ready()
                                  ? shard->index.pq_codebook().raw()
                                  : std::span<const std::uint8_t>{});
}

void MapStore::set_pool(ThreadPool* pool) {
  std::lock_guard lock(write_mutex_);
  default_config_.pool = pool;
}

void MapStore::set_compact_symmetric(bool on) {
  std::lock_guard lock(write_mutex_);
  default_config_.compact_symmetric = on;
}

std::size_t MapStore::place_count() const { return places().size(); }

std::vector<std::string> MapStore::places() const {
  flush();
  const auto map = state();
  std::vector<std::string> out;
  out.reserve(map->size());
  for (const auto& [place, _] : *map) out.push_back(place);
  // Registered-but-cold places are part of the catalog too (resident ones
  // are already in the map).
  for (const auto& st : residency_->statuses()) {
    if (map->find(st.place) == map->end()) out.push_back(st.place);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t MapStore::epoch(const std::string& place) const {
  const std::string& id = place.empty() ? default_place_ : place;
  const auto shard = snapshot(id);
  if (shard) return shard->epoch;
  // Cold registered shards answer from the manifest — metadata reads must
  // not page a shard in.
  return residency_->manifest_epoch(id);
}

std::string_view MapStore::storage_mode(const std::string& place) const {
  const std::string& id = place.empty() ? default_place_ : place;
  const auto shard = snapshot(id);
  if (shard) return shard->index.pq_ready() ? "pq" : "exact";
  // Manifest answer for cold shards, pinned to static storage so the
  // string_view cannot dangle.
  const std::string mode = residency_->manifest_storage(id);
  if (mode == "pq") return "pq";
  if (mode == "exact") return "exact";
  return {};
}

PlaceShard& MapStore::builder_shard(const std::string& place) {
  prepare_write(place);
  std::lock_guard lock(write_mutex_);
  return *builder_locked(place, nullptr).shard;
}

const PlaceShard& MapStore::builder_shard(const std::string& place) const {
  auto* self = const_cast<MapStore*>(this);
  self->prepare_write(place);
  std::lock_guard lock(self->write_mutex_);
  return *self->builder_locked(place, nullptr).shard;
}

bool MapStore::has_builder(const std::string& place) const {
  auto* self = const_cast<MapStore*>(this);
  std::lock_guard lock(self->write_mutex_);
  return self->builders_.find(place) != self->builders_.end();
}

}  // namespace vp
