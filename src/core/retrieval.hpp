// Scene-retrieval evaluation machinery (Fig. 13).
//
// A SceneDatabase holds labeled database images' features (scene images
// plus distractors). A query frame's features are matched by one of the
// paper's five regimes — Random-500, VisualPrint-200/500, LSH, BruteForce —
// and matched features vote for their database scene; the winning scene
// (with enough votes) is the prediction. Precision/recall are computed per
// scene with the paper's exact definitions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "features/keypoint.hpp"
#include "index/brute_force.hpp"
#include "index/lsh_index.hpp"
#include "util/thread_pool.hpp"

namespace vp {

struct RetrievalConfig {
  LshIndexConfig index{};             ///< LSH parameters for the index path
  std::uint32_t max_match_distance2 = 60'000;  ///< NN acceptance threshold
  std::uint32_t min_votes = 4;        ///< below this, predict "no scene"
  double min_margin = 1.3;            ///< winner votes / runner-up votes
};

/// Which matcher answers nearest-neighbor queries.
enum class MatcherKind : std::uint8_t {
  kLsh = 0,        ///< approximate, LSH-indexed (server reality)
  kBruteForce = 1, ///< exact (the paper's GPU SIMD baseline)
};

class SceneDatabase {
 public:
  explicit SceneDatabase(RetrievalConfig config = {},
                         ThreadPool* pool = nullptr);

  /// Add a database image's features under a scene label (-1 = distractor).
  void add_image(std::span<const Feature> features, std::int32_t scene_id);

  /// Votes per scene for a query feature set.
  std::vector<std::uint32_t> votes(std::span<const Feature> query,
                                   MatcherKind kind) const;

  /// Predicted scene, or nullopt when votes are too few / too ambiguous.
  std::optional<std::int32_t> predict(std::span<const Feature> query,
                                      MatcherKind kind) const;

  std::size_t descriptor_count() const noexcept { return labels_.size(); }
  int scene_count() const noexcept { return scene_count_; }

  /// Fig. 15 memory accounting.
  std::size_t lsh_byte_size() const noexcept { return index_.byte_size(); }
  std::size_t reference_lsh_byte_size() const noexcept {
    return index_.reference_e2lsh_byte_size();
  }
  std::size_t brute_force_byte_size() const noexcept {
    return descriptors_.size() * sizeof(Descriptor);
  }

  const RetrievalConfig& config() const noexcept { return config_; }

 private:
  RetrievalConfig config_;
  LshIndex index_;
  std::vector<Descriptor> descriptors_;  // brute-force view
  std::vector<std::int32_t> labels_;
  /// Lazily (re)built exact matcher; cache only, so mutable is honest.
  mutable std::unique_ptr<BruteForceMatcher> brute_;
  ThreadPool* pool_;
  int scene_count_ = 0;
};

/// Per-scene precision/recall from (truth, prediction) pairs, using the
/// paper's definitions: for scene k, V = frames truly capturing k, P =
/// frames predicted as k; precision_k = |V∩P|/|P|, recall_k = |V∩P|/|V|.
/// Scenes with an empty P get precision 0 (they were never predicted);
/// scenes with empty V are skipped.
struct PrecisionRecall {
  std::vector<double> precision;  ///< one entry per scene with |V| > 0
  std::vector<double> recall;
};

PrecisionRecall precision_recall(
    std::span<const std::optional<std::int32_t>> truth,
    std::span<const std::optional<std::int32_t>> predicted, int scene_count);

/// Set-valued truth variant: a query frame may contain several scenes
/// (V_k = frames whose truth set contains k); the prediction is still a
/// single label per frame.
PrecisionRecall precision_recall_sets(
    std::span<const std::vector<int>> truth_sets,
    std::span<const std::optional<std::int32_t>> predicted, int scene_count);

}  // namespace vp
