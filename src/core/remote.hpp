// Client-side view of a remote VisualPrint server: wraps a transport with
// the framed request protocol (tag byte + encoded message) and makes
// oracle staleness invisible to callers — a `kStaleOracle` reply triggers
// one oracle refetch for the query's place, restamps the query with the
// fresh epoch, and resends.
//
// The transport is any function mapping request bytes to reply bytes:
// `RetryingClient::request` for real deployments (it absorbs timeouts and
// drops underneath), or `VisualPrintServer::handle_request` bound directly
// for in-process tests. Both reply styles are handled: raw `VPE!` error
// frames and the RemoteError that RetryingClient turns them into.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "features/pq.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace vp {

class RemoteLocalizer {
 public:
  using Transport = std::function<Bytes(std::span<const std::uint8_t>)>;

  explicit RemoteLocalizer(Transport transport);

  /// Fetch the oracle of a place ("" = the server's default place) and
  /// remember its epoch. Throws RemoteError when the server reports one
  /// (e.g. unknown place).
  OracleDownload fetch_oracle(const std::string& place = {});

  /// Send one localization query and return the response. On a
  /// `kStaleOracle` reply: refetch the place's oracle, hand it to the
  /// refresh hook (so the caller can re-install it into its
  /// VisualPrintClient), restamp the query with the fresh epoch, and
  /// resend — once. The resent query keeps its original keypoints; callers
  /// that can re-rank against the fresh oracle should do so on the next
  /// frame. Other error replies surface as RemoteError.
  LocationResponse localize(FingerprintQuery query);

  /// Called with every oracle this localizer downloads (fetch or stale
  /// refresh), before the download is returned / the query resent.
  void on_oracle_refresh(std::function<void(const OracleDownload&)> fn) {
    on_refresh_ = std::move(fn);
  }

  /// Last known epoch of a place (0 = never fetched).
  std::uint32_t known_epoch(const std::string& place) const;

  /// Transparent stale-oracle recoveries performed so far.
  std::uint64_t stale_refreshes() const noexcept { return stale_refreshes_; }

  /// Opt in to the compact uplink: when the query names a place whose
  /// downloaded oracle carried a PQ codebook, localize() encodes each
  /// feature's descriptor into its 16-byte code and sends the v4 compact
  /// frame (20 bytes/feature on the wire instead of 144). Fan-out queries
  /// (empty place) and places without a cached codebook stay raw — the
  /// codes would be meaningless against another place's centroids. A
  /// kStaleOracle reply re-encodes against the refreshed codebook before
  /// the resend, so epoch churn stays invisible to callers.
  void enable_compact_uplink(bool on = true) { compact_uplink_ = on; }

  /// Queries that actually went out compact (v4) so far.
  std::uint64_t compact_queries() const noexcept { return compact_queries_; }

  /// True when `place`'s last downloaded oracle carried a codebook.
  bool has_codebook(const std::string& place) const {
    return codebooks_.count(place) != 0;
  }

  /// Turn on end-to-end tracing: every subsequent localize() runs under
  /// its own FrameTrace, stamps the query with a fresh trace_id, and
  /// stitches client, link, and (when the sampled bit was set) echoed
  /// server spans into one StitchedTrace per query. `sample_rate` is the
  /// fraction of queries asking the server to echo its span block back
  /// (deterministic accumulator, not random: 0.25 samples exactly every
  /// 4th query). All queries carry a trace_id once tracing is on.
  void enable_tracing(double sample_rate = 1.0);

  /// Stitched traces collected since enable_tracing, one per completed
  /// localize() (render with obs::to_chrome_trace).
  const std::vector<obs::StitchedTrace>& traces() const noexcept {
    return traces_;
  }

 private:
  /// Run the transport and normalize both error styles into a pair
  /// (code, message); code 0 means `reply` holds the expected frame.
  /// `kind` labels the request type for the net.bytes.{up,down}.<kind>
  /// traffic counters ("query" / "oracle").
  std::uint16_t exchange(std::span<const std::uint8_t> request, Bytes& reply,
                         std::string& message, const char* kind);

  /// Encode query.features into query.codes against the place's cached
  /// codebook when the compact uplink applies; clears the compact fields
  /// otherwise. Returns whether the query goes out compact.
  bool stamp_compact(FingerprintQuery& query);

  /// Assemble one StitchedTrace from the query's FrameTrace (client lane),
  /// the measured send/receive instants (link lane), and the server span
  /// block echoed on `resp` (server lane). Must run while the query's
  /// FrameTrace is still the thread's active trace.
  void stitch(const FingerprintQuery& query, const LocationResponse& resp,
              std::chrono::steady_clock::time_point sent,
              std::chrono::steady_clock::time_point received);

  Transport transport_;
  std::function<void(const OracleDownload&)> on_refresh_;
  std::map<std::string, std::uint32_t> epochs_;
  std::map<std::string, PqCodebook> codebooks_;
  std::uint64_t stale_refreshes_ = 0;
  std::uint64_t compact_queries_ = 0;
  bool compact_uplink_ = false;
  bool tracing_ = false;
  double sample_rate_ = 1.0;
  double sample_accum_ = 0.0;
  std::vector<obs::StitchedTrace> traces_;
  /// Session-relative time base for StitchedTrace::base_ms.
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace vp
