// VisualPrint cloud service (paper §3, "Cloud Processing and 3D
// Positioning"). Maintains the two server data structures:
//   1. the LSH-indexed keypoint -> 3-D position lookup table, and
//   2. the LSH-indexed counting Bloom filters (the uniqueness oracle)
//      that clients download.
// Ingest is constant time per mapping; queries run retrieval, spatial
// clustering, and the localization solve, returning a LocationResponse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/clustering.hpp"
#include "geometry/localize.hpp"
#include "hashing/oracle.hpp"
#include "index/lsh_index.hpp"
#include "net/wire.hpp"
#include "slam/mapping.hpp"

namespace vp {

struct ServerConfig {
  LshIndexConfig index{};        ///< keypoint->3D lookup table parameters
  OracleConfig oracle{};         ///< uniqueness-oracle parameters
  std::size_t neighbors_per_keypoint = 2;  ///< n in the |K|*n retrieval
  std::uint32_t max_match_distance2 = 65'000;  ///< reject weak matches
  /// Largest-cluster filter. Tighter than the generic default: with
  /// wardriven floors/walls everywhere, a generous radius chains retrieved
  /// points across the whole building into one meaningless mega-cluster.
  ClusteringConfig clustering{.radius = 1.5, .min_points = 4};
  LocalizeConfig localize{};     ///< Fig. 12 solver parameters
  std::string place_label = "indoor";
};

/// Metadata stored per indexed descriptor.
struct StoredKeypoint {
  Vec3 position;
  std::int32_t scene_id = -1;
  std::uint32_t source_id = 0;  ///< wardriving snapshot or database image
};

class VisualPrintServer {
 public:
  explicit VisualPrintServer(ServerConfig config);

  /// Ingest one keypoint-to-3D mapping from the wardriving app. Updates
  /// both the lookup table and the oracle (constant time and memory).
  void ingest(const Feature& feature, Vec3 world_position,
              std::int32_t scene_id = -1, std::uint32_t source_id = 0);

  /// Bulk ingest of a wardrive result.
  void ingest_wardrive(std::span<const KeypointMapping> mappings);

  /// Answer a localization query: LSH retrieval of |K|*n candidate 3-D
  /// points, largest-cluster filtering, then the Fig. 12 pose solve.
  LocationResponse localize_query(const FingerprintQuery& query, Rng& rng) const;

  /// Dispatch one framed TCP request (tag byte + encoded body) to the
  /// matching handler: 'O' -> OracleDownload, 'Q' -> LocationResponse,
  /// 'S' -> StatsResponse rendered from the global obs registry. Throws
  /// DecodeError for empty requests and unknown tags — under
  /// TcpListener::serve that surfaces to the client as a structured
  /// ErrorResponse (`VPE!`). Thread-safe for concurrent serving: the
  /// server state is read-only here and each call forks its own solver rng
  /// from `solver_seed` and the query frame id.
  Bytes handle_request(std::span<const std::uint8_t> request,
                       std::uint64_t solver_seed) const;

  /// Scene votes for a set of query features (retrieval experiments):
  /// vote[s] = number of query features whose accepted nearest neighbor
  /// belongs to scene s. Index -1 votes are dropped.
  std::vector<std::uint32_t> scene_votes(std::span<const Feature> features)
      const;

  /// Current oracle snapshot for client download.
  OracleDownload oracle_snapshot() const;

  /// Incremental oracle update from a previous serialized snapshot.
  OracleDiff oracle_diff_from(std::span<const std::uint8_t> old_blob) const;

  const UniquenessOracle& oracle() const noexcept { return oracle_; }
  const LshIndex& index() const noexcept { return index_; }
  std::size_t keypoint_count() const noexcept { return stored_.size(); }
  const StoredKeypoint& stored(std::uint32_t id) const {
    return stored_.at(id);
  }
  int scene_count() const noexcept { return scene_count_; }

  /// Server-side memory footprint (the Fig. 15 "LSH" column).
  std::size_t index_byte_size() const noexcept { return index_.byte_size(); }

  /// Persist the full database (configuration, every stored keypoint with
  /// its 3-D position and labels, and the oracle) to one file. The LSH
  /// index is rebuilt on load from the stored descriptors, so the file
  /// stays an order of magnitude smaller than resident memory.
  void save(const std::string& path) const;
  static VisualPrintServer load(const std::string& path);

  /// In-memory equivalents of save/load (used by tests and by save/load).
  Bytes serialize() const;
  static VisualPrintServer deserialize(std::span<const std::uint8_t> data);

 private:
  ServerConfig config_;
  LshIndex index_;
  UniquenessOracle oracle_;
  std::vector<StoredKeypoint> stored_;
  std::uint32_t oracle_version_ = 0;
  int scene_count_ = 0;
};

}  // namespace vp
