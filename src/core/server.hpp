// VisualPrint cloud service (paper §3, "Cloud Processing and 3D
// Positioning"). The server is a thin dispatch facade over the sharded
// MapStore (core/map_store.hpp), which owns the two paper data structures
// per place:
//   1. the LSH-indexed keypoint -> 3-D position lookup table, and
//   2. the LSH-indexed counting Bloom filters (the uniqueness oracle)
//      that clients download.
// The single-place API (ingest with no place, oracle()/index() accessors)
// operates on the store's default place, so pre-shard callers keep their
// exact semantics; the place-aware API routes to named shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/map_store.hpp"
#include "net/admission.hpp"
#include "obs/slow_log.hpp"

namespace vp {

/// Per-process serving state that is not map data: the slow-query log,
/// the query admission gate, and the counters behind the self-describing
/// gauges (uptime, trace sampling rate). Behind a unique_ptr so the server
/// stays movable.
struct ServerRuntime {
  obs::SlowQueryLog slow_log;
  /// Query admission control (DESIGN.md §13): bounds concurrently
  /// executing 'Q' handlers; excess queries are answered with a
  /// structured ErrorResponse{kOverloaded} before any decode work.
  /// Cap 0 (the default) admits everything.
  AdmissionGate admission;
  std::atomic<std::uint64_t> queries_seen{0};
  std::atomic<std::uint64_t> queries_traced{0};
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

/// How load()/load_shards() bring a database file into the store.
struct DbLoadOptions {
  /// Register every shard cold (mmap'd manifest only) instead of loading
  /// it; the first query naming a place faults it in. See
  /// core/residency.hpp.
  bool lazy = false;
  /// LRU resident-byte budget for lazily-registered shards; 0 (default)
  /// keeps everything resident once faulted.
  std::size_t resident_budget = 0;
};

class VisualPrintServer {
 public:
  explicit VisualPrintServer(ServerConfig config);

  /// Ingest one keypoint-to-3D mapping from the wardriving app into the
  /// default place. Updates both the lookup table and the oracle
  /// (constant time and memory); visible to queries from the next read.
  void ingest(const Feature& feature, Vec3 world_position,
              std::int32_t scene_id = -1, std::uint32_t source_id = 0);

  /// Bulk ingest of a wardrive result into the default place.
  void ingest_wardrive(std::span<const KeypointMapping> mappings);

  /// Bulk ingest of a wardrive result into a named place; publishes a new
  /// shard snapshot atomically (safe while queries are being served).
  /// `config`, when given, seeds the place's parameters on first contact.
  void ingest_wardrive(const std::string& place,
                       std::span<const KeypointMapping> mappings,
                       const ServerConfig* config = nullptr);

  /// Answer a localization query: LSH retrieval of |K|*n candidate 3-D
  /// points, largest-cluster filtering, then the Fig. 12 pose solve.
  /// `query.place` routes to one shard ("" = all; see MapStore::localize);
  /// empty and unknown places yield a structured no-fix response.
  LocationResponse localize_query(const FingerprintQuery& query, Rng& rng) const;

  /// Dispatch one framed TCP request (tag byte + encoded body) to the
  /// matching handler: 'O' -> OracleDownload (empty body = default place,
  /// else an OracleRequest naming the shard), 'Q' -> LocationResponse,
  /// 'S' -> StatsResponse rendered from the global obs registry. A query
  /// whose oracle_epoch no longer matches its place's published epoch
  /// returns an encoded ErrorResponse{kStaleOracle} so the client can
  /// refresh and resend. Throws DecodeError for empty requests and unknown
  /// tags — under TcpListener::serve that surfaces to the client as a
  /// structured ErrorResponse (`VPE!`). Thread-safe for concurrent
  /// serving: queries run against immutable shard snapshots and each call
  /// forks its own solver rng from `solver_seed` and the query frame id.
  Bytes handle_request(std::span<const std::uint8_t> request,
                       std::uint64_t solver_seed) const;

  /// Scene votes for a set of query features against the default place
  /// (retrieval experiments): vote[s] = number of query features whose
  /// accepted nearest neighbor belongs to scene s. Index -1 votes dropped.
  std::vector<std::uint32_t> scene_votes(std::span<const Feature> features)
      const;

  /// Current oracle snapshot of the default place for client download.
  OracleDownload oracle_snapshot() const;

  /// Epoch'd oracle snapshot of a named place ("" = default place).
  /// Throws InvalidArgument for an unknown place.
  OracleDownload oracle_snapshot(const std::string& place) const;

  /// Incremental oracle update from a previous serialized snapshot
  /// (default place).
  OracleDiff oracle_diff_from(std::span<const std::uint8_t> old_blob) const;

  // Default-place accessors (writer-side builder state; read-your-writes).
  const UniquenessOracle& oracle() const;
  const LshIndex& index() const;
  std::size_t keypoint_count() const;
  const StoredKeypoint& stored(std::uint32_t id) const;
  int scene_count() const;

  /// Server-side memory footprint of the default place's lookup table
  /// (the Fig. 15 "LSH" column).
  std::size_t index_byte_size() const;

  /// The sharded store behind this server.
  MapStore& store() noexcept { return *store_; }
  const MapStore& store() const noexcept { return *store_; }
  std::vector<std::string> places() const { return store_->places(); }

  /// Worst-N slow-query log fed by every handled 'Q' request (also
  /// rendered over the wire as StatsRequest format 2).
  const obs::SlowQueryLog& slow_log() const noexcept {
    return runtime_->slow_log;
  }

  /// Bound on concurrently executing 'Q' handlers; queries beyond it are
  /// shed with ErrorResponse{kOverloaded} instead of queueing until their
  /// deadline blows out. 0 = unlimited (the default). Oracle downloads and
  /// stats scrapes are never shed — an overloaded server must still be
  /// observable.
  void set_max_inflight(std::size_t cap) noexcept {
    runtime_->admission.set_max_inflight(cap);
  }

  /// The query admission gate (inflight/admitted/shed counters; tests
  /// hold tickets on it to pin the shed path deterministically).
  AdmissionGate& admission() noexcept { return runtime_->admission; }
  const AdmissionGate& admission() const noexcept {
    return runtime_->admission;
  }

  /// Persist the full database — every shard's configuration, stored
  /// keypoints (descriptor + 3-D position + labels), and oracle — to one
  /// file. The LSH indexes are rebuilt on load from the stored
  /// descriptors, so the file stays an order of magnitude smaller than
  /// resident memory.
  void save(const std::string& path) const;
  /// Restore a saved database. Default options load every shard eagerly
  /// (v4 files borrow their bulk segments from the mmap'd file);
  /// opts.lazy registers shards cold for first-query fault-in under
  /// opts.resident_budget.
  static VisualPrintServer load(const std::string& path,
                                const DbLoadOptions& opts = {});

  /// Merge every shard of another database file into this server
  /// (repeatable `--db`). A place already present is replaced by the
  /// file's version of it. opts.lazy registers the file's shards cold
  /// instead of loading them.
  void load_shards(const std::string& path, const DbLoadOptions& opts = {});

  /// In-memory equivalents of save/load (used by tests and by save/load).
  Bytes serialize() const;
  static VisualPrintServer deserialize(std::span<const std::uint8_t> data);

 private:
  /// Lazy-load constructor: skips the default place's builder (and its
  /// full-capacity oracle allocation) because the caller is about to
  /// register the database's shards cold, replacing it anyway.
  VisualPrintServer(ServerConfig config, bool eager_default_builder);

  const PlaceShard& default_builder() const;

  /// The 'Q' branch of handle_request: runs decode + localize under a
  /// server-side FrameTrace, echoes trace context on v3 replies, and
  /// feeds the slow-query log.
  Bytes handle_query(std::span<const std::uint8_t> body,
                     std::uint64_t solver_seed) const;

  // Behind unique_ptr so the server stays movable (load/deserialize return
  // by value); the store itself pins a mutex and atomics.
  std::unique_ptr<MapStore> store_;
  std::unique_ptr<ServerRuntime> runtime_;
};

}  // namespace vp
