#include "core/server.hpp"

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace vp {

VisualPrintServer::VisualPrintServer(ServerConfig config)
    : store_(std::make_unique<MapStore>(std::move(config))) {}

const PlaceShard& VisualPrintServer::default_builder() const {
  return store_->builder_shard(store_->default_place());
}

void VisualPrintServer::ingest(const Feature& feature, Vec3 world_position,
                               std::int32_t scene_id,
                               std::uint32_t source_id) {
  store_->ingest(store_->default_place(), feature, world_position, scene_id,
                 source_id);
}

void VisualPrintServer::ingest_wardrive(
    std::span<const KeypointMapping> mappings) {
  store_->ingest_wardrive(store_->default_place(), mappings);
}

void VisualPrintServer::ingest_wardrive(
    const std::string& place, std::span<const KeypointMapping> mappings,
    const ServerConfig* config) {
  store_->ingest_wardrive(place, mappings, config);
}

LocationResponse VisualPrintServer::localize_query(
    const FingerprintQuery& query, Rng& rng) const {
  return store_->localize(query, rng);
}

std::vector<std::uint32_t> VisualPrintServer::scene_votes(
    std::span<const Feature> features) const {
  const auto shard = store_->snapshot(store_->default_place());
  VP_ASSERT(shard != nullptr);
  return shard->scene_votes(features);
}

Bytes VisualPrintServer::handle_request(std::span<const std::uint8_t> request,
                                        std::uint64_t solver_seed) const {
  if (request.empty()) throw DecodeError{"empty request"};
  const std::uint8_t tag = request[0];
  const auto body = request.subspan(1);
  if (tag == kOracleRequest) {
    // Legacy bare 'O' (empty body) resolves to the default place; a body
    // is an OracleRequest naming the shard.
    if (body.empty()) return store_->oracle_snapshot({}).encode();
    const OracleRequest req = OracleRequest::decode(body);
    return store_->oracle_snapshot(req.place).encode();
  }
  if (tag == kQueryRequest) {
    const FingerprintQuery query = FingerprintQuery::decode(body);
    if (query.oracle_epoch != 0) {
      // The client ranked its keypoints against an epoch'd oracle; if the
      // place has republished since, tell it to refresh instead of
      // localizing against selections an outdated uniqueness table made.
      const std::string& place =
          query.place.empty() ? store_->default_place() : query.place;
      const auto shard = store_->snapshot(place);
      if (shard != nullptr && shard->epoch != query.oracle_epoch) {
        VP_OBS_COUNT("server.stale_oracle", 1);
        ErrorResponse err;
        err.code = ErrorResponse::kStaleOracle;
        err.message = "oracle epoch " + std::to_string(query.oracle_epoch) +
                      " for place '" + place + "' superseded by epoch " +
                      std::to_string(shard->epoch);
        return err.encode();
      }
    }
    // Per-query rng: deterministic for a given (seed, frame) and safe when
    // serve() runs handlers concurrently on pool workers.
    Rng solver_rng(solver_seed ^ (0x51ULL << 56) ^ query.frame_id);
    return store_->localize(query, solver_rng).encode();
  }
  if (tag == kStatsRequest) {
    const StatsRequest req = StatsRequest::decode(body);
    StatsResponse resp;
    resp.format = req.format;
    const auto snap = obs::Registry::global().snapshot();
    resp.text = req.format == StatsRequest::kFormatPrometheus
                    ? obs::to_prometheus(snap)
                    : obs::to_json_lines(snap);
    return resp.encode();
  }
  throw DecodeError{"unknown request tag"};
}

OracleDownload VisualPrintServer::oracle_snapshot() const {
  return store_->oracle_snapshot({});
}

OracleDownload VisualPrintServer::oracle_snapshot(
    const std::string& place) const {
  return store_->oracle_snapshot(place);
}

OracleDiff VisualPrintServer::oracle_diff_from(
    std::span<const std::uint8_t> old_blob) const {
  const PlaceShard& shard = default_builder();
  const Bytes new_blob = shard.oracle.serialize();
  // from_version is unknown to the server here; caller tracks versions.
  return OracleDiff::make(old_blob, new_blob, 0, shard.oracle_version);
}

const UniquenessOracle& VisualPrintServer::oracle() const {
  return default_builder().oracle;
}

const LshIndex& VisualPrintServer::index() const {
  return default_builder().index;
}

std::size_t VisualPrintServer::keypoint_count() const {
  return default_builder().stored.size();
}

const StoredKeypoint& VisualPrintServer::stored(std::uint32_t id) const {
  return default_builder().stored.at(id);
}

int VisualPrintServer::scene_count() const {
  return default_builder().scene_count;
}

std::size_t VisualPrintServer::index_byte_size() const {
  return default_builder().index.byte_size();
}

}  // namespace vp
