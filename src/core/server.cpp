#include "core/server.hpp"

#include "features/distance.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

double ms_since(std::chrono::steady_clock::time_point t0) noexcept {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// RAII server.inflight gauge: counts 'Q' requests currently inside the
/// handler, exception-safe.
struct InflightGuard {
  obs::Gauge& gauge;
  explicit InflightGuard(obs::Gauge& g) : gauge(g) { gauge.add(1); }
  ~InflightGuard() { gauge.add(-1); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
};

}  // namespace

VisualPrintServer::VisualPrintServer(ServerConfig config)
    : VisualPrintServer(std::move(config), /*eager_default_builder=*/true) {}

VisualPrintServer::VisualPrintServer(ServerConfig config,
                                     bool eager_default_builder)
    : store_(std::make_unique<MapStore>(std::move(config),
                                        eager_default_builder)),
      runtime_(std::make_unique<ServerRuntime>()) {
  // Self-describing build gauges (direct registry calls, not macros: they
  // must appear in scrapes of a VP_OBS=OFF binary too — that a scrape
  // self-reports "tracing compiled out" is the point).
  auto& registry = obs::Registry::global();
#if VP_OBS_ENABLED
  registry.gauge("build.vp_obs").set(1);
#else
  registry.gauge("build.vp_obs").set(0);
#endif
  // Compiled SIMD distance-kernel variants beyond the scalar reference
  // (0 = portable-only build).
  registry.gauge("build.simd")
      .set(static_cast<double>(compiled_distance_kernels().size() - 1));
}

const PlaceShard& VisualPrintServer::default_builder() const {
  return store_->builder_shard(store_->default_place());
}

void VisualPrintServer::ingest(const Feature& feature, Vec3 world_position,
                               std::int32_t scene_id,
                               std::uint32_t source_id) {
  store_->ingest(store_->default_place(), feature, world_position, scene_id,
                 source_id);
}

void VisualPrintServer::ingest_wardrive(
    std::span<const KeypointMapping> mappings) {
  store_->ingest_wardrive(store_->default_place(), mappings);
}

void VisualPrintServer::ingest_wardrive(
    const std::string& place, std::span<const KeypointMapping> mappings,
    const ServerConfig* config) {
  store_->ingest_wardrive(place, mappings, config);
}

LocationResponse VisualPrintServer::localize_query(
    const FingerprintQuery& query, Rng& rng) const {
  return store_->localize(query, rng);
}

std::vector<std::uint32_t> VisualPrintServer::scene_votes(
    std::span<const Feature> features) const {
  const auto shard = store_->snapshot(store_->default_place());
  VP_ASSERT(shard != nullptr);
  return shard->scene_votes(features);
}

Bytes VisualPrintServer::handle_request(std::span<const std::uint8_t> request,
                                        std::uint64_t solver_seed) const {
  if (request.empty()) throw DecodeError{"empty request"};
  const std::uint8_t tag = request[0];
  const auto body = request.subspan(1);
  if (tag == kOracleRequest) {
    // Legacy bare 'O' (empty body) resolves to the default place; a body
    // is an OracleRequest naming the shard.
    if (body.empty()) return store_->oracle_snapshot({}).encode();
    const OracleRequest req = OracleRequest::decode(body);
    return store_->oracle_snapshot(req.place).encode();
  }
  if (tag == kQueryRequest) {
    return handle_query(body, solver_seed);
  }
  if (tag == kStatsRequest) {
    const StatsRequest req = StatsRequest::decode(body);
    StatsResponse resp;
    resp.format = req.format;
    if (req.format == StatsRequest::kFormatSlowLog) {
      resp.text = runtime_->slow_log.to_json_lines();
      return resp.encode();
    }
    // Refresh the scrape-time gauges so every export self-describes the
    // serving process, not just its build.
    auto& registry = obs::Registry::global();
    registry.gauge("server.uptime_ms").set(ms_since(runtime_->start));
    const auto seen = runtime_->queries_seen.load(std::memory_order_relaxed);
    const auto traced =
        runtime_->queries_traced.load(std::memory_order_relaxed);
    registry.gauge("server.trace_sample_rate")
        .set(seen == 0 ? 0.0
                       : static_cast<double>(traced) /
                             static_cast<double>(seen));
    registry.gauge("server.admission_cap")
        .set(static_cast<double>(runtime_->admission.max_inflight()));
    registry.gauge("server.shed_rate").set(runtime_->admission.shed_rate());
    const auto snap = registry.snapshot();
    resp.text = req.format == StatsRequest::kFormatPrometheus
                    ? obs::to_prometheus(snap)
                    : obs::to_json_lines(snap);
    return resp.encode();
  }
  throw DecodeError{"unknown request tag"};
}

Bytes VisualPrintServer::handle_query(std::span<const std::uint8_t> body,
                                      std::uint64_t solver_seed) const {
  const auto t0 = std::chrono::steady_clock::now();
  runtime_->queries_seen.fetch_add(1, std::memory_order_relaxed);
  // Admission first, before any decode work: a shed query must cost the
  // server almost nothing, or shedding would not shield the admitted ones.
  const AdmissionTicket ticket(&runtime_->admission);
  if (!ticket.admitted()) {
    VP_OBS_COUNT("server.shed", 1);
    ErrorResponse err;
    err.code = ErrorResponse::kOverloaded;
    err.message = "query shed: admission cap " +
                  std::to_string(runtime_->admission.max_inflight()) +
                  " inflight queries reached";
    return err.encode();
  }
  VP_OBS_COUNT("server.admitted", 1);
  const InflightGuard inflight(obs::Registry::global().gauge("server.inflight"));
  // The handler trace opens before decode so the wire "decode" span lands
  // in it. Cheap either way (two thread-local stores), so it is opened for
  // untraced queries too — their spans still feed the slow-query log.
  obs::FrameTrace trace;
  obs::SlowQuery slow;
  Bytes reply;
  const FingerprintQuery query = FingerprintQuery::decode(body);
  VP_OBS_OBSERVE("net.query_bytes", static_cast<double>(body.size()));
  slow.trace_id = query.trace_id;
  slow.frame_id = query.frame_id;
  if (query.trace_id != 0) {
    runtime_->queries_traced.fetch_add(1, std::memory_order_relaxed);
  }
  bool stale = false;
  if (query.compact()) {
    VP_OBS_COUNT("server.compact_decode", 1);
    // A compact query's codes are only rankable against the codebook epoch
    // the client encoded with. Epoch/mode come from metadata (manifest for
    // cold shards) so the gate never faults a shard in; an unknown place
    // falls through to localize() and its structured miss.
    const std::string& place =
        query.place.empty() ? store_->default_place() : query.place;
    const std::uint32_t current = store_->epoch(place);
    const std::string_view mode = store_->storage_mode(place);
    if (current != 0 &&
        (mode != "pq" || current != query.codebook_epoch)) {
      VP_OBS_COUNT("server.stale_codebook", 1);
      ErrorResponse err;
      err.code = ErrorResponse::kStaleOracle;
      err.message = "codebook epoch " + std::to_string(query.codebook_epoch) +
                    " for place '" + place + "' cannot rank compact codes: " +
                    (mode == "pq" ? "superseded by epoch " +
                                        std::to_string(current)
                                  : "place is not PQ-indexed");
      slow.error_code = ErrorResponse::kStaleOracle;
      slow.place = place;
      reply = err.encode();
      stale = true;
    }
  }
  if (!stale && query.oracle_epoch != 0) {
    // The client ranked its keypoints against an epoch'd oracle; if the
    // place has republished since, tell it to refresh instead of
    // localizing against selections an outdated uniqueness table made.
    const std::string& place =
        query.place.empty() ? store_->default_place() : query.place;
    const auto shard = store_->snapshot(place);
    if (shard != nullptr && shard->epoch != query.oracle_epoch) {
      VP_OBS_COUNT("server.stale_oracle", 1);
      ErrorResponse err;
      err.code = ErrorResponse::kStaleOracle;
      err.message = "oracle epoch " + std::to_string(query.oracle_epoch) +
                    " for place '" + place + "' superseded by epoch " +
                    std::to_string(shard->epoch);
      slow.error_code = ErrorResponse::kStaleOracle;
      slow.place = place;
      reply = err.encode();
      stale = true;
    }
  }
  if (!stale) {
    // Per-query rng: deterministic for a given (seed, frame) and safe when
    // serve() runs handlers concurrently on pool workers.
    Rng solver_rng(solver_seed ^ (0x51ULL << 56) ^ query.frame_id);
    LocationResponse resp = store_->localize(query, solver_rng);
    resp.trace_id = query.trace_id;
    if (query.trace_id != 0 && (query.trace_flags & obs::kTraceSampled)) {
      // Echo this handler's span tree as the v3 timing block. Spans run on
      // pool workers (multi-shard fan-out) are histogram-only and absent
      // here — the block shows the coordinating thread's structure.
      for (const obs::SpanRecord& rec : trace.records()) {
        WireSpan s;
        s.name = rec.name;
        s.parent = static_cast<std::int16_t>(rec.parent);
        s.start_ms = static_cast<float>(rec.start_ms);
        s.duration_ms = static_cast<float>(rec.duration_ms);
        resp.server_spans.push_back(std::move(s));
      }
    }
    slow.place = resp.place;
    reply = resp.encode();
  }
  slow.total_ms = ms_since(t0);
  const obs::StageTimings stage_totals = trace.stage_timings();
  for (const auto& [stage, ms] : stage_totals.entries()) {
    slow.stages.emplace_back(stage, ms);
  }
  for (const auto& [key, value] : trace.notes()) {
    slow.notes.emplace_back(key, value);
  }
  runtime_->slow_log.record(std::move(slow));
  return reply;
}

OracleDownload VisualPrintServer::oracle_snapshot() const {
  return store_->oracle_snapshot({});
}

OracleDownload VisualPrintServer::oracle_snapshot(
    const std::string& place) const {
  return store_->oracle_snapshot(place);
}

OracleDiff VisualPrintServer::oracle_diff_from(
    std::span<const std::uint8_t> old_blob) const {
  const PlaceShard& shard = default_builder();
  const Bytes new_blob = shard.oracle.serialize();
  // from_version is unknown to the server here; caller tracks versions.
  return OracleDiff::make(old_blob, new_blob, 0, shard.oracle_version);
}

const UniquenessOracle& VisualPrintServer::oracle() const {
  return default_builder().oracle;
}

const LshIndex& VisualPrintServer::index() const {
  return default_builder().index;
}

std::size_t VisualPrintServer::keypoint_count() const {
  return default_builder().stored.size();
}

const StoredKeypoint& VisualPrintServer::stored(std::uint32_t id) const {
  return default_builder().stored.at(id);
}

int VisualPrintServer::scene_count() const {
  return default_builder().scene_count;
}

std::size_t VisualPrintServer::index_byte_size() const {
  return default_builder().index.byte_size();
}

}  // namespace vp
