#include "core/server.hpp"

#include <algorithm>
#include <optional>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace vp {

VisualPrintServer::VisualPrintServer(ServerConfig config)
    : config_(config), index_(config.index), oracle_(config.oracle) {}

void VisualPrintServer::ingest(const Feature& feature, Vec3 world_position,
                               std::int32_t scene_id,
                               std::uint32_t source_id) {
  const std::uint32_t id = index_.insert(feature.descriptor);
  VP_ASSERT(id == stored_.size());
  stored_.push_back({world_position, scene_id, source_id});
  oracle_.insert(feature.descriptor);
  scene_count_ = std::max(scene_count_, scene_id + 1);
  ++oracle_version_;
}

void VisualPrintServer::ingest_wardrive(
    std::span<const KeypointMapping> mappings) {
  for (const auto& m : mappings) {
    ingest(m.feature, m.world_position, -1, m.snapshot);
  }
}

LocationResponse VisualPrintServer::localize_query(
    const FingerprintQuery& query, Rng& rng) const {
  LocationResponse resp;
  resp.frame_id = query.frame_id;
  resp.place_label = config_.place_label;
  VP_OBS_COUNT("server.queries", 1);

  // Retrieval: |K| * n candidate (pixel, 3-D point) pairs.
  std::vector<Observation> candidates;
  std::vector<Vec3> points;
  {
    VP_OBS_SPAN("lsh.retrieve");
    for (const auto& f : query.features) {
      const auto matches =
          index_.query(f.descriptor, config_.neighbors_per_keypoint);
      for (const auto& m : matches) {
        if (m.distance2 > config_.max_match_distance2) continue;
        candidates.push_back(
            {{f.keypoint.x, f.keypoint.y}, stored_[m.id].position});
        points.push_back(stored_[m.id].position);
      }
    }
  }
  if (candidates.size() < 3) return resp;  // found = false

  // Largest spatial cluster; discard everything else (repetitions
  // elsewhere in the building vote into other clusters).
  std::vector<std::size_t> keep;
  {
    VP_OBS_SPAN("cluster");
    keep = largest_cluster(points, config_.clustering);
  }
  if (keep.size() < 3) return resp;
  std::vector<Observation> obs;
  obs.reserve(keep.size());
  for (std::size_t i : keep) obs.push_back(candidates[i]);

  CameraIntrinsics cam;
  cam.width = query.image_width;
  cam.height = query.image_height;
  cam.fov_h = static_cast<double>(query.fov_h);
  std::optional<LocalizeResult> result;
  {
    VP_OBS_SPAN("localize.solve");
    result = localize(obs, cam, config_.localize, rng);
  }
  if (!result) return resp;

  VP_OBS_COUNT("server.localized", 1);
  resp.found = true;
  resp.position = result->pose.translation;
  euler_zyx(result->pose.rotation, resp.yaw, resp.pitch, resp.roll);
  resp.residual = result->residual;
  resp.matched_keypoints = static_cast<std::uint32_t>(obs.size());
  return resp;
}

std::vector<std::uint32_t> VisualPrintServer::scene_votes(
    std::span<const Feature> features) const {
  std::vector<std::uint32_t> votes(
      static_cast<std::size_t>(std::max(0, scene_count_)), 0);
  for (const auto& f : features) {
    const auto matches = index_.query(f.descriptor, 1);
    if (matches.empty()) continue;
    if (matches[0].distance2 > config_.max_match_distance2) continue;
    const std::int32_t sid = stored_[matches[0].id].scene_id;
    if (sid >= 0 && static_cast<std::size_t>(sid) < votes.size()) {
      ++votes[static_cast<std::size_t>(sid)];
    }
  }
  return votes;
}

Bytes VisualPrintServer::handle_request(std::span<const std::uint8_t> request,
                                        std::uint64_t solver_seed) const {
  if (request.empty()) throw DecodeError{"empty request"};
  const std::uint8_t tag = request[0];
  const auto body = request.subspan(1);
  if (tag == kOracleRequest) {
    return oracle_snapshot().encode();
  }
  if (tag == kQueryRequest) {
    const FingerprintQuery query = FingerprintQuery::decode(body);
    // Per-query rng: deterministic for a given (seed, frame) and safe when
    // serve() runs handlers concurrently on pool workers.
    Rng solver_rng(solver_seed ^ (0x51ULL << 56) ^ query.frame_id);
    return localize_query(query, solver_rng).encode();
  }
  if (tag == kStatsRequest) {
    const StatsRequest req = StatsRequest::decode(body);
    StatsResponse resp;
    resp.format = req.format;
    const auto snap = obs::Registry::global().snapshot();
    resp.text = req.format == StatsRequest::kFormatPrometheus
                    ? obs::to_prometheus(snap)
                    : obs::to_json_lines(snap);
    return resp.encode();
  }
  throw DecodeError{"unknown request tag"};
}

OracleDownload VisualPrintServer::oracle_snapshot() const {
  return OracleDownload::pack(oracle_, oracle_version_);
}

OracleDiff VisualPrintServer::oracle_diff_from(
    std::span<const std::uint8_t> old_blob) const {
  const Bytes new_blob = oracle_.serialize();
  // from_version is unknown to the server here; caller tracks versions.
  return OracleDiff::make(old_blob, new_blob, 0, oracle_version_);
}

}  // namespace vp
