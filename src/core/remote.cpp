#include "core/remote.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace vp {

RemoteLocalizer::RemoteLocalizer(Transport transport)
    : transport_(std::move(transport)) {
  VP_REQUIRE(transport_ != nullptr, "remote localizer needs a transport");
}

std::uint16_t RemoteLocalizer::exchange(std::span<const std::uint8_t> request,
                                        Bytes& reply, std::string& message) {
  try {
    reply = transport_(request);
  } catch (const RemoteError& e) {
    message = e.what();
    return e.code();
  }
  if (is_error_frame(reply)) {
    const ErrorResponse err = ErrorResponse::decode(reply);
    message = err.message;
    return err.code;
  }
  return 0;
}

OracleDownload RemoteLocalizer::fetch_oracle(const std::string& place) {
  ByteWriter w;
  w.u8(kOracleRequest);
  // The bare legacy 'O' request resolves to the default place; naming one
  // needs an OracleRequest body.
  if (!place.empty()) w.raw(OracleRequest{place}.encode());
  Bytes reply;
  std::string message;
  const std::uint16_t code = exchange(w.bytes(), reply, message);
  if (code != 0) throw RemoteError{code, message};
  OracleDownload download = OracleDownload::decode(reply);
  epochs_[download.place] = download.epoch;
  if (on_refresh_) on_refresh_(download);
  return download;
}

LocationResponse RemoteLocalizer::localize(FingerprintQuery query) {
  for (int attempt = 0;; ++attempt) {
    ByteWriter w(1 + query.wire_size());
    w.u8(kQueryRequest);
    w.raw(query.encode());
    Bytes reply;
    std::string message;
    const std::uint16_t code = exchange(w.bytes(), reply, message);
    if (code == 0) return LocationResponse::decode(reply);
    if (code == ErrorResponse::kStaleOracle && attempt == 0) {
      ++stale_refreshes_;
      VP_OBS_COUNT("client.stale_refreshes", 1);
      const OracleDownload fresh = fetch_oracle(query.place);
      query.oracle_epoch = fresh.epoch;
      continue;
    }
    throw RemoteError{code, message};
  }
}

std::uint32_t RemoteLocalizer::known_epoch(const std::string& place) const {
  const auto it = epochs_.find(place);
  return it == epochs_.end() ? 0 : it->second;
}

}  // namespace vp
