#include "core/remote.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace vp {

namespace {
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}
}  // namespace

RemoteLocalizer::RemoteLocalizer(Transport transport)
    : transport_(std::move(transport)) {
  VP_REQUIRE(transport_ != nullptr, "remote localizer needs a transport");
}

std::uint16_t RemoteLocalizer::exchange(std::span<const std::uint8_t> request,
                                        Bytes& reply, std::string& message,
                                        const char* kind) {
  VP_OBS_COUNT(std::string("net.bytes.up.") + kind, request.size());
  try {
    reply = transport_(request);
  } catch (const RemoteError& e) {
    message = e.what();
    return e.code();
  }
  VP_OBS_COUNT(std::string("net.bytes.down.") + kind, reply.size());
  if (is_error_frame(reply)) {
    const ErrorResponse err = ErrorResponse::decode(reply);
    message = err.message;
    return err.code;
  }
  return 0;
}

OracleDownload RemoteLocalizer::fetch_oracle(const std::string& place) {
  ByteWriter w;
  w.u8(kOracleRequest);
  // The bare legacy 'O' request resolves to the default place; naming one
  // needs an OracleRequest body.
  if (!place.empty()) w.raw(OracleRequest{place}.encode());
  Bytes reply;
  std::string message;
  const std::uint16_t code = exchange(w.bytes(), reply, message, "oracle");
  if (code != 0) throw RemoteError{code, message};
  OracleDownload download = OracleDownload::decode(reply);
  epochs_[download.place] = download.epoch;
  if (!download.codebook.empty()) {
    // The place serves PQ: cache its codebook so subsequent compact-uplink
    // queries can encode against exactly this epoch.
    codebooks_[download.place] = PqCodebook::from_raw(download.codebook);
  } else {
    // A republish may drop PQ (e.g. rebuilt exact-only); forget the stale
    // codebook so localize() falls back to the raw wire format.
    codebooks_.erase(download.place);
  }
  if (on_refresh_) on_refresh_(download);
  return download;
}

bool RemoteLocalizer::stamp_compact(FingerprintQuery& query) {
  query.codes.clear();
  query.codebook_epoch = 0;
  if (!compact_uplink_ || query.place.empty()) return false;
  const auto it = codebooks_.find(query.place);
  if (it == codebooks_.end()) return false;
  const std::uint32_t epoch = known_epoch(query.place);
  if (epoch == 0) return false;
  query.codes.reserve(query.features.size() * kPqCodeBytes);
  std::array<std::uint8_t, kPqCodeBytes> code;
  for (const Feature& f : query.features) {
    it->second.encode(f.descriptor.data(), code.data());
    query.codes.insert(query.codes.end(), code.begin(), code.end());
  }
  query.codebook_epoch = epoch;
  return true;
}

void RemoteLocalizer::enable_tracing(double sample_rate) {
  tracing_ = true;
  sample_rate_ = std::clamp(sample_rate, 0.0, 1.0);
  sample_accum_ = 0.0;
}

LocationResponse RemoteLocalizer::localize(FingerprintQuery query) {
  std::optional<obs::FrameTrace> trace;
  if (tracing_) {
    if (query.trace_id == 0) query.trace_id = obs::next_trace_id();
    sample_accum_ += sample_rate_;
    if (sample_accum_ >= 1.0) {
      sample_accum_ -= 1.0;
      query.trace_flags |= obs::kTraceSampled;
    }
    trace.emplace();
  }
  for (int attempt = 0;; ++attempt) {
    // Re-stamped every attempt: a stale-codebook resend must encode
    // against the codebook the refresh just installed, not the old one.
    if (stamp_compact(query)) {
      ++compact_queries_;
      VP_OBS_COUNT("client.compact_queries", 1);
    }
    ByteWriter w(1 + query.wire_size());
    w.u8(kQueryRequest);
    w.raw(query.encode());
    Bytes reply;
    std::string message;
    const auto sent = Clock::now();
    const std::uint16_t code = exchange(w.bytes(), reply, message, "query");
    const auto received = Clock::now();
    if (code == 0) {
      LocationResponse resp = LocationResponse::decode(reply);
      if (trace) stitch(query, resp, sent, received);
      return resp;
    }
    if (code == ErrorResponse::kStaleOracle && attempt == 0) {
      ++stale_refreshes_;
      VP_OBS_COUNT("client.stale_refreshes", 1);
      const OracleDownload fresh = fetch_oracle(query.place);
      query.oracle_epoch = fresh.epoch;
      continue;
    }
    throw RemoteError{code, message};
  }
}

void RemoteLocalizer::stitch(const FingerprintQuery& query,
                             const LocationResponse& resp,
                             Clock::time_point sent,
                             Clock::time_point received) {
  obs::StitchedTrace st;
  st.trace_id = query.trace_id;
  st.frame_id = query.frame_id;
  st.place = resp.place;
  // base = this trace's epoch on the localizer's session timeline.
  const auto now = Clock::now();
  st.base_ms = ms_between(epoch_, now) - obs::active_trace_ms_at(now);

  // Client lane: everything the FrameTrace saw on this thread (encode,
  // plus any spans the transport itself opened).
  const std::vector<obs::SpanRecord>* records = obs::active_trace_records();
  if (records != nullptr) st.client = obs::to_stitched_spans(*records);

  // Link lane. The transport is opaque, so the split is inferred: the
  // server block's envelope (max span end) is compute time; the rest of
  // the measured round trip is wire time, charged half to each direction.
  const double t_sent = obs::active_trace_ms_at(sent);
  const double t_received = obs::active_trace_ms_at(received);
  const double rtt = t_received - t_sent;
  double envelope = 0;
  for (const WireSpan& s : resp.server_spans) {
    envelope = std::max(envelope, static_cast<double>(s.start_ms) +
                                      static_cast<double>(s.duration_ms));
  }
  const double net = std::max(0.0, rtt - envelope);
  st.link.push_back({"link.rtt", -1, t_sent, rtt});
  st.link.push_back({"link.uplink", 0, t_sent, net / 2});
  st.link.push_back({"link.downlink", 0, t_received - net / 2, net / 2});

  // Server lane: echoed spans shifted onto this timeline — the server's
  // epoch is placed after the inferred uplink.
  const double server_base = t_sent + net / 2;
  st.server.reserve(resp.server_spans.size());
  for (const WireSpan& s : resp.server_spans) {
    st.server.push_back({s.name, s.parent,
                         server_base + static_cast<double>(s.start_ms),
                         static_cast<double>(s.duration_ms)});
  }
  traces_.push_back(std::move(st));
}

std::uint32_t RemoteLocalizer::known_epoch(const std::string& place) const {
  const auto it = epochs_.find(place);
  return it == epochs_.end() ? 0 : it->second;
}

}  // namespace vp
