#include "core/client.hpp"

#include <algorithm>

#include "imaging/codec.hpp"
#include "imaging/filters.hpp"
#include "index/brute_force.hpp"  // random_subselect
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace vp {

VisualPrintClient::VisualPrintClient(ClientConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  VP_REQUIRE(config.top_k >= 1, "top_k must be >= 1");
}

void VisualPrintClient::install_oracle(const OracleDownload& download) {
  oracle_blob_ = zlib_decompress(download.compressed);
  oracle_ = std::make_shared<UniquenessOracle>(
      UniquenessOracle::deserialize(oracle_blob_));
  place_ = download.place;
  oracle_epoch_ = download.epoch;
  codebook_blob_ = download.codebook;
  oracle_cache_[place_] = {oracle_epoch_, oracle_, oracle_blob_,
                           codebook_blob_};
}

void VisualPrintClient::install_oracle(UniquenessOracle oracle) {
  oracle_ = std::make_shared<UniquenessOracle>(std::move(oracle));
  oracle_blob_ = oracle_->serialize();
  place_.clear();
  oracle_epoch_ = 0;
  codebook_blob_.clear();
}

bool VisualPrintClient::select_place(const std::string& place) {
  const auto it = oracle_cache_.find(place);
  if (it == oracle_cache_.end()) return false;
  oracle_ = it->second.oracle;
  oracle_blob_ = it->second.blob;
  place_ = place;
  oracle_epoch_ = it->second.epoch;
  codebook_blob_ = it->second.codebook;
  return true;
}

void VisualPrintClient::apply_oracle_diff(const OracleDiff& diff) {
  VP_REQUIRE(oracle_ != nullptr, "no oracle installed to diff against");
  Bytes updated = diff.apply(oracle_blob_);
  oracle_ = std::make_shared<UniquenessOracle>(
      UniquenessOracle::deserialize(updated));
  oracle_blob_ = std::move(updated);
  // Diffs carry fine-grained oracle versions, not publish epochs; the
  // refreshed oracle's epoch is unknown, so stop stamping one.
  oracle_epoch_ = 0;
  const auto it = oracle_cache_.find(place_);
  if (it != oracle_cache_.end()) {
    it->second = {oracle_epoch_, oracle_, oracle_blob_, codebook_blob_};
  }
}

std::vector<Feature> VisualPrintClient::select_features(
    std::vector<Feature> features, std::size_t k) {
  if (features.size() <= k) return features;

  switch (config_.policy) {
    case SelectionPolicy::kAll:
      return features;
    case SelectionPolicy::kRandom: {
      const auto ids = random_subselect(features.size(), k, rng_);
      std::vector<Feature> out;
      out.reserve(k);
      for (std::size_t i : ids) out.push_back(std::move(features[i]));
      return out;
    }
    case SelectionPolicy::kMostUnique:
    default: {
      VP_REQUIRE(oracle_ != nullptr,
                 "uniqueness selection requires a downloaded oracle");
      // Counting-filter lookups give each keypoint an estimated global
      // occurrence count; the partial ordering ranks unique first. The
      // batch call shares the frame pipeline's pool (if configured) and
      // reuses lookup scratch across descriptors.
      std::vector<Descriptor> descriptors;
      descriptors.reserve(features.size());
      for (const auto& f : features) descriptors.push_back(f.descriptor);
      const auto counts =
          oracle_->count_batch(descriptors, config_.sift.pool);
      std::vector<std::pair<std::uint32_t, std::size_t>> scored;
      scored.reserve(features.size());
      for (std::size_t i = 0; i < features.size(); ++i) {
        scored.emplace_back(counts[i], i);
      }
      std::nth_element(
          scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k - 1),
          scored.end());
      std::sort(scored.begin(),
                scored.begin() + static_cast<std::ptrdiff_t>(k));
      std::vector<Feature> out;
      out.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        out.push_back(std::move(features[scored[i].second]));
      }
      return out;
    }
  }
}

FrameResult VisualPrintClient::process_frame(const ImageF& frame,
                                             double capture_time, double now) {
  FrameResult result;
  VP_OBS_COUNT("client.frames", 1);

  // "It also rejects frames when processing falls behind the realtime
  // stream. That is, the app only processes extremely recent frames."
  if (now - capture_time > config_.stale_frame_budget_s) {
    result.status = FrameResult::Status::kStale;
    VP_OBS_COUNT("client.frames_stale", 1);
    return result;
  }

  // Blur gate before any expensive work.
  {
    VP_OBS_SPAN("blur_gate");
    result.blur_metric = variance_of_laplacian(frame);
  }
  if (result.blur_metric < config_.blur_threshold) {
    result.status = FrameResult::Status::kBlurRejected;
    VP_OBS_COUNT("client.frames_blur_rejected", 1);
    return result;
  }

  Timer sift_timer;
  std::vector<Feature> features;
  {
    VP_OBS_SPAN("sift");
    features = sift_detect(frame, config_.sift);
  }
  result.sift_ms = sift_timer.millis();
  result.total_keypoints = features.size();
  if (features.empty()) {
    result.status = FrameResult::Status::kNoFeatures;
    return result;
  }

  Timer score_timer;
  std::vector<Feature> selected;
  {
    VP_OBS_SPAN("select");
    selected = select_features(std::move(features), config_.top_k);
  }
  result.scoring_ms = score_timer.millis();
  result.selected_keypoints = selected.size();
  VP_OBS_COUNT("client.frames_queued", 1);
  VP_OBS_COUNT("client.keypoints_selected", selected.size());

  FingerprintQuery q;
  q.frame_id = next_frame_id_++;
  q.capture_time = capture_time;
  q.image_width = static_cast<std::uint16_t>(frame.width());
  q.image_height = static_cast<std::uint16_t>(frame.height());
  q.fov_h = config_.fov_h;
  q.place = place_;
  q.oracle_epoch = oracle_epoch_;
  q.features = std::move(selected);
  result.query = std::move(q);
  result.status = FrameResult::Status::kQueued;
  return result;
}

}  // namespace vp
