#include "core/residency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vp {

std::vector<std::string> ShardResidencyManager::set_budget(std::size_t bytes) {
  std::lock_guard lock(mu_);
  budget_ = bytes;
  return plan_evictions_locked(/*keep=*/{});
}

std::size_t ShardResidencyManager::budget() const {
  std::lock_guard lock(mu_);
  return budget_;
}

void ShardResidencyManager::register_cold(Manifest manifest) {
  VP_REQUIRE(!manifest.place.empty(), "residency: empty place id");
  VP_REQUIRE(manifest.loader != nullptr, "residency: null loader");
  std::lock_guard lock(mu_);
  auto& e = entries_[manifest.place];
  if (e.state == State::kResident || e.state == State::kPinned) {
    resident_bytes_ -= e.bytes;
  }
  e = Entry{};
  e.manifest = std::move(manifest);
}

void ShardResidencyManager::forget(const std::string& place) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  if (it == entries_.end()) return;
  if (it->second.state == State::kResident ||
      it->second.state == State::kPinned) {
    resident_bytes_ -= it->second.bytes;
  }
  entries_.erase(it);
}

bool ShardResidencyManager::registered(const std::string& place) const {
  std::lock_guard lock(mu_);
  return entries_.find(place) != entries_.end();
}

ShardResidencyManager::Fault ShardResidencyManager::begin_fault(
    const std::string& place) {
  std::unique_lock lock(mu_);
  // Each begin_fault counts exactly one hit or miss: a waiter that piles
  // onto an in-flight load missed, even though it returns kResident.
  bool counted_miss = false;
  for (;;) {
    // Re-find after every wait: forget() may erase entries while we sleep,
    // so a held iterator would dangle.
    auto it = entries_.find(place);
    if (it == entries_.end()) return Fault::kNotManaged;
    switch (it->second.state) {
      case State::kResident:
      case State::kPinned:
        it->second.last_touch = ++clock_;
        if (!counted_miss) ++hits_;
        return Fault::kResident;
      case State::kCold:
        it->second.state = State::kLoading;
        if (!counted_miss) ++misses_;
        return Fault::kMustLoad;
      case State::kLoading:
        if (!counted_miss) {
          ++misses_;
          counted_miss = true;
        }
        cv_.wait(lock);
        // Loop: the load may have aborted (back to kCold — we take over)
        // or succeeded (kResident).
        break;
    }
  }
}

ShardResidencyManager::Loader ShardResidencyManager::loader(
    const std::string& place) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  VP_REQUIRE(it != entries_.end(), "residency: loader for unknown place");
  return it->second.manifest.loader;
}

std::vector<std::string> ShardResidencyManager::finish_load(
    const std::string& place, std::size_t bytes) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  VP_ASSERT(it != entries_.end());
  Entry& e = it->second;
  VP_ASSERT(e.state == State::kLoading);
  e.state = State::kResident;
  e.bytes = bytes;
  e.last_touch = ++clock_;
  e.loads += 1;
  loads_ += 1;
  resident_bytes_ += bytes;
  // No notify here: waiters woken now would observe kResident before the
  // caller publishes the shard map and spin on the gap. The caller wakes
  // them with notify_waiters() once the map store is visible.
  return plan_evictions_locked(/*keep=*/place);
}

void ShardResidencyManager::notify_waiters() noexcept { cv_.notify_all(); }

void ShardResidencyManager::abort_load(const std::string& place) noexcept {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  if (it == entries_.end()) return;
  if (it->second.state == State::kLoading) it->second.state = State::kCold;
  cv_.notify_all();
}

void ShardResidencyManager::touch(const std::string& place) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  if (it == entries_.end()) return;
  it->second.last_touch = ++clock_;
  ++hits_;
}

void ShardResidencyManager::pin(const std::string& place) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  if (it == entries_.end()) return;
  if (it->second.state == State::kResident) it->second.state = State::kPinned;
}

std::uint32_t ShardResidencyManager::manifest_epoch(
    const std::string& place) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  return it == entries_.end() ? 0 : it->second.manifest.epoch;
}

std::string ShardResidencyManager::manifest_storage(
    const std::string& place) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  return it == entries_.end() ? std::string{} : it->second.manifest.storage;
}

std::size_t ShardResidencyManager::manifest_bytes(
    const std::string& place) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  return it == entries_.end() ? 0 : it->second.manifest.bytes;
}

ShardResidencyManager::State ShardResidencyManager::state(
    const std::string& place) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(place);
  return it == entries_.end() ? State::kCold : it->second.state;
}

ShardResidencyManager::Stats ShardResidencyManager::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.loads = loads_;
  s.resident_bytes = resident_bytes_;
  s.budget_bytes = budget_;
  s.registered = entries_.size();
  for (const auto& [place, e] : entries_) {
    if (e.state == State::kResident || e.state == State::kPinned) ++s.resident;
  }
  return s;
}

std::vector<ShardResidencyManager::PlaceStatus>
ShardResidencyManager::statuses() const {
  std::lock_guard lock(mu_);
  std::vector<PlaceStatus> out;
  out.reserve(entries_.size());
  for (const auto& [place, e] : entries_) {
    PlaceStatus st;
    st.place = place;
    st.state = e.state;
    st.bytes = (e.state == State::kResident || e.state == State::kPinned)
                   ? e.bytes
                   : e.manifest.bytes;
    st.epoch = e.manifest.epoch;
    st.storage = e.manifest.storage;
    st.loads = e.loads;
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<std::string> ShardResidencyManager::plan_evictions_locked(
    const std::string& keep) {
  std::vector<std::string> victims;
  if (budget_ == 0) return victims;
  // LRU scan: repeatedly drop the stalest evictable entry. Pinned shards
  // diverged from disk and the `keep` place was just installed on behalf
  // of a waiting query — evicting either would be incorrect or would
  // thrash the fault that triggered this pass.
  while (resident_bytes_ > budget_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.state != State::kResident) continue;
      if (it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.last_touch < victim->second.last_touch) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // nothing evictable; over budget
    make_cold_locked(victim->second);
    ++evictions_;
    victims.push_back(victim->first);
  }
  return victims;
}

void ShardResidencyManager::make_cold_locked(Entry& e) {
  resident_bytes_ -= e.bytes;
  e.bytes = 0;
  e.state = State::kCold;
}

}  // namespace vp
