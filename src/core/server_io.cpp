// Persistence for VisualPrintServer: one self-describing file carrying
// every shard's structural configuration, stored keypoints (descriptor +
// 3-D position + labels), and oracle. The LSH lookup tables are rebuilt
// from the stored descriptors on load — deterministic, since the
// projection family is seeded — so the file stays far smaller than
// resident memory.
//
// Format v4 (tiered residency): a compact header region followed by
// page-aligned bulk segments.
//
//   header: magic, version, total file size (u64, so any truncation is
//           caught before touching segment offsets), default place,
//           shard count, then one length-prefixed record per shard:
//             place id
//             meta blob   (zlib: label, index config, epoch,
//                          oracle version, keypoint count, pq flag)
//             oracle blob (zlib; embeds its own configuration)
//             codebook blob (zlib'd 32 KiB PQ codebook, empty sans PQ)
//             segment directory: {kind u8, offset u64, length u64,
//                                 crc32 u32} per segment
//   segments: each 4096-aligned and *uncompressed* — the flat 128-byte
//             stride descriptor buffer (kind 0), the 32-byte stride
//             stored-keypoint array (kind 1), and in PQ mode the 16-byte
//             stride code buffer (kind 2). Uncompressed segments bypass
//             zlib's integrity check, so each carries its own crc32,
//             verified on load.
//
// The aligned, uncompressed layout is what makes cold shards cheap: a
// loader mmaps the file and hands the descriptor/code segments to
// LshIndex::bulk_load as *borrowed* spans (the mapping itself is the
// keepalive), so faulting a shard in costs one meta inflate, one oracle
// inflate, and a bucket rebuild — never a descriptor copy. See
// core/residency.hpp for the lazy-load/LRU machinery layered on top.
//
// v3 (PQ sections), v2 (multi-shard), and v1 (single-place) files still
// load byte-for-byte; only v4 is ever written.
#include <algorithm>
#include <fstream>
#include <memory>
#include <utility>

#include "core/residency.hpp"
#include "core/server.hpp"
#include "imaging/codec.hpp"
#include "util/error.hpp"
#include "util/mmap_file.hpp"
#include "util/timer.hpp"

namespace vp {
namespace {

constexpr std::uint32_t kDbMagic = 0x56504442u;  // "VPDB"
constexpr std::uint16_t kDbVersion = 4;

/// Bytes per stored keypoint on the legacy (v1-v3) wire: descriptor +
/// position + labels, interleaved.
constexpr std::size_t kKeypointWireBytes = kDescriptorDims + 3 * 8 + 4 + 4;

/// v4 stored-keypoint segment stride: position + labels only (descriptors
/// live in their own flat segment so they can be mmap-borrowed).
constexpr std::size_t kStoredKeypointWireBytes = 3 * 8 + 4 + 4;

/// v4 segments start on page boundaries so mmap'd spans are aligned.
constexpr std::size_t kSegmentAlign = 4096;

constexpr std::uint8_t kSegDescriptors = 0;
constexpr std::uint8_t kSegKeypoints = 1;
constexpr std::uint8_t kSegPqCodes = 2;

constexpr std::size_t align_up(std::size_t v) noexcept {
  return (v + kSegmentAlign - 1) & ~(kSegmentAlign - 1);
}

void write_index_config(ByteWriter& w, const ServerConfig& cfg) {
  // Structural index configuration (the rebuild recipe).
  w.u16(static_cast<std::uint16_t>(cfg.index.lsh.tables));
  w.u16(static_cast<std::uint16_t>(cfg.index.lsh.projections));
  w.f64(cfg.index.lsh.width);
  w.u64(cfg.index.lsh.seed);
  w.u8(cfg.index.multiprobe ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(cfg.index.max_candidates));
  w.u32(static_cast<std::uint32_t>(cfg.neighbors_per_keypoint));
  w.u32(cfg.max_match_distance2);
  // v3+: PQ mode (the coarse-scan-then-rerank recipe).
  w.u8(cfg.index.pq.enabled ? 1 : 0);
  w.u32(cfg.index.pq.rerank_depth);
  w.u32(static_cast<std::uint32_t>(cfg.index.pq.train.iterations));
  w.u32(static_cast<std::uint32_t>(cfg.index.pq.train.max_samples));
  w.u64(cfg.index.pq.train.seed);
}

void read_index_config(ByteReader& r, ServerConfig& cfg,
                       std::uint16_t version) {
  cfg.index.lsh.tables = r.u16();
  cfg.index.lsh.projections = r.u16();
  cfg.index.lsh.width = r.f64();
  cfg.index.lsh.seed = r.u64();
  cfg.index.multiprobe = r.u8() != 0;
  cfg.index.max_candidates = r.u32();
  cfg.neighbors_per_keypoint = r.u32();
  cfg.max_match_distance2 = r.u32();
  if (version >= 3) {
    cfg.index.pq.enabled = r.u8() != 0;
    cfg.index.pq.rerank_depth = r.u32();
    cfg.index.pq.train.iterations = r.u32();
    cfg.index.pq.train.max_samples = r.u32();
    cfg.index.pq.train.seed = r.u64();
  }
}

void read_keypoints(ByteReader& r, PlaceShard& shard) {
  const std::uint32_t count = r.u32();
  // Validate the count against the bytes actually present before
  // reserving: a lying length field must throw, never over-allocate.
  if (static_cast<std::uint64_t>(count) * kKeypointWireBytes > r.remaining()) {
    throw DecodeError{"server db: keypoint count " + std::to_string(count) +
                      " exceeds payload"};
  }
  shard.stored.reserve(count);
  shard.index.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Descriptor d;
    const auto raw = r.raw(kDescriptorDims);
    std::copy(raw.begin(), raw.end(), d.begin());
    const std::uint32_t id = shard.index.insert(d);
    VP_ASSERT(id == i);
    StoredKeypoint s;
    s.position = {r.f64(), r.f64(), r.f64()};
    s.scene_id = r.i32();
    s.source_id = r.u32();
    shard.scene_count = std::max(shard.scene_count, s.scene_id + 1);
    shard.stored.push_back(s);
  }
}

// ---------------------------------------------------------------------------
// v4 writer

struct SegmentRef {
  std::uint8_t kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
};

Bytes serialize_v4(std::span<const std::shared_ptr<const PlaceShard>> shards,
                   const std::string& default_place) {
  struct Plan {
    const PlaceShard* shard = nullptr;
    Bytes meta_z, oracle_z, codebook_z;
    Bytes keypoints;  ///< built 32-byte-stride segment payload
    std::vector<SegmentRef> segments;
    std::vector<std::span<const std::uint8_t>> payloads;  ///< per segment
  };

  std::vector<Plan> plans;
  plans.reserve(shards.size());
  for (const auto& sp : shards) {
    const PlaceShard& s = *sp;
    const auto count = static_cast<std::uint32_t>(s.index.size());
    const bool has_pq = s.index.pq_ready();

    Plan p;
    p.shard = &s;
    ByteWriter mw;
    mw.str(s.config.place_label);
    write_index_config(mw, s.config);
    mw.u32(s.epoch);
    mw.u32(s.oracle_version);
    mw.u32(count);
    mw.u8(has_pq ? 1 : 0);
    p.meta_z = zlib_compress(mw.bytes(), 6);
    p.oracle_z = zlib_compress(s.oracle.serialize(), 6);
    if (has_pq) p.codebook_z = zlib_compress(s.index.pq_codebook().raw(), 6);

    ByteWriter kw;
    for (const StoredKeypoint& k : s.stored) {
      kw.f64(k.position.x);
      kw.f64(k.position.y);
      kw.f64(k.position.z);
      kw.i32(k.scene_id);
      kw.u32(k.source_id);
    }
    p.keypoints = kw.take();

    const auto add_segment = [&p](std::uint8_t kind,
                                  std::span<const std::uint8_t> data) {
      p.segments.push_back(
          {kind, 0, static_cast<std::uint64_t>(data.size()), crc32_of(data)});
      p.payloads.push_back(data);
    };
    add_segment(kSegDescriptors,
                {s.index.descriptor_ptr(0),
                 static_cast<std::size_t>(count) * kDescriptorDims});
    add_segment(kSegKeypoints, p.keypoints);
    if (has_pq) add_segment(kSegPqCodes, s.index.pq_codes());
    // Moving the Plan moves its Bytes buffers, not their heap storage, so
    // the keypoints payload span stays valid.
    plans.push_back(std::move(p));
  }

  const auto record_bytes = [](const Plan& p) {
    ByteWriter w;
    w.str(p.shard->place);
    w.blob(p.meta_z);
    w.blob(p.oracle_z);
    w.blob(p.codebook_z);
    w.u8(static_cast<std::uint8_t>(p.segments.size()));
    for (const SegmentRef& seg : p.segments) {
      w.u8(seg.kind);
      w.u64(seg.offset);
      w.u64(seg.length);
      w.u32(seg.crc);
    }
    return w.take();
  };
  const auto build_header = [&](std::uint64_t file_size) {
    ByteWriter w;
    w.u32(kDbMagic);
    w.u16(kDbVersion);
    w.u64(file_size);
    w.str(default_place);
    w.u32(static_cast<std::uint32_t>(plans.size()));
    for (const Plan& p : plans) w.blob(record_bytes(p));
    return w.take();
  };

  // Pass 1 sizes the header (offsets and the size field are fixed-width,
  // so filling them in later cannot change it); pass 2 writes it for real.
  const std::size_t header_size = build_header(0).size();
  std::size_t cursor = header_size;
  for (Plan& p : plans) {
    for (SegmentRef& seg : p.segments) {
      if (seg.length == 0) continue;  // offset 0: no bytes to point at
      cursor = align_up(cursor);
      seg.offset = cursor;
      cursor += seg.length;
    }
  }
  const std::size_t total = cursor;

  Bytes out(total, 0);
  const Bytes header = build_header(total);
  VP_ASSERT(header.size() == header_size);
  std::copy(header.begin(), header.end(), out.begin());
  for (const Plan& p : plans) {
    for (std::size_t i = 0; i < p.segments.size(); ++i) {
      const SegmentRef& seg = p.segments[i];
      if (seg.length == 0) continue;
      std::copy(p.payloads[i].begin(), p.payloads[i].end(),
                out.begin() + static_cast<std::ptrdiff_t>(seg.offset));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// v4 reader

/// One shard's parsed v4 record: everything needed to rebuild the shard,
/// with the bulk payloads still sitting in the backing bytes as spans.
struct ShardRecordV4 {
  std::string place;
  ServerConfig cfg;  ///< label + index config (oracle config set at load)
  std::uint32_t epoch = 0;
  std::uint32_t oracle_version = 0;
  std::uint32_t count = 0;
  bool has_pq = false;
  std::span<const std::uint8_t> oracle_z, codebook_z;
  SegmentRef descriptors, keypoints, codes;
};

struct ParsedV4 {
  std::string default_place;
  std::vector<ShardRecordV4> shards;
};

ShardRecordV4 parse_v4_record(std::span<const std::uint8_t> rec_bytes,
                              std::size_t file_size) {
  ByteReader r(rec_bytes);
  ShardRecordV4 rec;
  rec.place = r.str();
  const auto meta_z = r.blob();
  rec.oracle_z = r.blob();
  rec.codebook_z = r.blob();

  const std::uint8_t nseg = r.u8();
  bool seen[3] = {false, false, false};
  for (std::uint8_t i = 0; i < nseg; ++i) {
    SegmentRef seg;
    seg.kind = r.u8();
    seg.offset = r.u64();
    seg.length = r.u64();
    seg.crc = r.u32();
    // Overflow-safe bounds check before anyone subspans the file.
    if (seg.length > file_size || seg.offset > file_size - seg.length) {
      throw DecodeError{"server db: segment out of bounds in shard '" +
                        rec.place + "'"};
    }
    if (seg.kind > kSegPqCodes || seen[seg.kind]) {
      throw DecodeError{"server db: bad segment directory in shard '" +
                        rec.place + "'"};
    }
    seen[seg.kind] = true;
    if (seg.kind == kSegDescriptors) rec.descriptors = seg;
    if (seg.kind == kSegKeypoints) rec.keypoints = seg;
    if (seg.kind == kSegPqCodes) rec.codes = seg;
  }
  if (!r.done()) {
    throw DecodeError{"server db: trailing bytes in shard record"};
  }

  const Bytes meta = zlib_decompress(meta_z);
  ByteReader mr(meta);
  rec.cfg.place_label = mr.str();
  read_index_config(mr, rec.cfg, kDbVersion);
  rec.epoch = mr.u32();
  rec.oracle_version = mr.u32();
  rec.count = mr.u32();
  rec.has_pq = mr.u8() != 0;
  if (!mr.done()) throw DecodeError{"server db: trailing bytes in shard meta"};

  // The directory must carry exactly the expected segments, each sized
  // for the declared keypoint count.
  if (!seen[kSegDescriptors] || !seen[kSegKeypoints] ||
      seen[kSegPqCodes] != rec.has_pq) {
    throw DecodeError{"server db: shard '" + rec.place +
                      "' missing required segments"};
  }
  const auto n = static_cast<std::uint64_t>(rec.count);
  if (rec.descriptors.length != n * kDescriptorDims ||
      rec.keypoints.length != n * kStoredKeypointWireBytes ||
      (rec.has_pq && rec.codes.length != n * kPqCodeBytes)) {
    throw DecodeError{"server db: segment sizes disagree with keypoint "
                      "count in shard '" + rec.place + "'"};
  }
  return rec;
}

ParsedV4 parse_v4(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  r.u32();  // magic, validated by the caller
  r.u16();  // version, validated by the caller
  const std::uint64_t file_size = r.u64();
  if (file_size != data.size()) {
    throw DecodeError{"server db: header claims " + std::to_string(file_size) +
                      " bytes, file has " + std::to_string(data.size())};
  }
  ParsedV4 db;
  db.default_place = r.str();
  const std::uint32_t shard_count = r.u32();
  db.shards.reserve(std::min<std::size_t>(shard_count, 1024));
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    db.shards.push_back(parse_v4_record(r.blob(), data.size()));
  }
  // The reader now sits at the end of the header region; everything after
  // it is alignment padding plus the directory-addressed segments, already
  // bounds-checked against the file size above.
  return db;
}

/// Rebuild one shard from its parsed v4 record. With a `keepalive` (the
/// mmap'd file, or any owner of `file`) the descriptor and code segments
/// are borrowed in place; without one they are copied. Verifies every
/// segment's crc32 — corruption throws DecodeError before any state can
/// be observed by callers.
std::unique_ptr<PlaceShard> load_v4_shard(
    const ShardRecordV4& rec, std::span<const std::uint8_t> file,
    std::shared_ptr<const void> keepalive) {
  const auto segment = [&](const SegmentRef& seg) {
    const auto data = file.subspan(static_cast<std::size_t>(seg.offset),
                                   static_cast<std::size_t>(seg.length));
    if (crc32_of(data) != seg.crc) {
      throw DecodeError{"server db: segment checksum mismatch in shard '" +
                        rec.place + "'"};
    }
    return data;
  };
  const auto desc = segment(rec.descriptors);
  const auto kps = segment(rec.keypoints);

  UniquenessOracle oracle =
      UniquenessOracle::deserialize(zlib_decompress(rec.oracle_z));
  ServerConfig cfg = rec.cfg;
  cfg.oracle = oracle.config();
  auto shard = std::make_unique<PlaceShard>(rec.place, std::move(cfg));
  shard->oracle = std::move(oracle);
  shard->epoch = rec.epoch;
  shard->oracle_version = rec.oracle_version;

  shard->index.bulk_load(desc, rec.count, keepalive);
  ByteReader kr(kps);
  shard->stored.reserve(rec.count);
  for (std::uint32_t i = 0; i < rec.count; ++i) {
    StoredKeypoint s;
    s.position = {kr.f64(), kr.f64(), kr.f64()};
    s.scene_id = kr.i32();
    s.source_id = kr.u32();
    shard->scene_count = std::max(shard->scene_count, s.scene_id + 1);
    shard->stored.push_back(s);
  }
  if (rec.has_pq) {
    shard->index.restore_pq(
        PqCodebook::from_raw(zlib_decompress(rec.codebook_z)),
        segment(rec.codes), keepalive);
  }
  return shard;
}

// ---------------------------------------------------------------------------
// legacy readers (v1-v3)

std::unique_ptr<PlaceShard> parse_shard(std::span<const std::uint8_t> data,
                                        std::uint16_t version) {
  ByteReader r(data);
  std::string place = r.str();
  ServerConfig cfg;
  cfg.place_label = r.str();
  read_index_config(r, cfg, version);
  const std::uint32_t epoch = r.u32();
  const std::uint32_t oracle_version = r.u32();
  UniquenessOracle oracle =
      UniquenessOracle::deserialize(zlib_decompress(r.blob()));
  cfg.oracle = oracle.config();
  auto shard = std::make_unique<PlaceShard>(std::move(place), std::move(cfg));
  shard->oracle = std::move(oracle);
  shard->epoch = epoch;
  shard->oracle_version = oracle_version;
  read_keypoints(r, *shard);
  if (version >= 3 && r.u8() != 0) {
    // Validate both payloads against their exact expected sizes before
    // installing anything: zlib checksums catch bit rot, but a truncated
    // or substituted blob that still inflates must throw, never yield a
    // half-usable codebook. from_raw enforces the codebook size.
    PqCodebook codebook = PqCodebook::from_raw(zlib_decompress(r.blob()));
    Bytes codes = zlib_decompress(r.blob());
    if (codes.size() != shard->index.size() * kPqCodeBytes) {
      throw DecodeError{"server db: pq codes cover " +
                        std::to_string(codes.size() / kPqCodeBytes) +
                        " descriptors, shard stores " +
                        std::to_string(shard->index.size())};
    }
    shard->index.restore_pq(std::move(codebook), std::move(codes));
  }
  if (!r.done()) throw DecodeError{"server db: trailing bytes in shard"};
  return shard;
}

/// v1 payload (everything after the header): one implicit shard whose
/// place id is its place label. Field order is fixed by the v1 writer:
/// config, oracle, keypoints, then the oracle version.
std::unique_ptr<PlaceShard> parse_v1(ByteReader& r) {
  ServerConfig cfg;
  cfg.place_label = r.str();
  read_index_config(r, cfg, 1);
  UniquenessOracle oracle =
      UniquenessOracle::deserialize(zlib_decompress(r.blob()));
  cfg.oracle = oracle.config();
  // Copy the place id out first: argument evaluation order is unspecified,
  // so `make_unique<PlaceShard>(cfg.place_label, std::move(cfg))` may move
  // cfg (emptying place_label) before reading it.
  std::string place = cfg.place_label;
  auto shard = std::make_unique<PlaceShard>(std::move(place), std::move(cfg));
  shard->oracle = std::move(oracle);
  read_keypoints(r, *shard);
  shard->oracle_version = r.u32();
  shard->epoch = 1;  // restored state counts as one publish
  if (!r.done()) throw DecodeError{"server db: trailing bytes"};
  return shard;
}

/// Cheap partial parse of a legacy (v2/v3) shard blob: place, config, and
/// epoch for the residency manifest, skipping over the oracle and keypoint
/// payloads without inflating or copying them. The full parse_shard run
/// happens at fault time.
struct LegacyPeek {
  std::string place;
  ServerConfig cfg;
  std::uint32_t epoch = 0;
  bool has_pq = false;
};

LegacyPeek peek_legacy_shard(std::span<const std::uint8_t> blob,
                             std::uint16_t version) {
  ByteReader r(blob);
  LegacyPeek p;
  p.place = r.str();
  p.cfg.place_label = r.str();
  read_index_config(r, p.cfg, version);
  p.epoch = r.u32();
  r.u32();   // oracle_version
  r.blob();  // oracle payload, skipped
  const std::uint32_t count = r.u32();
  if (static_cast<std::uint64_t>(count) * kKeypointWireBytes > r.remaining()) {
    throw DecodeError{"server db: keypoint count " + std::to_string(count) +
                      " exceeds payload"};
  }
  r.raw(count * kKeypointWireBytes);
  p.has_pq = version >= 3 && r.u8() != 0;
  return p;
}

// ---------------------------------------------------------------------------
// whole-database parse (eager and lazy)

struct ParsedDb {
  std::string default_place;
  std::vector<std::unique_ptr<PlaceShard>> shards;
};

/// Eager parse of any supported version. `keepalive`, when non-null, must
/// own the bytes behind `data` (an open MappedFile); v4 shards then borrow
/// their descriptor/code segments in place instead of copying.
ParsedDb parse_db(std::span<const std::uint8_t> data,
                  std::shared_ptr<const void> keepalive) {
  ByteReader r(data);
  if (r.u32() != kDbMagic) throw DecodeError{"server db: bad magic"};
  const std::uint16_t version = r.u16();
  ParsedDb db;
  if (version == 1) {
    db.shards.push_back(parse_v1(r));
    db.default_place = db.shards.back()->place;
    return db;
  }
  if (version == kDbVersion) {
    ParsedV4 v4 = parse_v4(data);
    db.default_place = std::move(v4.default_place);
    db.shards.reserve(v4.shards.size());
    for (const ShardRecordV4& rec : v4.shards) {
      db.shards.push_back(load_v4_shard(rec, data, keepalive));
    }
    return db;
  }
  if (version != 2 && version != 3) {
    throw DecodeError{"server db: bad version"};
  }
  db.default_place = r.str();
  const std::uint32_t shard_count = r.u32();
  db.shards.reserve(std::min<std::size_t>(shard_count, 1024));
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    db.shards.push_back(parse_shard(r.blob(), version));
  }
  if (!r.done()) throw DecodeError{"server db: trailing bytes"};
  return db;
}

struct LazyDb {
  std::string default_place;
  ServerConfig default_cfg;  ///< label + index config of the default place
  std::vector<ShardResidencyManager::Manifest> manifests;
};

/// Parse only the manifest of a database file: per shard, its place,
/// epoch, storage mode, a resident-byte estimate, and a loader closure
/// over the shared mapping. No descriptor, oracle, or code payload is
/// touched; for v4 that is one header-region scan plus one small meta
/// inflate per shard.
LazyDb parse_lazy_db(const std::shared_ptr<const MappedFile>& mapping) {
  const auto data = mapping->bytes();
  ByteReader r(data);
  if (r.u32() != kDbMagic) throw DecodeError{"server db: bad magic"};
  const std::uint16_t version = r.u16();
  LazyDb db;

  if (version == kDbVersion) {
    ParsedV4 v4 = parse_v4(data);
    db.default_place = v4.default_place;
    for (const ShardRecordV4& rec : v4.shards) {
      if (rec.place == db.default_place) db.default_cfg = rec.cfg;
      ShardResidencyManager::Manifest m;
      m.place = rec.place;
      m.epoch = rec.epoch;
      m.bytes = static_cast<std::size_t>(rec.descriptors.length +
                                         rec.keypoints.length +
                                         rec.codes.length) +
                rec.oracle_z.size();
      m.storage = rec.has_pq ? "pq" : "exact";
      // The record copy holds spans into the mapping; the captured mapping
      // keeps them (and the loaded shard's borrowed buffers) alive.
      ShardRecordV4 rc = rec;
      m.loader = [mapping, rc = std::move(rc)]() {
        return load_v4_shard(rc, mapping->bytes(), mapping);
      };
      db.manifests.push_back(std::move(m));
    }
    return db;
  }

  if (version == 1) {
    LegacyPeek p;
    p.cfg.place_label = r.str();
    read_index_config(r, p.cfg, 1);
    db.default_place = p.cfg.place_label;
    db.default_cfg = p.cfg;
    ShardResidencyManager::Manifest m;
    m.place = db.default_place;
    m.epoch = 1;
    m.bytes = data.size();
    m.storage = "exact";
    m.loader = [mapping]() {
      ByteReader lr(mapping->bytes());
      lr.u32();  // magic
      lr.u16();  // version
      return parse_v1(lr);
    };
    db.manifests.push_back(std::move(m));
    return db;
  }

  if (version != 2 && version != 3) {
    throw DecodeError{"server db: bad version"};
  }
  db.default_place = r.str();
  const std::uint32_t shard_count = r.u32();
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    const auto blob = r.blob();
    LegacyPeek p = peek_legacy_shard(blob, version);
    if (p.place == db.default_place) db.default_cfg = p.cfg;
    ShardResidencyManager::Manifest m;
    m.place = std::move(p.place);
    m.epoch = p.epoch;
    m.bytes = blob.size();
    m.storage = p.has_pq ? "pq" : "exact";
    m.loader = [mapping, blob, version]() {
      return parse_shard(blob, version);
    };
    db.manifests.push_back(std::move(m));
  }
  if (!r.done()) throw DecodeError{"server db: trailing bytes"};
  return db;
}

}  // namespace

Bytes VisualPrintServer::serialize() const {
  // snapshots() publishes pending writes and faults every registered cold
  // shard in (pinning each via its returned shared_ptr), so a budget-
  // capped server still saves its complete database.
  const auto shards = store_->snapshots();
  return serialize_v4(shards, store_->default_place());
}

VisualPrintServer VisualPrintServer::deserialize(
    std::span<const std::uint8_t> data) {
  // No keepalive: the caller's span may die after this call, so v4 bulk
  // segments are copied into owned storage.
  ParsedDb db = parse_db(data, nullptr);
  // The server's default config mirrors the default shard's, so the
  // default place id (config.place_label) matches what was saved.
  ServerConfig cfg;
  cfg.place_label = db.default_place;
  for (const auto& shard : db.shards) {
    if (shard->place == db.default_place) cfg = shard->config;
  }
  VisualPrintServer server(std::move(cfg));
  for (auto& shard : db.shards) {
    server.store_->restore_shard(std::move(shard));
  }
  return server;
}

void VisualPrintServer::save(const std::string& path) const {
  const Bytes blob = serialize();
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IoError{"cannot open for write: " + path};
  f.write(reinterpret_cast<const char*>(blob.data()),
          static_cast<std::streamsize>(blob.size()));
  if (!f) throw IoError{"short write: " + path};
}

VisualPrintServer VisualPrintServer::load(const std::string& path,
                                          const DbLoadOptions& opts) {
  auto mapping = MappedFile::open(path);
  if (opts.lazy) {
    LazyDb db = parse_lazy_db(mapping);
    ServerConfig cfg = db.default_cfg;
    cfg.place_label = db.default_place;
    // Deferred default builder: the registration below arms the default
    // place for fault-in, so eagerly building its (possibly huge) oracle
    // here would be pure waste — it is exactly what lazy loading defers.
    VisualPrintServer server(std::move(cfg),
                             /*eager_default_builder=*/false);
    server.store_->set_resident_budget(opts.resident_budget);
    for (auto& m : db.manifests) {
      server.store_->register_cold_shard(std::move(m));
    }
    return server;
  }
  // Eager: v4 shards borrow their bulk segments straight out of the
  // mapping (which the shards keep alive); v1-v3 rebuild by insertion.
  ParsedDb db = parse_db(mapping->bytes(), mapping);
  ServerConfig cfg;
  cfg.place_label = db.default_place;
  for (const auto& shard : db.shards) {
    if (shard->place == db.default_place) cfg = shard->config;
  }
  VisualPrintServer server(std::move(cfg));
  server.store_->set_resident_budget(opts.resident_budget);
  for (auto& shard : db.shards) {
    server.store_->restore_shard(std::move(shard));
  }
  return server;
}

void VisualPrintServer::load_shards(const std::string& path,
                                    const DbLoadOptions& opts) {
  auto mapping = MappedFile::open(path);
  if (opts.resident_budget != 0) {
    store_->set_resident_budget(opts.resident_budget);
  }
  if (opts.lazy) {
    LazyDb db = parse_lazy_db(mapping);
    for (auto& m : db.manifests) {
      store_->register_cold_shard(std::move(m));
    }
    return;
  }
  ParsedDb db = parse_db(mapping->bytes(), mapping);
  for (auto& shard : db.shards) {
    store_->restore_shard(std::move(shard));
  }
}

}  // namespace vp
