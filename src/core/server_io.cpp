// Persistence for VisualPrintServer: one self-describing file carrying the
// structural configuration, every stored keypoint (descriptor + 3-D
// position + labels), and the oracle. The LSH lookup table is rebuilt from
// the stored descriptors on load — deterministic, since the projection
// family is seeded — so the file stays far smaller than resident memory.
#include <algorithm>
#include <fstream>

#include "core/server.hpp"
#include "imaging/codec.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

constexpr std::uint32_t kDbMagic = 0x56504442u;  // "VPDB"
constexpr std::uint16_t kDbVersion = 1;

}  // namespace

Bytes VisualPrintServer::serialize() const {
  ByteWriter w;
  w.u32(kDbMagic);
  w.u16(kDbVersion);
  w.str(config_.place_label);

  // Structural index configuration (the rebuild recipe).
  w.u16(static_cast<std::uint16_t>(config_.index.lsh.tables));
  w.u16(static_cast<std::uint16_t>(config_.index.lsh.projections));
  w.f64(config_.index.lsh.width);
  w.u64(config_.index.lsh.seed);
  w.u8(config_.index.multiprobe ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(config_.index.max_candidates));
  w.u32(static_cast<std::uint32_t>(config_.neighbors_per_keypoint));
  w.u32(config_.max_match_distance2);

  // Oracle (embeds its own full configuration), compressed.
  const Bytes oracle_blob = zlib_compress(oracle_.serialize(), 6);
  w.blob(oracle_blob);

  // Stored keypoints.
  w.u32(static_cast<std::uint32_t>(stored_.size()));
  for (std::uint32_t id = 0; id < stored_.size(); ++id) {
    const Descriptor& d = index_.descriptor(id);
    w.raw(std::span<const std::uint8_t>(d.data(), d.size()));
    const StoredKeypoint& s = stored_[id];
    w.f64(s.position.x);
    w.f64(s.position.y);
    w.f64(s.position.z);
    w.i32(s.scene_id);
    w.u32(s.source_id);
  }
  w.u32(oracle_version_);
  return w.take();
}

VisualPrintServer VisualPrintServer::deserialize(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kDbMagic) throw DecodeError{"server db: bad magic"};
  if (r.u16() != kDbVersion) throw DecodeError{"server db: bad version"};

  ServerConfig cfg;
  cfg.place_label = r.str();
  cfg.index.lsh.tables = r.u16();
  cfg.index.lsh.projections = r.u16();
  cfg.index.lsh.width = r.f64();
  cfg.index.lsh.seed = r.u64();
  cfg.index.multiprobe = r.u8() != 0;
  cfg.index.max_candidates = r.u32();
  cfg.neighbors_per_keypoint = r.u32();
  cfg.max_match_distance2 = r.u32();

  const auto oracle_blob = r.blob();
  const Bytes oracle_raw = zlib_decompress(oracle_blob);
  UniquenessOracle oracle = UniquenessOracle::deserialize(oracle_raw);
  cfg.oracle = oracle.config();

  VisualPrintServer server(cfg);
  server.oracle_ = std::move(oracle);

  const std::uint32_t count = r.u32();
  server.stored_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Descriptor d;
    const auto raw = r.raw(kDescriptorDims);
    std::copy(raw.begin(), raw.end(), d.begin());
    const std::uint32_t id = server.index_.insert(d);
    VP_ASSERT(id == i);
    StoredKeypoint s;
    s.position = {r.f64(), r.f64(), r.f64()};
    s.scene_id = r.i32();
    s.source_id = r.u32();
    server.scene_count_ = std::max(server.scene_count_, s.scene_id + 1);
    server.stored_.push_back(s);
  }
  server.oracle_version_ = r.u32();
  if (!r.done()) throw DecodeError{"server db: trailing bytes"};
  return server;
}

void VisualPrintServer::save(const std::string& path) const {
  const Bytes blob = serialize();
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IoError{"cannot open for write: " + path};
  f.write(reinterpret_cast<const char*>(blob.data()),
          static_cast<std::streamsize>(blob.size()));
  if (!f) throw IoError{"short write: " + path};
}

VisualPrintServer VisualPrintServer::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError{"cannot open for read: " + path};
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  Bytes blob(size);
  f.read(reinterpret_cast<char*>(blob.data()),
         static_cast<std::streamsize>(size));
  if (!f) throw IoError{"short read: " + path};
  return deserialize(blob);
}

}  // namespace vp
