// Persistence for VisualPrintServer: one self-describing file carrying
// every shard's structural configuration, stored keypoints (descriptor +
// 3-D position + labels), and oracle. The LSH lookup tables are rebuilt
// from the stored descriptors on load — deterministic, since the
// projection family is seeded — so the file stays far smaller than
// resident memory.
//
// Format v3 (PQ storage): v2's multi-shard layout — header (magic,
// version, default place, shard count) followed by one length-prefixed
// self-describing blob per shard carrying the shard's place id, config,
// publish epoch, oracle, and keypoints — extended with the PQ index
// config fields and, per shard, an optional compact-descriptor section
// (trained codebook + 16-byte codes, both zlib'd) so a PQ-mode shard
// comes back query-ready without retraining. v2 files (no PQ fields,
// no PQ section) and v1 files (single-place, pre-shard; restored at
// epoch 1) still load.
#include <algorithm>
#include <fstream>

#include "core/server.hpp"
#include "imaging/codec.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

constexpr std::uint32_t kDbMagic = 0x56504442u;  // "VPDB"
constexpr std::uint16_t kDbVersion = 3;

/// Bytes per stored keypoint on the wire: descriptor + position + labels.
constexpr std::size_t kKeypointWireBytes = kDescriptorDims + 3 * 8 + 4 + 4;

void write_index_config(ByteWriter& w, const ServerConfig& cfg) {
  // Structural index configuration (the rebuild recipe).
  w.u16(static_cast<std::uint16_t>(cfg.index.lsh.tables));
  w.u16(static_cast<std::uint16_t>(cfg.index.lsh.projections));
  w.f64(cfg.index.lsh.width);
  w.u64(cfg.index.lsh.seed);
  w.u8(cfg.index.multiprobe ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(cfg.index.max_candidates));
  w.u32(static_cast<std::uint32_t>(cfg.neighbors_per_keypoint));
  w.u32(cfg.max_match_distance2);
  // v3: PQ mode (the coarse-scan-then-rerank recipe).
  w.u8(cfg.index.pq.enabled ? 1 : 0);
  w.u32(cfg.index.pq.rerank_depth);
  w.u32(static_cast<std::uint32_t>(cfg.index.pq.train.iterations));
  w.u32(static_cast<std::uint32_t>(cfg.index.pq.train.max_samples));
  w.u64(cfg.index.pq.train.seed);
}

void read_index_config(ByteReader& r, ServerConfig& cfg,
                       std::uint16_t version) {
  cfg.index.lsh.tables = r.u16();
  cfg.index.lsh.projections = r.u16();
  cfg.index.lsh.width = r.f64();
  cfg.index.lsh.seed = r.u64();
  cfg.index.multiprobe = r.u8() != 0;
  cfg.index.max_candidates = r.u32();
  cfg.neighbors_per_keypoint = r.u32();
  cfg.max_match_distance2 = r.u32();
  if (version >= 3) {
    cfg.index.pq.enabled = r.u8() != 0;
    cfg.index.pq.rerank_depth = r.u32();
    cfg.index.pq.train.iterations = r.u32();
    cfg.index.pq.train.max_samples = r.u32();
    cfg.index.pq.train.seed = r.u64();
  }
}

void write_keypoints(ByteWriter& w, const PlaceShard& shard) {
  w.u32(static_cast<std::uint32_t>(shard.stored.size()));
  for (std::uint32_t id = 0; id < shard.stored.size(); ++id) {
    w.raw(std::span<const std::uint8_t>(shard.index.descriptor_ptr(id),
                                        kDescriptorDims));
    const StoredKeypoint& s = shard.stored[id];
    w.f64(s.position.x);
    w.f64(s.position.y);
    w.f64(s.position.z);
    w.i32(s.scene_id);
    w.u32(s.source_id);
  }
}

void read_keypoints(ByteReader& r, PlaceShard& shard) {
  const std::uint32_t count = r.u32();
  // Validate the count against the bytes actually present before
  // reserving: a lying length field must throw, never over-allocate.
  if (static_cast<std::uint64_t>(count) * kKeypointWireBytes > r.remaining()) {
    throw DecodeError{"server db: keypoint count " + std::to_string(count) +
                      " exceeds payload"};
  }
  shard.stored.reserve(count);
  shard.index.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Descriptor d;
    const auto raw = r.raw(kDescriptorDims);
    std::copy(raw.begin(), raw.end(), d.begin());
    const std::uint32_t id = shard.index.insert(d);
    VP_ASSERT(id == i);
    StoredKeypoint s;
    s.position = {r.f64(), r.f64(), r.f64()};
    s.scene_id = r.i32();
    s.source_id = r.u32();
    shard.scene_count = std::max(shard.scene_count, s.scene_id + 1);
    shard.stored.push_back(s);
  }
}

Bytes serialize_shard(const PlaceShard& shard) {
  ByteWriter w;
  w.str(shard.place);
  w.str(shard.config.place_label);
  write_index_config(w, shard.config);
  w.u32(shard.epoch);
  w.u32(shard.oracle_version);
  // Oracle (embeds its own full configuration), compressed.
  w.blob(zlib_compress(shard.oracle.serialize(), 6));
  write_keypoints(w, shard);
  // v3: optional compact-descriptor section. Snapshots in PQ mode are
  // always ready (publish trains before the copy); anything else writes
  // the absent marker so exact-only shards pay one byte.
  if (shard.index.pq_ready()) {
    w.u8(1);
    w.blob(zlib_compress(shard.index.pq_codebook().raw(), 6));
    w.blob(zlib_compress(shard.index.pq_codes(), 6));
  } else {
    w.u8(0);
  }
  return w.take();
}

std::unique_ptr<PlaceShard> parse_shard(std::span<const std::uint8_t> data,
                                        std::uint16_t version) {
  ByteReader r(data);
  std::string place = r.str();
  ServerConfig cfg;
  cfg.place_label = r.str();
  read_index_config(r, cfg, version);
  const std::uint32_t epoch = r.u32();
  const std::uint32_t oracle_version = r.u32();
  UniquenessOracle oracle =
      UniquenessOracle::deserialize(zlib_decompress(r.blob()));
  cfg.oracle = oracle.config();
  auto shard = std::make_unique<PlaceShard>(std::move(place), std::move(cfg));
  shard->oracle = std::move(oracle);
  shard->epoch = epoch;
  shard->oracle_version = oracle_version;
  read_keypoints(r, *shard);
  if (version >= 3 && r.u8() != 0) {
    // Validate both payloads against their exact expected sizes before
    // installing anything: zlib checksums catch bit rot, but a truncated
    // or substituted blob that still inflates must throw, never yield a
    // half-usable codebook. from_raw enforces the codebook size.
    PqCodebook codebook = PqCodebook::from_raw(zlib_decompress(r.blob()));
    Bytes codes = zlib_decompress(r.blob());
    if (codes.size() != shard->index.size() * kPqCodeBytes) {
      throw DecodeError{"server db: pq codes cover " +
                        std::to_string(codes.size() / kPqCodeBytes) +
                        " descriptors, shard stores " +
                        std::to_string(shard->index.size())};
    }
    shard->index.restore_pq(std::move(codebook), std::move(codes));
  }
  if (!r.done()) throw DecodeError{"server db: trailing bytes in shard"};
  return shard;
}

/// v1 payload (everything after the header): one implicit shard whose
/// place id is its place label. Field order is fixed by the v1 writer:
/// config, oracle, keypoints, then the oracle version.
std::unique_ptr<PlaceShard> parse_v1(ByteReader& r) {
  ServerConfig cfg;
  cfg.place_label = r.str();
  read_index_config(r, cfg, 1);
  UniquenessOracle oracle =
      UniquenessOracle::deserialize(zlib_decompress(r.blob()));
  cfg.oracle = oracle.config();
  // Copy the place id out first: argument evaluation order is unspecified,
  // so `make_unique<PlaceShard>(cfg.place_label, std::move(cfg))` may move
  // cfg (emptying place_label) before reading it.
  std::string place = cfg.place_label;
  auto shard = std::make_unique<PlaceShard>(std::move(place), std::move(cfg));
  shard->oracle = std::move(oracle);
  read_keypoints(r, *shard);
  shard->oracle_version = r.u32();
  shard->epoch = 1;  // restored state counts as one publish
  if (!r.done()) throw DecodeError{"server db: trailing bytes"};
  return shard;
}

struct ParsedDb {
  std::string default_place;
  std::vector<std::unique_ptr<PlaceShard>> shards;
};

ParsedDb parse_db(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  if (r.u32() != kDbMagic) throw DecodeError{"server db: bad magic"};
  const std::uint16_t version = r.u16();
  ParsedDb db;
  if (version == 1) {
    db.shards.push_back(parse_v1(r));
    db.default_place = db.shards.back()->place;
    return db;
  }
  if (version != 2 && version != kDbVersion) {
    throw DecodeError{"server db: bad version"};
  }
  db.default_place = r.str();
  const std::uint32_t shard_count = r.u32();
  db.shards.reserve(std::min<std::size_t>(shard_count, 1024));
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    db.shards.push_back(parse_shard(r.blob(), version));
  }
  if (!r.done()) throw DecodeError{"server db: trailing bytes"};
  return db;
}

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError{"cannot open for read: " + path};
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  Bytes blob(size);
  f.read(reinterpret_cast<char*>(blob.data()),
         static_cast<std::streamsize>(size));
  if (!f) throw IoError{"short read: " + path};
  return blob;
}

}  // namespace

Bytes VisualPrintServer::serialize() const {
  const auto shards = store_->snapshots();  // publishes pending writes
  ByteWriter w;
  w.u32(kDbMagic);
  w.u16(kDbVersion);
  w.str(store_->default_place());
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const auto& shard : shards) w.blob(serialize_shard(*shard));
  return w.take();
}

VisualPrintServer VisualPrintServer::deserialize(
    std::span<const std::uint8_t> data) {
  ParsedDb db = parse_db(data);
  // The server's default config mirrors the default shard's, so the
  // default place id (config.place_label) matches what was saved.
  ServerConfig cfg;
  cfg.place_label = db.default_place;
  for (const auto& shard : db.shards) {
    if (shard->place == db.default_place) cfg = shard->config;
  }
  VisualPrintServer server(std::move(cfg));
  for (auto& shard : db.shards) {
    server.store_->restore_shard(std::move(shard));
  }
  return server;
}

void VisualPrintServer::save(const std::string& path) const {
  const Bytes blob = serialize();
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IoError{"cannot open for write: " + path};
  f.write(reinterpret_cast<const char*>(blob.data()),
          static_cast<std::streamsize>(blob.size()));
  if (!f) throw IoError{"short write: " + path};
}

VisualPrintServer VisualPrintServer::load(const std::string& path) {
  return deserialize(read_file(path));
}

void VisualPrintServer::load_shards(const std::string& path) {
  ParsedDb db = parse_db(read_file(path));
  for (auto& shard : db.shards) {
    store_->restore_shard(std::move(shard));
  }
}

}  // namespace vp
