#include "core/retrieval.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace vp {

SceneDatabase::SceneDatabase(RetrievalConfig config, ThreadPool* pool)
    : config_(config), index_(config.index), pool_(pool) {}

void SceneDatabase::add_image(std::span<const Feature> features,
                              std::int32_t scene_id) {
  for (const auto& f : features) {
    index_.insert(f.descriptor);
    descriptors_.push_back(f.descriptor);
    labels_.push_back(scene_id);
  }
  scene_count_ = std::max(scene_count_, scene_id + 1);
  brute_.reset();  // rebuilt lazily over the enlarged database
}

std::vector<std::uint32_t> SceneDatabase::votes(std::span<const Feature> query,
                                                MatcherKind kind) const {
  std::vector<std::uint32_t> tally(
      static_cast<std::size_t>(std::max(0, scene_count_)), 0);
  if (labels_.empty() || query.empty()) return tally;

  auto vote = [&](const Match& m) {
    if (m.distance2 > config_.max_match_distance2) return;
    const std::int32_t sid = labels_[m.id];
    if (sid >= 0) ++tally[static_cast<std::size_t>(sid)];
  };

  std::vector<Descriptor> qd;
  qd.reserve(query.size());
  for (const auto& f : query) qd.push_back(f.descriptor);

  if (kind == MatcherKind::kBruteForce) {
    if (!brute_) {
      brute_ = std::make_unique<BruteForceMatcher>(descriptors_, pool_);
    }
    for (const auto& m : brute_->nearest_batch(qd)) vote(m);
  } else {
    // Batched LSH scoring: one scratch per worker instead of a fresh
    // matches vector per feature.
    for (const auto& matches : index_.query_batch(qd, 1, pool_)) {
      if (!matches.empty()) vote(matches[0]);
    }
  }
  return tally;
}

std::optional<std::int32_t> SceneDatabase::predict(
    std::span<const Feature> query, MatcherKind kind) const {
  const auto tally = votes(query, kind);
  if (tally.empty()) return std::nullopt;
  std::size_t best = 0, second = 0;
  for (std::size_t s = 1; s < tally.size(); ++s) {
    if (tally[s] > tally[best]) {
      second = best;
      best = s;
    } else if (tally[s] > tally[second] || second == best) {
      second = s;
    }
  }
  const std::uint32_t w = tally[best];
  const std::uint32_t r = best == second ? 0 : tally[second];
  if (w < config_.min_votes) return std::nullopt;
  if (r > 0 && static_cast<double>(w) <
                   config_.min_margin * static_cast<double>(r)) {
    return std::nullopt;  // ambiguous between two scenes
  }
  return static_cast<std::int32_t>(best);
}

PrecisionRecall precision_recall_sets(
    std::span<const std::vector<int>> truth_sets,
    std::span<const std::optional<std::int32_t>> predicted, int scene_count) {
  VP_REQUIRE(truth_sets.size() == predicted.size(),
             "precision_recall_sets: size mismatch");
  PrecisionRecall pr;
  for (std::int32_t k = 0; k < scene_count; ++k) {
    std::size_t v = 0, p = 0, vp = 0;
    for (std::size_t i = 0; i < truth_sets.size(); ++i) {
      const bool in_v = std::find(truth_sets[i].begin(), truth_sets[i].end(),
                                  k) != truth_sets[i].end();
      const bool in_p = predicted[i] && *predicted[i] == k;
      v += in_v;
      p += in_p;
      vp += in_v && in_p;
    }
    if (v == 0) continue;
    pr.precision.push_back(
        p == 0 ? 0.0 : static_cast<double>(vp) / static_cast<double>(p));
    pr.recall.push_back(static_cast<double>(vp) / static_cast<double>(v));
  }
  return pr;
}

PrecisionRecall precision_recall(
    std::span<const std::optional<std::int32_t>> truth,
    std::span<const std::optional<std::int32_t>> predicted, int scene_count) {
  VP_REQUIRE(truth.size() == predicted.size(),
             "precision_recall: size mismatch");
  PrecisionRecall pr;
  for (std::int32_t k = 0; k < scene_count; ++k) {
    std::size_t v = 0, p = 0, vp = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const bool in_v = truth[i] && *truth[i] == k;
      const bool in_p = predicted[i] && *predicted[i] == k;
      v += in_v;
      p += in_p;
      vp += in_v && in_p;
    }
    if (v == 0) continue;  // scene never appears in the query set
    pr.precision.push_back(
        p == 0 ? 0.0 : static_cast<double>(vp) / static_cast<double>(p));
    pr.recall.push_back(static_cast<double>(vp) / static_cast<double>(v));
  }
  return pr;
}

}  // namespace vp
