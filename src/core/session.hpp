// End-to-end session simulator: a user walks through a World pointing the
// phone around; frames stream at camera FPS; the client pipeline (blur
// gate, SIFT, oracle ranking) runs with modeled phone-speed compute; the
// uplink carries fingerprint queries (or whole frames, for the baseline);
// the server localizes each query. Produces everything Figs. 14, 16, 18
// and 19/20 need from one run.
#pragma once

#include <vector>

#include "core/client.hpp"
#include "core/server.hpp"
#include "energy/power.hpp"
#include "net/link.hpp"
#include "obs/trace.hpp"
#include "scene/render.hpp"
#include "scene/world.hpp"

namespace vp {

/// What the client ships per accepted frame.
enum class OffloadMode : std::uint8_t {
  kVisualPrint = 0,   ///< top-k unique keypoints (fingerprint query)
  kFramePng = 1,      ///< whole lossless frame
  kFrameJpeg = 2,     ///< whole lossy frame (quality below)
  kAllKeypoints = 3,  ///< every extracted keypoint (Fig. 5 strawman)
};

struct SessionConfig {
  double duration_s = 70.0;       ///< Fig. 14/18 span
  double camera_fps = 10.0;
  CameraIntrinsics intrinsics{920, 540, 1.15192};  ///< Fig. 16 resolution
  OffloadMode mode = OffloadMode::kVisualPrint;
  int jpeg_quality = 80;
  LinkConfig link{};
  ClientConfig client{};
  RenderOptions render{};
  /// Host-to-phone compute scaling: the paper measures SIFT at ~3.3 s
  /// median on a Galaxy S6 at 920x540; a desktop core is roughly this many
  /// times faster. Applied to measured wall-clock to model phone latency.
  double phone_slowdown = 15.0;
  /// Walking speed and camera panning of the simulated user.
  double walk_speed_mps = 0.7;
  double pan_period_s = 9.0;
  double pan_amplitude_rad = 1.0;
  bool localize_on_server = true;
  /// Collect one StitchedTrace per server-localized frame (client, link,
  /// and server lanes on the simulated session timeline) into
  /// SessionStats::traces. Trace ids derive from `seed` and the frame id,
  /// so runs are reproducible.
  bool collect_traces = false;
  std::uint64_t seed = 99;
};

/// One processed-frame record.
struct SessionFrame {
  double capture_time = 0;
  FrameResult::Status status = FrameResult::Status::kNoFeatures;
  std::size_t payload_bytes = 0;     ///< bytes shipped (0 if dropped)
  /// Per-stage latency record assembled from the tracer. Client compute
  /// stages ("blur_gate", "sift" and its sift.* children, "select" with
  /// nested "oracle.score", or "encode" in frame mode) are phone-scaled
  /// milliseconds; link stages ("queue_wait", "transfer") are simulated
  /// milliseconds appended after the upload is scheduled. Under VP_OBS=OFF
  /// only the coarse fallback stages are present ("sift"/"select" or
  /// "encode", plus the link stages); the busy-model numerics are
  /// identical either way.
  obs::StageTimings stages;
  std::size_t total_keypoints = 0;
  std::size_t selected_keypoints = 0;
  /// Localization outcome (when localize_on_server):
  bool localized = false;
  Vec3 estimated_position;
  Vec3 true_position;
  double position_error = 0;

  /// Legacy views over `stages`, matching the pre-tracer fields: modeled
  /// phone-side SIFT latency and scoring latency (selection in keypoint
  /// mode, encode in frame mode — exactly one of the two is nonzero).
  double phone_sift_ms() const noexcept { return stages.value("sift"); }
  double phone_scoring_ms() const noexcept {
    return stages.value("select") + stages.value("encode");
  }
};

struct SessionStats {
  std::vector<SessionFrame> frames;
  std::vector<TransferRecord> uploads;
  std::vector<ActivitySlot> activity;  ///< one per second, for PowerModel
  /// One stitched end-to-end trace per server-localized frame (only when
  /// SessionConfig::collect_traces): client stages phone-scaled, link
  /// stages from the simulated link, server stages in real handler
  /// milliseconds, all placed on the session clock. Render with
  /// obs::to_chrome_trace.
  std::vector<obs::StitchedTrace> traces;
  std::size_t total_upload_bytes = 0;
  double duration_s = 0;

  /// Cumulative (time, bytes) curve — the Fig. 14 series.
  std::vector<std::pair<double, double>> cumulative_upload() const;
};

class Session {
 public:
  Session(const World& world, VisualPrintServer& server, SessionConfig config);

  /// Run the whole session. The client must already hold the oracle when
  /// mode == kVisualPrint (Session installs it from the server otherwise).
  SessionStats run();

 private:
  const World& world_;
  VisualPrintServer& server_;
  SessionConfig config_;
};

}  // namespace vp
