// VisualPrint client library (paper §3, "Client Android App").
//
// Per frame: blur gate (variance of Laplacian) -> SIFT extraction ->
// uniqueness scoring of every keypoint against the downloaded oracle ->
// partial sort -> upload the top-k most unique descriptors. The client can
// also run the baseline policies (random subselection, all keypoints,
// whole-frame upload) so evaluation drives every scheme through one code
// path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "features/sift.hpp"
#include "hashing/oracle.hpp"
#include "imaging/image.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"

namespace vp {

/// How the client chooses which visual data to ship.
enum class SelectionPolicy : std::uint8_t {
  kMostUnique = 0,  ///< VisualPrint: oracle-ranked top-k
  kRandom = 1,      ///< Random-k strawman
  kAll = 2,         ///< ship every keypoint (the Fig. 5 non-starter)
};

struct ClientConfig {
  /// SIFT parameters. `sift.pool` (when set) parallelizes the whole frame
  /// path: pyramid blurs, extrema scan, descriptors, and the oracle batch
  /// scoring all share it. The pool is borrowed, never owned; output is
  /// bit-identical for any pool size.
  SiftConfig sift{};
  double blur_threshold = 18.0;  ///< min variance-of-Laplacian to accept
  std::size_t top_k = 200;       ///< keypoints per query (paper: 200/500)
  SelectionPolicy policy = SelectionPolicy::kMostUnique;
  float fov_h = 1.15192f;
  double stale_frame_budget_s = 0.4;  ///< drop frames older than this when
                                      ///< processing falls behind realtime
};

/// Outcome of feeding one frame to the client.
struct FrameResult {
  enum class Status : std::uint8_t {
    kQueued,        ///< query produced and ready to upload
    kBlurRejected,  ///< failed the blur gate
    kStale,         ///< arrived too late; processing fell behind
    kNoFeatures,    ///< SIFT found nothing usable
  };
  Status status = Status::kNoFeatures;
  std::optional<FingerprintQuery> query;
  std::size_t total_keypoints = 0;
  std::size_t selected_keypoints = 0;
  double blur_metric = 0;
  double sift_ms = 0;     ///< measured extraction latency
  double scoring_ms = 0;  ///< measured oracle lookup + sort latency
};

class VisualPrintClient {
 public:
  explicit VisualPrintClient(ClientConfig config, std::uint64_t seed = 17);

  /// Install the oracle downloaded from the cloud (first launch /
  /// refresh). The download's place and epoch become the active ones —
  /// queries built afterwards are stamped with them so the server can
  /// route to the right shard and detect staleness — and the oracle is
  /// cached per place, so revisiting a venue is a `select_place` away.
  void install_oracle(const OracleDownload& download);
  /// Install a bare oracle (tests, offline tools): active place becomes ""
  /// (fan-out queries) with epoch 0 (no staleness checks).
  void install_oracle(UniquenessOracle oracle);
  bool has_oracle() const noexcept { return oracle_ != nullptr; }
  const UniquenessOracle* oracle() const noexcept { return oracle_.get(); }

  /// Switch the active oracle to a previously installed place. Returns
  /// false (and changes nothing) when the place was never installed.
  bool select_place(const std::string& place);
  bool has_cached_oracle(const std::string& place) const {
    return oracle_cache_.find(place) != oracle_cache_.end();
  }
  std::size_t cached_oracle_count() const noexcept {
    return oracle_cache_.size();
  }

  /// Place and epoch stamped onto outgoing queries.
  const std::string& oracle_place() const noexcept { return place_; }
  std::uint32_t oracle_epoch() const noexcept { return oracle_epoch_; }

  /// Incremental refresh: apply an XOR diff against the currently
  /// installed snapshot (paper: "periodically refreshes its copy of the
  /// Bloom filter"; the diff transfer is the paper's suggested-but-
  /// unimplemented optimization). Requires a previously installed oracle.
  void apply_oracle_diff(const OracleDiff& diff);

  /// Serialized form of the installed oracle (the diff base).
  const Bytes& oracle_blob() const noexcept { return oracle_blob_; }

  /// The active place's PQ codebook payload as downloaded with its oracle
  /// (empty when the place is not PQ-indexed). Cached per place alongside
  /// the oracle, so select_place() restores it. Compact-uplink callers
  /// encode query descriptors against this.
  const Bytes& codebook_blob() const noexcept { return codebook_blob_; }

  /// Process one camera frame captured at `capture_time` (seconds since
  /// session start); `now` models the realtime clock when processing
  /// starts (stale-frame rejection). Grayscale [0,255] input.
  FrameResult process_frame(const ImageF& frame, double capture_time,
                            double now);

  /// Rank features by uniqueness (ascending oracle count) and keep top-k.
  /// Exposed for tests and benches; process_frame uses this internally.
  std::vector<Feature> select_features(std::vector<Feature> features,
                                       std::size_t k);

  const ClientConfig& config() const noexcept { return config_; }

  /// Client memory footprint attributable to VisualPrint (Fig. 15).
  std::size_t oracle_byte_size() const noexcept {
    return oracle_ ? oracle_->byte_size() : 0;
  }

 private:
  struct CachedOracle {
    std::uint32_t epoch = 0;
    std::shared_ptr<UniquenessOracle> oracle;
    Bytes blob;
    Bytes codebook;
  };

  ClientConfig config_;
  std::shared_ptr<UniquenessOracle> oracle_;  ///< active oracle
  Bytes oracle_blob_;  ///< serialized snapshot, kept as the diff base
  Bytes codebook_blob_;  ///< active place's PQ codebook ("" when absent)
  std::string place_;               ///< active place ("" = fan out)
  std::uint32_t oracle_epoch_ = 0;  ///< active epoch (0 = unchecked)
  std::map<std::string, CachedOracle> oracle_cache_;
  Rng rng_;
  std::uint32_t next_frame_id_ = 0;
};

}  // namespace vp
