#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "imaging/codec.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace vp {
namespace {

/// User trajectory: walk back and forth along the world's long axis at
/// walking speed while panning the camera sinusoidally toward the walls.
struct UserPath {
  Vec3 lo, hi;
  double eye = 1.5;
  double speed;
  double pan_period;
  double pan_amplitude;

  Vec3 position(double t) const {
    const double margin = 2.0;
    const double span = std::max(1.0, (hi.x - lo.x) - 2 * margin);
    double s = std::fmod(t * speed, 2 * span);
    if (s > span) s = 2 * span - s;  // ping-pong
    const double y = lo.y + (hi.y - lo.y) * 0.5;
    return {lo.x + margin + s, y, eye};
  }

  double pan_angle(double t) const {
    return pan_amplitude *
           std::sin(2 * std::numbers::pi * t / pan_period);
  }

  /// Angular velocity of the pan (rad/s) — drives motion blur.
  double pan_rate(double t) const {
    return pan_amplitude * 2 * std::numbers::pi / pan_period *
           std::cos(2 * std::numbers::pi * t / pan_period);
  }

  Camera camera(double t, const CameraIntrinsics& intr) const {
    const Vec3 pos = position(t);
    const double yaw = pan_angle(t);
    const Vec3 dir{std::sin(yaw), std::cos(yaw), 0.05};
    return look_at(intr, pos, pos + dir.normalized() * 3.0);
  }
};

}  // namespace

std::vector<std::pair<double, double>> SessionStats::cumulative_upload()
    const {
  std::vector<std::pair<double, double>> curve;
  std::vector<TransferRecord> sorted = uploads;
  std::sort(sorted.begin(), sorted.end(),
            [](const TransferRecord& a, const TransferRecord& b) {
              return a.complete_time < b.complete_time;
            });
  double total = 0;
  for (const auto& r : sorted) {
    total += static_cast<double>(r.bytes);
    curve.emplace_back(r.complete_time, total);
  }
  return curve;
}

Session::Session(const World& world, VisualPrintServer& server,
                 SessionConfig config)
    : world_(world), server_(server), config_(config) {}

SessionStats Session::run() {
  Rng rng(config_.seed);
  SessionStats stats;
  stats.duration_s = config_.duration_s;

  VisualPrintClient client(config_.client);
  if (config_.mode == OffloadMode::kVisualPrint ||
      config_.mode == OffloadMode::kAllKeypoints) {
    client.install_oracle(server_.oracle_snapshot());
  }

  SimulatedLink link(config_.link, rng.next_u64());

  UserPath path;
  world_.bounds(path.lo, path.hi);
  path.speed = config_.walk_speed_mps;
  path.pan_period = config_.pan_period_s;
  path.pan_amplitude = config_.pan_amplitude_rad;

  const int slots = static_cast<int>(std::ceil(config_.duration_s));
  stats.activity.assign(static_cast<std::size_t>(slots), ActivitySlot{});
  std::vector<double> compute_busy(static_cast<std::size_t>(slots), 0.0);

  auto add_compute = [&](double from, double ms) {
    double remaining = ms / 1e3;
    double t = from;
    while (remaining > 0 && t < config_.duration_s) {
      const auto slot = static_cast<std::size_t>(t);
      const double slot_end = std::floor(t) + 1.0;
      const double chunk = std::min(remaining, slot_end - t);
      compute_busy[slot] += chunk;
      remaining -= chunk;
      t = slot_end;
    }
  };

  const double frame_dt = 1.0 / config_.camera_fps;
  double client_busy_until = 0.0;
  Rng client_rng = rng.fork();

  for (double t = 0; t < config_.duration_s; t += frame_dt) {
    SessionFrame sf;
    sf.capture_time = t;
    sf.true_position = path.position(t);

    // Drop frames captured while the pipeline is still busy with an older
    // frame (the client "only processes extremely recent frames").
    if (client_busy_until > t + config_.client.stale_frame_budget_s) {
      sf.status = FrameResult::Status::kStale;
      stats.frames.push_back(sf);
      continue;
    }

    // Render what the camera sees; pan rate drives motion blur.
    const Camera cam = path.camera(t, config_.intrinsics);
    RenderOptions ro = config_.render;
    const double blur_px =
        std::abs(path.pan_rate(t)) * config_.intrinsics.focal_px() * frame_dt;
    ro.motion_blur_px = blur_px;
    ro.motion_dir = {1.0, 0.0};
    auto rendered = render(world_, cam, ro, client_rng);

    const double start = std::max(t, client_busy_until);
    const bool keypoint_mode = config_.mode == OffloadMode::kVisualPrint ||
                               config_.mode == OffloadMode::kAllKeypoints;

    std::size_t payload = 0;
    std::optional<FingerprintQuery> query;
    std::vector<obs::SpanRecord> client_records;
    {
      // The tracer collects every span the client pipeline opens on this
      // thread; its flattened stage record becomes the frame's latency
      // breakdown. Under VP_OBS=OFF no spans fire and the fallback
      // entries below reproduce the pre-tracer two-stage record.
      obs::FrameTrace trace;
      if (keypoint_mode) {
        // Client pipeline: blur gate -> SIFT -> oracle ranking -> query.
        FrameResult fr = client.process_frame(rendered.image, t, start);
        sf.status = fr.status;
        sf.total_keypoints = fr.total_keypoints;
        sf.selected_keypoints = fr.selected_keypoints;
        sf.stages = trace.stage_timings();
        if (!sf.stages.contains("sift")) sf.stages.add("sift", fr.sift_ms);
        if (!sf.stages.contains("select")) {
          sf.stages.add("select", fr.scoring_ms);
        }
        // Host wall-clock -> modeled phone latency.
        sf.stages.scale(config_.phone_slowdown);
        if (fr.status == FrameResult::Status::kQueued) {
          payload = fr.query->wire_size();
          query = std::move(fr.query);
        }
      } else {
        // Whole-frame offload: no feature extraction on the phone, only the
        // encoder runs (that is the baseline's appeal — and its bandwidth
        // cost). Encode time stands in for phone-side compute, unscaled:
        // phones encode stills/video in hardware, so the CPU slowdown
        // factor that applies to SIFT does not apply here.
        Timer encode_timer;
        {
          VP_OBS_SPAN("encode");
          FrameUpload up;
          up.frame_id = static_cast<std::uint32_t>(stats.frames.size());
          up.capture_time = t;
          if (config_.mode == OffloadMode::kFramePng) {
            up.codec = 0;
            up.payload = png_encode(to_u8(rendered.image));
          } else {
            up.codec = 1;
            up.payload =
                jpeg_encode(to_u8(rendered.image), config_.jpeg_quality);
          }
          payload = up.encode().size();
        }
        sf.status = FrameResult::Status::kQueued;
        sf.stages = trace.stage_timings();
        if (!sf.stages.contains("encode")) {
          sf.stages.add("encode", encode_timer.millis());
        }
      }
      // Copy before the trace closes: the records back the client lane of
      // this frame's stitched trace.
      if (config_.collect_traces) client_records = trace.records();
    }

    if (sf.status == FrameResult::Status::kQueued) {
      const double compute_ms = sf.phone_sift_ms() + sf.phone_scoring_ms();
      add_compute(start, compute_ms);
      client_busy_until = start + compute_ms / 1e3;
      sf.payload_bytes = payload;
      const auto rec = link.submit(client_busy_until, payload);
      // Simulated link stages join the frame's latency breakdown.
      sf.stages.add("queue_wait", (rec.start_time - rec.submit_time) * 1e3);
      sf.stages.add("transfer", (rec.complete_time - rec.start_time) * 1e3);
      stats.uploads.push_back(rec);
      stats.total_upload_bytes += payload;

      if (config_.localize_on_server && query.has_value() &&
          config_.mode == OffloadMode::kVisualPrint) {
        if (config_.collect_traces) {
          // Deterministic per-frame trace context (wire v3): reruns with
          // the same seed produce identical trace ids.
          const std::uint64_t id = config_.seed ^ (0x7aceULL << 48) ^
                                   (query->frame_id + std::uint64_t{1});
          query->trace_id = id == 0 ? 1 : id;
          query->trace_flags = obs::kTraceSampled;
        }
        // Round-trip through the wire format, as the deployed system
        // would. The format is lossless for everything localization reads
        // (u8 descriptors, pixel coordinates, camera geometry), so results
        // match the direct call; it also exercises the encode/decode
        // stages every real upload pays.
        const Bytes wire_bytes = query->encode();
        std::vector<obs::SpanRecord> server_records;
        LocationResponse resp;
        {
          // Server-side handler trace: wire decode + the localize spans
          // run inline on this thread, mirroring what handle_request
          // echoes to remote clients.
          obs::FrameTrace server_trace;
          const FingerprintQuery delivered =
              FingerprintQuery::decode(wire_bytes);
          Rng server_rng(config_.seed ^ delivered.frame_id);
          resp = server_.localize_query(delivered, server_rng);
          if (config_.collect_traces) server_records = server_trace.records();
        }
        if (resp.found) {
          sf.localized = true;
          sf.estimated_position = resp.position;
          sf.position_error =
              (resp.position - sf.true_position).norm();
        }
        if (config_.collect_traces) {
          // Stitch the three lanes onto the session clock (ms since t=0):
          // client stages phone-scaled from the frame's processing start,
          // link stages straight from the simulated transfer, server
          // stages in real handler ms placed at delivery time.
          obs::StitchedTrace st;
          st.trace_id = query->trace_id;
          st.frame_id = query->frame_id;
          st.place = resp.place;
          st.base_ms = t * 1e3;
          st.client = obs::to_stitched_spans(
              client_records, config_.phone_slowdown, (start - t) * 1e3);
          st.link.push_back({"queue_wait", -1, (rec.submit_time - t) * 1e3,
                             (rec.start_time - rec.submit_time) * 1e3});
          st.link.push_back({"transfer", -1, (rec.start_time - t) * 1e3,
                             (rec.complete_time - rec.start_time) * 1e3});
          st.server = obs::to_stitched_spans(server_records, 1.0,
                                             (rec.complete_time - t) * 1e3);
          stats.traces.push_back(std::move(st));
        }
      }
    }
    stats.frames.push_back(sf);
  }

  // Fold compute and radio busy time into per-second activity slots.
  for (std::size_t s = 0; s < stats.activity.size(); ++s) {
    stats.activity[s].compute_fraction = std::min(1.0, compute_busy[s]);
  }
  for (const auto& rec : stats.uploads) {
    double t0 = rec.start_time;
    const double t1 = std::min(rec.complete_time,
                               static_cast<double>(stats.activity.size()));
    while (t0 < t1) {
      const auto slot = static_cast<std::size_t>(t0);
      if (slot >= stats.activity.size()) break;
      const double slot_end = std::floor(t0) + 1.0;
      const double chunk = std::min(t1, slot_end) - t0;
      stats.activity[slot].tx_fraction =
          std::min(1.0, stats.activity[slot].tx_fraction + chunk);
      t0 = slot_end;
    }
  }
  return stats;
}

}  // namespace vp
