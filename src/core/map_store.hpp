// Sharded, multi-place map store — the server's core state container.
//
// The cloud side of the paper keeps one keypoint→3D table and one
// uniqueness oracle. A deployment carrying many venues keeps one such
// bundle *per place* (a building, a wing, a store), and must keep serving
// localization queries while wardriving refreshes arrive. The MapStore
// provides exactly that:
//
//   - Each place's state (stored keypoints + LshIndex + UniquenessOracle +
//     label + epoch) lives in an immutable PlaceShard.
//   - Readers obtain the current shard set through one atomic
//     shared_ptr load (RCU-style snapshot); the query hot path takes no
//     locks and never observes a half-ingested shard.
//   - Writers mutate a private per-place builder under a mutex, then
//     *publish*: copy the builder into a fresh immutable shard, swap the
//     shard map pointer atomically, and bump the place's oracle epoch.
//     In-flight queries keep their old snapshot alive via shared_ptr
//     refcounts; new queries see the new epoch.
//
// Epochs are the client-visible version of a place's oracle: every publish
// increments them, oracle downloads carry them, and queries echo them so
// the server can answer `kStaleOracle` when a client selects keypoints
// against an outdated oracle (see net/wire.hpp and DESIGN.md §9).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/residency.hpp"
#include "geometry/clustering.hpp"
#include "geometry/localize.hpp"
#include "hashing/oracle.hpp"
#include "index/lsh_index.hpp"
#include "net/wire.hpp"
#include "slam/mapping.hpp"

namespace vp {

class ThreadPool;

struct ServerConfig {
  LshIndexConfig index{};        ///< keypoint->3D lookup table parameters
  OracleConfig oracle{};         ///< uniqueness-oracle parameters
  std::size_t neighbors_per_keypoint = 2;  ///< n in the |K|*n retrieval
  std::uint32_t max_match_distance2 = 65'000;  ///< reject weak matches
  /// Largest-cluster filter. Tighter than the generic default: with
  /// wardriven floors/walls everywhere, a generous radius chains retrieved
  /// points across the whole building into one meaningless mega-cluster.
  ClusteringConfig clustering{.radius = 1.5, .min_points = 4};
  LocalizeConfig localize{};     ///< Fig. 12 solver parameters
  /// Compact (v4) queries: rank through the symmetric ADC fast path —
  /// gather each query code's precomputed table rows instead of rebuilding
  /// the table from the reconstructed descriptor. Bit-identical results
  /// either way (see PqCodebook::build_symmetric_adc_table), so this is a
  /// pure serving-speed knob. Runtime-only, like `pool`: not persisted.
  bool compact_symmetric = false;
  std::string place_label = "indoor";
  /// Borrowed worker pool (never owned). When set, queries that name no
  /// place fan retrieval out across shards in parallel.
  ThreadPool* pool = nullptr;
};

/// Metadata stored per indexed descriptor.
struct StoredKeypoint {
  Vec3 position;
  std::int32_t scene_id = -1;
  std::uint32_t source_id = 0;  ///< wardriving snapshot or database image
};

/// One place's complete server-side state. Immutable once published: the
/// query path reads PlaceShards only through `shared_ptr<const PlaceShard>`
/// snapshots, so no synchronization is needed beyond the pointer load.
struct PlaceShard {
  std::string place;            ///< shard id, e.g. "louvre-denon"
  ServerConfig config;          ///< per-place parameters (label, bounds, ...)
  std::uint32_t epoch = 0;      ///< bumped on every publish; 0 = never
  std::uint32_t oracle_version = 0;  ///< fine-grained insert counter
  LshIndex index;
  UniquenessOracle oracle;
  std::vector<StoredKeypoint> stored;
  int scene_count = 0;

  explicit PlaceShard(std::string place_id, ServerConfig cfg)
      : place(std::move(place_id)),
        config(std::move(cfg)),
        index(config.index),
        oracle(config.oracle) {}

  /// Localize one query against this shard alone: LSH retrieval of |K|*n
  /// candidate 3-D points, largest-cluster filtering, the Fig. 12 solve.
  /// `pool`, when given, parallelizes the retrieval batch and the DE
  /// objective sweep — borrowed runtime plumbing (never persisted), hence
  /// a parameter rather than shard state. Results are identical for any
  /// pool size. `symmetric_adc` (ORed with config.compact_symmetric)
  /// serves compact queries through the symmetric-ADC coarse stage —
  /// bit-identical answers, one ADC table build cheaper per descriptor.
  LocationResponse localize(const FingerprintQuery& query, Rng& rng,
                            ThreadPool* pool = nullptr,
                            bool symmetric_adc = false) const;

  /// Scene votes for a feature set (retrieval experiments): vote[s] =
  /// query features whose accepted nearest neighbor belongs to scene s.
  std::vector<std::uint32_t> scene_votes(std::span<const Feature> features,
                                         ThreadPool* pool = nullptr) const;
};

/// The sharded store. Thread-safety contract:
///   - `localize`, `snapshot`, `snapshots`, `oracle_snapshot` are safe to
///     call from any number of threads concurrently with any writer.
///   - Writers (`ingest*`, `publish`, `restore_shard`) serialize on an
///     internal mutex; concurrent writers are safe but sequenced.
///   - `builder_shard` returns writer-side mutable state and is intended
///     for single-threaded setup/inspection (tests, benches, tools), like
///     the original monolithic server's accessors.
class MapStore {
 public:
  /// `eager_default_builder` (the default) creates the default place's
  /// builder — and its full-capacity oracle — at construction, so the
  /// monolithic-server accessors work immediately. The lazy database
  /// load path passes false: its registration replaces the builder
  /// anyway, and a large oracle allocation would defeat the near-zero
  /// registration cost that lazy loading promises.
  explicit MapStore(ServerConfig default_config,
                    bool eager_default_builder = true);

  /// The place id writes and reads use when none is given: the default
  /// config's place_label.
  const std::string& default_place() const noexcept { return default_place_; }

  // --- writer API -------------------------------------------------------

  /// Buffer one keypoint-to-3D mapping into `place`'s builder. Not visible
  /// to queries until the next publish (bulk ingest publishes itself;
  /// read paths flush pending single ingests first, so single-threaded
  /// ingest-then-query callers always read their writes).
  void ingest(const std::string& place, const Feature& feature,
              Vec3 world_position, std::int32_t scene_id = -1,
              std::uint32_t source_id = 0);

  /// Bulk ingest of a wardrive result into `place`, then publish: one
  /// builder copy, one atomic swap, epoch+1. `config`, when given, seeds
  /// the place's parameters on first contact (ignored afterwards).
  void ingest_wardrive(const std::string& place,
                       std::span<const KeypointMapping> mappings,
                       const ServerConfig* config = nullptr);

  /// Publish `place`'s builder now (no-op epoch bump if nothing pending).
  void publish(const std::string& place);

  /// Install a fully-built shard (persistence load path): builder and
  /// published snapshot are set to exactly this state, epoch preserved.
  /// A residency registration for the place (if any) is dropped — the
  /// eager shard replaces the managed one.
  void restore_shard(std::unique_ptr<PlaceShard> shard);

  // --- tiered residency (core/residency.hpp) ----------------------------

  /// Register a shard cold: known to the store (places(), epoch(),
  /// storage_mode() answer from the manifest) but not loaded until the
  /// first query faults it in. Replaces any previous registration,
  /// published snapshot, or stateless builder for the place.
  void register_cold_shard(ShardResidencyManager::Manifest manifest);

  /// Snapshot of `place`, faulting it in if registered but cold (single-
  /// flight: concurrent callers run one loader). nullptr for places that
  /// are neither published nor registered. The returned shared_ptr pins
  /// the shard even if the budget evicts it immediately after.
  std::shared_ptr<const PlaceShard> fault_in(const std::string& place) const;

  /// LRU resident-byte budget for registered shards; 0 = unlimited.
  /// Shrinking below current residency evicts immediately (under the
  /// usual snapshot discipline: in-flight queries keep their shard).
  void set_resident_budget(std::size_t bytes);

  ShardResidencyManager& residency() noexcept { return *residency_; }
  const ShardResidencyManager& residency() const noexcept {
    return *residency_;
  }

  // --- reader API (lock-free once pending writes are flushed) -----------

  /// Current immutable snapshot of one place; nullptr when unknown OR
  /// registered but cold (metadata readers must not fault shards in —
  /// use fault_in for that).
  std::shared_ptr<const PlaceShard> snapshot(const std::string& place) const;

  /// Current immutable snapshots of every place, in place-name order.
  /// Faults every registered cold shard in (persistence needs complete
  /// data); each returned shared_ptr pins its shard against eviction.
  std::vector<std::shared_ptr<const PlaceShard>> snapshots() const;

  /// Answer a localization query. A named place routes to that shard,
  /// faulting it in if registered but cold (unknown place → structured
  /// no-fix response, never a throw); an empty place fans out across the
  /// *resident* shards — on the borrowed pool when configured — and
  /// returns the best-scoring place's answer. Cold shards never join the
  /// fan-out: one anonymous query must not page the whole tier in.
  LocationResponse localize(const FingerprintQuery& query, Rng& rng) const;

  /// Epoch'd oracle snapshot for client download. Empty `place` means the
  /// default place. Throws InvalidArgument for an unknown place.
  OracleDownload oracle_snapshot(const std::string& place) const;

  /// Attach (or detach, with nullptr) the borrowed fan-out worker pool.
  /// Pools are runtime plumbing, never persisted, so a server restored
  /// from disk re-attaches its pool through here. Call during setup,
  /// before queries start — the pointer is read unsynchronized on the
  /// query path.
  void set_pool(ThreadPool* pool);

  /// Serve compact queries through the symmetric-ADC coarse stage on every
  /// shard. Runtime plumbing like the pool (never persisted — a loaded
  /// server re-opts in); answers are bit-identical either way, so this is
  /// purely a serving-cost knob. Call during setup, before queries start.
  void set_compact_symmetric(bool on);

  /// Place counts/ids include registered-but-cold shards: a place does
  /// not disappear from the catalog just because it was evicted.
  std::size_t place_count() const;
  std::vector<std::string> places() const;
  /// Published epoch of a place (0 when unknown/never published). Cold
  /// registered places answer from the manifest without faulting.
  std::uint32_t epoch(const std::string& place) const;
  /// Descriptor storage mode of a place's published shard: "pq" when its
  /// index answers queries through the coarse ADC scan, "exact" otherwise,
  /// empty for an unknown place. Empty `place` means the default place.
  /// Cold registered places answer from the manifest without faulting.
  std::string_view storage_mode(const std::string& place) const;
  /// Total atomic shard-map swaps since construction.
  std::uint64_t swap_count() const noexcept {
    return swap_count_.load(std::memory_order_relaxed);
  }

  // --- writer-side direct access (single-threaded tooling) --------------

  /// Mutable builder state of a place; created on first use. The returned
  /// shard is stable for the store's lifetime (publishes copy from it).
  PlaceShard& builder_shard(const std::string& place);
  const PlaceShard& builder_shard(const std::string& place) const;
  /// True when the place has a builder (has ever been written or restored).
  bool has_builder(const std::string& place) const;

 private:
  struct Builder {
    std::unique_ptr<PlaceShard> shard;  ///< mutable working copy
    bool dirty = true;  ///< builder has state the snapshot map lacks
  };

  using ShardMap =
      std::map<std::string, std::shared_ptr<const PlaceShard>, std::less<>>;

  /// Publish any builder with pending writes. Cheap when clean: one
  /// relaxed atomic load on the hot path, no lock taken.
  void flush() const;

  Builder& builder_locked(const std::string& place, const ServerConfig* cfg);
  void publish_locked(const std::string& place, Builder& b);
  std::shared_ptr<const ShardMap> state() const {
    return state_.load(std::memory_order_acquire);
  }

  /// Write-path prologue for residency-managed places: fault the shard in,
  /// pin it (a written shard diverges from its backing file and must never
  /// be evicted), and seed its builder from the resident snapshot. MUST be
  /// called before taking write_mutex_ — the fault may block on another
  /// thread's load, whose install needs that mutex (lock order is always
  /// write_mutex_ -> manager mutex, and waits happen under neither).
  void prepare_write(const std::string& place);

  /// Publish a freshly-loaded shard into the snapshot map and apply any
  /// budget evictions the manager orders (one atomic swap for both).
  std::shared_ptr<const PlaceShard> install_loaded(
      const std::string& place, std::unique_ptr<PlaceShard> loaded) const;

  ServerConfig default_config_;
  std::string default_place_;

  mutable std::mutex write_mutex_;              ///< writers + flush
  std::map<std::string, Builder, std::less<>> builders_;  ///< guarded
  std::atomic<bool> any_dirty_{false};

  std::atomic<std::shared_ptr<const ShardMap>> state_;
  std::atomic<std::uint64_t> swap_count_{0};

  // Residency policy + accounting for lazily-registered shards. Behind a
  // unique_ptr (shallow const) so const read paths can fault shards in;
  // the manager is internally synchronized.
  std::unique_ptr<ShardResidencyManager> residency_;
};

}  // namespace vp
