#include "features/sift.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>

#include "imaging/filters.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vp {
namespace {

/// Run fn(i) for i in [0, n) on the pool when one is configured. Every
/// parallel stage in this file writes results into index-addressed slots,
/// so scheduling order never affects output.
void run_indexed(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace

namespace detail {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Pixel values are in [0,255]; Lowe's thresholds are stated for [0,1].
constexpr double kValueScale = 255.0;

int octave_count(int width, int height, const SiftConfig& cfg) {
  const int min_side = std::min(width, height);
  int n = 0;
  int side = min_side;
  while (side >= 2 * cfg.border + 8 && n < cfg.max_octaves) {
    ++n;
    side /= 2;
  }
  return std::max(1, n);
}

/// Solve the 3x3 system H * x = -g via Gaussian elimination with partial
/// pivoting. Returns false when H is (near-)singular.
bool solve_3x3(double h[3][3], const double g[3], double x[3]) {
  double a[3][4] = {{h[0][0], h[0][1], h[0][2], -g[0]},
                    {h[1][0], h[1][1], h[1][2], -g[1]},
                    {h[2][0], h[2][1], h[2][2], -g[2]}};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    if (pivot != col) std::swap(a[pivot], a[col]);
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < 4; ++c) a[r][c] -= f * a[col][c];
    }
  }
  for (int i = 0; i < 3; ++i) x[i] = a[i][3] / a[i][i];
  return true;
}

struct RefinedExtremum {
  float x_octv = 0;        ///< refined x within the octave's image
  float y_octv = 0;
  float interval = 0;      ///< refined (fractional) interval index
  float response = 0;
  int base_interval = 0;   ///< integer interval the refinement settled on
};

/// Quadratic subpixel refinement with contrast / edge rejection.
/// Returns nullopt if the candidate is rejected.
std::optional<RefinedExtremum> refine_extremum(
    const std::vector<ImageF>& dogs, int interval, int x, int y,
    const SiftConfig& cfg) {
  const int max_interval = static_cast<int>(dogs.size()) - 2;
  double xr = 0, xc = 0, xs = 0;  // offsets in y(row), x(col), sigma

  for (int attempt = 0; attempt < 5; ++attempt) {
    const ImageF& prev = dogs[static_cast<std::size_t>(interval - 1)];
    const ImageF& cur = dogs[static_cast<std::size_t>(interval)];
    const ImageF& next = dogs[static_cast<std::size_t>(interval + 1)];

    const double dx = 0.5 * (cur(x + 1, y) - cur(x - 1, y));
    const double dy = 0.5 * (cur(x, y + 1) - cur(x, y - 1));
    const double ds = 0.5 * (next(x, y) - prev(x, y));

    const double v = cur(x, y);
    const double dxx = cur(x + 1, y) + cur(x - 1, y) - 2 * v;
    const double dyy = cur(x, y + 1) + cur(x, y - 1) - 2 * v;
    const double dss = next(x, y) + prev(x, y) - 2 * v;
    const double dxy = 0.25 * (cur(x + 1, y + 1) - cur(x - 1, y + 1) -
                               cur(x + 1, y - 1) + cur(x - 1, y - 1));
    const double dxs = 0.25 * (next(x + 1, y) - next(x - 1, y) -
                               prev(x + 1, y) + prev(x - 1, y));
    const double dys = 0.25 * (next(x, y + 1) - next(x, y - 1) -
                               prev(x, y + 1) + prev(x, y - 1));

    double h[3][3] = {{dxx, dxy, dxs}, {dxy, dyy, dys}, {dxs, dys, dss}};
    const double g[3] = {dx, dy, ds};
    double off[3];
    if (!solve_3x3(h, g, off)) return std::nullopt;
    xc = off[0];
    xr = off[1];
    xs = off[2];

    if (std::abs(xc) < 0.5 && std::abs(xr) < 0.5 && std::abs(xs) < 0.5) {
      // Converged: final contrast check at the interpolated extremum.
      const double contrast = v + 0.5 * (dx * xc + dy * xr + ds * xs);
      const double min_contrast =
          kValueScale * cfg.contrast_threshold / cfg.intervals;
      if (std::abs(contrast) < min_contrast) return std::nullopt;

      // Edge rejection: ratio of principal curvatures of the 2x2 spatial
      // Hessian must be below the threshold.
      const double tr = dxx + dyy;
      const double det = dxx * dyy - dxy * dxy;
      const double r = cfg.edge_threshold;
      if (det <= 0 || tr * tr * r >= (r + 1) * (r + 1) * det) {
        return std::nullopt;
      }

      RefinedExtremum out;
      out.x_octv = static_cast<float>(x + xc);
      out.y_octv = static_cast<float>(y + xr);
      out.interval = static_cast<float>(interval + xs);
      out.response = static_cast<float>(std::abs(contrast));
      out.base_interval = interval;
      return out;
    }

    // Step to the neighboring sample and retry.
    x += static_cast<int>(std::lround(xc));
    y += static_cast<int>(std::lround(xr));
    interval += static_cast<int>(std::lround(xs));
    if (interval < 1 || interval > max_interval || x < cfg.border ||
        x >= cur.width() - cfg.border || y < cfg.border ||
        y >= cur.height() - cfg.border) {
      return std::nullopt;
    }
  }
  return std::nullopt;  // did not converge
}

/// 36-bin gradient-orientation histogram around a keypoint; returns all
/// orientations whose (smoothed, parabola-refined) peak is >= 80% of max.
std::vector<float> dominant_orientations(const ImageF& gauss, int x, int y,
                                         double scale_octv) {
  constexpr int kBins = 36;
  double hist[kBins] = {};
  const int radius = static_cast<int>(std::lround(4.5 * scale_octv));
  const double weight_sigma = 1.5 * scale_octv;
  const double denom = 2.0 * weight_sigma * weight_sigma;

  for (int j = -radius; j <= radius; ++j) {
    const int yy = y + j;
    if (yy <= 0 || yy >= gauss.height() - 1) continue;
    for (int i = -radius; i <= radius; ++i) {
      const int xx = x + i;
      if (xx <= 0 || xx >= gauss.width() - 1) continue;
      const double gx = 0.5 * (gauss(xx + 1, yy) - gauss(xx - 1, yy));
      const double gy = 0.5 * (gauss(xx, yy + 1) - gauss(xx, yy - 1));
      const double mag = std::sqrt(gx * gx + gy * gy);
      const double ori = std::atan2(gy, gx);  // [-pi, pi]
      const double w = std::exp(-(i * i + j * j) / denom);
      int bin = static_cast<int>(
          std::lround(kBins * (ori + std::numbers::pi) / kTwoPi));
      bin = (bin % kBins + kBins) % kBins;
      hist[bin] += w * mag;
    }
  }

  // Two passes of [1 4 6 4 1]/16 circular smoothing.
  for (int pass = 0; pass < 2; ++pass) {
    double tmp[kBins];
    for (int b = 0; b < kBins; ++b) {
      const auto at = [&](int k) { return hist[((b + k) % kBins + kBins) % kBins]; };
      tmp[b] = (at(-2) + at(2)) * (1.0 / 16) + (at(-1) + at(1)) * (4.0 / 16) +
               at(0) * (6.0 / 16);
    }
    std::copy(tmp, tmp + kBins, hist);
  }

  const double peak = *std::max_element(hist, hist + kBins);
  std::vector<float> orientations;
  if (peak <= 0) return orientations;
  for (int b = 0; b < kBins; ++b) {
    const double l = hist[(b + kBins - 1) % kBins];
    const double c = hist[b];
    const double r = hist[(b + 1) % kBins];
    if (c >= 0.8 * peak && c > l && c > r) {
      // Parabolic interpolation of the peak position.
      double db = 0.5 * (l - r) / (l - 2 * c + r);
      double bin = b + db;
      double ori = kTwoPi * bin / kBins - std::numbers::pi;
      if (ori < -std::numbers::pi) ori += kTwoPi;
      if (ori >= std::numbers::pi) ori -= kTwoPi;
      orientations.push_back(static_cast<float>(ori));
    }
  }
  return orientations;
}

}  // namespace

ScaleSpace build_scale_space(const ImageF& image, const SiftConfig& cfg) {
  VP_OBS_SPAN("sift.pyramid");
  VP_REQUIRE(!image.empty(), "sift on empty image");
  VP_REQUIRE(cfg.intervals >= 1 && cfg.intervals <= 8,
             "sift intervals in [1,8]");
  ScaleSpace ss;
  ss.base_sigma = cfg.sigma;
  ss.intervals = cfg.intervals;
  ss.upsampled = cfg.upsample_first_octave;

  ImageF base;
  double current_blur = cfg.initial_blur;
  if (cfg.upsample_first_octave) {
    base = resize_bilinear(image, image.width() * 2, image.height() * 2);
    current_blur *= 2.0;
  } else {
    base = image;
  }
  const double need = std::sqrt(
      std::max(0.01, cfg.sigma * cfg.sigma - current_blur * current_blur));
  base = gaussian_blur(base, need, cfg.pool);

  const int octaves = octave_count(base.width(), base.height(), cfg);
  const int per_octave = cfg.intervals + 3;
  const double k = std::pow(2.0, 1.0 / cfg.intervals);

  // Per-image incremental blur so gaussians[o][i] has absolute scale
  // sigma * k^i relative to the octave base.
  std::vector<double> inc(static_cast<std::size_t>(per_octave), 0.0);
  for (int i = 1; i < per_octave; ++i) {
    const double prev = cfg.sigma * std::pow(k, i - 1);
    const double total = prev * k;
    inc[static_cast<std::size_t>(i)] =
        std::sqrt(total * total - prev * prev);
  }

  ss.gaussians.resize(static_cast<std::size_t>(octaves));
  ss.dogs.resize(static_cast<std::size_t>(octaves));
  for (int o = 0; o < octaves; ++o) {
    auto& gs = ss.gaussians[static_cast<std::size_t>(o)];
    gs.reserve(static_cast<std::size_t>(per_octave));
    if (o == 0) {
      gs.push_back(base);
    } else {
      // Start from the previous octave's image at twice the base sigma.
      gs.push_back(downsample_2x(
          ss.gaussians[static_cast<std::size_t>(o - 1)]
                      [static_cast<std::size_t>(cfg.intervals)]));
    }
    // The interval chain is inherently sequential (each level blurs the
    // previous one), so parallelism lives inside each blur (row-split).
    for (int i = 1; i < per_octave; ++i) {
      gs.push_back(gaussian_blur(gs.back(), inc[static_cast<std::size_t>(i)],
                                 cfg.pool));
    }
    // DoG levels only depend on finished Gaussians: subtract in parallel
    // across the intervals of this octave.
    auto& ds = ss.dogs[static_cast<std::size_t>(o)];
    ds.resize(static_cast<std::size_t>(per_octave - 1));
    run_indexed(cfg.pool, ds.size(), [&](std::size_t i) {
      ds[i] = subtract(gs[i + 1], gs[i]);
    });
  }
  return ss;
}

Descriptor compute_descriptor(const ImageF& gauss, float x, float y,
                              float scale_in_octave, float orientation) {
  constexpr int kD = 4;  // spatial grid
  constexpr int kN = 8;  // orientation bins
  const double cos_t = std::cos(-orientation);
  const double sin_t = std::sin(-orientation);
  const double bins_per_rad = kN / kTwoPi;
  const double hist_width = 3.0 * scale_in_octave;
  const int radius = static_cast<int>(std::lround(
      hist_width * std::numbers::sqrt2 * (kD + 1) * 0.5));
  const double exp_denom = 0.5 * kD * kD;

  // (kD+2)^2 x kN accumulation grid with guard rows for trilinear spill.
  double hist[(kD + 2) * (kD + 2) * kN] = {};
  const auto hidx = [](int r, int c, int o) {
    return (r * (kD + 2) + c) * kN + o;
  };

  const int cx = static_cast<int>(std::lround(x));
  const int cy = static_cast<int>(std::lround(y));

  for (int j = -radius; j <= radius; ++j) {
    for (int i = -radius; i <= radius; ++i) {
      // Rotate offset into the keypoint's canonical frame.
      const double rot_x = (cos_t * i - sin_t * j) / hist_width;
      const double rot_y = (sin_t * i + cos_t * j) / hist_width;
      const double rbin = rot_y + kD / 2.0 - 0.5;
      const double cbin = rot_x + kD / 2.0 - 0.5;
      if (rbin <= -1 || rbin >= kD || cbin <= -1 || cbin >= kD) continue;

      const int xx = cx + i;
      const int yy = cy + j;
      if (xx <= 0 || xx >= gauss.width() - 1 || yy <= 0 ||
          yy >= gauss.height() - 1) {
        continue;
      }
      const double gx = 0.5 * (gauss(xx + 1, yy) - gauss(xx - 1, yy));
      const double gy = 0.5 * (gauss(xx, yy + 1) - gauss(xx, yy - 1));
      const double mag = std::sqrt(gx * gx + gy * gy);
      double ori = std::atan2(gy, gx) + orientation;  // canonical frame
      while (ori < 0) ori += kTwoPi;
      while (ori >= kTwoPi) ori -= kTwoPi;

      const double w =
          std::exp(-(rot_x * rot_x + rot_y * rot_y) / exp_denom);
      const double value = w * mag;
      double obin = ori * bins_per_rad;

      int r0 = static_cast<int>(std::floor(rbin));
      int c0 = static_cast<int>(std::floor(cbin));
      int o0 = static_cast<int>(std::floor(obin));
      const double dr = rbin - r0;
      const double dc = cbin - c0;
      const double dob = obin - o0;
      o0 %= kN;

      // Trilinear distribution into the 8 surrounding cells.
      for (int ri = 0; ri <= 1; ++ri) {
        const int rr = r0 + ri + 1;  // +1: guard row offset
        if (rr < 0 || rr >= kD + 2) continue;
        const double wr = value * (ri ? dr : 1 - dr);
        for (int ci = 0; ci <= 1; ++ci) {
          const int cc = c0 + ci + 1;
          if (cc < 0 || cc >= kD + 2) continue;
          const double wc = wr * (ci ? dc : 1 - dc);
          for (int oi = 0; oi <= 1; ++oi) {
            const int oo = (o0 + oi) % kN;
            hist[hidx(rr, cc, oo)] += wc * (oi ? dob : 1 - dob);
          }
        }
      }
    }
  }

  // Gather the inner kD x kD grid into the final 128 vector.
  double vec[kDescriptorDims];
  int idx = 0;
  for (int r = 1; r <= kD; ++r) {
    for (int c = 1; c <= kD; ++c) {
      for (int o = 0; o < kN; ++o) vec[idx++] = hist[hidx(r, c, o)];
    }
  }

  // Normalize -> clamp at 0.2 -> renormalize -> quantize (Lowe §6.1).
  auto normalize = [&] {
    double n2 = 0;
    for (double v : vec) n2 += v * v;
    const double inv = n2 > 0 ? 1.0 / std::sqrt(n2) : 0.0;
    for (double& v : vec) v *= inv;
  };
  normalize();
  for (double& v : vec) v = std::min(v, 0.2);
  normalize();

  Descriptor d{};
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    d[i] = static_cast<std::uint8_t>(
        std::min(255.0, std::floor(512.0 * vec[i])));
  }
  return d;
}

}  // namespace detail

namespace {

struct DetectedPoint {
  Keypoint kp;
  int octave = 0;
  int interval = 0;        ///< integer interval for Gaussian image choice
  float x_octv = 0;        ///< coordinates within the octave image
  float y_octv = 0;
  float scale_octv = 0;    ///< scale relative to the octave
};

/// Scan rows [y0, y1) of DoG interval `i` in octave `o` for refined
/// extrema, appending to `out` in (y, x) order.
void scan_interval_rows(const detail::ScaleSpace& ss, const SiftConfig& cfg,
                        std::size_t o, int i, int y0, int y1,
                        std::vector<DetectedPoint>& out) {
  const auto& dogs = ss.dogs[o];
  const double prelim_thresh =
      0.5 * 255.0 * cfg.contrast_threshold / cfg.intervals;
  const double scale_multiplier = ss.upsampled ? 0.5 : 1.0;
  const double octave_scale =
      scale_multiplier * std::pow(2.0, static_cast<double>(o));
  const ImageF& prev = dogs[static_cast<std::size_t>(i - 1)];
  const ImageF& cur = dogs[static_cast<std::size_t>(i)];
  const ImageF& next = dogs[static_cast<std::size_t>(i + 1)];
  const int w = cur.width();

  for (int y = y0; y < y1; ++y) {
    for (int x = cfg.border; x < w - cfg.border; ++x) {
      const float v = cur(x, y);
      if (std::abs(v) <= prelim_thresh) continue;
      // 26-neighbor extremum test.
      bool is_max = true, is_min = true;
      for (int dy = -1; dy <= 1 && (is_max || is_min); ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          for (const ImageF* img : {&prev, &cur, &next}) {
            const float nv = (*img)(x + dx, y + dy);
            if (img == &cur && dx == 0 && dy == 0) continue;
            if (nv >= v) is_max = false;
            if (nv <= v) is_min = false;
          }
          if (!is_max && !is_min) break;
        }
      }
      if (!is_max && !is_min) continue;

      auto refined = detail::refine_extremum(dogs, i, x, y, cfg);
      if (!refined) continue;

      DetectedPoint dp;
      dp.octave = static_cast<int>(o);
      dp.interval = refined->base_interval;
      dp.x_octv = refined->x_octv;
      dp.y_octv = refined->y_octv;
      dp.scale_octv = static_cast<float>(
          cfg.sigma *
          std::pow(2.0, refined->interval / static_cast<double>(cfg.intervals)));
      dp.kp.x = static_cast<float>(refined->x_octv * octave_scale);
      dp.kp.y = static_cast<float>(refined->y_octv * octave_scale);
      dp.kp.scale = static_cast<float>(dp.scale_octv * octave_scale);
      dp.kp.response = refined->response;
      dp.kp.octave = static_cast<std::int16_t>(o);
      out.push_back(dp);
    }
  }
}

std::vector<DetectedPoint> detect_points(const detail::ScaleSpace& ss,
                                         const SiftConfig& cfg) {
  VP_OBS_SPAN("sift.extrema");
  // Row-blocked scan: every (octave, interval) plane is cut into bands of
  // rows that scan independently into per-block buffers, then the buffers
  // are concatenated in block order. That reproduces the sequential scan
  // order (octave-major, interval, y, x) exactly, so downstream stages see
  // the same point sequence regardless of pool size.
  constexpr int kRowsPerBlock = 32;
  struct ScanBlock {
    std::size_t octave;
    int interval;
    int y0, y1;
  };
  std::vector<ScanBlock> blocks;
  for (std::size_t o = 0; o < ss.dogs.size(); ++o) {
    const int h = ss.dogs[o][0].height();
    for (int i = 1; i <= cfg.intervals; ++i) {
      for (int y = cfg.border; y < h - cfg.border; y += kRowsPerBlock) {
        blocks.push_back(
            {o, i, y, std::min(y + kRowsPerBlock, h - cfg.border)});
      }
    }
  }

  std::vector<std::vector<DetectedPoint>> per_block(blocks.size());
  run_indexed(cfg.pool, blocks.size(), [&](std::size_t b) {
    const ScanBlock& blk = blocks[b];
    scan_interval_rows(ss, cfg, blk.octave, blk.interval, blk.y0, blk.y1,
                       per_block[b]);
  });

  std::vector<DetectedPoint> points;
  for (const auto& bp : per_block) {
    points.insert(points.end(), bp.begin(), bp.end());
  }
  return points;
}

void keep_strongest(std::vector<DetectedPoint>& points, int max_features) {
  if (max_features <= 0 ||
      points.size() <= static_cast<std::size_t>(max_features)) {
    return;
  }
  std::nth_element(points.begin(), points.begin() + max_features,
                   points.end(), [](const auto& a, const auto& b) {
                     return a.kp.response > b.kp.response;
                   });
  points.resize(static_cast<std::size_t>(max_features));
}

}  // namespace

std::vector<Keypoint> sift_detect_keypoints(const ImageF& image,
                                            const SiftConfig& cfg) {
  const auto ss = detail::build_scale_space(image, cfg);
  auto points = detect_points(ss, cfg);
  keep_strongest(points, cfg.max_features);

  // One slot per detected point (a point can emit several orientations);
  // merged in point order so output ordering is pool-size independent.
  std::vector<std::vector<Keypoint>> per_point(points.size());
  run_indexed(cfg.pool, points.size(), [&](std::size_t idx) {
    const auto& p = points[idx];
    const auto& gauss =
        ss.gaussians[static_cast<std::size_t>(p.octave)]
                    [static_cast<std::size_t>(p.interval)];
    const auto oris = detail::dominant_orientations(
        gauss, static_cast<int>(std::lround(p.x_octv)),
        static_cast<int>(std::lround(p.y_octv)), p.scale_octv);
    per_point[idx].reserve(oris.size());
    for (float ori : oris) {
      Keypoint kp = p.kp;
      kp.orientation = ori;
      per_point[idx].push_back(kp);
    }
  });

  std::vector<Keypoint> out;
  out.reserve(points.size());
  for (const auto& kps : per_point) {
    out.insert(out.end(), kps.begin(), kps.end());
  }
  return out;
}

std::vector<Feature> sift_detect(const ImageF& image, const SiftConfig& cfg) {
  const auto ss = detail::build_scale_space(image, cfg);
  auto points = detect_points(ss, cfg);
  keep_strongest(points, cfg.max_features);

  // Orientation histograms and 128-d descriptors are independent per
  // point: parallel_for over points, merge per-point slots in index order.
  std::vector<std::vector<Feature>> per_point(points.size());
  {
    VP_OBS_SPAN("sift.descriptor");
    run_indexed(cfg.pool, points.size(), [&](std::size_t idx) {
      const auto& p = points[idx];
      const auto& gauss =
          ss.gaussians[static_cast<std::size_t>(p.octave)]
                      [static_cast<std::size_t>(p.interval)];
      const auto oris = detail::dominant_orientations(
          gauss, static_cast<int>(std::lround(p.x_octv)),
          static_cast<int>(std::lround(p.y_octv)), p.scale_octv);
      per_point[idx].reserve(oris.size());
      for (float ori : oris) {
        Feature f;
        f.keypoint = p.kp;
        f.keypoint.orientation = ori;
        f.descriptor = detail::compute_descriptor(gauss, p.x_octv, p.y_octv,
                                                  p.scale_octv, ori);
        per_point[idx].push_back(f);
      }
    });
  }

  std::vector<Feature> out;
  out.reserve(points.size());
  for (const auto& fs : per_point) {
    out.insert(out.end(), fs.begin(), fs.end());
  }
  return out;
}

}  // namespace vp
