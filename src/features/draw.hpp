// Keypoint visualization (Fig. 4): each keypoint drawn as a circle whose
// center is the location, radius the detection scale, and a radial segment
// the orientation.
#pragma once

#include <span>

#include "features/keypoint.hpp"
#include "imaging/image.hpp"

namespace vp {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

/// Draw a line segment with simple DDA stepping (clipped to bounds).
void draw_line(ImageU8& img, int x0, int y0, int x1, int y1, Rgb color);

/// Draw a midpoint circle outline (clipped to bounds).
void draw_circle(ImageU8& img, int cx, int cy, int radius, Rgb color);

/// Render keypoints over a copy of `base` (grayscale is promoted to RGB).
ImageU8 draw_keypoints(const ImageU8& base, std::span<const Keypoint> kps,
                       Rgb color = {0, 255, 0});

}  // namespace vp
