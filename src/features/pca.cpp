#include "features/pca.hpp"

#include <algorithm>

#include "geometry/eigen.hpp"
#include "util/error.hpp"

namespace vp {

std::vector<Summary> dimension_difference_profile(
    std::span<const std::pair<Descriptor, Descriptor>> matched_pairs) {
  // Collect, per sorted rank, the squared differences across all pairs.
  std::vector<std::vector<double>> per_rank(kDescriptorDims);
  std::array<double, kDescriptorDims> diffs{};
  for (const auto& [a, b] : matched_pairs) {
    for (std::size_t d = 0; d < kDescriptorDims; ++d) {
      const double delta =
          static_cast<double>(a[d]) - static_cast<double>(b[d]);
      diffs[d] = delta * delta;
    }
    std::sort(diffs.begin(), diffs.end(), std::greater<>());
    for (std::size_t d = 0; d < kDescriptorDims; ++d) {
      per_rank[d].push_back(diffs[d]);
    }
  }
  std::vector<Summary> out;
  out.reserve(kDescriptorDims);
  for (const auto& rank : per_rank) out.push_back(summarize(rank));
  return out;
}

std::vector<double> pca_normalized_eigenvalues(
    std::span<const Descriptor> descriptors) {
  VP_REQUIRE(descriptors.size() >= 2, "PCA needs at least two descriptors");
  constexpr std::size_t n = kDescriptorDims;

  // Mean.
  std::vector<double> mu(n, 0.0);
  for (const auto& d : descriptors) {
    for (std::size_t i = 0; i < n; ++i) mu[i] += d[i];
  }
  for (auto& m : mu) m /= static_cast<double>(descriptors.size());

  // Covariance (symmetric, accumulate upper triangle).
  std::vector<double> cov(n * n, 0.0);
  std::vector<double> centered(n);
  for (const auto& d : descriptors) {
    for (std::size_t i = 0; i < n; ++i) centered[i] = d[i] - mu[i];
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        cov[i * n + j] += centered[i] * centered[j];
      }
    }
  }
  const double denom = static_cast<double>(descriptors.size() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      cov[i * n + j] /= denom;
      cov[j * n + i] = cov[i * n + j];
    }
  }

  const EigenSym es = jacobi_eigen_sym(cov, n);
  std::vector<double> vals = es.values;
  for (auto& v : vals) v = std::max(v, 0.0);
  const double top = vals.empty() ? 0.0 : vals.front();
  if (top > 0) {
    for (auto& v : vals) v /= top;
  }
  return vals;
}

double pca_variance_captured(std::span<const double> normalized_eigenvalues,
                             std::size_t k) {
  double total = 0, head = 0;
  for (std::size_t i = 0; i < normalized_eigenvalues.size(); ++i) {
    total += normalized_eigenvalues[i];
    if (i < k) head += normalized_eigenvalues[i];
  }
  return total > 0 ? head / total : 0.0;
}

}  // namespace vp
