// SIFT keypoint detector and descriptor (Lowe 1999/2004), from scratch.
//
// Pipeline: Gaussian scale-space pyramid -> difference-of-Gaussians ->
// 3x3x3 extrema detection -> quadratic subpixel refinement with contrast
// and edge rejection -> orientation histogram (36 bins, 0.8-peak splitting)
// -> 4x4x8 gradient descriptor with trilinear binning, normalized, clamped
// at 0.2, renormalized, and quantized to unsigned bytes — the exact
// descriptor layout the paper's LSH/Bloom construction expects.
#pragma once

#include <vector>

#include "features/keypoint.hpp"
#include "imaging/image.hpp"

namespace vp {

class ThreadPool;

struct SiftConfig {
  int intervals = 3;              ///< scales per octave (Lowe's s)
  double sigma = 1.6;             ///< base scale of each octave
  double initial_blur = 0.5;      ///< assumed blur of the input image
  double contrast_threshold = 0.03;///< on DoG values normalized to [0,1]
  double edge_threshold = 10.0;   ///< principal curvature ratio limit
  int max_octaves = 5;            ///< hard cap (min image side also caps)
  int border = 5;                 ///< discard extrema this close to an edge
  int max_features = 0;           ///< 0 = unlimited, else strongest-N kept
  bool upsample_first_octave = false;///< Lowe's -1 octave (2x upsample)
  /// Optional worker pool (not owned). Parallelizes pyramid blurs (by
  /// row), DoG subtraction (by interval), extrema scanning (by row block)
  /// and descriptor computation (by keypoint). Output is bit-identical to
  /// the sequential path for any pool size: every parallel stage writes
  /// index-addressed slots that are merged in deterministic order.
  ThreadPool* pool = nullptr;
};

/// Detect keypoints and compute descriptors on a grayscale image with
/// pixel values in [0, 255].
std::vector<Feature> sift_detect(const ImageF& image,
                                 const SiftConfig& config = {});

/// Detection stage only (no descriptors) — used by tests and by benches
/// that count keypoints (Fig. 3).
std::vector<Keypoint> sift_detect_keypoints(const ImageF& image,
                                            const SiftConfig& config = {});

namespace detail {

/// Gaussian pyramid for one run: octaves x (intervals + 3) images.
struct ScaleSpace {
  std::vector<std::vector<ImageF>> gaussians;  ///< [octave][interval]
  std::vector<std::vector<ImageF>> dogs;       ///< [octave][interval]
  double base_sigma = 1.6;
  int intervals = 3;
  bool upsampled = false;
};

ScaleSpace build_scale_space(const ImageF& image, const SiftConfig& config);

/// Compute the descriptor for a refined keypoint against its Gaussian
/// image. Exposed for unit tests of descriptor invariances.
Descriptor compute_descriptor(const ImageF& gaussian, float x, float y,
                              float scale_in_octave, float orientation);

}  // namespace detail

}  // namespace vp
