// Keypoint and descriptor types.
//
// A SIFT descriptor is 128 one-byte integers (the paper relies on this for
// its LSH construction: "each dimension being a one-byte integer value").
// Distances are squared-Euclidean over the raw integer values.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace vp {

inline constexpr std::size_t kDescriptorDims = 128;

/// 128-dimensional unsigned-byte feature descriptor.
using Descriptor = std::array<std::uint8_t, kDescriptorDims>;

/// Squared Euclidean (L2^2) distance between descriptors.
std::uint32_t descriptor_distance2(const Descriptor& a,
                                   const Descriptor& b) noexcept;

/// Detected interest point (position in pixels, detection scale, orientation
/// in radians, DoG response magnitude).
struct Keypoint {
  float x = 0;
  float y = 0;
  float scale = 0;
  float orientation = 0;
  float response = 0;
  std::int16_t octave = 0;
};

/// Keypoint plus its descriptor — the unit VisualPrint filters and ships.
struct Feature {
  Keypoint keypoint;
  Descriptor descriptor{};
};

/// Serialized size of one feature on the wire: 2D coordinate (2 x f32),
/// scale + orientation (2 x f32), and the 128-byte descriptor — the paper's
/// "keypoint is typically represented using 2D pixel coordinate and a
/// multi-dimensional feature description vector."
inline constexpr std::size_t kFeatureWireBytes = 4 * 4 + kDescriptorDims;

void serialize_feature(const Feature& f, ByteWriter& w);
Feature deserialize_feature(ByteReader& r);

/// Serialize a whole feature list (u32 count prefix).
Bytes serialize_features(std::span<const Feature> features);
std::vector<Feature> deserialize_features(std::span<const std::uint8_t> data);

/// OpenCV-style serialization: descriptors as 128 float32 plus the 7-float
/// cv::KeyPoint record — 540 bytes per feature. This is what the paper's
/// Fig. 5 measures ("extracted keypoints typically require at least as
/// much space as the image itself"); VisualPrint's compact u8 wire format
/// (kFeatureWireBytes) is the optimized alternative.
inline constexpr std::size_t kOpenCvFeatureBytes = kDescriptorDims * 4 + 7 * 4;
Bytes serialize_features_opencv_style(std::span<const Feature> features);

}  // namespace vp
