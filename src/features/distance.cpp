#include "features/distance.hpp"

#include <array>
#include <atomic>

// Architecture gates. VP_DISABLE_SIMD (CMake option) forces the portable
// scalar build even on SIMD-capable hosts so that path stays compiled and
// tested; otherwise each kernel compiles whenever the *architecture* can
// express it, and the CPU probe at startup decides which one runs.
#if !defined(VP_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define VP_DIST_X86 1
#include <immintrin.h>
#else
#define VP_DIST_X86 0
#endif

#if !defined(VP_DISABLE_SIMD) && defined(__ARM_NEON)
#define VP_DIST_NEON 1
#include <arm_neon.h>
#else
#define VP_DIST_NEON 0
#endif

namespace vp {
namespace {

using DistanceFn = std::uint32_t (*)(const std::uint8_t*,
                                     const std::uint8_t*) noexcept;

// The scalar kernel is the portable *reference* the SIMD kernels are
// verified against, so keep it genuinely scalar: at -O2/-O3 the
// auto-vectorizer would otherwise rewrite this loop into SSE2/NEON code,
// which makes kernel-vs-kernel comparisons meaningless and platform-
// dependent. No production path pays for this — every SIMD-capable host
// dispatches to an explicit kernel instead.
#if defined(__clang__)
std::uint32_t distance2_scalar(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept {
  std::uint32_t sum = 0;
#pragma clang loop vectorize(disable) interleave(disable)
  for (std::size_t i = 0; i < kDistanceDims; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint32_t>(d * d);
  }
  return sum;
}
#else
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
std::uint32_t distance2_scalar(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kDistanceDims; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint32_t>(d * d);
  }
  return sum;
}
#endif

#if VP_DIST_X86

// Both x86 kernels widen u8 -> i16, take the difference, and use the
// multiply-accumulate madd (i16*i16 -> paired i32 sums). Worst-case term
// is 255^2 = 65025; 128 of them total 8,323,200 — far inside i32, so the
// integer arithmetic is exact and bit-identical to the scalar loop.

__attribute__((target("sse4.1"))) std::uint32_t distance2_sse41(
    const std::uint8_t* a, const std::uint8_t* b) noexcept {
  __m128i acc = _mm_setzero_si128();
  for (std::size_t i = 0; i < kDistanceDims; i += 16) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + i));
    const __m128i d_lo = _mm_sub_epi16(_mm_cvtepu8_epi16(va),
                                       _mm_cvtepu8_epi16(vb));
    const __m128i d_hi =
        _mm_sub_epi16(_mm_cvtepu8_epi16(_mm_srli_si128(va, 8)),
                      _mm_cvtepu8_epi16(_mm_srli_si128(vb, 8)));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
}

__attribute__((target("avx2"))) std::uint32_t distance2_avx2(
    const std::uint8_t* a, const std::uint8_t* b) noexcept {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t i = 0; i < kDistanceDims; i += 32) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    const __m256i d_lo =
        _mm256_sub_epi16(_mm256_cvtepu8_epi16(_mm256_castsi256_si128(va)),
                         _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vb)));
    const __m256i d_hi =
        _mm256_sub_epi16(_mm256_cvtepu8_epi16(_mm256_extracti128_si256(va, 1)),
                         _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vb, 1)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

#endif  // VP_DIST_X86

#if VP_DIST_NEON

std::uint32_t distance2_neon(const std::uint8_t* a,
                             const std::uint8_t* b) noexcept {
  // |a-b| fits u8, its square fits u16*u16 -> u32; widening multiply-
  // accumulate keeps everything exact.
  uint32x4_t acc = vdupq_n_u32(0);
  for (std::size_t i = 0; i < kDistanceDims; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i);
    const uint8x16_t vb = vld1q_u8(b + i);
    const uint16x8_t d_lo = vabdl_u8(vget_low_u8(va), vget_low_u8(vb));
    const uint16x8_t d_hi = vabdl_u8(vget_high_u8(va), vget_high_u8(vb));
    acc = vmlal_u16(acc, vget_low_u16(d_lo), vget_low_u16(d_lo));
    acc = vmlal_u16(acc, vget_high_u16(d_lo), vget_high_u16(d_lo));
    acc = vmlal_u16(acc, vget_low_u16(d_hi), vget_low_u16(d_hi));
    acc = vmlal_u16(acc, vget_high_u16(d_hi), vget_high_u16(d_hi));
  }
#if defined(__aarch64__)
  return vaddvq_u32(acc);
#else
  const uint32x2_t half = vadd_u32(vget_low_u32(acc), vget_high_u32(acc));
  return vget_lane_u32(vpadd_u32(half, half), 0);
#endif
}

#endif  // VP_DIST_NEON

DistanceFn kernel_fn(DistanceKernel kernel) noexcept {
  switch (kernel) {
#if VP_DIST_X86
    case DistanceKernel::kSse41:
      return &distance2_sse41;
    case DistanceKernel::kAvx2:
      return &distance2_avx2;
#endif
#if VP_DIST_NEON
    case DistanceKernel::kNeon:
      return &distance2_neon;
#endif
    default:
      return &distance2_scalar;
  }
}

bool kernel_runnable(DistanceKernel kernel) noexcept {
  switch (kernel) {
    case DistanceKernel::kScalar:
      return true;
#if VP_DIST_X86
    case DistanceKernel::kSse41:
      return __builtin_cpu_supports("sse4.1");
    case DistanceKernel::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if VP_DIST_NEON
    case DistanceKernel::kNeon:
      return true;  // compiled only when the target guarantees NEON
#endif
    default:
      return false;
  }
}

constexpr std::array kCompiledKernels = {
    DistanceKernel::kScalar,
#if VP_DIST_X86
    DistanceKernel::kSse41,
    DistanceKernel::kAvx2,
#endif
#if VP_DIST_NEON
    DistanceKernel::kNeon,
#endif
};

DistanceKernel best_runnable_kernel() noexcept {
  DistanceKernel best = DistanceKernel::kScalar;
  for (const DistanceKernel k : kCompiledKernels) {
    if (kernel_runnable(k)) best = k;  // list is ordered fastest-last
  }
  return best;
}

// Selected once before main(); the hot path pays one relaxed load.
std::atomic<DistanceKernel> g_active{best_runnable_kernel()};
std::atomic<DistanceFn> g_active_fn{kernel_fn(best_runnable_kernel())};

// ---------------------------------------------------------------------------
// Hamming kernels (256-bit binary descriptors)

using HammingFn = std::uint32_t (*)(const std::uint64_t*,
                                    const std::uint64_t*) noexcept;

// SWAR reference popcount — deliberately not std::popcount, which lowers
// to the hardware POPCNT instruction on -mpopcnt builds and would make
// the "scalar" baseline platform-dependent.
#if defined(__clang__)
std::uint32_t hamming_scalar(const std::uint64_t* a,
                             const std::uint64_t* b) noexcept {
  std::uint32_t total = 0;
#pragma clang loop vectorize(disable) interleave(disable)
  for (std::size_t i = 0; i < kHammingWords; ++i) {
    std::uint64_t x = a[i] ^ b[i];
    x -= (x >> 1) & 0x5555555555555555ULL;
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    total += static_cast<std::uint32_t>((x * 0x0101010101010101ULL) >> 56);
  }
  return total;
}
#else
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
std::uint32_t hamming_scalar(const std::uint64_t* a,
                             const std::uint64_t* b) noexcept {
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < kHammingWords; ++i) {
    std::uint64_t x = a[i] ^ b[i];
    x -= (x >> 1) & 0x5555555555555555ULL;
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    total += static_cast<std::uint32_t>((x * 0x0101010101010101ULL) >> 56);
  }
  return total;
}
#endif

#if VP_DIST_X86

__attribute__((target("popcnt"))) std::uint32_t hamming_popcnt(
    const std::uint64_t* a, const std::uint64_t* b) noexcept {
  return static_cast<std::uint32_t>(
      __builtin_popcountll(a[0] ^ b[0]) + __builtin_popcountll(a[1] ^ b[1]) +
      __builtin_popcountll(a[2] ^ b[2]) + __builtin_popcountll(a[3] ^ b[3]));
}

// One 256-bit xor, then the nibble-LUT popcount (Mula): vpshufb counts
// each nibble, vpsadbw folds the 32 byte-counts into four u64 partials.
// (Harley–Seal's carry-save tree only pays off across many vectors; at
// one 256-bit vector per descriptor this LUT step IS its inner kernel.)
__attribute__((target("avx2"))) std::uint32_t hamming_avx2(
    const std::uint64_t* a, const std::uint64_t* b) noexcept {
  const __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i x = _mm256_xor_si256(va, vb);
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(x, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  const __m256i sad = _mm256_sad_epu8(cnt, _mm256_setzero_si256());
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(sad),
                                  _mm256_extracti128_si256(sad, 1));
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(s, 1)));
}

#endif  // VP_DIST_X86

#if VP_DIST_NEON

std::uint32_t hamming_neon(const std::uint64_t* a,
                           const std::uint64_t* b) noexcept {
  const std::uint8_t* pa = reinterpret_cast<const std::uint8_t*>(a);
  const std::uint8_t* pb = reinterpret_cast<const std::uint8_t*>(b);
  const uint8x16_t x0 = veorq_u8(vld1q_u8(pa), vld1q_u8(pb));
  const uint8x16_t x1 = veorq_u8(vld1q_u8(pa + 16), vld1q_u8(pb + 16));
  // Per-lane counts max out at 8 + 8 = 16, so the byte add cannot wrap;
  // the widening pairwise ladder keeps the total (max 256) exact.
  const uint8x16_t cnt = vaddq_u8(vcntq_u8(x0), vcntq_u8(x1));
  const uint32x4_t sum = vpaddlq_u16(vpaddlq_u8(cnt));
#if defined(__aarch64__)
  return vaddvq_u32(sum);
#else
  const uint32x2_t half = vadd_u32(vget_low_u32(sum), vget_high_u32(sum));
  return vget_lane_u32(vpadd_u32(half, half), 0);
#endif
}

#endif  // VP_DIST_NEON

HammingFn hamming_fn(HammingKernel kernel) noexcept {
  switch (kernel) {
#if VP_DIST_X86
    case HammingKernel::kPopcnt:
      return &hamming_popcnt;
    case HammingKernel::kAvx2:
      return &hamming_avx2;
#endif
#if VP_DIST_NEON
    case HammingKernel::kNeon:
      return &hamming_neon;
#endif
    default:
      return &hamming_scalar;
  }
}

bool hamming_runnable(HammingKernel kernel) noexcept {
  switch (kernel) {
    case HammingKernel::kScalar:
      return true;
#if VP_DIST_X86
    case HammingKernel::kPopcnt:
      return __builtin_cpu_supports("popcnt");
    case HammingKernel::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if VP_DIST_NEON
    case HammingKernel::kNeon:
      return true;  // compiled only when the target guarantees NEON
#endif
    default:
      return false;
  }
}

constexpr std::array kCompiledHammingKernels = {
    HammingKernel::kScalar,
#if VP_DIST_X86
    HammingKernel::kPopcnt,
    HammingKernel::kAvx2,
#endif
#if VP_DIST_NEON
    HammingKernel::kNeon,
#endif
};

HammingKernel best_hamming_kernel() noexcept {
  HammingKernel best = HammingKernel::kScalar;
  for (const HammingKernel k : kCompiledHammingKernels) {
    if (hamming_runnable(k)) best = k;  // list is ordered fastest-last
  }
  return best;
}

std::atomic<HammingKernel> g_hamming_active{best_hamming_kernel()};
std::atomic<HammingFn> g_hamming_fn{hamming_fn(best_hamming_kernel())};

}  // namespace

std::string_view kernel_name(DistanceKernel kernel) noexcept {
  switch (kernel) {
    case DistanceKernel::kScalar:
      return "scalar";
    case DistanceKernel::kSse41:
      return "sse4.1";
    case DistanceKernel::kAvx2:
      return "avx2";
    case DistanceKernel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::span<const DistanceKernel> compiled_distance_kernels() noexcept {
  return kCompiledKernels;
}

DistanceKernel active_distance_kernel() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

bool set_distance_kernel(DistanceKernel kernel) noexcept {
  bool compiled = false;
  for (const DistanceKernel k : kCompiledKernels) compiled |= (k == kernel);
  if (!compiled || !kernel_runnable(kernel)) return false;
  g_active.store(kernel, std::memory_order_relaxed);
  g_active_fn.store(kernel_fn(kernel), std::memory_order_relaxed);
  return true;
}

std::uint32_t distance2_u8_128(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept {
  return g_active_fn.load(std::memory_order_relaxed)(a, b);
}

std::uint32_t distance2_u8_128_with(DistanceKernel kernel,
                                    const std::uint8_t* a,
                                    const std::uint8_t* b) noexcept {
  return kernel_runnable(kernel) ? kernel_fn(kernel)(a, b)
                                 : distance2_scalar(a, b);
}

std::string_view kernel_name(HammingKernel kernel) noexcept {
  switch (kernel) {
    case HammingKernel::kScalar:
      return "scalar";
    case HammingKernel::kPopcnt:
      return "popcnt";
    case HammingKernel::kAvx2:
      return "avx2";
    case HammingKernel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::span<const HammingKernel> compiled_hamming_kernels() noexcept {
  return kCompiledHammingKernels;
}

HammingKernel active_hamming_kernel() noexcept {
  return g_hamming_active.load(std::memory_order_relaxed);
}

bool set_hamming_kernel(HammingKernel kernel) noexcept {
  bool compiled = false;
  for (const HammingKernel k : kCompiledHammingKernels) {
    compiled |= (k == kernel);
  }
  if (!compiled || !hamming_runnable(kernel)) return false;
  g_hamming_active.store(kernel, std::memory_order_relaxed);
  g_hamming_fn.store(hamming_fn(kernel), std::memory_order_relaxed);
  return true;
}

std::uint32_t hamming256(const std::uint64_t* a,
                         const std::uint64_t* b) noexcept {
  return g_hamming_fn.load(std::memory_order_relaxed)(a, b);
}

std::uint32_t hamming256_with(HammingKernel kernel, const std::uint64_t* a,
                              const std::uint64_t* b) noexcept {
  return hamming_runnable(kernel) ? hamming_fn(kernel)(a, b)
                                  : hamming_scalar(a, b);
}

}  // namespace vp
