#include "features/distance.hpp"

#include <array>
#include <atomic>

// Architecture gates. VP_DISABLE_SIMD (CMake option) forces the portable
// scalar build even on SIMD-capable hosts so that path stays compiled and
// tested; otherwise each kernel compiles whenever the *architecture* can
// express it, and the CPU probe at startup decides which one runs.
#if !defined(VP_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define VP_DIST_X86 1
#include <immintrin.h>
#else
#define VP_DIST_X86 0
#endif

#if !defined(VP_DISABLE_SIMD) && defined(__ARM_NEON)
#define VP_DIST_NEON 1
#include <arm_neon.h>
#else
#define VP_DIST_NEON 0
#endif

namespace vp {
namespace {

using DistanceFn = std::uint32_t (*)(const std::uint8_t*,
                                     const std::uint8_t*) noexcept;

// The scalar kernel is the portable *reference* the SIMD kernels are
// verified against, so keep it genuinely scalar: at -O2/-O3 the
// auto-vectorizer would otherwise rewrite this loop into SSE2/NEON code,
// which makes kernel-vs-kernel comparisons meaningless and platform-
// dependent. No production path pays for this — every SIMD-capable host
// dispatches to an explicit kernel instead.
#if defined(__clang__)
std::uint32_t distance2_scalar(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept {
  std::uint32_t sum = 0;
#pragma clang loop vectorize(disable) interleave(disable)
  for (std::size_t i = 0; i < kDistanceDims; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint32_t>(d * d);
  }
  return sum;
}
#else
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
std::uint32_t distance2_scalar(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < kDistanceDims; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint32_t>(d * d);
  }
  return sum;
}
#endif

#if VP_DIST_X86

// Both x86 kernels widen u8 -> i16, take the difference, and use the
// multiply-accumulate madd (i16*i16 -> paired i32 sums). Worst-case term
// is 255^2 = 65025; 128 of them total 8,323,200 — far inside i32, so the
// integer arithmetic is exact and bit-identical to the scalar loop.

__attribute__((target("sse4.1"))) std::uint32_t distance2_sse41(
    const std::uint8_t* a, const std::uint8_t* b) noexcept {
  __m128i acc = _mm_setzero_si128();
  for (std::size_t i = 0; i < kDistanceDims; i += 16) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + i));
    const __m128i d_lo = _mm_sub_epi16(_mm_cvtepu8_epi16(va),
                                       _mm_cvtepu8_epi16(vb));
    const __m128i d_hi =
        _mm_sub_epi16(_mm_cvtepu8_epi16(_mm_srli_si128(va, 8)),
                      _mm_cvtepu8_epi16(_mm_srli_si128(vb, 8)));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(d_lo, d_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(d_hi, d_hi));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
}

__attribute__((target("avx2"))) std::uint32_t distance2_avx2(
    const std::uint8_t* a, const std::uint8_t* b) noexcept {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t i = 0; i < kDistanceDims; i += 32) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    const __m256i d_lo =
        _mm256_sub_epi16(_mm256_cvtepu8_epi16(_mm256_castsi256_si128(va)),
                         _mm256_cvtepu8_epi16(_mm256_castsi256_si128(vb)));
    const __m256i d_hi =
        _mm256_sub_epi16(_mm256_cvtepu8_epi16(_mm256_extracti128_si256(va, 1)),
                         _mm256_cvtepu8_epi16(_mm256_extracti128_si256(vb, 1)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

#endif  // VP_DIST_X86

#if VP_DIST_NEON

std::uint32_t distance2_neon(const std::uint8_t* a,
                             const std::uint8_t* b) noexcept {
  // |a-b| fits u8, its square fits u16*u16 -> u32; widening multiply-
  // accumulate keeps everything exact.
  uint32x4_t acc = vdupq_n_u32(0);
  for (std::size_t i = 0; i < kDistanceDims; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i);
    const uint8x16_t vb = vld1q_u8(b + i);
    const uint16x8_t d_lo = vabdl_u8(vget_low_u8(va), vget_low_u8(vb));
    const uint16x8_t d_hi = vabdl_u8(vget_high_u8(va), vget_high_u8(vb));
    acc = vmlal_u16(acc, vget_low_u16(d_lo), vget_low_u16(d_lo));
    acc = vmlal_u16(acc, vget_high_u16(d_lo), vget_high_u16(d_lo));
    acc = vmlal_u16(acc, vget_low_u16(d_hi), vget_low_u16(d_hi));
    acc = vmlal_u16(acc, vget_high_u16(d_hi), vget_high_u16(d_hi));
  }
#if defined(__aarch64__)
  return vaddvq_u32(acc);
#else
  const uint32x2_t half = vadd_u32(vget_low_u32(acc), vget_high_u32(acc));
  return vget_lane_u32(vpadd_u32(half, half), 0);
#endif
}

#endif  // VP_DIST_NEON

DistanceFn kernel_fn(DistanceKernel kernel) noexcept {
  switch (kernel) {
#if VP_DIST_X86
    case DistanceKernel::kSse41:
      return &distance2_sse41;
    case DistanceKernel::kAvx2:
      return &distance2_avx2;
#endif
#if VP_DIST_NEON
    case DistanceKernel::kNeon:
      return &distance2_neon;
#endif
    default:
      return &distance2_scalar;
  }
}

bool kernel_runnable(DistanceKernel kernel) noexcept {
  switch (kernel) {
    case DistanceKernel::kScalar:
      return true;
#if VP_DIST_X86
    case DistanceKernel::kSse41:
      return __builtin_cpu_supports("sse4.1");
    case DistanceKernel::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if VP_DIST_NEON
    case DistanceKernel::kNeon:
      return true;  // compiled only when the target guarantees NEON
#endif
    default:
      return false;
  }
}

constexpr std::array kCompiledKernels = {
    DistanceKernel::kScalar,
#if VP_DIST_X86
    DistanceKernel::kSse41,
    DistanceKernel::kAvx2,
#endif
#if VP_DIST_NEON
    DistanceKernel::kNeon,
#endif
};

DistanceKernel best_runnable_kernel() noexcept {
  DistanceKernel best = DistanceKernel::kScalar;
  for (const DistanceKernel k : kCompiledKernels) {
    if (kernel_runnable(k)) best = k;  // list is ordered fastest-last
  }
  return best;
}

// Selected once before main(); the hot path pays one relaxed load.
std::atomic<DistanceKernel> g_active{best_runnable_kernel()};
std::atomic<DistanceFn> g_active_fn{kernel_fn(best_runnable_kernel())};

}  // namespace

std::string_view kernel_name(DistanceKernel kernel) noexcept {
  switch (kernel) {
    case DistanceKernel::kScalar:
      return "scalar";
    case DistanceKernel::kSse41:
      return "sse4.1";
    case DistanceKernel::kAvx2:
      return "avx2";
    case DistanceKernel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::span<const DistanceKernel> compiled_distance_kernels() noexcept {
  return kCompiledKernels;
}

DistanceKernel active_distance_kernel() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

bool set_distance_kernel(DistanceKernel kernel) noexcept {
  bool compiled = false;
  for (const DistanceKernel k : kCompiledKernels) compiled |= (k == kernel);
  if (!compiled || !kernel_runnable(kernel)) return false;
  g_active.store(kernel, std::memory_order_relaxed);
  g_active_fn.store(kernel_fn(kernel), std::memory_order_relaxed);
  return true;
}

std::uint32_t distance2_u8_128(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept {
  return g_active_fn.load(std::memory_order_relaxed)(a, b);
}

std::uint32_t distance2_u8_128_with(DistanceKernel kernel,
                                    const std::uint8_t* a,
                                    const std::uint8_t* b) noexcept {
  return kernel_runnable(kernel) ? kernel_fn(kernel)(a, b)
                                 : distance2_scalar(a, b);
}

}  // namespace vp
