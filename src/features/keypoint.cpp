#include "features/keypoint.hpp"

#include "features/distance.hpp"

namespace vp {

static_assert(kDistanceDims == kDescriptorDims,
              "distance kernels are specialized for SIFT descriptors");

std::uint32_t descriptor_distance2(const Descriptor& a,
                                   const Descriptor& b) noexcept {
  return distance2_u8_128(a.data(), b.data());
}

void serialize_feature(const Feature& f, ByteWriter& w) {
  w.f32(f.keypoint.x);
  w.f32(f.keypoint.y);
  w.f32(f.keypoint.scale);
  w.f32(f.keypoint.orientation);
  w.raw(std::span<const std::uint8_t>(f.descriptor.data(), kDescriptorDims));
}

Feature deserialize_feature(ByteReader& r) {
  Feature f;
  f.keypoint.x = r.f32();
  f.keypoint.y = r.f32();
  f.keypoint.scale = r.f32();
  f.keypoint.orientation = r.f32();
  const auto d = r.raw(kDescriptorDims);
  std::copy(d.begin(), d.end(), f.descriptor.begin());
  return f;
}

Bytes serialize_features(std::span<const Feature> features) {
  ByteWriter w(4 + features.size() * kFeatureWireBytes);
  w.u32(static_cast<std::uint32_t>(features.size()));
  for (const auto& f : features) serialize_feature(f, w);
  return w.take();
}

Bytes serialize_features_opencv_style(std::span<const Feature> features) {
  ByteWriter w(4 + features.size() * kOpenCvFeatureBytes);
  w.u32(static_cast<std::uint32_t>(features.size()));
  for (const auto& f : features) {
    w.f32(f.keypoint.x);
    w.f32(f.keypoint.y);
    w.f32(f.keypoint.scale);
    w.f32(f.keypoint.orientation);
    w.f32(f.keypoint.response);
    w.f32(static_cast<float>(f.keypoint.octave));
    w.f32(-1.0f);  // cv::KeyPoint::class_id
    for (const std::uint8_t v : f.descriptor) {
      w.f32(static_cast<float>(v));
    }
  }
  return w.take();
}

std::vector<Feature> deserialize_features(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint32_t n = r.u32();
  std::vector<Feature> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(deserialize_feature(r));
  if (!r.done()) throw DecodeError{"trailing bytes after feature list"};
  return out;
}

}  // namespace vp
