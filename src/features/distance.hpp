// SIMD descriptor-distance kernels with runtime dispatch.
//
// The paper runs brute-force matching "on GPU as a SIMD matching"; the CPU
// equivalent is a vectorized u8 squared-L2 kernel. This module compiles
// every kernel the target architecture can express (AVX2 and SSE4.1 on
// x86, NEON on ARM, plus the portable scalar loop), probes the CPU once at
// startup, and routes all distance work through the best supported kernel
// via a single indirect call. Every kernel returns bit-identical sums —
// the arithmetic is exact integer math, so kernel choice can never change
// a Match list (asserted in tests/test_features.cpp).
//
// Build with -DVP_DISABLE_SIMD=ON (CMake) to compile only the scalar
// kernel — the fallback path CI keeps honest.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace vp {

/// Dimensionality every kernel is specialized for (SIFT descriptors).
inline constexpr std::size_t kDistanceDims = 128;

enum class DistanceKernel : std::uint8_t {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

std::string_view kernel_name(DistanceKernel kernel) noexcept;

/// Kernels compiled into this binary, fastest last. Always contains
/// kScalar; tests iterate this to cross-check every variant.
std::span<const DistanceKernel> compiled_distance_kernels() noexcept;

/// The kernel distance2_u8_128 currently dispatches to. Defaults to the
/// fastest compiled-in kernel the running CPU supports, selected once
/// before main() runs.
DistanceKernel active_distance_kernel() noexcept;

/// Force the dispatch target (benches pin the scalar baseline; tests pin
/// each variant). Returns false — and changes nothing — when `kernel` is
/// not compiled in or the CPU lacks the instruction set. The swap is a
/// single relaxed pointer store: safe to call between query batches, not
/// concurrently with them.
bool set_distance_kernel(DistanceKernel kernel) noexcept;

/// Squared L2 distance between two 128-byte u8 vectors via the active
/// kernel. The pointers need no alignment (unaligned loads throughout).
std::uint32_t distance2_u8_128(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept;

/// Evaluate with one specific kernel regardless of the active dispatch —
/// the test harness for kernel-vs-kernel bit-identity. Falls back to the
/// scalar kernel when `kernel` is unavailable.
std::uint32_t distance2_u8_128_with(DistanceKernel kernel,
                                    const std::uint8_t* a,
                                    const std::uint8_t* b) noexcept;

// --- Hamming distance over 256-bit binary descriptors -------------------
//
// The binary-descriptor path (features/brief.hpp) matches under Hamming
// distance; these kernels vectorize the popcount the same way the u8-L2
// kernels vectorize squared distance, behind the same probe-once/atomic
// fn-pointer dispatch. Popcounts are exact integers, so every kernel is
// bit-identical and kernel choice can never change a match.

/// 64-bit words per binary descriptor (4 x u64 = 256 bits).
inline constexpr std::size_t kHammingWords = 4;

enum class HammingKernel : std::uint8_t {
  kScalar = 0,  ///< SWAR popcount, the portable reference
  kPopcnt = 1,  ///< x86 hardware POPCNT over the four words
  kAvx2 = 2,    ///< one 256-bit xor + nibble-LUT popcount (vpshufb+vpsadbw)
  kNeon = 3,    ///< vcnt.u8 + widening pairwise adds
};

std::string_view kernel_name(HammingKernel kernel) noexcept;

/// Kernels compiled into this binary, fastest last; always contains
/// kScalar. Tests iterate this to cross-check every variant.
std::span<const HammingKernel> compiled_hamming_kernels() noexcept;

/// The kernel hamming256 currently dispatches to (fastest supported one,
/// selected once before main()).
HammingKernel active_hamming_kernel() noexcept;

/// Force the dispatch target. Returns false — and changes nothing — when
/// `kernel` is not compiled in or the CPU lacks the instruction set.
bool set_hamming_kernel(HammingKernel kernel) noexcept;

/// Hamming distance between two 256-bit descriptors (kHammingWords u64
/// words each, no alignment requirement) via the active kernel.
std::uint32_t hamming256(const std::uint64_t* a,
                         const std::uint64_t* b) noexcept;

/// Evaluate with one specific kernel regardless of the active dispatch
/// (test harness). Falls back to scalar when `kernel` is unavailable.
std::uint32_t hamming256_with(HammingKernel kernel, const std::uint64_t* a,
                              const std::uint64_t* b) noexcept;

}  // namespace vp
