// SIMD descriptor-distance kernels with runtime dispatch.
//
// The paper runs brute-force matching "on GPU as a SIMD matching"; the CPU
// equivalent is a vectorized u8 squared-L2 kernel. This module compiles
// every kernel the target architecture can express (AVX2 and SSE4.1 on
// x86, NEON on ARM, plus the portable scalar loop), probes the CPU once at
// startup, and routes all distance work through the best supported kernel
// via a single indirect call. Every kernel returns bit-identical sums —
// the arithmetic is exact integer math, so kernel choice can never change
// a Match list (asserted in tests/test_features.cpp).
//
// Build with -DVP_DISABLE_SIMD=ON (CMake) to compile only the scalar
// kernel — the fallback path CI keeps honest.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace vp {

/// Dimensionality every kernel is specialized for (SIFT descriptors).
inline constexpr std::size_t kDistanceDims = 128;

enum class DistanceKernel : std::uint8_t {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

std::string_view kernel_name(DistanceKernel kernel) noexcept;

/// Kernels compiled into this binary, fastest last. Always contains
/// kScalar; tests iterate this to cross-check every variant.
std::span<const DistanceKernel> compiled_distance_kernels() noexcept;

/// The kernel distance2_u8_128 currently dispatches to. Defaults to the
/// fastest compiled-in kernel the running CPU supports, selected once
/// before main() runs.
DistanceKernel active_distance_kernel() noexcept;

/// Force the dispatch target (benches pin the scalar baseline; tests pin
/// each variant). Returns false — and changes nothing — when `kernel` is
/// not compiled in or the CPU lacks the instruction set. The swap is a
/// single relaxed pointer store: safe to call between query batches, not
/// concurrently with them.
bool set_distance_kernel(DistanceKernel kernel) noexcept;

/// Squared L2 distance between two 128-byte u8 vectors via the active
/// kernel. The pointers need no alignment (unaligned loads throughout).
std::uint32_t distance2_u8_128(const std::uint8_t* a,
                               const std::uint8_t* b) noexcept;

/// Evaluate with one specific kernel regardless of the active dispatch —
/// the test harness for kernel-vs-kernel bit-identity. Falls back to the
/// scalar kernel when `kernel` is unavailable.
std::uint32_t distance2_u8_128_with(DistanceKernel kernel,
                                    const std::uint8_t* a,
                                    const std::uint8_t* b) noexcept;

}  // namespace vp
