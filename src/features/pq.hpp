// Product quantization of SIFT descriptors + asymmetric-distance (ADC)
// scan kernels.
//
// A stored 128-byte u8 descriptor is split into 16 contiguous 8-dim
// subvectors; each subvector is quantized to the nearest of 256 per-
// subspace centroids learned by seeded k-means. A descriptor then costs
// 16 code bytes instead of 128 raw bytes (8x), and the whole codebook is
// a fixed 32 KB per shard. This is the compact-descriptor scheme of
// Hybrid Scene Compression (Camposeco et al.): quantized codes answer the
// coarse candidate scan, exact u8-L2 reranking of the top few preserves
// retrieval accuracy.
//
// Ranking a candidate against a query never reconstructs the descriptor.
// Instead the query builds one 16x256 table of u16 subspace distances
// (query subvector vs every centroid, saturated at 0xFFFF), and a
// candidate's asymmetric distance is 16 table lookups summed — integer
// math throughout, so every scan kernel below returns bit-identical sums
// and kernel choice can never change a ranking.
//
// The scan kernels follow the same probe-once/atomic-fn-pointer dispatch
// pattern as features/distance.hpp: AVX2 (vpgatherdd over the table),
// SSE4.1 (vector accumulation of scalar gathers), NEON, and a true-scalar
// reference, pinnable via set_adc_kernel for benches and tests.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "features/distance.hpp"
#include "features/keypoint.hpp"

namespace vp {

/// Subspace geometry: 16 subspaces x 8 dims x 256 centroids. 128-dim
/// descriptors quantize to 16-byte codes (one centroid id per subspace).
inline constexpr std::size_t kPqSubspaces = 16;
inline constexpr std::size_t kPqSubDims = kDescriptorDims / kPqSubspaces;
inline constexpr std::size_t kPqCentroids = 256;
inline constexpr std::size_t kPqCodeBytes = kPqSubspaces;
/// Serialized codebook payload: [subspace][centroid][dim] u8.
inline constexpr std::size_t kPqCodebookBytes =
    kPqSubspaces * kPqCentroids * kPqSubDims;

/// Seeded k-means training parameters. Training is fully deterministic:
/// a fixed-stride subsample of at most `max_samples` descriptors,
/// farthest-point initialization, `iterations` Lloyd rounds with
/// round-to-nearest u8 means, ties always resolved to the lowest index.
struct PqTrainConfig {
  std::size_t iterations = 8;
  std::size_t max_samples = 2048;  ///< training subsample cap per shard
  std::uint64_t seed = 0xADC0DE5Eu;  ///< first-centroid pick
};

/// How an index stores and scans descriptors (LshIndexConfig::pq).
/// Disabled by default: exact-only remains the bit-identity baseline.
struct PqIndexConfig {
  bool enabled = false;
  /// Candidates surviving the coarse ADC scan into exact u8-L2 reranking,
  /// in deterministic (adc_distance, id) order. The ADC stage only runs
  /// when a query gathers more than this many candidates.
  std::uint32_t rerank_depth = 64;
  PqTrainConfig train{};
};

/// Per-query ADC lookup table: d[s * 256 + c] is the squared L2 distance
/// (saturated to 0xFFFF) between the query's subvector s and centroid c.
/// Two entries of tail padding let the AVX2 gather kernel issue its final
/// 32-bit load without reading past the allocation.
struct AdcTable {
  alignas(64) std::array<std::uint16_t, kPqSubspaces * kPqCentroids + 2> d{};
};

/// A trained per-shard codebook: 16 x 256 centroids of 8 u8 dims.
class PqCodebook {
 public:
  PqCodebook() = default;  ///< untrained; encode/table calls are invalid

  bool trained() const noexcept { return !centroids_.empty(); }

  /// Train on `count` descriptors laid out at 128-byte stride (the
  /// LshIndex flat buffer). Deterministic for a given (data, config).
  /// count == 0 yields an untrained codebook.
  static PqCodebook train(const std::uint8_t* descriptors, std::size_t count,
                          const PqTrainConfig& config = {});

  /// Quantize one 128-byte descriptor into a 16-byte code (nearest
  /// centroid per subspace, ties to the lowest centroid id).
  void encode(const std::uint8_t* descriptor,
              std::uint8_t* code) const noexcept;

  /// Inverse of encode up to quantization: concatenate the code's 16
  /// centroid subvectors into a 128-byte descriptor. This is how a compact
  /// (v4) query re-enters the exact ranking pipeline server-side.
  void reconstruct(const std::uint8_t* code,
                   std::uint8_t* descriptor) const noexcept;

  /// Build the per-query lookup table for asymmetric scans.
  void build_adc_table(const std::uint8_t* query,
                       AdcTable& out) const noexcept;

  /// Symmetric variant for code-only queries: fill `out` with the rows of
  /// the precomputed centroid-vs-centroid distance matrix selected by the
  /// query's code — 16 row copies instead of 16 x 256 subvector distance
  /// evaluations. Bit-identical to build_adc_table over the reconstructed
  /// descriptor (the query subvector IS a centroid), so the fast path can
  /// never change a ranking. The 2 MiB matrix is built lazily on first use
  /// (thread-safe; a lost race wastes one redundant build) and shared by
  /// codebook copies.
  void build_symmetric_adc_table(const std::uint8_t* code,
                                 AdcTable& out) const;

  const std::uint8_t* centroid(std::size_t subspace,
                               std::size_t c) const noexcept {
    return centroids_.data() + (subspace * kPqCentroids + c) * kPqSubDims;
  }

  /// Serialized payload (kPqCodebookBytes when trained, empty otherwise).
  std::span<const std::uint8_t> raw() const noexcept { return centroids_; }
  /// Rebuild from a serialized payload. Throws DecodeError unless the
  /// payload is exactly kPqCodebookBytes.
  static PqCodebook from_raw(std::span<const std::uint8_t> raw);

 private:
  /// [subspace][a][b] u16 saturated squared L2 between centroids a and b —
  /// the symmetric-ADC row source (kPqSubspaces * 256 * 256 entries, 2 MiB).
  using SymmetricLut = std::vector<std::uint16_t>;

  std::shared_ptr<const SymmetricLut> symmetric_lut() const;

  std::vector<std::uint8_t> centroids_;  ///< [subspace][centroid][dim]
  /// Lazily-built symmetric matrix. Atomic so concurrent readers of one
  /// published shard can race the first build safely; copies of the
  /// codebook share the already-built matrix (see the copy operations).
  mutable std::atomic<std::shared_ptr<const SymmetricLut>> symmetric_{};

 public:
  // Copy/move preserve the built symmetric matrix (std::atomic members
  // delete the defaults). Declared after the members they copy.
  PqCodebook(const PqCodebook& other)
      : centroids_(other.centroids_),
        symmetric_(other.symmetric_.load(std::memory_order_acquire)) {}
  PqCodebook(PqCodebook&& other) noexcept
      : centroids_(std::move(other.centroids_)),
        symmetric_(other.symmetric_.load(std::memory_order_acquire)) {}
  PqCodebook& operator=(const PqCodebook& other) {
    if (this != &other) {
      centroids_ = other.centroids_;
      symmetric_.store(other.symmetric_.load(std::memory_order_acquire),
                       std::memory_order_release);
    }
    return *this;
  }
  PqCodebook& operator=(PqCodebook&& other) noexcept {
    if (this != &other) {
      centroids_ = std::move(other.centroids_);
      symmetric_.store(other.symmetric_.load(std::memory_order_acquire),
                       std::memory_order_release);
    }
    return *this;
  }
};

// --- ADC scan kernel dispatch (same pattern as set_distance_kernel) -----

/// Kernel tiers reuse the DistanceKernel ISA enum: the ADC scan compiles
/// the same AVX2/SSE4.1/NEON/scalar set and probes the same CPU flags.
std::span<const DistanceKernel> compiled_adc_kernels() noexcept;
DistanceKernel active_adc_kernel() noexcept;
/// Pin the ADC scan kernel (benches/tests). Returns false — and changes
/// nothing — when the kernel is not compiled in or the CPU lacks it.
bool set_adc_kernel(DistanceKernel kernel) noexcept;

/// Asymmetric distance of one 16-byte code via the active kernel.
std::uint32_t adc_distance(const AdcTable& table,
                           const std::uint8_t* code) noexcept;

/// Scan `n` codes: out[i] = ADC distance of code `ids[i]` (or code `i`
/// when `ids` is null). `codes` is the kPqCodeBytes-stride base pointer.
/// This is the dispatch granularity — one indirect call per candidate
/// sweep, not per candidate.
void adc_scan(const AdcTable& table, const std::uint8_t* codes,
              const std::uint32_t* ids, std::size_t n,
              std::uint32_t* out) noexcept;

/// Scan with one specific kernel regardless of the active dispatch (test
/// harness). Falls back to scalar when `kernel` is unavailable.
void adc_scan_with(DistanceKernel kernel, const AdcTable& table,
                   const std::uint8_t* codes, const std::uint32_t* ids,
                   std::size_t n, std::uint32_t* out) noexcept;

}  // namespace vp
