#include "features/draw.hpp"

#include <algorithm>
#include <cmath>

namespace vp {
namespace {

void put(ImageU8& img, int x, int y, Rgb c) {
  if (!img.in_bounds(x, y)) return;
  img(x, y, 0) = c.r;
  img(x, y, 1) = c.g;
  img(x, y, 2) = c.b;
}

}  // namespace

void draw_line(ImageU8& img, int x0, int y0, int x1, int y1, Rgb color) {
  const int steps = std::max({std::abs(x1 - x0), std::abs(y1 - y0), 1});
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    put(img, static_cast<int>(std::lround(x0 + t * (x1 - x0))),
        static_cast<int>(std::lround(y0 + t * (y1 - y0))), color);
  }
}

void draw_circle(ImageU8& img, int cx, int cy, int radius, Rgb color) {
  if (radius <= 0) {
    put(img, cx, cy, color);
    return;
  }
  int x = radius, y = 0, err = 1 - radius;
  while (x >= y) {
    for (auto [dx, dy] : {std::pair{x, y}, {y, x}, {-y, x}, {-x, y},
                          {-x, -y}, {-y, -x}, {y, -x}, {x, -y}}) {
      put(img, cx + dx, cy + dy, color);
    }
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

ImageU8 draw_keypoints(const ImageU8& base, std::span<const Keypoint> kps,
                       Rgb color) {
  ImageU8 canvas = base.channels() == 3 ? base : gray_to_rgb(base);
  for (const auto& kp : kps) {
    const int cx = static_cast<int>(std::lround(kp.x));
    const int cy = static_cast<int>(std::lround(kp.y));
    const int r = std::max(1, static_cast<int>(std::lround(kp.scale * 3)));
    draw_circle(canvas, cx, cy, r, color);
    draw_line(canvas, cx, cy,
              cx + static_cast<int>(std::lround(r * std::cos(kp.orientation))),
              cy + static_cast<int>(std::lround(r * std::sin(kp.orientation))),
              color);
  }
  return canvas;
}

}  // namespace vp
