#include "features/pq.hpp"

#include <algorithm>
#include <atomic>

#include "util/error.hpp"
#include "util/rng.hpp"

// Architecture gates, mirroring features/distance.cpp: VP_DISABLE_SIMD
// forces the portable scalar build; otherwise every kernel the target
// architecture can express is compiled and the startup CPU probe picks.
#if !defined(VP_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define VP_ADC_X86 1
#include <immintrin.h>
#else
#define VP_ADC_X86 0
#endif

#if !defined(VP_DISABLE_SIMD) && defined(__ARM_NEON)
#define VP_ADC_NEON 1
#include <arm_neon.h>
#else
#define VP_ADC_NEON 0
#endif

namespace vp {
namespace {

// ---------------------------------------------------------------------------
// k-means helpers (all integer / deterministic)

/// Squared L2 over one kPqSubDims-wide subvector.
std::uint32_t sub_distance2(const std::uint8_t* a,
                            const std::uint8_t* b) noexcept {
  std::uint32_t sum = 0;
  for (std::size_t d = 0; d < kPqSubDims; ++d) {
    const std::int32_t diff =
        static_cast<std::int32_t>(a[d]) - static_cast<std::int32_t>(b[d]);
    sum += static_cast<std::uint32_t>(diff * diff);
  }
  return sum;
}

/// Nearest centroid id for a subvector, ties to the lowest id.
std::uint8_t nearest_centroid(const std::uint8_t* centroids,
                              const std::uint8_t* v) noexcept {
  std::uint8_t best = 0;
  std::uint32_t best_d = sub_distance2(centroids, v);
  for (std::size_t c = 1; c < kPqCentroids; ++c) {
    const std::uint32_t d = sub_distance2(centroids + c * kPqSubDims, v);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint8_t>(c);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// ADC scan kernels

using AdcScanFn = void (*)(const std::uint16_t*, const std::uint8_t*,
                           const std::uint32_t*, std::size_t,
                           std::uint32_t*) noexcept;

inline const std::uint8_t* code_at(const std::uint8_t* codes,
                                   const std::uint32_t* ids,
                                   std::size_t i) noexcept {
  const std::size_t id = ids ? ids[i] : i;
  return codes + id * kPqCodeBytes;
}

/// How many codes ahead the SIMD kernels prefetch. The whole id list is
/// in hand when a scan starts (that is the point of whole-scan dispatch
/// granularity), so the gathered-id access pattern — one fresh cache line
/// per candidate — can be announced to the prefetcher well before the
/// demand load. The scalar kernel stays prefetch-free: it is the pure
/// reference the others are compared against.
constexpr std::size_t kPrefetchAhead = 24;

// True-scalar reference, kept un-vectorized for the same reason as the
// scalar distance kernel: it is the verification baseline the SIMD scans
// are compared against bit-for-bit. (The sums are exact u32 integer math,
// so equality is a hard requirement, not a tolerance.)
#if defined(__clang__)
void adc_scan_scalar(const std::uint16_t* lut, const std::uint8_t* codes,
                     const std::uint32_t* ids, std::size_t n,
                     std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* code = code_at(codes, ids, i);
    std::uint32_t sum = 0;
#pragma clang loop vectorize(disable) interleave(disable)
    for (std::size_t s = 0; s < kPqSubspaces; ++s) {
      sum += lut[(s << 8) | code[s]];
    }
    out[i] = sum;
  }
}
#else
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
void adc_scan_scalar(const std::uint16_t* lut, const std::uint8_t* codes,
                     const std::uint32_t* ids, std::size_t n,
                     std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* code = code_at(codes, ids, i);
    std::uint32_t sum = 0;
    for (std::size_t s = 0; s < kPqSubspaces; ++s) {
      sum += lut[(s << 8) | code[s]];
    }
    out[i] = sum;
  }
}
#endif

#if VP_ADC_X86

// SSE4.1 has no gather: the 16 table loads stay scalar, but they fill two
// u16x8 vectors whose widening (unpack against zero keeps the values
// unsigned) and summation are vectorized. _mm_setr_epi16 takes signed
// shorts; the bit patterns of the u16 entries pass through unchanged.
__attribute__((target("sse4.1"))) void adc_scan_sse41(
    const std::uint16_t* lut, const std::uint8_t* codes,
    const std::uint32_t* ids, std::size_t n, std::uint32_t* out) noexcept {
  const __m128i zero = _mm_setzero_si128();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      __builtin_prefetch(code_at(codes, ids, i + kPrefetchAhead));
    }
    const std::uint8_t* c = code_at(codes, ids, i);
    const __m128i v0 = _mm_setr_epi16(
        static_cast<short>(lut[(0 << 8) | c[0]]),
        static_cast<short>(lut[(1 << 8) | c[1]]),
        static_cast<short>(lut[(2 << 8) | c[2]]),
        static_cast<short>(lut[(3 << 8) | c[3]]),
        static_cast<short>(lut[(4 << 8) | c[4]]),
        static_cast<short>(lut[(5 << 8) | c[5]]),
        static_cast<short>(lut[(6 << 8) | c[6]]),
        static_cast<short>(lut[(7 << 8) | c[7]]));
    const __m128i v1 = _mm_setr_epi16(
        static_cast<short>(lut[(8 << 8) | c[8]]),
        static_cast<short>(lut[(9 << 8) | c[9]]),
        static_cast<short>(lut[(10 << 8) | c[10]]),
        static_cast<short>(lut[(11 << 8) | c[11]]),
        static_cast<short>(lut[(12 << 8) | c[12]]),
        static_cast<short>(lut[(13 << 8) | c[13]]),
        static_cast<short>(lut[(14 << 8) | c[14]]),
        static_cast<short>(lut[(15 << 8) | c[15]]));
    __m128i s = _mm_add_epi32(
        _mm_add_epi32(_mm_unpacklo_epi16(v0, zero),
                      _mm_unpackhi_epi16(v0, zero)),
        _mm_add_epi32(_mm_unpacklo_epi16(v1, zero),
                      _mm_unpackhi_epi16(v1, zero)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    out[i] = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  }
}

// AVX2: all 16 table lookups become two vpgatherdd instructions. Indices
// are u16-element positions (subspace * 256 + code byte), gathered at
// scale 2 as 32-bit loads and masked down to the low 16 bits — the
// AdcTable's two-entry tail pad keeps the final over-wide load in bounds.
// Two codes per iteration keep four independent gather chains in flight
// (vpgatherdd is throughput-bound; back-to-back dependent reductions
// would leave it half idle), and their horizontal sums share one hadd
// tree. Integer adds are exact, so pairing cannot change any result.
__attribute__((target("avx2"))) void adc_scan_avx2(
    const std::uint16_t* lut, const std::uint8_t* codes,
    const std::uint32_t* ids, std::size_t n, std::uint32_t* out) noexcept {
  const __m256i offs_lo =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  const __m256i offs_hi =
      _mm256_setr_epi32(2048, 2304, 2560, 2816, 3072, 3328, 3584, 3840);
  const __m256i mask = _mm256_set1_epi32(0xFFFF);
  const int* base = reinterpret_cast<const int*>(lut);
  // A lambda would not inherit the avx2 target attribute (GCC refuses to
  // inline the intrinsics into it), hence the macro-free repeated body via
  // a file-scope helper is avoided and the gather is expanded inline.
#define VP_ADC_GATHER16(c, dst)                                              \
  do {                                                                       \
    const __m128i code_ =                                                    \
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c));                \
    const __m256i idx_lo_ =                                                  \
        _mm256_add_epi32(_mm256_cvtepu8_epi32(code_), offs_lo);              \
    const __m256i idx_hi_ = _mm256_add_epi32(                                \
        _mm256_cvtepu8_epi32(_mm_srli_si128(code_, 8)), offs_hi);            \
    const __m256i g_lo_ =                                                    \
        _mm256_and_si256(_mm256_i32gather_epi32(base, idx_lo_, 2), mask);    \
    const __m256i g_hi_ =                                                    \
        _mm256_and_si256(_mm256_i32gather_epi32(base, idx_hi_, 2), mask);    \
    (dst) = _mm256_add_epi32(g_lo_, g_hi_);                                  \
  } while (0)
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) {
    if (i + kPrefetchAhead < n) {
      __builtin_prefetch(code_at(codes, ids, i + kPrefetchAhead));
      __builtin_prefetch(code_at(codes, ids, i + kPrefetchAhead + 1));
    }
    __m256i sum0, sum1;
    VP_ADC_GATHER16(code_at(codes, ids, i), sum0);
    VP_ADC_GATHER16(code_at(codes, ids, i + 1), sum1);
    const __m128i s0 = _mm_add_epi32(_mm256_castsi256_si128(sum0),
                                     _mm256_extracti128_si256(sum0, 1));
    const __m128i s1 = _mm_add_epi32(_mm256_castsi256_si128(sum1),
                                     _mm256_extracti128_si256(sum1, 1));
    __m128i h = _mm_hadd_epi32(s0, s1);  // [s0ab s0cd s1ab s1cd]
    h = _mm_hadd_epi32(h, h);            // [s0 s1 s0 s1]
    out[i] = static_cast<std::uint32_t>(_mm_cvtsi128_si32(h));
    out[i + 1] = static_cast<std::uint32_t>(_mm_extract_epi32(h, 1));
  }
  for (; i < n; ++i) {
    __m256i sum;
    VP_ADC_GATHER16(code_at(codes, ids, i), sum);
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(sum),
                              _mm256_extracti128_si256(sum, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    out[i] = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  }
#undef VP_ADC_GATHER16
}

#endif  // VP_ADC_X86

#if VP_ADC_NEON

// NEON has no gather either; like SSE4.1 the loads are scalar and the
// widening accumulation is vectorized.
void adc_scan_neon(const std::uint16_t* lut, const std::uint8_t* codes,
                   const std::uint32_t* ids, std::size_t n,
                   std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      __builtin_prefetch(code_at(codes, ids, i + kPrefetchAhead));
    }
    const std::uint8_t* c = code_at(codes, ids, i);
    std::uint16_t g[kPqSubspaces];
    for (std::size_t s = 0; s < kPqSubspaces; ++s) {
      g[s] = lut[(s << 8) | c[s]];
    }
    const uint16x8_t v0 = vld1q_u16(g);
    const uint16x8_t v1 = vld1q_u16(g + 8);
    const uint32x4_t sum =
        vaddq_u32(vaddl_u16(vget_low_u16(v0), vget_low_u16(v1)),
                  vaddl_u16(vget_high_u16(v0), vget_high_u16(v1)));
#if defined(__aarch64__)
    out[i] = vaddvq_u32(sum);
#else
    const uint32x2_t half = vadd_u32(vget_low_u32(sum), vget_high_u32(sum));
    out[i] = vget_lane_u32(vpadd_u32(half, half), 0);
#endif
  }
}

#endif  // VP_ADC_NEON

AdcScanFn adc_kernel_fn(DistanceKernel kernel) noexcept {
  switch (kernel) {
#if VP_ADC_X86
    case DistanceKernel::kSse41:
      return &adc_scan_sse41;
    case DistanceKernel::kAvx2:
      return &adc_scan_avx2;
#endif
#if VP_ADC_NEON
    case DistanceKernel::kNeon:
      return &adc_scan_neon;
#endif
    default:
      return &adc_scan_scalar;
  }
}

bool adc_kernel_runnable(DistanceKernel kernel) noexcept {
  switch (kernel) {
    case DistanceKernel::kScalar:
      return true;
#if VP_ADC_X86
    case DistanceKernel::kSse41:
      return __builtin_cpu_supports("sse4.1");
    case DistanceKernel::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if VP_ADC_NEON
    case DistanceKernel::kNeon:
      return true;  // compiled only when the target guarantees NEON
#endif
    default:
      return false;
  }
}

constexpr std::array kCompiledAdcKernels = {
    DistanceKernel::kScalar,
#if VP_ADC_X86
    DistanceKernel::kSse41,
    DistanceKernel::kAvx2,
#endif
#if VP_ADC_NEON
    DistanceKernel::kNeon,
#endif
};

DistanceKernel best_adc_kernel() noexcept {
  DistanceKernel best = DistanceKernel::kScalar;
  for (const DistanceKernel k : kCompiledAdcKernels) {
    if (adc_kernel_runnable(k)) best = k;  // list is ordered fastest-last
  }
  return best;
}

std::atomic<DistanceKernel> g_adc_active{best_adc_kernel()};
std::atomic<AdcScanFn> g_adc_fn{adc_kernel_fn(best_adc_kernel())};

}  // namespace

// ---------------------------------------------------------------------------
// PqCodebook

PqCodebook PqCodebook::train(const std::uint8_t* descriptors,
                             std::size_t count, const PqTrainConfig& config) {
  PqCodebook book;
  if (count == 0) return book;
  book.centroids_.assign(kPqCodebookBytes, 0);

  // Fixed-stride subsample: index i -> descriptor i * count / samples.
  // Deterministic and order-stable, unlike reservoir sampling.
  const std::size_t samples = std::min(count, config.max_samples);
  std::vector<std::uint32_t> pick(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    pick[i] = static_cast<std::uint32_t>(i * count / samples);
  }
  Rng rng(config.seed);
  const std::size_t first = rng.uniform_u64(samples);

  std::vector<std::uint8_t> sub(samples * kPqSubDims);
  std::vector<std::uint32_t> min_d(samples);
  std::vector<std::uint8_t> assign(samples);
  std::vector<std::uint64_t> sums(kPqCentroids * kPqSubDims);
  std::vector<std::uint32_t> sizes(kPqCentroids);

  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    // Gather this subspace's training subvectors contiguously.
    for (std::size_t i = 0; i < samples; ++i) {
      const std::uint8_t* d =
          descriptors + static_cast<std::size_t>(pick[i]) * kDescriptorDims +
          s * kPqSubDims;
      std::copy_n(d, kPqSubDims, sub.data() + i * kPqSubDims);
    }
    std::uint8_t* cents =
        book.centroids_.data() + s * kPqCentroids * kPqSubDims;

    // Farthest-point initialization: the seeded pick starts the chain,
    // every later centroid is the sample farthest from all chosen so far
    // (ties to the lowest sample index). With fewer samples than
    // centroids, the tail cycles through the samples again.
    std::copy_n(sub.data() + first * kPqSubDims, kPqSubDims, cents);
    std::fill(min_d.begin(), min_d.end(), 0u);
    for (std::size_t i = 0; i < samples; ++i) {
      min_d[i] = sub_distance2(cents, sub.data() + i * kPqSubDims);
    }
    for (std::size_t c = 1; c < kPqCentroids; ++c) {
      std::size_t far = 0;
      if (c < samples) {
        for (std::size_t i = 1; i < samples; ++i) {
          if (min_d[i] > min_d[far]) far = i;
        }
      } else {
        far = c % samples;
      }
      std::uint8_t* cent = cents + c * kPqSubDims;
      std::copy_n(sub.data() + far * kPqSubDims, kPqSubDims, cent);
      for (std::size_t i = 0; i < samples; ++i) {
        min_d[i] = std::min(min_d[i],
                            sub_distance2(cent, sub.data() + i * kPqSubDims));
      }
    }

    // Lloyd rounds with round-to-nearest u8 means; empty clusters keep
    // their previous centroid. Early exit once assignments are stable.
    std::fill(assign.begin(), assign.end(), std::uint8_t{0});
    for (std::size_t iter = 0; iter < config.iterations; ++iter) {
      bool changed = false;
      for (std::size_t i = 0; i < samples; ++i) {
        const std::uint8_t c =
            nearest_centroid(cents, sub.data() + i * kPqSubDims);
        if (c != assign[i]) {
          assign[i] = c;
          changed = true;
        }
      }
      if (!changed && iter > 0) break;
      std::fill(sums.begin(), sums.end(), std::uint64_t{0});
      std::fill(sizes.begin(), sizes.end(), 0u);
      for (std::size_t i = 0; i < samples; ++i) {
        const std::size_t c = assign[i];
        ++sizes[c];
        for (std::size_t d = 0; d < kPqSubDims; ++d) {
          sums[c * kPqSubDims + d] += sub[i * kPqSubDims + d];
        }
      }
      for (std::size_t c = 0; c < kPqCentroids; ++c) {
        if (sizes[c] == 0) continue;
        for (std::size_t d = 0; d < kPqSubDims; ++d) {
          cents[c * kPqSubDims + d] = static_cast<std::uint8_t>(
              (sums[c * kPqSubDims + d] + sizes[c] / 2) / sizes[c]);
        }
      }
    }
  }
  return book;
}

void PqCodebook::encode(const std::uint8_t* descriptor,
                        std::uint8_t* code) const noexcept {
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    code[s] = nearest_centroid(
        centroids_.data() + s * kPqCentroids * kPqSubDims,
        descriptor + s * kPqSubDims);
  }
}

void PqCodebook::reconstruct(const std::uint8_t* code,
                             std::uint8_t* descriptor) const noexcept {
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    std::copy_n(centroid(s, code[s]), kPqSubDims,
                descriptor + s * kPqSubDims);
  }
}

void PqCodebook::build_adc_table(const std::uint8_t* query,
                                 AdcTable& out) const noexcept {
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    const std::uint8_t* q = query + s * kPqSubDims;
    const std::uint8_t* cents =
        centroids_.data() + s * kPqCentroids * kPqSubDims;
    std::uint16_t* row = out.d.data() + s * kPqCentroids;
    for (std::size_t c = 0; c < kPqCentroids; ++c) {
      // Saturate per-subspace distances into u16 so the whole table stays
      // 8 KB (L1-resident on the scan). Worst case 8 * 255^2 = 520'200
      // only occurs for pathological subvectors; real SIFT subvectors sit
      // far below the 0xFFFF clip, and the clip is deterministic either
      // way.
      row[c] = static_cast<std::uint16_t>(std::min<std::uint32_t>(
          sub_distance2(q, cents + c * kPqSubDims), 0xFFFFu));
    }
  }
}

std::shared_ptr<const PqCodebook::SymmetricLut> PqCodebook::symmetric_lut()
    const {
  auto lut = symmetric_.load(std::memory_order_acquire);
  if (lut != nullptr) return lut;
  // First use: compute every centroid-vs-centroid subspace distance with
  // the exact arithmetic (and u16 saturation) of build_adc_table, so a
  // gathered row is bit-identical to a table built from the reconstructed
  // query. Concurrent first callers may both build; the CAS keeps one and
  // the loser's copy is dropped — wasted work, never a wrong answer.
  auto built = std::make_shared<SymmetricLut>(kPqSubspaces * kPqCentroids *
                                              kPqCentroids);
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    const std::uint8_t* cents = centroids_.data() + s * kPqCentroids * kPqSubDims;
    std::uint16_t* plane = built->data() + s * kPqCentroids * kPqCentroids;
    for (std::size_t a = 0; a < kPqCentroids; ++a) {
      std::uint16_t* row = plane + a * kPqCentroids;
      for (std::size_t b = 0; b < kPqCentroids; ++b) {
        row[b] = static_cast<std::uint16_t>(std::min<std::uint32_t>(
            sub_distance2(cents + a * kPqSubDims, cents + b * kPqSubDims),
            0xFFFFu));
      }
    }
  }
  std::shared_ptr<const SymmetricLut> expected;
  std::shared_ptr<const SymmetricLut> install = std::move(built);
  if (symmetric_.compare_exchange_strong(expected, install,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    return install;
  }
  return expected;  // another thread won the race; use its matrix
}

void PqCodebook::build_symmetric_adc_table(const std::uint8_t* code,
                                           AdcTable& out) const {
  const auto lut = symmetric_lut();
  for (std::size_t s = 0; s < kPqSubspaces; ++s) {
    const std::uint16_t* row =
        lut->data() + (s * kPqCentroids + code[s]) * kPqCentroids;
    std::copy_n(row, kPqCentroids, out.d.data() + s * kPqCentroids);
  }
}

PqCodebook PqCodebook::from_raw(std::span<const std::uint8_t> raw) {
  if (raw.size() != kPqCodebookBytes) {
    throw DecodeError{"pq codebook: expected " +
                      std::to_string(kPqCodebookBytes) + " bytes, got " +
                      std::to_string(raw.size())};
  }
  PqCodebook book;
  book.centroids_.assign(raw.begin(), raw.end());
  return book;
}

// ---------------------------------------------------------------------------
// dispatch surface

std::span<const DistanceKernel> compiled_adc_kernels() noexcept {
  return kCompiledAdcKernels;
}

DistanceKernel active_adc_kernel() noexcept {
  return g_adc_active.load(std::memory_order_relaxed);
}

bool set_adc_kernel(DistanceKernel kernel) noexcept {
  bool compiled = false;
  for (const DistanceKernel k : kCompiledAdcKernels) compiled |= (k == kernel);
  if (!compiled || !adc_kernel_runnable(kernel)) return false;
  g_adc_active.store(kernel, std::memory_order_relaxed);
  g_adc_fn.store(adc_kernel_fn(kernel), std::memory_order_relaxed);
  return true;
}

std::uint32_t adc_distance(const AdcTable& table,
                           const std::uint8_t* code) noexcept {
  std::uint32_t out = 0;
  g_adc_fn.load(std::memory_order_relaxed)(table.d.data(), code, nullptr, 1,
                                           &out);
  return out;
}

void adc_scan(const AdcTable& table, const std::uint8_t* codes,
              const std::uint32_t* ids, std::size_t n,
              std::uint32_t* out) noexcept {
  g_adc_fn.load(std::memory_order_relaxed)(table.d.data(), codes, ids, n, out);
}

void adc_scan_with(DistanceKernel kernel, const AdcTable& table,
                   const std::uint8_t* codes, const std::uint32_t* ids,
                   std::size_t n, std::uint32_t* out) noexcept {
  const AdcScanFn fn = adc_kernel_runnable(kernel) ? adc_kernel_fn(kernel)
                                                   : &adc_scan_scalar;
  fn(table.d.data(), codes, ids, n, out);
}

}  // namespace vp
