// Rotated-BRIEF binary descriptors (ORB-style).
//
// Paper §5: "One can use any keypoint detection algorithm with another
// integer keypoint description algorithm without modification in the
// system pipeline." This module provides that alternate descriptor: the
// SIFT detector's keypoints described by 256 steered intensity
// comparisons, matched under Hamming distance. hashing/binary_oracle.hpp
// supplies the matching bit-sampling LSH uniqueness oracle.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"
#include "imaging/image.hpp"

namespace vp {

inline constexpr std::size_t kBinaryDescriptorBits = 256;

/// 256-bit binary descriptor, 4 x u64.
using BinaryDescriptor = std::array<std::uint64_t, 4>;

/// Hamming distance between binary descriptors, via the dispatched
/// popcount kernel (see compiled_hamming_kernels in features/distance.hpp).
unsigned hamming_distance(const BinaryDescriptor& a,
                          const BinaryDescriptor& b) noexcept;

/// Keypoint + binary descriptor.
struct BinaryFeature {
  Keypoint keypoint;
  BinaryDescriptor descriptor{};
};

struct BriefConfig {
  double patch_scale = 7.5;   ///< sampling radius in units of keypoint scale
  double smoothing_sigma = 2.0;  ///< pre-smoothing (BRIEF is noise-sensitive)
  std::uint64_t pattern_seed = 0xB51Fu;  ///< fixed comparison pattern
};

/// Describe keypoints on a grayscale image. The comparison pattern is
/// deterministic from the seed and steered by each keypoint's orientation,
/// giving rotation-robust descriptors like ORB's rBRIEF.
std::vector<BinaryFeature> brief_describe(const ImageF& image,
                                          std::span<const Keypoint> keypoints,
                                          const BriefConfig& config = {});

/// Convenience: SIFT detection + BRIEF description.
std::vector<BinaryFeature> orb_like_detect(const ImageF& image,
                                           const struct SiftConfig& sift_config,
                                           const BriefConfig& brief_config = {});

}  // namespace vp
