#include "features/brief.hpp"

#include <cmath>

#include "features/distance.hpp"
#include "features/sift.hpp"
#include "imaging/filters.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace vp {
namespace {

struct PatternPair {
  float ax, ay, bx, by;  ///< offsets in unit-patch coordinates
};

/// The fixed comparison pattern: isotropic Gaussian-distributed pairs,
/// generated once per seed (ORB uses a learned pattern; a Gaussian pattern
/// is the classic BRIEF choice and is descriptor-compatible).
std::vector<PatternPair> make_pattern(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PatternPair> pattern;
  pattern.reserve(kBinaryDescriptorBits);
  for (std::size_t i = 0; i < kBinaryDescriptorBits; ++i) {
    PatternPair p;
    p.ax = static_cast<float>(rng.gaussian(0, 0.33));
    p.ay = static_cast<float>(rng.gaussian(0, 0.33));
    p.bx = static_cast<float>(rng.gaussian(0, 0.33));
    p.by = static_cast<float>(rng.gaussian(0, 0.33));
    pattern.push_back(p);
  }
  return pattern;
}

}  // namespace

unsigned hamming_distance(const BinaryDescriptor& a,
                          const BinaryDescriptor& b) noexcept {
  // Dispatched popcount kernel (features/distance.hpp): POPCNT/AVX2/NEON
  // when the CPU has them, SWAR otherwise — bit-identical either way.
  return hamming256(a.data(), b.data());
}

std::vector<BinaryFeature> brief_describe(const ImageF& image,
                                          std::span<const Keypoint> keypoints,
                                          const BriefConfig& cfg) {
  VP_REQUIRE(!image.empty(), "brief_describe: empty image");
  const ImageF smooth = gaussian_blur(image, cfg.smoothing_sigma);
  const auto pattern = make_pattern(cfg.pattern_seed);

  std::vector<BinaryFeature> out;
  out.reserve(keypoints.size());
  for (const auto& kp : keypoints) {
    const double radius =
        cfg.patch_scale * std::max(1.0f, kp.scale);
    const double c = std::cos(kp.orientation);
    const double s = std::sin(kp.orientation);

    BinaryFeature f;
    f.keypoint = kp;
    for (std::size_t bit = 0; bit < pattern.size(); ++bit) {
      const auto& p = pattern[bit];
      // Steer the pattern by the keypoint orientation, scale by radius.
      const double ax = kp.x + radius * (c * p.ax - s * p.ay);
      const double ay = kp.y + radius * (s * p.ax + c * p.ay);
      const double bx = kp.x + radius * (c * p.bx - s * p.by);
      const double by = kp.y + radius * (s * p.bx + c * p.by);
      const float va = smooth.at_clamped(static_cast<int>(std::lround(ax)),
                                         static_cast<int>(std::lround(ay)));
      const float vb = smooth.at_clamped(static_cast<int>(std::lround(bx)),
                                         static_cast<int>(std::lround(by)));
      if (va < vb) {
        f.descriptor[bit / 64] |= (1ULL << (bit % 64));
      }
    }
    out.push_back(f);
  }
  return out;
}

std::vector<BinaryFeature> orb_like_detect(const ImageF& image,
                                           const SiftConfig& sift_config,
                                           const BriefConfig& brief_config) {
  const auto keypoints = sift_detect_keypoints(image, sift_config);
  return brief_describe(image, keypoints, brief_config);
}

}  // namespace vp
