// Descriptor-space analysis backing Fig. 6: per-dimension contribution of
// nearest-neighbor distance, and PCA of the descriptor covariance showing
// that a few dimensions account for most variance — the intuition behind
// re-projecting descriptors to a low-dimensional LSH space.
#pragma once

#include <span>
#include <vector>

#include "features/keypoint.hpp"
#include "util/stats.hpp"

namespace vp {

/// For each (query, nearest-neighbor) descriptor pair, sort the squared
/// per-dimension differences descending and accumulate a boxplot per rank
/// — Fig. 6(a). Returns 128 summaries: entry r summarizes the r-th largest
/// squared difference across all pairs.
std::vector<Summary> dimension_difference_profile(
    std::span<const std::pair<Descriptor, Descriptor>> matched_pairs);

/// Eigenvalues of the descriptor covariance matrix, normalized so the
/// largest is 1.0 and sorted descending — Fig. 6(b).
std::vector<double> pca_normalized_eigenvalues(
    std::span<const Descriptor> descriptors);

/// Fraction of total variance captured by the top `k` PCA components.
double pca_variance_captured(std::span<const double> normalized_eigenvalues,
                             std::size_t k);

}  // namespace vp
