// Spatial clustering of retrieved 3-D points.
//
// The server retrieves |K|*n candidate 3-D positions per query (n nearest
// neighbors per keypoint, §3 "VisualPrint Application: Localization") and
// keeps only the largest spatial cluster, discarding outlier matches from
// repeated features elsewhere in the building. We implement a grid-bucketed
// DBSCAN-style connected-components clustering: two points are connected if
// within `radius`, clusters below `min_points` are noise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/vec.hpp"

namespace vp {

struct ClusteringConfig {
  double radius = 3.0;        ///< connection radius, meters
  std::size_t min_points = 3; ///< smaller clusters are treated as noise
};

struct ClusterResult {
  /// cluster id per input point; SIZE_MAX marks noise.
  std::vector<std::size_t> labels;
  /// point indices per cluster, clusters sorted by descending size.
  std::vector<std::vector<std::size_t>> clusters;
};

/// Cluster `points`; O(n log n) expected via spatial hashing of grid cells.
ClusterResult cluster_points(std::span<const Vec3> points,
                             const ClusteringConfig& config = {});

/// Indices of the largest cluster (empty when everything is noise).
std::vector<std::size_t> largest_cluster(std::span<const Vec3> points,
                                         const ClusteringConfig& config = {});

/// Centroid of a subset of points (zero vector for an empty subset).
Vec3 centroid(std::span<const Vec3> points,
              std::span<const std::size_t> indices);

}  // namespace vp
