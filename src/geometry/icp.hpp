// Point-to-point Iterative Closest Point.
//
// Wardriving post-processing (§3, "Challenge, Positioning Error and
// Uniqueness") merges per-snapshot Tango depth maps into one coherent point
// cloud; ICP estimates the rigid correction between a drifted snapshot
// cloud and the reference map.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geometry/pose.hpp"

namespace vp {

struct IcpConfig {
  std::size_t max_iterations = 50;
  double max_correspondence_dist = 2.0;  ///< meters; beyond this, unmatched
  double convergence_delta = 1e-6;       ///< stop when mean error improves less
  std::size_t min_correspondences = 8;
  /// Trimmed ICP: keep only this fraction of correspondences (closest
  /// first) when estimating each step's transform. Suppresses the boundary
  /// bias of partially-overlapping clouds; 1.0 disables trimming.
  double trim_fraction = 0.8;
  /// Planar mode: estimate yaw + 3-D translation only (4 DoF). Indoor
  /// dead reckoning drifts in yaw and position, while roll/pitch are
  /// gravity-observable from the IMU (true of Tango, and of our drift
  /// model); freeing them only lets near-planar corridor clouds wander.
  bool planar = true;
};

struct IcpResult {
  Pose transform;          ///< target_from_source correction
  double mean_error = 0;   ///< mean correspondence distance after alignment
  std::size_t iterations = 0;
  std::size_t correspondences = 0;
  bool converged = false;
};

/// Nearest-neighbor lookup structure over a fixed 3-D point set (uniform
/// grid hash). Query cost is O(1) for point densities near the cell size.
class PointGrid {
 public:
  PointGrid(std::span<const Vec3> points, double cell_size);

  /// Nearest point index within `max_dist`, or nullopt.
  std::optional<std::size_t> nearest(Vec3 query, double max_dist) const;

  std::size_t size() const noexcept { return points_.size(); }
  const std::vector<Vec3>& points() const noexcept { return points_; }

 private:
  std::vector<Vec3> points_;
  double cell_;
  struct Impl;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> sorted_cells_;
  std::uint64_t key_of(Vec3 p) const noexcept;
};

/// Align `source` onto `target`; returns the rigid transform T such that
/// T(source) ≈ target. Fails (converged=false, identity transform) when too
/// few correspondences are found.
IcpResult icp_align(std::span<const Vec3> source, std::span<const Vec3> target,
                    const IcpConfig& config = {});

}  // namespace vp
