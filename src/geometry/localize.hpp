// Client localization from 2-D keypoint observations and matched 3-D world
// points — the nonlinear optimization of Fig. 12 plus post-hoc orientation
// recovery, giving a full 6-DoF pose like the paper claims.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geometry/camera.hpp"
#include "geometry/optimize.hpp"

namespace vp {

/// One (observed pixel, matched world point) correspondence surviving the
/// largest-cluster filter.
struct Observation {
  Vec2 pixel;       ///< 2-D coordinate in the query image
  Vec3 world_point; ///< 3-D position retrieved from the server's LSH table
};

struct LocalizeConfig {
  /// Bounding box for the camera-position search, in world meters.
  Vec3 search_lo{-100, -100, -5};
  Vec3 search_hi{100, 100, 10};
  /// Cap on the number of keypoint pairs used in the objective (the full
  /// pairwise sum is O(K^2)); pairs are subsampled deterministically.
  std::size_t max_pairs = 400;
  /// Residual refinement rounds: after a solve, observations with the
  /// worst angular residuals (mismatched retrievals that survived the
  /// cluster filter) are dropped and the solve repeats. 0 disables.
  std::size_t refine_rounds = 1;
  double refine_keep = 0.7;  ///< fraction of observations kept per round
  DeConfig de;
};

struct LocalizeResult {
  Pose pose;                 ///< recovered 6-DoF camera pose
  double residual = 0;       ///< objective value at the solution
  std::size_t pairs_used = 0;
  bool hit_time_bound = false;
};

/// The Fig. 12 objective: summed squared angular error, on the X/Z and Y/Z
/// planes, between observed pixel-pair separations and the separations
/// subtended at candidate position `a` by the matched 3-D points. Exposed
/// separately so ablation benches can evaluate the raw cost surface.
double localization_cost(Vec3 a, std::span<const Observation> obs,
                         std::span<const std::pair<std::size_t, std::size_t>> pairs,
                         const CameraIntrinsics& cam) noexcept;

/// Solve for the client pose. Needs >= 3 observations; returns nullopt when
/// the geometry is degenerate (fewer observations or collapsed points).
std::optional<LocalizeResult> localize(std::span<const Observation> obs,
                                       const CameraIntrinsics& cam,
                                       const LocalizeConfig& config, Rng& rng);

/// Recover camera orientation given a solved position: aligns body-frame
/// pixel rays with world-frame directions to the matched points (Horn's
/// closed-form absolute orientation on unit vectors).
Mat3 recover_orientation(Vec3 position, std::span<const Observation> obs,
                         const CameraIntrinsics& cam) noexcept;

}  // namespace vp
