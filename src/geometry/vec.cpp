#include "geometry/vec.hpp"

namespace vp {

Mat3 rotation_zyx(double yaw, double pitch, double roll) noexcept {
  const double cy = std::cos(yaw), sy = std::sin(yaw);
  const double cp = std::cos(pitch), sp = std::sin(pitch);
  const double cr = std::cos(roll), sr = std::sin(roll);
  Mat3 rz{{{cy, -sy, 0}, {sy, cy, 0}, {0, 0, 1}}};
  Mat3 ry{{{cp, 0, sp}, {0, 1, 0}, {-sp, 0, cp}}};
  Mat3 rx{{{1, 0, 0}, {0, cr, -sr}, {0, sr, cr}}};
  return rz * ry * rx;
}

void euler_zyx(const Mat3& r, double& yaw, double& pitch, double& roll) noexcept {
  // R = Rz(yaw) Ry(pitch) Rx(roll):
  //   r20 = -sin(pitch); r10 = sin(yaw) cos(pitch); r21 = cos(pitch) sin(roll)
  pitch = std::asin(-r.m[2][0]);
  const double cp = std::cos(pitch);
  if (std::abs(cp) > 1e-9) {
    yaw = std::atan2(r.m[1][0], r.m[0][0]);
    roll = std::atan2(r.m[2][1], r.m[2][2]);
  } else {
    // Gimbal lock: yaw/roll are coupled; fold everything into yaw.
    yaw = std::atan2(-r.m[0][1], r.m[1][1]);
    roll = 0.0;
  }
}

}  // namespace vp
