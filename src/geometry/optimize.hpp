// Time-bounded differential evolution (DE/rand/1/bin).
//
// The paper solves the Fig. 12 localization optimization "using a
// time-bounded differential evolution"; this is a general-purpose
// implementation also used by the ablation benches.
//
// Parallel contract: each generation draws one RNG seed per population
// member from the caller's rng, builds that member's trial from its own
// derived stream against the frozen previous-generation population, and
// evaluates all objectives in pool-sized chunks; selection then applies
// serially in member order. Trial construction never observes another
// member's in-flight replacement, so DeResult is bit-identical for any
// pool size (including no pool).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace vp {

class ThreadPool;

struct DeConfig {
  std::size_t population = 48;
  std::size_t max_generations = 300;
  double weight = 0.7;          ///< differential weight F
  double crossover = 0.9;       ///< crossover probability CR
  double time_budget_sec = 0.25;///< wall-clock bound ("time-bounded" DE)
  double tolerance = 1e-10;     ///< stop when best cost improves less than this
                                ///< over `stall_generations`
  std::size_t stall_generations = 40;
  /// Borrowed worker pool (never owned, never persisted): objective
  /// evaluations run chunked across it. The objective must then be safe to
  /// call concurrently on distinct arguments — pure functions qualify.
  ThreadPool* pool = nullptr;
};

struct DeResult {
  std::vector<double> best;     ///< best parameter vector found
  double cost = 0;              ///< objective at `best`
  std::size_t generations = 0;  ///< generations actually run
  bool hit_time_bound = false;  ///< stopped by the wall-clock budget
};

/// Minimize `objective` over a box [lo[i], hi[i]] per dimension.
/// `objective` must be pure w.r.t. its argument (and is called from pool
/// workers when `config.pool` is set). Deterministic given `rng`,
/// independent of pool size.
DeResult differential_evolution(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> lo, std::span<const double> hi,
    const DeConfig& config, Rng& rng);

}  // namespace vp
