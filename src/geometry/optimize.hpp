// Time-bounded differential evolution (DE/rand/1/bin).
//
// The paper solves the Fig. 12 localization optimization "using a
// time-bounded differential evolution"; this is a general-purpose
// implementation also used by the ablation benches.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace vp {

struct DeConfig {
  std::size_t population = 48;
  std::size_t max_generations = 300;
  double weight = 0.7;          ///< differential weight F
  double crossover = 0.9;       ///< crossover probability CR
  double time_budget_sec = 0.25;///< wall-clock bound ("time-bounded" DE)
  double tolerance = 1e-10;     ///< stop when best cost improves less than this
                                ///< over `stall_generations`
  std::size_t stall_generations = 40;
};

struct DeResult {
  std::vector<double> best;     ///< best parameter vector found
  double cost = 0;              ///< objective at `best`
  std::size_t generations = 0;  ///< generations actually run
  bool hit_time_bound = false;  ///< stopped by the wall-clock budget
};

/// Minimize `objective` over a box [lo[i], hi[i]] per dimension.
/// `objective` must be pure w.r.t. its argument. Deterministic given `rng`.
DeResult differential_evolution(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> lo, std::span<const double> hi,
    const DeConfig& config, Rng& rng);

}  // namespace vp
