// Angular-separation geometry of Fig. 11.
//
// gamma(p, C, F, S) = atan( |p - C| * tan(F/2) / (S/2) ) is the angle, at
// the camera center A, between the optical axis and a keypoint's projection
// on one image axis. Pairwise angular separations derived from these gammas
// are the observations the localization optimization (Fig. 12) matches
// against candidate 3-D positions.
#pragma once

#include "geometry/camera.hpp"
#include "geometry/vec.hpp"

namespace vp {

/// The paper's gamma(p, C, F, S): angle from image center to pixel
/// coordinate `p` along one axis, given that axis' field of view `fov`
/// and side length `side` (width or height). Signed: negative left/above
/// of center.
double gamma_angle(double p, double center, double fov, double side) noexcept;

/// Signed per-axis angles (gamma_x, gamma_y) of a pixel in an image.
Vec2 pixel_gammas(Vec2 pixel, const CameraIntrinsics& cam) noexcept;

/// Angular separation between two pixels along one axis, handling the
/// same-side / opposite-side cases of Fig. 11 (signed gammas subtract).
double axis_separation(double gamma_i, double gamma_j) noexcept;

/// Angle subtended at observer position `a` by world points `p` and `q`,
/// projected onto the X/Z plane (for gamma_x residuals) or Y/Z plane.
/// `axis` 0 = X/Z plane, 1 = Y/Z plane. The projection matches the paper's
/// d(x, z, xi, zi) squared-distance formulation.
double subtended_angle_on_plane(Vec3 a, Vec3 p, Vec3 q, int axis) noexcept;

}  // namespace vp
