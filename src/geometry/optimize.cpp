#include "geometry/optimize.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace vp {

DeResult differential_evolution(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> lo, std::span<const double> hi,
    const DeConfig& config, Rng& rng) {
  const std::size_t dim = lo.size();
  VP_REQUIRE(dim > 0, "DE needs at least one dimension");
  VP_REQUIRE(hi.size() == dim, "DE bounds size mismatch");
  for (std::size_t d = 0; d < dim; ++d) {
    VP_REQUIRE(lo[d] <= hi[d], "DE bounds inverted");
  }
  VP_REQUIRE(config.population >= 4, "DE population must be >= 4");

  Timer timer;
  const std::size_t np = config.population;

  // Initialize population uniformly in the box.
  std::vector<std::vector<double>> pop(np, std::vector<double>(dim));
  std::vector<double> cost(np);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      pop[i][d] = rng.uniform(lo[d], hi[d]);
    }
    cost[i] = objective(pop[i]);
  }

  std::size_t best_i = static_cast<std::size_t>(
      std::min_element(cost.begin(), cost.end()) - cost.begin());

  DeResult result;
  result.best = pop[best_i];
  result.cost = cost[best_i];

  std::vector<double> trial(dim);
  double last_improvement_cost = result.cost;
  std::size_t stall = 0;

  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    if (timer.seconds() > config.time_budget_sec) {
      result.hit_time_bound = true;
      break;
    }
    for (std::size_t i = 0; i < np; ++i) {
      // Pick three distinct members, all != i.
      std::size_t a, b, c;
      do { a = rng.uniform_u64(np); } while (a == i);
      do { b = rng.uniform_u64(np); } while (b == i || b == a);
      do { c = rng.uniform_u64(np); } while (c == i || c == a || c == b);

      const std::size_t jrand = rng.uniform_u64(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        if (d == jrand || rng.chance(config.crossover)) {
          double v = pop[a][d] + config.weight * (pop[b][d] - pop[c][d]);
          trial[d] = std::clamp(v, lo[d], hi[d]);
        } else {
          trial[d] = pop[i][d];
        }
      }
      const double tc = objective(trial);
      if (tc <= cost[i]) {
        pop[i] = trial;
        cost[i] = tc;
        if (tc < result.cost) {
          result.cost = tc;
          result.best = trial;
        }
      }
    }
    result.generations = gen + 1;

    if (last_improvement_cost - result.cost > config.tolerance) {
      last_improvement_cost = result.cost;
      stall = 0;
    } else if (++stall >= config.stall_generations) {
      break;
    }
  }
  return result;
}

}  // namespace vp
