#include "geometry/optimize.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace vp {
namespace {

/// Run fn(i) for i in [0, n): serially without a pool, otherwise in
/// contiguous pool-sized chunks (one task per pool slot, not per member).
void for_chunked(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks =
      std::min<std::size_t>(n, std::max<std::size_t>(1, pool->thread_count()));
  const std::size_t per = (n + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace

DeResult differential_evolution(
    const std::function<double(std::span<const double>)>& objective,
    std::span<const double> lo, std::span<const double> hi,
    const DeConfig& config, Rng& rng) {
  const std::size_t dim = lo.size();
  VP_REQUIRE(dim > 0, "DE needs at least one dimension");
  VP_REQUIRE(hi.size() == dim, "DE bounds size mismatch");
  for (std::size_t d = 0; d < dim; ++d) {
    VP_REQUIRE(lo[d] <= hi[d], "DE bounds inverted");
  }
  VP_REQUIRE(config.population >= 4, "DE population must be >= 4");

  Timer timer;
  const std::size_t np = config.population;
  ThreadPool* pool = config.pool;

  // Initialize population uniformly in the box: positions drawn serially
  // from the caller's rng (fixed draw order), objectives evaluated in
  // parallel.
  std::vector<std::vector<double>> pop(np, std::vector<double>(dim));
  std::vector<double> cost(np);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      pop[i][d] = rng.uniform(lo[d], hi[d]);
    }
  }
  for_chunked(pool, np, [&](std::size_t i) { cost[i] = objective(pop[i]); });

  std::size_t best_i = static_cast<std::size_t>(
      std::min_element(cost.begin(), cost.end()) - cost.begin());

  DeResult result;
  result.best = pop[best_i];
  result.cost = cost[best_i];

  std::vector<std::uint64_t> seeds(np);
  std::vector<std::vector<double>> trials(np, std::vector<double>(dim));
  std::vector<double> trial_cost(np);
  double last_improvement_cost = result.cost;
  std::size_t stall = 0;

  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    if (timer.seconds() > config.time_budget_sec) {
      result.hit_time_bound = true;
      break;
    }
    // One seed per member, drawn serially: member i's mutation/crossover
    // stream depends only on (caller rng state, i), never on evaluation
    // order.
    for (auto& s : seeds) s = rng.next_u64();

    for_chunked(pool, np, [&](std::size_t i) {
      Rng member_rng(seeds[i]);
      // Pick three distinct members, all != i, from the frozen generation.
      std::size_t a, b, c;
      do { a = member_rng.uniform_u64(np); } while (a == i);
      do { b = member_rng.uniform_u64(np); } while (b == i || b == a);
      do { c = member_rng.uniform_u64(np); } while (c == i || c == a || c == b);

      auto& trial = trials[i];
      const std::size_t jrand = member_rng.uniform_u64(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        if (d == jrand || member_rng.chance(config.crossover)) {
          const double v =
              pop[a][d] + config.weight * (pop[b][d] - pop[c][d]);
          trial[d] = std::clamp(v, lo[d], hi[d]);
        } else {
          trial[d] = pop[i][d];
        }
      }
      trial_cost[i] = objective(trial);
    });

    // Serial selection in member order: replacement and best-tracking are
    // pure functions of the (deterministic) trials and costs.
    for (std::size_t i = 0; i < np; ++i) {
      if (trial_cost[i] <= cost[i]) {
        std::swap(pop[i], trials[i]);
        cost[i] = trial_cost[i];
        if (cost[i] < result.cost) {
          result.cost = cost[i];
          result.best = pop[i];
        }
      }
    }
    result.generations = gen + 1;

    if (last_improvement_cost - result.cost > config.tolerance) {
      last_improvement_cost = result.cost;
      stall = 0;
    } else if (++stall >= config.stall_generations) {
      break;
    }
  }
  return result;
}

}  // namespace vp
