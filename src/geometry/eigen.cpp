#include "geometry/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace vp {

EigenSym jacobi_eigen_sym(std::span<const double> matrix, std::size_t n,
                          std::size_t max_sweeps) {
  VP_REQUIRE(n > 0 && matrix.size() == n * n, "jacobi: bad matrix size");
  std::vector<double> a(matrix.begin(), matrix.end());
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diag_norm = [&] {
    double s = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    return s;
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diag_norm() < 1e-22) break;
    for (std::size_t p = 0; p < n - 1; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation to A on both sides and accumulate into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a[i * n + i] > a[j * n + j];
  });

  EigenSym out;
  out.values.resize(n);
  out.vectors.resize(n * n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t src = order[k];
    out.values[k] = a[src * n + src];
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors[k * n + i] = v[i * n + src];
    }
  }
  return out;
}

Mat3 horn_rotation(const Mat3& m) {
  // Build the symmetric 4x4 N matrix of Horn's quaternion method. Horn's
  // S_ab sums (body)_a (world)_b; our input correlation sums
  // (world)_a (body)_b, so read S as the transpose of m.
  const double sxx = m.m[0][0], sxy = m.m[1][0], sxz = m.m[2][0];
  const double syx = m.m[0][1], syy = m.m[1][1], syz = m.m[2][1];
  const double szx = m.m[0][2], szy = m.m[1][2], szz = m.m[2][2];

  const double nmat[16] = {
      sxx + syy + szz, syz - szy,       szx - sxz,       sxy - syx,
      syz - szy,       sxx - syy - szz, sxy + syx,       szx + sxz,
      szx - sxz,       sxy + syx,       -sxx + syy - szz, syz + szy,
      sxy - syx,       szx + sxz,       syz + szy,       -sxx - syy + szz};

  const EigenSym es = jacobi_eigen_sym(std::span<const double>(nmat, 16), 4);
  // Leading eigenvector is the optimal unit quaternion (w, x, y, z).
  const double w = es.vectors[0];
  const double x = es.vectors[1];
  const double y = es.vectors[2];
  const double z = es.vectors[3];

  Mat3 r;
  r.m[0][0] = w * w + x * x - y * y - z * z;
  r.m[0][1] = 2 * (x * y - w * z);
  r.m[0][2] = 2 * (x * z + w * y);
  r.m[1][0] = 2 * (x * y + w * z);
  r.m[1][1] = w * w - x * x + y * y - z * z;
  r.m[1][2] = 2 * (y * z - w * x);
  r.m[2][0] = 2 * (x * z - w * y);
  r.m[2][1] = 2 * (y * z + w * x);
  r.m[2][2] = w * w - x * x - y * y + z * z;
  return r;
}

}  // namespace vp
