#include "geometry/camera.hpp"

namespace vp {

double CameraIntrinsics::fov_v() const noexcept {
  // tan(fov_v/2) = (h/2) / f where f is shared with the horizontal axis.
  const double f = focal_px();
  return 2.0 * std::atan((height / 2.0) / f);
}

double CameraIntrinsics::focal_px() const noexcept {
  return (width / 2.0) / std::tan(fov_h / 2.0);
}

std::optional<Vec2> CameraIntrinsics::project(Vec3 p) const noexcept {
  constexpr double kMinDepth = 1e-6;
  if (p.z <= kMinDepth) return std::nullopt;
  const double f = focal_px();
  const Vec2 c = principal_point();
  const Vec2 px{c.x + f * p.x / p.z, c.y + f * p.y / p.z};
  if (px.x < 0 || px.x >= width || px.y < 0 || px.y >= height) {
    return std::nullopt;
  }
  return px;
}

Vec3 CameraIntrinsics::pixel_ray(Vec2 pixel) const noexcept {
  const double f = focal_px();
  const Vec2 c = principal_point();
  return Vec3{(pixel.x - c.x) / f, (pixel.y - c.y) / f, 1.0}.normalized();
}

}  // namespace vp
