// Small symmetric eigen-decomposition (cyclic Jacobi) for up to 6x6
// matrices, plus Horn's closed-form absolute-orientation rotation. Shared
// by ICP (map merging) and by orientation recovery after localization; also
// used for the PCA of Fig. 6(b), which runs Jacobi on the 128x128
// descriptor covariance via the iterative power-deflation path below.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/vec.hpp"

namespace vp {

/// Eigen decomposition of a dense symmetric n x n matrix (row-major, n*n
/// values). Eigenvalues are returned descending, with matching column
/// eigenvectors (eigvecs[k*n + i] = component i of the k-th eigenvector).
/// Cyclic Jacobi; fine up to n of a few hundred (used at n = 128 for PCA).
struct EigenSym {
  std::vector<double> values;
  std::vector<double> vectors;  ///< k-th eigenvector at [k*n, (k+1)*n)
};

EigenSym jacobi_eigen_sym(std::span<const double> matrix, std::size_t n,
                          std::size_t max_sweeps = 64);

/// Horn's method: rotation R maximizing sum_i world_i . (R * body_i) given
/// the 3x3 correlation matrix M = sum_i world_i * body_i^T. Returns a
/// proper rotation (det +1).
Mat3 horn_rotation(const Mat3& correlation);

}  // namespace vp
