#include "geometry/angles.hpp"

#include <algorithm>

namespace vp {

double gamma_angle(double p, double center, double fov, double side) noexcept {
  const double t = (p - center) * std::tan(fov / 2.0) / (side / 2.0);
  return std::atan(t);
}

Vec2 pixel_gammas(Vec2 pixel, const CameraIntrinsics& cam) noexcept {
  const Vec2 c = cam.principal_point();
  return {gamma_angle(pixel.x, c.x, cam.fov_h, cam.width),
          gamma_angle(pixel.y, c.y, cam.fov_v(), cam.height)};
}

double axis_separation(double gamma_i, double gamma_j) noexcept {
  // With signed gammas, |gi - gj| covers both the same-side and
  // opposite-side cases the paper enumerates.
  return std::abs(gamma_i - gamma_j);
}

double subtended_angle_on_plane(Vec3 a, Vec3 p, Vec3 q, int axis) noexcept {
  // Project onto (x, z) for axis 0 or (y, z) for axis 1, then apply the law
  // of cosines exactly as the Fig. 12 constraint does.
  auto proj = [axis](Vec3 v) -> Vec2 {
    return axis == 0 ? Vec2{v.x, v.z} : Vec2{v.y, v.z};
  };
  const Vec2 pa = proj(a);
  const Vec2 pp = proj(p);
  const Vec2 pq = proj(q);
  const double d_ap = (pp - pa).dot(pp - pa);
  const double d_aq = (pq - pa).dot(pq - pa);
  const double d_pq = (pq - pp).dot(pq - pp);
  const double denom = 2.0 * std::sqrt(d_ap) * std::sqrt(d_aq);
  if (denom < 1e-12) return 0.0;
  const double c = std::clamp((d_ap + d_aq - d_pq) / denom, -1.0, 1.0);
  return std::acos(c);
}

}  // namespace vp
