#include "geometry/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "util/error.hpp"

namespace vp {
namespace {

struct CellKey {
  std::int64_t x, y, z;
  bool operator==(const CellKey&) const = default;
};

struct CellHash {
  std::size_t operator()(const CellKey& k) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::int64_t v : {k.x, k.y, k.z}) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

ClusterResult cluster_points(std::span<const Vec3> points,
                             const ClusteringConfig& config) {
  VP_REQUIRE(config.radius > 0, "clustering radius must be positive");
  constexpr std::size_t kNoise = std::numeric_limits<std::size_t>::max();
  ClusterResult result;
  result.labels.assign(points.size(), kNoise);
  if (points.empty()) return result;

  // Bucket points into grid cells of side `radius`; neighbors of a point
  // can only live in the 27 surrounding cells.
  const double inv_r = 1.0 / config.radius;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellHash> grid;
  auto cell_of = [inv_r](Vec3 p) -> CellKey {
    return {static_cast<std::int64_t>(std::floor(p.x * inv_r)),
            static_cast<std::int64_t>(std::floor(p.y * inv_r)),
            static_cast<std::int64_t>(std::floor(p.z * inv_r))};
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    grid[cell_of(points[i])].push_back(i);
  }

  const double r2 = config.radius * config.radius;
  auto neighbors_of = [&](std::size_t i, std::vector<std::size_t>& out) {
    out.clear();
    const CellKey c = cell_of(points[i]);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          const auto it = grid.find({c.x + dx, c.y + dy, c.z + dz});
          if (it == grid.end()) continue;
          for (std::size_t j : it->second) {
            if (j != i && (points[j] - points[i]).norm2() <= r2) {
              out.push_back(j);
            }
          }
        }
      }
    }
  };

  // Flood fill connected components over the epsilon graph.
  std::vector<std::size_t> stack;
  std::vector<std::size_t> nbrs;
  std::size_t next_cluster = 0;
  for (std::size_t seed = 0; seed < points.size(); ++seed) {
    if (result.labels[seed] != kNoise) continue;
    stack.assign(1, seed);
    std::vector<std::size_t> members;
    result.labels[seed] = next_cluster;
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      members.push_back(i);
      neighbors_of(i, nbrs);
      for (std::size_t j : nbrs) {
        if (result.labels[j] == kNoise) {
          result.labels[j] = next_cluster;
          stack.push_back(j);
        }
      }
    }
    if (members.size() >= config.min_points) {
      result.clusters.push_back(std::move(members));
      ++next_cluster;
    } else {
      for (std::size_t i : members) result.labels[i] = kNoise;
    }
  }

  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  // Relabel so cluster 0 is the largest.
  for (auto& l : result.labels) l = kNoise;
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    for (std::size_t i : result.clusters[c]) result.labels[i] = c;
  }
  return result;
}

std::vector<std::size_t> largest_cluster(std::span<const Vec3> points,
                                         const ClusteringConfig& config) {
  auto result = cluster_points(points, config);
  if (result.clusters.empty()) return {};
  return std::move(result.clusters.front());
}

Vec3 centroid(std::span<const Vec3> points,
              std::span<const std::size_t> indices) {
  Vec3 c;
  if (indices.empty()) return c;
  for (std::size_t i : indices) c += points[i];
  return c / static_cast<double>(indices.size());
}

}  // namespace vp
