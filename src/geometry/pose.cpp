#include "geometry/pose.hpp"

#include <algorithm>

namespace vp {

double rotation_angle_between(const Mat3& a, const Mat3& b) noexcept {
  const Mat3 rel = a.transposed() * b;
  const double c = std::clamp((rel.trace() - 1.0) / 2.0, -1.0, 1.0);
  return std::acos(c);
}

}  // namespace vp
