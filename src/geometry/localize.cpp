#include "geometry/localize.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "geometry/angles.hpp"
#include "geometry/eigen.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

std::vector<std::pair<std::size_t, std::size_t>> select_pairs(
    std::size_t n, std::size_t max_pairs, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  const std::size_t total = n * (n - 1) / 2;
  pairs.reserve(std::min(total, max_pairs));
  if (total <= max_pairs) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
    return pairs;
  }
  // Reservoir-free subsample: accept each pair with probability
  // max_pairs/total, then top up randomly if we undershot.
  const double p = static_cast<double>(max_pairs) / static_cast<double>(total);
  for (std::size_t i = 0; i < n && pairs.size() < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < n && pairs.size() < max_pairs; ++j) {
      if (rng.chance(p)) pairs.emplace_back(i, j);
    }
  }
  while (pairs.size() < max_pairs) {
    const std::size_t i = rng.uniform_u64(n);
    const std::size_t j = rng.uniform_u64(n);
    if (i < j) pairs.emplace_back(i, j);
  }
  return pairs;
}

}  // namespace

double localization_cost(
    Vec3 a, std::span<const Observation> obs,
    std::span<const std::pair<std::size_t, std::size_t>> pairs,
    const CameraIntrinsics& cam) noexcept {
  // The paper's Fig. 12 objective decomposes pairwise angular error into
  // X/Z- and Y/Z-plane components, which assumes a roll-free camera in a
  // particular world frame. We use the rotation-invariant equivalent: the
  // full 3-D angle between the two pixel rays must match the angle
  // subtended at the candidate position by the two matched world points.
  // Same observations, no frame assumption; residual units are radians^2
  // as in the paper.
  double cost = 0;
  for (const auto& [i, j] : pairs) {
    const Vec3 ri = cam.pixel_ray(obs[i].pixel);
    const Vec3 rj = cam.pixel_ray(obs[j].pixel);
    const double observed =
        std::acos(std::clamp(ri.dot(rj), -1.0, 1.0));

    const Vec3 di = obs[i].world_point - a;
    const Vec3 dj = obs[j].world_point - a;
    const double ni = di.norm();
    const double nj = dj.norm();
    if (ni < 1e-9 || nj < 1e-9) {
      cost += 10.0;  // candidate sits on a landmark: strongly penalize
      continue;
    }
    const double subtended =
        std::acos(std::clamp(di.dot(dj) / (ni * nj), -1.0, 1.0));
    const double e = observed - subtended;
    cost += e * e;
  }
  return cost;
}

Mat3 recover_orientation(Vec3 position, std::span<const Observation> obs,
                         const CameraIntrinsics& cam) noexcept {
  // Correlate world-frame directions to the matched points with the
  // body-frame pixel rays; Horn's method gives world_from_body.
  Mat3 corr{{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}};
  for (const auto& o : obs) {
    const Vec3 w = (o.world_point - position).normalized();
    const Vec3 b = cam.pixel_ray(o.pixel);
    corr.m[0][0] += w.x * b.x; corr.m[0][1] += w.x * b.y; corr.m[0][2] += w.x * b.z;
    corr.m[1][0] += w.y * b.x; corr.m[1][1] += w.y * b.y; corr.m[1][2] += w.y * b.z;
    corr.m[2][0] += w.z * b.x; corr.m[2][1] += w.z * b.y; corr.m[2][2] += w.z * b.z;
  }
  return horn_rotation(corr);
}

namespace {

struct SolveOutput {
  Vec3 position;
  double cost = 0;
  std::size_t pairs = 0;
  bool hit_time_bound = false;
};

SolveOutput solve_position(std::span<const Observation> obs,
                           const CameraIntrinsics& cam,
                           const LocalizeConfig& config, Rng& rng) {
  const auto pairs = select_pairs(obs.size(), config.max_pairs, rng);
  const std::array<double, 3> lo{config.search_lo.x, config.search_lo.y,
                                 config.search_lo.z};
  const std::array<double, 3> hi{config.search_hi.x, config.search_hi.y,
                                 config.search_hi.z};
  const auto objective = [&](std::span<const double> v) {
    return localization_cost({v[0], v[1], v[2]}, obs, pairs, cam);
  };
  const DeResult de = differential_evolution(objective, lo, hi, config.de, rng);
  return {{de.best[0], de.best[1], de.best[2]}, de.cost, pairs.size(),
          de.hit_time_bound};
}

/// Per-observation angular residual at position `a`: |observed - subtended|
/// against every other observation, averaged.
std::vector<double> per_observation_residuals(
    Vec3 a, std::span<const Observation> obs, const CameraIntrinsics& cam) {
  std::vector<double> res(obs.size(), 0.0);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const Vec3 ri = cam.pixel_ray(obs[i].pixel);
    const Vec3 di = obs[i].world_point - a;
    const double ni = di.norm();
    double sum = 0;
    for (std::size_t j = 0; j < obs.size(); ++j) {
      if (j == i) continue;
      const Vec3 rj = cam.pixel_ray(obs[j].pixel);
      const double observed = std::acos(std::clamp(ri.dot(rj), -1.0, 1.0));
      const Vec3 dj = obs[j].world_point - a;
      const double nj = dj.norm();
      if (ni < 1e-9 || nj < 1e-9) {
        sum += 1.0;
        continue;
      }
      const double subtended =
          std::acos(std::clamp(di.dot(dj) / (ni * nj), -1.0, 1.0));
      sum += std::abs(observed - subtended);
    }
    res[i] = sum / static_cast<double>(obs.size() - 1);
  }
  return res;
}

}  // namespace

std::optional<LocalizeResult> localize(std::span<const Observation> obs,
                                       const CameraIntrinsics& cam,
                                       const LocalizeConfig& config, Rng& rng) {
  if (obs.size() < 3) return std::nullopt;

  // Degenerate if all world points are (nearly) collinear in projection.
  Vec3 mean_pt;
  for (const auto& o : obs) mean_pt += o.world_point;
  mean_pt = mean_pt / static_cast<double>(obs.size());
  double spread = 0;
  for (const auto& o : obs) spread += (o.world_point - mean_pt).norm2();
  if (spread < 1e-9) return std::nullopt;

  std::vector<Observation> working(obs.begin(), obs.end());
  SolveOutput solved = solve_position(working, cam, config, rng);

  // Refinement: drop the observations that fit the solution worst
  // (mismatched retrievals that slipped past the cluster filter), re-solve.
  for (std::size_t round = 0; round < config.refine_rounds; ++round) {
    const std::size_t keep = std::max<std::size_t>(
        4, static_cast<std::size_t>(static_cast<double>(working.size()) *
                                    config.refine_keep));
    if (keep >= working.size()) break;
    const auto residuals =
        per_observation_residuals(solved.position, working, cam);
    std::vector<std::size_t> order(working.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return residuals[a] < residuals[b];
    });
    std::vector<Observation> kept;
    kept.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) kept.push_back(working[order[i]]);
    working = std::move(kept);
    solved = solve_position(working, cam, config, rng);
  }

  LocalizeResult out;
  out.pose.translation = solved.position;
  out.pose.rotation = recover_orientation(solved.position, working, cam);
  out.residual = solved.cost;
  out.pairs_used = solved.pairs;
  out.hit_time_bound = solved.hit_time_bound;
  return out;
}

}  // namespace vp
