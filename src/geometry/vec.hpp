// Small fixed-size linear algebra: Vec2/Vec3, Mat3. Header-only, constexpr
// where possible. This is the only linear algebra the system needs — kept
// deliberately minimal instead of pulling a full matrix library.
#pragma once

#include <cmath>

namespace vp {

struct Vec2 {
  double x = 0, y = 0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
  double norm() const noexcept { return std::sqrt(dot(*this)); }
};

struct Vec3 {
  double x = 0, y = 0, z = 0;

  constexpr Vec3 operator+(Vec3 o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr Vec3 operator/(double s) const noexcept {
    return {x / s, y / s, z / s};
  }
  constexpr Vec3& operator+=(Vec3 o) noexcept {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr double dot(Vec3 o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(Vec3 o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  constexpr double norm2() const noexcept { return dot(*this); }
  double norm() const noexcept { return std::sqrt(norm2()); }
  Vec3 normalized() const noexcept {
    const double n = norm();
    return n > 0 ? *this / n : Vec3{};
  }
  double distance(Vec3 o) const noexcept { return (*this - o).norm(); }
};

constexpr Vec3 operator*(double s, Vec3 v) noexcept { return v * s; }

/// Row-major 3x3 matrix.
struct Mat3 {
  double m[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};

  static constexpr Mat3 identity() noexcept { return {}; }

  constexpr Vec3 operator*(Vec3 v) const noexcept {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  constexpr Mat3 operator*(const Mat3& o) const noexcept {
    Mat3 r{};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        r.m[i][j] = 0;
        for (int k = 0; k < 3; ++k) r.m[i][j] += m[i][k] * o.m[k][j];
      }
    }
    return r;
  }

  constexpr Mat3 transposed() const noexcept {
    Mat3 r{};
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
    return r;
  }

  constexpr double trace() const noexcept {
    return m[0][0] + m[1][1] + m[2][2];
  }
};

/// Rotation about Z (yaw), Y (pitch), X (roll), composed R = Rz * Ry * Rx.
Mat3 rotation_zyx(double yaw, double pitch, double roll) noexcept;

/// Extract (yaw, pitch, roll) from a rotation matrix built by rotation_zyx.
void euler_zyx(const Mat3& r, double& yaw, double& pitch, double& roll) noexcept;

}  // namespace vp
