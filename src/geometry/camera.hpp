// Pinhole camera model.
//
// Conventions: camera body frame has +Z forward (optical axis), +X right,
// +Y down — so pixel coordinates grow right/down as usual. The model is
// parameterized by field of view, matching the paper's localization
// geometry (Fig. 11), which works in FoV/pixel terms rather than focal
// lengths.
#pragma once

#include <optional>

#include "geometry/pose.hpp"
#include "geometry/vec.hpp"

namespace vp {

struct CameraIntrinsics {
  int width = 1920;        ///< image width, pixels
  int height = 1080;       ///< image height, pixels
  double fov_h = 1.15192;  ///< horizontal field of view, radians (~66 deg)

  /// Vertical FoV derived from the aspect ratio (square pixels).
  double fov_v() const noexcept;

  /// Focal length in pixels (same for x and y under square pixels).
  double focal_px() const noexcept;

  Vec2 principal_point() const noexcept {
    return {width / 2.0, height / 2.0};
  }

  /// Project a point in camera body frame to pixel coordinates.
  /// Returns nullopt if the point is behind the camera (z <= epsilon) or
  /// projects outside the image bounds.
  std::optional<Vec2> project(Vec3 body_point) const noexcept;

  /// Unit ray in camera body frame through pixel (px, py).
  Vec3 pixel_ray(Vec2 pixel) const noexcept;
};

/// A camera = intrinsics + world pose.
struct Camera {
  CameraIntrinsics intrinsics;
  Pose pose;  ///< world_from_camera

  /// Project a world point; nullopt when behind camera or out of frame.
  std::optional<Vec2> project_world(Vec3 world_point) const noexcept {
    return intrinsics.project(pose.to_body(world_point));
  }

  /// World-frame unit ray through a pixel.
  Vec3 world_ray(Vec2 pixel) const noexcept {
    return (pose.rotation * intrinsics.pixel_ray(pixel)).normalized();
  }
};

}  // namespace vp
