#include "geometry/icp.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/eigen.hpp"
#include "util/error.hpp"

namespace vp {
namespace {

constexpr std::int64_t kCoordBias = 1 << 20;

std::uint64_t pack_cell(std::int64_t x, std::int64_t y, std::int64_t z) noexcept {
  // 21 bits per axis, biased to keep coordinates positive.
  const std::uint64_t ux = static_cast<std::uint64_t>(x + kCoordBias) & 0x1FFFFF;
  const std::uint64_t uy = static_cast<std::uint64_t>(y + kCoordBias) & 0x1FFFFF;
  const std::uint64_t uz = static_cast<std::uint64_t>(z + kCoordBias) & 0x1FFFFF;
  return (ux << 42) | (uy << 21) | uz;
}

}  // namespace

PointGrid::PointGrid(std::span<const Vec3> points, double cell_size)
    : points_(points.begin(), points.end()), cell_(cell_size) {
  VP_REQUIRE(cell_size > 0, "PointGrid cell size must be positive");
  sorted_cells_.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    sorted_cells_.emplace_back(key_of(points_[i]),
                               static_cast<std::uint32_t>(i));
  }
  std::sort(sorted_cells_.begin(), sorted_cells_.end());
}

std::uint64_t PointGrid::key_of(Vec3 p) const noexcept {
  return pack_cell(static_cast<std::int64_t>(std::floor(p.x / cell_)),
                   static_cast<std::int64_t>(std::floor(p.y / cell_)),
                   static_cast<std::int64_t>(std::floor(p.z / cell_)));
}

std::optional<std::size_t> PointGrid::nearest(Vec3 query,
                                              double max_dist) const {
  if (points_.empty()) return std::nullopt;
  const auto cx = static_cast<std::int64_t>(std::floor(query.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(query.y / cell_));
  const auto cz = static_cast<std::int64_t>(std::floor(query.z / cell_));
  const auto reach =
      static_cast<std::int64_t>(std::ceil(max_dist / cell_));

  double best_d2 = max_dist * max_dist;
  std::optional<std::size_t> best;
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      for (std::int64_t dz = -reach; dz <= reach; ++dz) {
        const std::uint64_t key = pack_cell(cx + dx, cy + dy, cz + dz);
        auto it = std::lower_bound(
            sorted_cells_.begin(), sorted_cells_.end(),
            std::make_pair(key, std::uint32_t{0}));
        for (; it != sorted_cells_.end() && it->first == key; ++it) {
          const double d2 = (points_[it->second] - query).norm2();
          if (d2 < best_d2) {
            best_d2 = d2;
            best = it->second;
          }
        }
      }
    }
  }
  return best;
}

IcpResult icp_align(std::span<const Vec3> source, std::span<const Vec3> target,
                    const IcpConfig& config) {
  IcpResult result;
  if (source.empty() || target.empty()) return result;

  const PointGrid grid(target, std::max(0.25, config.max_correspondence_dist));
  std::vector<Vec3> current(source.begin(), source.end());

  double prev_error = std::numeric_limits<double>::max();
  Pose total{};  // identity

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // Gather correspondences for the current alignment.
    std::vector<std::pair<Vec3, Vec3>> pairs;  // (source, matched target)
    pairs.reserve(current.size());
    for (const Vec3& p : current) {
      if (auto idx = grid.nearest(p, config.max_correspondence_dist)) {
        pairs.emplace_back(p, target[*idx]);
      }
    }
    result.correspondences = pairs.size();
    if (pairs.size() < config.min_correspondences) return result;

    // Trimmed ICP: estimate from the closest correspondences only, so
    // one-sided boundary matches can't drag the transform.
    if (config.trim_fraction < 1.0 && pairs.size() > 16) {
      const auto keep = std::max<std::size_t>(
          config.min_correspondences,
          static_cast<std::size_t>(static_cast<double>(pairs.size()) *
                                   config.trim_fraction));
      std::nth_element(pairs.begin(),
                       pairs.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                       pairs.end(), [](const auto& a, const auto& b) {
                         return (a.first - a.second).norm2() <
                                (b.first - b.second).norm2();
                       });
      pairs.resize(keep);
    }

    // Centroids and centered correlation for Horn's method.
    Vec3 cs, ct;
    for (const auto& [s, t] : pairs) {
      cs += s;
      ct += t;
    }
    cs = cs / static_cast<double>(pairs.size());
    ct = ct / static_cast<double>(pairs.size());

    Mat3 r;
    if (config.planar) {
      // Yaw-only rotation: 2-D Procrustes on the horizontal plane.
      double num = 0, den = 0;
      for (const auto& [s, t] : pairs) {
        const double sx = s.x - cs.x, sy = s.y - cs.y;
        const double tx = t.x - ct.x, ty = t.y - ct.y;
        num += sx * ty - sy * tx;
        den += sx * tx + sy * ty;
      }
      const double yaw = std::atan2(num, den);
      r = rotation_zyx(yaw, 0, 0);
    } else {
      Mat3 corr{{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}};
      for (const auto& [s, t] : pairs) {
        const Vec3 a = t - ct;  // world/target side
        const Vec3 b = s - cs;  // body/source side
        corr.m[0][0] += a.x * b.x; corr.m[0][1] += a.x * b.y; corr.m[0][2] += a.x * b.z;
        corr.m[1][0] += a.y * b.x; corr.m[1][1] += a.y * b.y; corr.m[1][2] += a.y * b.z;
        corr.m[2][0] += a.z * b.x; corr.m[2][1] += a.z * b.y; corr.m[2][2] += a.z * b.z;
      }
      r = horn_rotation(corr);
    }
    const Vec3 t_vec = ct - r * cs;
    const Pose step{r, t_vec};

    for (auto& p : current) p = step.to_world(p);
    total = step * total;

    double err = 0;
    std::size_t matched = 0;
    for (const Vec3& p : current) {
      if (auto idx = grid.nearest(p, config.max_correspondence_dist)) {
        err += (target[*idx] - p).norm();
        ++matched;
      }
    }
    err = matched ? err / static_cast<double>(matched) : prev_error;
    result.iterations = iter + 1;
    result.mean_error = err;

    if (std::abs(prev_error - err) < config.convergence_delta) {
      result.converged = true;
      break;
    }
    prev_error = err;
  }
  result.transform = total;
  if (result.iterations == config.max_iterations) result.converged = true;
  return result;
}

}  // namespace vp
