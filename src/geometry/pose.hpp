// 6-DoF rigid pose: rotation + translation, the datum Tango reports during
// wardriving and the quantity VisualPrint's localization recovers.
#pragma once

#include "geometry/vec.hpp"

namespace vp {

struct Pose {
  Mat3 rotation;     ///< world_from_body rotation
  Vec3 translation;  ///< body origin in world coordinates

  /// Transform a point from body (camera) frame to world frame.
  Vec3 to_world(Vec3 body_point) const noexcept {
    return rotation * body_point + translation;
  }

  /// Transform a point from world frame to body (camera) frame.
  Vec3 to_body(Vec3 world_point) const noexcept {
    return rotation.transposed() * (world_point - translation);
  }

  /// Compose: this * other (apply other first, then this).
  Pose operator*(const Pose& other) const noexcept {
    return {rotation * other.rotation, rotation * other.translation + translation};
  }

  Pose inverse() const noexcept {
    const Mat3 rt = rotation.transposed();
    return {rt, rt * (Vec3{} - translation)};
  }

  static Pose from_euler(Vec3 position, double yaw, double pitch,
                         double roll) noexcept {
    return {rotation_zyx(yaw, pitch, roll), position};
  }
};

/// Rotation angle (radians) between two rotation matrices.
double rotation_angle_between(const Mat3& a, const Mat3& b) noexcept;

}  // namespace vp
