// Figure 5: CDF of (SIFT feature bytes / image bytes), uncompressed and
// after heavy GZIP. Paper shape: features cost about as much as the image
// even compressed (~5x more uncompressed) — so "just send the keypoints"
// does not save bandwidth; selective shipping is required.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "features/sift.hpp"
#include "imaging/codec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header(
      "Fig. 5", "CDF of SIFT-feature-size to image-size ratio");

  const int n_frames = static_cast<int>(30 * scale);
  const auto frames = render_walk_frames(n_frames, 640, 360, 777);

  std::vector<double> raw_ratio, gzip_ratio, compact_ratio;
  for (const auto& frame : frames) {
    const auto features = sift_detect(to_gray(frame));
    if (features.empty()) continue;
    // The paper measures OpenCV's representation: float32 descriptors plus
    // the full cv::KeyPoint record (540 B per feature).
    const Bytes blob = serialize_features_opencv_style(features);
    // Image size: lossless PNG, the encoding Fig. 2/3 establish as needed.
    const double image_bytes = static_cast<double>(png_encode(frame).size());
    raw_ratio.push_back(static_cast<double>(blob.size()) / image_bytes);
    gzip_ratio.push_back(
        static_cast<double>(zlib_compress(blob, 9).size()) / image_bytes);
    compact_ratio.push_back(
        static_cast<double>(serialize_features(features).size()) /
        image_bytes);
  }

  const EmpiricalCdf raw_cdf(raw_ratio), gz_cdf(gzip_ratio);
  print_series("Uncompressed", raw_cdf.sample_points(15),
               "features/image ratio", "CDF");
  print_series("Compressed (GZIP)", gz_cdf.sample_points(15),
               "features/image ratio", "CDF");

  Table summary("Feature-size ratio summary");
  summary.header({"variant", "p25", "median", "p75"});
  const Summary r = summarize(raw_ratio);
  const Summary g = summarize(gzip_ratio);
  const Summary c = summarize(compact_ratio);
  summary.row({"uncompressed (OpenCV floats)", Table::num(r.q1, 2),
               Table::num(r.median, 2), Table::num(r.q3, 2)});
  summary.row({"GZIP (OpenCV floats)", Table::num(g.q1, 2),
               Table::num(g.median, 2), Table::num(g.q3, 2)});
  summary.row({"our compact u8 wire format", Table::num(c.q1, 2),
               Table::num(c.median, 2), Table::num(c.q3, 2)});
  summary.print();

  std::printf(
      "\npaper shape: compressed features ~comparable to image size;\n"
      "uncompressed several times larger. measured medians: %.2fx raw, "
      "%.2fx gzip\n",
      r.median, g.median);
  return 0;
}
