// Ablation: alternate descriptor pipeline (paper §5). "Keypoint detection
// and description are two separate stages ... one can use any keypoint
// detection algorithm with another integer keypoint description algorithm
// without modification in the system pipeline."
//
// Same detector, same scenes, two descriptor stacks:
//   * SIFT 128-byte descriptors + E2LSH uniqueness oracle (the default)
//   * rotated-BRIEF 256-bit descriptors + bit-sampling uniqueness oracle
// Both run the identical select-most-unique -> vote retrieval flow;
// binary queries are ~4x smaller on the wire.
#include <cstdio>
#include <limits>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "features/brief.hpp"
#include "hashing/binary_oracle.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace vp;
using namespace vp::bench;

/// Minimal Hamming-space retrieval: exact NN voting over labeled binary
/// descriptors (256-bit popcount distance is cheap enough for exact NN).
class BinarySceneDatabase {
 public:
  void add_image(std::span<const BinaryFeature> features,
                 std::int32_t scene_id) {
    for (const auto& f : features) {
      descriptors_.push_back(f.descriptor);
      labels_.push_back(scene_id);
    }
    scene_count_ = std::max(scene_count_, scene_id + 1);
  }

  std::optional<std::int32_t> predict(std::span<const BinaryFeature> query,
                                      unsigned max_distance,
                                      std::uint32_t min_votes) const {
    std::vector<std::uint32_t> votes(
        static_cast<std::size_t>(std::max(0, scene_count_)), 0);
    for (const auto& q : query) {
      unsigned best = std::numeric_limits<unsigned>::max();
      std::int32_t best_label = -1;
      for (std::size_t i = 0; i < descriptors_.size(); ++i) {
        const unsigned d = hamming_distance(descriptors_[i], q.descriptor);
        if (d < best) {
          best = d;
          best_label = labels_[i];
        }
      }
      if (best <= max_distance && best_label >= 0) {
        ++votes[static_cast<std::size_t>(best_label)];
      }
    }
    std::size_t arg = 0;
    for (std::size_t s = 1; s < votes.size(); ++s) {
      if (votes[s] > votes[arg]) arg = s;
    }
    if (votes.empty() || votes[arg] < min_votes) return std::nullopt;
    return static_cast<std::int32_t>(arg);
  }

  std::size_t size() const noexcept { return descriptors_.size(); }
  int scene_count() const noexcept { return scene_count_; }

 private:
  std::vector<BinaryDescriptor> descriptors_;
  std::vector<std::int32_t> labels_;
  int scene_count_ = 0;
};

std::vector<BinaryFeature> rebrief(const LabeledImage& img) {
  std::vector<Keypoint> kps;
  kps.reserve(img.features.size());
  for (const auto& f : img.features) kps.push_back(f.keypoint);
  return brief_describe(img.image, kps);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_figure_header("Ablation", "SIFT+E2LSH vs BRIEF+bit-sampling oracle");

  DatasetConfig cfg;
  cfg.num_scenes = static_cast<int>(12 * scale);
  cfg.num_distractors = static_cast<int>(36 * scale);
  cfg.queries_per_scene = 4;
  cfg.image_width = 480;
  cfg.image_height = 360;
  cfg.keep_images = true;
  const auto ds = build_retrieval_dataset(cfg);
  std::printf("database: %zu SIFT descriptors, %zu queries\n\n",
              ds.total_db_descriptors, ds.queries.size());

  const std::size_t top_k = 150;

  // --- SIFT stack --------------------------------------------------------
  RetrievalConfig retrieval;
  retrieval.min_votes = 3;
  retrieval.min_margin = 1.0;
  SceneDatabase sift_db(retrieval);
  OracleConfig sift_oracle_cfg;
  sift_oracle_cfg.capacity =
      std::max<std::size_t>(60'000, ds.total_db_descriptors);
  UniquenessOracle sift_oracle(sift_oracle_cfg);
  for (const auto& img : ds.database) {
    sift_db.add_image(img.features, img.scene_id);
    for (const auto& f : img.features) sift_oracle.insert(f.descriptor);
  }
  VisualPrintClient sift_client({});
  sift_client.install_oracle(
      UniquenessOracle::deserialize(sift_oracle.serialize()));

  int sift_correct = 0;
  for (const auto& q : ds.queries) {
    const auto sel = sift_client.select_features(q.features, top_k);
    const auto pred = sift_db.predict(sel, MatcherKind::kLsh);
    sift_correct += pred && *pred == q.scene_id;
  }

  // --- BRIEF stack -------------------------------------------------------
  BinarySceneDatabase brief_db;
  BinaryOracleConfig brief_oracle_cfg;
  brief_oracle_cfg.capacity =
      std::max<std::size_t>(60'000, ds.total_db_descriptors);
  BinaryUniquenessOracle brief_oracle(brief_oracle_cfg);
  for (const auto& img : ds.database) {
    const auto bf = rebrief(img);
    brief_db.add_image(bf, img.scene_id);
    for (const auto& f : bf) brief_oracle.insert(f.descriptor);
  }

  int brief_correct = 0;
  double brief_bytes = 0;
  for (const auto& q : ds.queries) {
    auto bf = rebrief(q);
    // Select the top_k most unique by binary-oracle count.
    std::vector<std::pair<std::uint32_t, std::size_t>> scored;
    scored.reserve(bf.size());
    for (std::size_t i = 0; i < bf.size(); ++i) {
      scored.emplace_back(brief_oracle.count(bf[i].descriptor), i);
    }
    std::sort(scored.begin(), scored.end());
    std::vector<BinaryFeature> sel;
    for (std::size_t i = 0; i < std::min(top_k, scored.size()); ++i) {
      sel.push_back(bf[scored[i].second]);
    }
    // 256-bit descriptor + 16 B keypoint fields on the wire.
    brief_bytes += static_cast<double>(sel.size() * (32 + 16));
    const auto pred = brief_db.predict(sel, /*max_distance=*/55,
                                       retrieval.min_votes);
    brief_correct += pred && *pred == q.scene_id;
  }

  const auto n = static_cast<double>(ds.queries.size());
  Table table("Descriptor stack comparison (identical pipeline)");
  table.header({"stack", "accuracy", "bytes/query", "descriptor"});
  table.row({"SIFT + E2LSH oracle",
             Table::num(sift_correct / n, 3),
             Table::bytes_human(static_cast<double>(top_k * kFeatureWireBytes)),
             "128 x u8, L2"});
  table.row({"BRIEF + bit-sampling oracle",
             Table::num(brief_correct / n, 3),
             Table::bytes_human(brief_bytes / n), "256-bit, Hamming"});
  table.print();

  std::printf(
      "\npaper claim (§5): the pipeline is descriptor-agnostic — swapping\n"
      "the description + LSH family preserves function; binary descriptors\n"
      "trade some accuracy for ~3x smaller queries.\n");
  return 0;
}
