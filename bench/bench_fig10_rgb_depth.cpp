// Figure 10: Tango RGB + depth: "(a) original RGB image; (b) heat map of
// depth from observer, red is farther away." Renders one wardriving
// viewpoint's RGB frame and its depth map as a red-heat overlay image.
// Writes fig10_rgb.png and fig10_depth_heat.png.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "imaging/codec.hpp"
#include "imaging/pnm.hpp"
#include "scene/environments.hpp"
#include "slam/wardrive.hpp"

namespace {

void save_png(const vp::ImageU8& img, const char* path) {
  const vp::Bytes png = vp::png_encode(img);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(png.data()),
            static_cast<std::streamsize>(png.size()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  (void)argc;
  (void)argv;
  print_figure_header("Fig. 10", "wardriving RGB frame + depth heat map");

  Rng rng(10);
  GalleryConfig gallery;
  gallery.num_scenes = 6;
  gallery.hall_length = 20;
  const World world = build_gallery(gallery, rng);

  WardriveConfig cfg;
  cfg.intrinsics = {640, 480, 1.15192};
  cfg.stop_spacing = 6.0;
  cfg.views_per_stop = 1;
  cfg.render.depth_downscale = 2;
  const auto snaps = wardrive(world, cfg, rng);
  // Pick the snapshot with the most depth variation (interesting view).
  std::size_t best = 0;
  double best_spread = -1;
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    float lo = 1e9f, hi = 0;
    for (float d : snaps[i].depth.pixels()) {
      if (d > 0) {
        lo = std::min(lo, d);
        hi = std::max(hi, d);
      }
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best = i;
    }
  }
  const Snapshot& snap = snaps[best];

  save_png(gray_to_rgb(to_u8(snap.image)), "fig10_rgb.png");

  // Depth -> heat map: near = blue/dark, far = red (paper's convention).
  float dmax = 0;
  for (float d : snap.depth.pixels()) dmax = std::max(dmax, d);
  ImageU8 heat(snap.depth.width(), snap.depth.height(), 3);
  for (int y = 0; y < heat.height(); ++y) {
    for (int x = 0; x < heat.width(); ++x) {
      const float d = snap.depth(x, y);
      if (d <= 0) {
        heat(x, y, 0) = heat(x, y, 1) = heat(x, y, 2) = 0;
        continue;
      }
      const double t = std::clamp(d / dmax, 0.0f, 1.0f);
      heat(x, y, 0) = static_cast<std::uint8_t>(40 + 215 * t);        // red
      heat(x, y, 1) = static_cast<std::uint8_t>(60 * (1 - t));        // green
      heat(x, y, 2) = static_cast<std::uint8_t>(200 * (1 - t) + 20);  // blue
    }
  }
  save_png(heat, "fig10_depth_heat.png");

  std::printf("wrote fig10_rgb.png (%dx%d) and fig10_depth_heat.png "
              "(%dx%d), max depth %.1f m\n",
              snap.image.width(), snap.image.height(), heat.width(),
              heat.height(), dmax);
  return 0;
}
