// Figure 15: client/server disk and memory footprint per approach.
// Paper shape (2.5 M descriptors): Random ~0; VisualPrint oracle 10.5 MB
// on disk compressed / 162 MB in RAM; LSH indices 1.3 GB compressed /
// 9.4 GB in RAM; BruteForce = whole descriptor database in RAM. We build
// a scaled database and report the same columns; the ratios are the
// reproduction target, not the absolute bytes.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "core/retrieval.hpp"
#include "core/server.hpp"
#include "features/pq.hpp"
#include "hashing/oracle.hpp"
#include "imaging/codec.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 15", "disk/memory footprint by approach");

  DatasetConfig cfg;
  cfg.num_scenes = static_cast<int>(30 * scale);
  cfg.num_distractors = static_cast<int>(90 * scale);
  cfg.queries_per_scene = 0;
  const auto ds = build_retrieval_dataset(cfg);
  std::printf("database: %zu descriptors (paper: 2.5 M; scaled run)\n\n",
              ds.total_db_descriptors);

  // Build each approach's structures over the same database.
  RetrievalConfig retrieval;
  SceneDatabase database(retrieval);
  OracleConfig oracle_cfg;
  oracle_cfg.capacity = std::max<std::size_t>(50'000, ds.total_db_descriptors);
  UniquenessOracle oracle(oracle_cfg);
  for (const auto& img : ds.database) {
    database.add_image(img.features, img.scene_id);
    for (const auto& f : img.features) oracle.insert(f.descriptor);
  }

  const Bytes oracle_blob = oracle.serialize();
  const Bytes oracle_disk = zlib_compress(oracle_blob, 9);
  const std::size_t raw_db_bytes = database.brute_force_byte_size();
  // The paper benchmarks the reference E2LSH implementation, which
  // replicates vectors into every table; report both it and our compact
  // id-list variant.
  const std::size_t lsh_ram = database.reference_lsh_byte_size();
  const std::size_t lsh_compact_ram = database.lsh_byte_size();

  // "Disk" for LSH: the serialized-and-compressed index payload; dominated
  // by the stored descriptors, compressed.
  Bytes db_raw;
  db_raw.reserve(raw_db_bytes);
  for (const auto& img : ds.database) {
    for (const auto& f : img.features) {
      db_raw.insert(db_raw.end(), f.descriptor.begin(), f.descriptor.end());
    }
  }
  const std::size_t lsh_disk = zlib_compress(db_raw, 9).size() +
                               oracle_disk.size() / 100;  // + tiny metadata

  Table table("Fig. 15: client footprint by approach");
  table.header({"approach", "disk (compressed)", "RAM (resident)"});
  table.row({"Random-500", "0 B (no index)", "0 B"});
  table.row({"VisualPrint",
             Table::bytes_human(static_cast<double>(oracle_disk.size())),
             Table::bytes_human(static_cast<double>(oracle.byte_size()))});
  table.row({"LSH (reference E2LSH)",
             Table::bytes_human(static_cast<double>(lsh_disk)),
             Table::bytes_human(static_cast<double>(lsh_ram))});
  table.row({"LSH (our compact ids)", "-",
             Table::bytes_human(static_cast<double>(lsh_compact_ram))});
  table.row({"BruteForce", Table::bytes_human(static_cast<double>(
                               zlib_compress(db_raw, 9).size())),
             Table::bytes_human(static_cast<double>(raw_db_bytes))});

  // Server-side PQ shard storage: train a codebook on the database
  // descriptors and encode everything to 16-byte ADC codes. Resident bytes
  // are codes + the fixed codebook; disk is the zlib'd pair as written by
  // the v3 shard blob.
  const std::size_t db_count = db_raw.size() / kDescriptorDims;
  PqCodebook pq_book = PqCodebook::train(db_raw.data(), db_count, {});
  Bytes pq_codes(db_count * kPqCodeBytes);
  for (std::size_t i = 0; i < db_count; ++i) {
    pq_book.encode(db_raw.data() + i * kDescriptorDims,
                   pq_codes.data() + i * kPqCodeBytes);
  }
  const std::size_t pq_ram = pq_codes.size() + kPqCodebookBytes;
  const std::size_t pq_disk =
      zlib_compress(pq_codes, 9).size() + zlib_compress(pq_book.raw(), 9).size();
  table.row({"PQ codes (server shard)",
             Table::bytes_human(static_cast<double>(pq_disk)),
             Table::bytes_human(static_cast<double>(pq_ram))});

  // Tiered residency (DESIGN.md §14): the same database split across
  // place shards, served lazily under a 25% resident-byte budget. Disk is
  // the v4 file (cold shards stay there, mmap'd); RAM is what the LRU
  // keeps resident after touching every place round-robin.
  const std::string tiered_path =
      (std::filesystem::temp_directory_path() / "vp_fig15_tiered.db")
          .string();
  std::size_t tiered_disk = 0, tiered_ram = 0, tiered_full_ram = 0;
  {
    constexpr int kTieredPlaces = 4;
    ServerConfig server_cfg;
    server_cfg.oracle.capacity =
        std::max<std::size_t>(50'000, ds.total_db_descriptors);
    server_cfg.place_label = "floor-0";
    VisualPrintServer builder(server_cfg);
    std::vector<std::vector<KeypointMapping>> per_place(kTieredPlaces);
    Rng rng(2016);
    for (std::size_t i = 0; i < ds.database.size(); ++i) {
      auto& out = per_place[i % kTieredPlaces];
      for (const auto& f : ds.database[i].features) {
        out.push_back({f,
                       {rng.uniform(0, 20), rng.uniform(0, 20),
                        rng.uniform(0, 3)},
                       static_cast<std::uint32_t>(i)});
      }
    }
    for (int p = 0; p < kTieredPlaces; ++p) {
      builder.ingest_wardrive("floor-" + std::to_string(p), per_place[p],
                              &server_cfg);
    }
    builder.save(tiered_path);
    tiered_disk = std::filesystem::file_size(tiered_path);

    DbLoadOptions lazy;
    lazy.lazy = true;
    VisualPrintServer full = VisualPrintServer::load(tiered_path, lazy);
    for (int p = 0; p < kTieredPlaces; ++p) {
      full.store().fault_in("floor-" + std::to_string(p));
    }
    tiered_full_ram = full.store().residency().stats().resident_bytes;

    DbLoadOptions capped = lazy;
    capped.resident_budget = tiered_full_ram / 4;
    VisualPrintServer tiered = VisualPrintServer::load(tiered_path, capped);
    for (int p = 0; p < kTieredPlaces; ++p) {
      tiered.store().fault_in("floor-" + std::to_string(p));
    }
    tiered_ram = tiered.store().residency().stats().resident_bytes;
  }
  table.row({"Tiered shards (25% budget)",
             Table::bytes_human(static_cast<double>(tiered_disk)),
             Table::bytes_human(static_cast<double>(tiered_ram))});
  table.print();

  std::printf(
      "\nper-descriptor costs: oracle %.1f B/desc RAM, LSH %.1f B/desc RAM,"
      " brute %.1f B/desc RAM\n",
      static_cast<double>(oracle.byte_size()) /
          static_cast<double>(ds.total_db_descriptors),
      static_cast<double>(lsh_ram) /
          static_cast<double>(ds.total_db_descriptors),
      static_cast<double>(raw_db_bytes) /
          static_cast<double>(ds.total_db_descriptors));
  std::printf(
      "paper shape: oracle disk << LSH disk (paper 124x), oracle RAM << "
      "LSH RAM (paper 58x)\n"
      "measured: disk %.0fx, RAM %.1fx\n",
      static_cast<double>(lsh_disk) / static_cast<double>(oracle_disk.size()),
      static_cast<double>(lsh_ram) / static_cast<double>(oracle.byte_size()));
  std::printf(
      "{\"bench\":\"fig15\",\"section\":\"pq_footprint\",\"descriptors\":%zu,"
      "\"raw_bytes\":%zu,\"pq_ram_bytes\":%zu,\"pq_disk_bytes\":%zu,"
      "\"code_ratio\":%.3f}\n",
      db_count, raw_db_bytes, pq_ram, pq_disk,
      pq_codes.empty() ? 0.0
                       : static_cast<double>(raw_db_bytes) /
                             static_cast<double>(pq_codes.size()));
  std::printf(
      "{\"bench\":\"fig15\",\"section\":\"tiered_residency\","
      "\"disk_bytes\":%zu,\"full_ram_bytes\":%zu,\"capped_ram_bytes\":%zu,"
      "\"budget_frac\":0.25}\n",
      tiered_disk, tiered_full_ram, tiered_ram);
  std::filesystem::remove(tiered_path);
  return 0;
}
