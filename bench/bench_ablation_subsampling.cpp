// Ablation: why not just subsample frames? (Paper §1: "subsampling can
// delay upload of a crisp frame for arbitrarily long time and result in
// perceivable latency on the screen.")
//
// A handheld camera pans with bursts of fast motion; frames during a burst
// are motion-blurred and useless for matching. Full-rate processing with a
// blur gate ships the first crisp frame immediately; 1-in-N subsampling
// only sees every Nth frame and, when its sample lands in a burst, waits
// entire subsampling periods for the next chance. We simulate the pan
// model used by the Session harness and measure the delay from each "user
// wants an update" instant to the first usable frame shipped.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace vp;

/// Blur magnitude (pixels) at time t for a pan-burst motion profile:
/// calm stretches punctuated by fast sweeps.
double blur_px(double t, Rng& burst_rng, std::vector<std::pair<double, double>>& bursts) {
  (void)burst_rng;
  double blur = 0.6;  // hand tremor floor
  for (const auto& [start, len] : bursts) {
    if (t >= start && t < start + len) {
      const double phase = (t - start) / len * std::numbers::pi;
      blur += 14.0 * std::sin(phase);  // sweep accelerates then settles
    }
  }
  return blur;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Ablation",
                      "frame subsampling vs full-rate with blur gate");

  const double fps = 10.0;
  const double duration = 600.0 * scale;
  const double crisp_threshold = 3.0;  // px of blur beyond which SIFT dies

  // Generate motion bursts: Poisson-ish arrivals, 0.5-2.5 s sweeps.
  Rng rng(77);
  std::vector<std::pair<double, double>> bursts;
  double t = 0;
  while (t < duration) {
    t += rng.uniform(0.5, 4.0);
    const double len = rng.uniform(0.5, 2.5);
    bursts.emplace_back(t, len);
    t += len;
  }

  // Precompute per-frame crispness.
  const int total_frames = static_cast<int>(duration * fps);
  std::vector<bool> crisp(static_cast<std::size_t>(total_frames));
  for (int f = 0; f < total_frames; ++f) {
    crisp[static_cast<std::size_t>(f)] =
        blur_px(f / fps, rng, bursts) < crisp_threshold;
  }
  std::size_t crisp_count = 0;
  for (bool c : crisp) crisp_count += c;
  std::printf("%d frames over %.0f s, %.0f%% crisp\n\n", total_frames,
              duration, 100.0 * static_cast<double>(crisp_count) / total_frames);

  // "User wants an update" instants: uniformly through the session.
  std::vector<double> intents;
  for (double ti = 0.5; ti < duration - 5.0; ti += 1.7) intents.push_back(ti);

  Table table("Delay to first usable frame (seconds)");
  table.header({"policy", "median", "p90", "p99", "max", "frames processed"});

  auto evaluate = [&](const std::string& name, int every_nth,
                      bool blur_gate) {
    std::vector<double> delays;
    for (double intent : intents) {
      const int first = static_cast<int>(std::ceil(intent * fps));
      double delay = duration - intent;  // pessimistic default
      for (int f = first; f < total_frames; ++f) {
        if (f % every_nth != 0) continue;      // subsampling drop
        if (blur_gate && !crisp[static_cast<std::size_t>(f)]) continue;
        if (!blur_gate && !crisp[static_cast<std::size_t>(f)]) {
          continue;  // shipped but unusable: no match on the server
        }
        delay = f / fps - intent;
        break;
      }
      delays.push_back(delay);
    }
    table.row({name, Table::num(percentile(delays, 50), 2),
               Table::num(percentile(delays, 90), 2),
               Table::num(percentile(delays, 99), 2),
               Table::num(percentile(delays, 100), 2),
               std::to_string(total_frames / every_nth)});
  };

  evaluate("full rate + blur gate (VisualPrint)", 1, true);
  evaluate("subsample 1-in-5", 5, false);
  evaluate("subsample 1-in-10", 10, false);
  evaluate("subsample 1-in-20", 20, false);
  table.print();

  std::printf(
      "\npaper shape: subsampling stretches the tail (p90/p99/max) far\n"
      "beyond full-rate processing, because a dropped sample inside a\n"
      "motion burst costs whole subsampling periods.\n");
  return 0;
}
