// Figure 16: CDF of client compute latency on 920x540 frames — SIFT
// extraction versus VisualPrint's oracle lookups + ranking. Paper shape:
// SIFT dominates (3300 ms median on a Galaxy S6) while VisualPrint's own
// overhead is an order of magnitude smaller (217 ms median). We measure
// host wall-clock and also report it scaled by the documented
// phone-slowdown factor.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 16",
                      "client compute latency: SIFT vs VisualPrint lookup");

  const int n_frames = static_cast<int>(20 * scale);
  const auto frames = render_walk_frames(n_frames, 920, 540, 16);

  // An oracle with realistic content so lookups touch populated filters.
  OracleConfig oracle_cfg;
  oracle_cfg.capacity = 500'000;
  UniquenessOracle oracle(oracle_cfg);
  {
    Rng rng(5);
    for (const auto& frame : frames) {
      for (const auto& f : sift_detect(to_gray(frame))) {
        oracle.insert(f.descriptor);
      }
      if (oracle.insertions() > 30'000) break;
      (void)rng;
    }
  }

  ClientConfig client_cfg;
  client_cfg.top_k = 200;
  client_cfg.blur_threshold = 0.5;
  VisualPrintClient client(client_cfg);
  client.install_oracle(UniquenessOracle::deserialize(oracle.serialize()));

  const double phone_slowdown = 15.0;  // documented host->S6 scaling
  // Drop the spans the oracle-population loop above recorded, so the
  // registry reflects only the measured frames below.
  obs::Registry::global().reset_values();
  std::vector<double> sift_ms, scoring_ms, keypoints;
  for (const auto& frame : frames) {
    const auto result = client.process_frame(to_gray(frame), 0.0, 0.0);
    if (result.status != FrameResult::Status::kQueued) continue;
    sift_ms.push_back(result.sift_ms * phone_slowdown);
    scoring_ms.push_back(result.scoring_ms * phone_slowdown);
    keypoints.push_back(static_cast<double>(result.total_keypoints));
  }

  const EmpiricalCdf sift_cdf(sift_ms), score_cdf(scoring_ms);
  print_series("SIFT (920x540, phone-scaled)", sift_cdf.sample_points(11),
               "latency (ms)", "CDF");
  print_series("VisualPrint matching (phone-scaled)",
               score_cdf.sample_points(11), "latency (ms)", "CDF");

  Table summary("Fig. 16 summary (phone-scaled ms)");
  summary.header({"stage", "median", "p90", "host median (ms)"});
  summary.row({"SIFT extraction", Table::num(percentile(sift_ms, 50), 0),
               Table::num(percentile(sift_ms, 90), 0),
               Table::num(percentile(sift_ms, 50) / phone_slowdown, 1)});
  summary.row({"oracle lookups + rank",
               Table::num(percentile(scoring_ms, 50), 0),
               Table::num(percentile(scoring_ms, 90), 0),
               Table::num(percentile(scoring_ms, 50) / phone_slowdown, 1)});
  summary.print();

  std::printf(
      "\nmean keypoints/frame: %.0f\n"
      "paper: SIFT 3300 ms median, Bloom lookups 217 ms median (15x). "
      "measured ratio: %.1fx\n",
      mean(keypoints),
      percentile(sift_ms, 50) / std::max(1e-9, percentile(scoring_ms, 50)));

  // Cross-check: the same percentiles out of the tracer's stage histograms
  // (host ms, bucket-resolution estimates) should agree with the direct
  // Timer measurements above. Skipped under VP_OBS=OFF (no spans fire).
  auto& reg = obs::Registry::global();
  if (reg.histogram("stage.sift").total_count() > 0) {
    Table xcheck("Instrumentation cross-check (host ms, histogram estimate)");
    xcheck.header({"stage", "p50", "p90", "samples"});
    for (const char* stage : {"stage.sift", "stage.select"}) {
      auto& h = reg.histogram(stage);
      xcheck.row({stage, Table::num(h.percentile(50), 1),
                  Table::num(h.percentile(90), 1),
                  std::to_string(h.total_count())});
    }
    xcheck.print();
  }
  emit_metrics_jsonl("fig16_client_latency");
  return 0;
}
