// Compact uplink: what does PQ-coding the query fingerprint buy on the
// wire, and what does it cost at the server?
//
// Three serving modes over the same synthetic place and query stream:
//
//   raw        v2/v3 frames: 144 bytes per feature (keypoint + descriptor)
//   compact    v4 frames: 20 bytes per feature (quarter-pixel coords +
//              16-byte PQ code); the server reconstructs from centroids
//              and runs the ordinary exact pipeline
//   compact+symmetric  same wire bytes; the coarse ADC stage gathers the
//              query table from the precomputed centroid-distance matrix
//              (bit-identical answers, one table build cheaper per
//              descriptor)
//
// Per mode: bytes per query frame (measured wire size), end-to-end
// latency through VisualPrintServer::handle_request (client encode
// included — queries go through a RemoteLocalizer on an in-process
// transport), and index-level recall@1 of the compact pipeline against
// the raw one. One JSON line per mode for the CI artifact.
//
// The bench FAILS (nonzero exit) when the acceptance floor is missed:
// compact fingerprint payload must be >= 6x smaller than raw, at
// recall@1 >= 0.95 vs raw. The paper ships ~30-50 KB per frame
// (Fig. 2/5: "a short description (~30KB) of the scene"); the compact
// frame carries the same 200 keypoints in ~4 KB.
//
// Usage: bench_uplink [--scale=<f>] [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/remote.hpp"
#include "core/server.hpp"
#include "features/pq.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;

/// Per-subspace prototype alphabets, the structure PQ exploits in real
/// descriptors. SIFT gradient histograms concentrate on a low-dimensional
/// manifold — k-means codebooks cover it tightly, which is why 16x256
/// centroids suffice for 128 dims at all. Uniform random bytes have no
/// such structure and put quantization error on the same order as
/// inter-point margins; that regime measures the corpus, not the codec
/// (see the matching note in tests/test_index.cpp). Here each stored
/// descriptor picks one of 64 prototypes per subspace plus small jitter:
/// distinct keypoints stay far apart, codes stay tight.
struct DescriptorModel {
  std::vector<std::array<std::uint8_t, kPqSubDims>> prototypes;

  explicit DescriptorModel(Rng& rng) {
    prototypes.resize(64 * kPqSubspaces);
    for (auto& p : prototypes) {
      for (auto& v : p) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
    }
  }

  Descriptor sample(Rng& rng) const {
    Descriptor d;
    for (std::size_t s = 0; s < kPqSubspaces; ++s) {
      const auto& p = prototypes[s * 64 + rng.uniform_u64(64)];
      for (std::size_t j = 0; j < kPqSubDims; ++j) {
        const int v = static_cast<int>(p[j]) +
                      static_cast<int>(rng.uniform_int(-4, 4));
        d[s * kPqSubDims + j] = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
      }
    }
    return d;
  }
};

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

/// Wardrive mappings with spatially clustered positions (candidates
/// survive the largest-cluster filter) and distinct descriptors (the
/// regime real SIFT keypoints of distinct structure live in).
std::vector<KeypointMapping> make_mappings(Rng& rng, const DescriptorModel& model,
                                           std::size_t n) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {static_cast<float>(rng.uniform(40, 680)),
                  static_cast<float>(rng.uniform(40, 500)),
                  2.0f,
                  0.0f,
                  1.0f,
                  0};
    f.descriptor = model.sample(rng);
    ms.push_back({f,
                  {rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(0, 2)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

struct ModeResult {
  std::string name;
  std::size_t bytes_per_query = 0;
  double e2e_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  print_figure_header("uplink",
                      "compact (PQ-coded) query fingerprints vs raw upload");

  const auto db_n = static_cast<std::size_t>(
      std::lround((smoke ? 4'000 : 20'000) * std::max(scale, 0.05)));
  const int n_queries = smoke ? 12 : 60;
  const std::size_t feats_per_query = 200;  // paper: 200 keypoints/frame

  Rng rng(0x0b11);
  ServerConfig cfg;
  cfg.index.pq.enabled = true;
  cfg.localize.search_lo = {-10, -10, 0};
  cfg.localize.search_hi = {10, 10, 3};
  // Generation-bounded DE (stable timing run to run), but kept short: the
  // solve stage is identical across modes — the bench contrasts wire bytes
  // and the decode/retrieve stages, not solver throughput.
  cfg.localize.de.time_budget_sec = 1e9;
  cfg.localize.de.max_generations = 40;
  VisualPrintServer server(cfg);
  const DescriptorModel model(rng);
  const auto mappings = make_mappings(rng, model, db_n);
  server.ingest_wardrive("hall", mappings);
  const auto shard = server.store().snapshot("hall");
  if (shard == nullptr || !shard->index.pq_ready()) {
    std::fprintf(stderr, "FAIL: PQ shard did not come up\n");
    return 1;
  }
  const PqCodebook& book = shard->index.pq_codebook();

  // Query stream: re-observations of stored keypoints (tightly perturbed
  // descriptors at the stored pixel), the way a localization frame re-sees
  // wardriven structure.
  std::vector<FingerprintQuery> queries;
  for (int qi = 0; qi < n_queries; ++qi) {
    FingerprintQuery q;
    q.frame_id = static_cast<std::uint32_t>(qi + 1);
    q.image_width = 720;
    q.image_height = 540;
    q.fov_h = 1.15f;
    q.place = "hall";
    for (std::size_t f = 0; f < feats_per_query; ++f) {
      const auto& m =
          mappings[(static_cast<std::size_t>(qi) * 131 + f * 37) % db_n];
      Feature feat = m.feature;
      feat.descriptor = perturb(m.feature.descriptor, rng, 2);
      q.features.push_back(feat);
    }
    queries.push_back(std::move(q));
  }

  // --- recall@1: compact (encode -> reconstruct -> rank) vs raw ---------
  const int recall_samples =
      std::min<int>(n_queries * 8, 400);  // features, spread across queries
  int total = 0, hit = 0;
  for (int s = 0; s < recall_samples; ++s) {
    const auto& q = queries[static_cast<std::size_t>(s) % queries.size()];
    const Descriptor& d =
        q.features[(static_cast<std::size_t>(s) * 13) % q.features.size()]
            .descriptor;
    const auto raw = shard->index.query(d, 1);
    if (raw.empty()) continue;
    std::array<std::uint8_t, kPqCodeBytes> code{};
    book.encode(d.data(), code.data());
    Descriptor rebuilt{};
    book.reconstruct(code.data(), rebuilt.data());
    const auto compact = shard->index.query(rebuilt, 1);
    ++total;
    hit += (!compact.empty() && compact[0].id == raw[0].id);
  }
  const double recall =
      total > 0 ? static_cast<double>(hit) / static_cast<double>(total) : 0.0;

  // --- the three serving modes ------------------------------------------
  const std::size_t raw_feature_payload = feats_per_query * kFeatureWireBytes;
  const std::size_t compact_feature_payload =
      feats_per_query * kCompactFeatureWireBytes;
  std::vector<ModeResult> results;
  Timer t;
  for (const std::string mode : {"raw", "compact", "compact+symmetric"}) {
    server.store().set_compact_symmetric(mode == "compact+symmetric");
    RemoteLocalizer localizer([&server](std::span<const std::uint8_t> req) {
      return server.handle_request(req, /*solver_seed=*/7);
    });
    if (mode != "raw") localizer.enable_compact_uplink();
    const OracleDownload download = localizer.fetch_oracle("hall");

    // Measured wire size of the first frame (all frames are same-shaped).
    FingerprintQuery probe = queries.front();
    probe.oracle_epoch = download.epoch;
    if (mode != "raw") {
      probe.codebook_epoch = download.epoch;
      probe.codes.resize(probe.features.size() * kPqCodeBytes);
      for (std::size_t f = 0; f < probe.features.size(); ++f) {
        book.encode(probe.features[f].descriptor.data(),
                    probe.codes.data() + f * kPqCodeBytes);
      }
    }
    const std::size_t frame_bytes = probe.wire_size();

    // Warm once (page the shard / build the symmetric matrix), then time
    // the full round trip: client encode, server decode + localize.
    {
      FingerprintQuery warm = queries.front();
      warm.oracle_epoch = download.epoch;
      (void)localizer.localize(warm);
    }
    t.lap();
    for (const auto& q : queries) {
      FingerprintQuery send = q;
      send.oracle_epoch = download.epoch;
      (void)localizer.localize(send);
    }
    const double ms = t.lap() * 1e3 / n_queries;
    const bool went_compact = localizer.compact_queries() > 0;
    if ((mode != "raw") != went_compact) {
      std::fprintf(stderr, "FAIL: mode %s sent %llu compact queries\n",
                   mode.c_str(),
                   static_cast<unsigned long long>(localizer.compact_queries()));
      return 1;
    }
    results.push_back({mode, frame_bytes, ms});
    std::printf("%-18s %7zu bytes/query  %8.2f ms/query e2e\n", mode.c_str(),
                frame_bytes, ms);
    std::printf(
        "{\"bench\":\"uplink\",\"mode\":\"%s\",\"db\":%zu,\"queries\":%d,"
        "\"features_per_query\":%zu,\"bytes_per_query\":%zu,"
        "\"feature_payload_bytes\":%zu,\"e2e_ms\":%.3f}\n",
        mode.c_str(), db_n, n_queries, feats_per_query, frame_bytes,
        mode == "raw" ? raw_feature_payload : compact_feature_payload, ms);
  }

  const double frame_ratio = static_cast<double>(results[0].bytes_per_query) /
                             static_cast<double>(results[1].bytes_per_query);
  const double payload_ratio = static_cast<double>(raw_feature_payload) /
                               static_cast<double>(compact_feature_payload);
  std::printf(
      "\nuplink: raw %zu B -> compact %zu B per frame (%.2fx frame, "
      "%.2fx feature payload); recall@1 compact vs raw %.4f (%d samples)\n",
      results[0].bytes_per_query, results[1].bytes_per_query, frame_ratio,
      payload_ratio, recall, total);
  std::printf("paper: ~30-50 KB/frame raw fingerprints (Fig. 2); here raw "
              "%.1f KB -> compact %.1f KB\n",
              results[0].bytes_per_query / 1024.0,
              results[1].bytes_per_query / 1024.0);
  std::printf(
      "{\"bench\":\"uplink\",\"mode\":\"summary\",\"raw_bytes\":%zu,"
      "\"compact_bytes\":%zu,\"frame_ratio\":%.3f,\"payload_ratio\":%.3f,"
      "\"recall_at_1\":%.4f,\"recall_samples\":%d,\"raw_ms\":%.3f,"
      "\"compact_ms\":%.3f,\"symmetric_ms\":%.3f}\n",
      results[0].bytes_per_query, results[1].bytes_per_query, frame_ratio,
      payload_ratio, recall, total, results[0].e2e_ms, results[1].e2e_ms,
      results[2].e2e_ms);
  emit_metrics_jsonl("uplink", /*include_zeros=*/true);

  // Acceptance floors: the whole point of the compact path.
  bool ok = true;
  if (payload_ratio < 6.0) {
    std::fprintf(stderr, "FAIL: feature payload only %.2fx smaller (< 6x)\n",
                 payload_ratio);
    ok = false;
  }
  if (frame_ratio < 6.0) {
    std::fprintf(stderr, "FAIL: frame only %.2fx smaller (< 6x)\n",
                 frame_ratio);
    ok = false;
  }
  if (recall < 0.95) {
    std::fprintf(stderr, "FAIL: recall@1 %.4f below the 0.95 guard\n", recall);
    ok = false;
  }
  if (total < recall_samples / 2) {
    std::fprintf(stderr, "FAIL: only %d recall samples ranked\n", total);
    ok = false;
  }
  return ok ? 0 : 1;
}
