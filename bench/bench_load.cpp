// Population-scale load harness: does admission control actually hold the
// paper's sub-second fix contract once thousands of phones pile on?
//
// Builds a multi-place VisualPrintServer, serves it over real TCP on a
// worker pool, and drives closed-loop client fleets (src/net/loadgen) at
// stepped offered loads — once with the query admission gate engaged
// (--cap inflight queries, excess shed with structured kOverloaded) and
// once uncapped. Per row it reports served-request SLO percentiles,
// goodput, the shed/retry ledgers, and per-stage attribution from the obs
// stage histograms as JSON lines. The row pair the artifact exists for:
// past saturation the admission-controlled server holds served p99 near
// its unloaded p99 while shedding the excess; the uncapped server's p99
// grows with every client added, because every query queues instead.
//
// The query workload reuses stored descriptors per place with the cluster
// acceptance threshold set beyond any candidate count, so every query runs
// the full decode + LSH retrieval + clustering path and returns a
// structured miss before the solver — per-query service cost is stable,
// which is what an SLO bench needs (solver benches live elsewhere).
//
// --smoke additionally emits the deterministic harness ledger (seeded
// request schedule, saturated-gate admission accounting, retry/backoff
// contract): two runs with the same --seed print byte-identical "ledger"
// JSON lines, so CI diffs them to prove harness regressions are
// attributable (tests/test_load.cpp pins the same invariant in-process).
//
// Usage: bench_load [--scale=<f>] [--smoke] [--seed=<n>] [--fault-rate=<f>]
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/server.hpp"
#include "net/fault.hpp"
#include "net/loadgen.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace vp;

std::vector<KeypointMapping> synthetic_mappings(Rng& rng, std::size_t n,
                                                double base_x) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {10.0f, 10.0f, 2.0f, 0.0f, 1.0f, 0};
    for (auto& v : f.descriptor) {
      v = static_cast<std::uint8_t>(rng.uniform_u64(80));
    }
    ms.push_back({f,
                  {base_x + rng.uniform(0, 20), rng.uniform(0, 20),
                   rng.uniform(0, 3)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

/// p50 of one stage histogram from the current registry snapshot.
double stage_p50_ms(const obs::MetricsSnapshot& snap, const char* name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) {
      return obs::estimate_percentile(h.upper_bounds, h.counts, 50.0);
    }
  }
  return 0.0;
}

struct Row {
  std::string mode;
  std::size_t clients = 0;
  double fault_rate = 0;
  load::LoadReport report;
  std::uint64_t gate_admitted = 0, gate_shed = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double stage_decode = 0, stage_retrieve = 0, stage_cluster = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  bool smoke = false;
  std::uint64_t seed = 2026;
  double fault_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    }
    if (std::strncmp(argv[i], "--fault-rate=", 13) == 0) {
      fault_rate = std::atof(argv[i] + 13);
    }
  }
  print_figure_header("load harness",
                      "SLO percentiles vs offered load, admission on/off");

  // --- Server: 2 places of synthetic keypoints, full retrieval+cluster
  // query cost, structured miss before the solver (see header comment).
  constexpr int kPlaces = 2;
  const auto kp_per_place = static_cast<std::size_t>(
      std::lround((smoke ? 1200 : 2500) * std::max(scale, 0.1)));
  constexpr std::size_t kFeaturesPerQuery = 100;
  ServerConfig cfg;
  cfg.oracle.capacity = std::max<std::size_t>(50'000, 2 * kp_per_place);
  cfg.clustering.min_points = 1'000'000;  // structured miss after clustering
  VisualPrintServer server(cfg);
  Rng rng(seed);
  std::vector<std::vector<KeypointMapping>> place_mappings;
  for (int p = 0; p < kPlaces; ++p) {
    auto mappings = synthetic_mappings(rng, kp_per_place, 100.0 * p);
    server.ingest_wardrive("place-" + std::to_string(p), mappings, &cfg);
    place_mappings.push_back(std::move(mappings));
  }

  // --- Payloads: per place, framed 'Q' queries reusing that place's own
  // stored descriptors, so every shard does real candidate work.
  std::vector<Bytes> payloads;
  for (int p = 0; p < kPlaces; ++p) {
    for (int q = 0; q < 4; ++q) {
      FingerprintQuery query;
      query.frame_id = static_cast<std::uint32_t>(p * 100 + q);
      query.place = "place-" + std::to_string(p);
      const auto& source = place_mappings[p];
      for (std::size_t i = 0; i < kFeaturesPerQuery; ++i) {
        query.features.push_back(
            source[(static_cast<std::size_t>(q) * kFeaturesPerQuery + i * 7) %
                   source.size()]
                .feature);
      }
      ByteWriter w;
      w.u8(kQueryRequest);
      w.raw(query.encode());
      payloads.push_back(w.take());
    }
  }

  // --- Serve on a deliberately *over-provisioned* pool: the worker count
  // no longer governs concurrency, the admission gate does — that is the
  // experiment. max_connections exceeds any fleet size below.
  TcpListener listener(0);
  ThreadPool pool(16);
  ServeOptions options;
  options.pool = &pool;
  options.max_connections = 64;
  options.io_timeout_ms = 20'000;
  options.poll_interval_ms = 5;
  std::atomic<bool> run{true};
  std::thread serve_thread([&] {
    listener.serve(
        [&](std::span<const std::uint8_t> request) {
          return server.handle_request(request, /*solver_seed=*/7);
        },
        [&] { return run.load(); }, options);
  });

  // Admitted inflight queries when gated. The cap tracks compute capacity:
  // on a single-core box two concurrent queries each run at half speed, so
  // admitting a second one doubles p99 without adding goodput — exactly
  // the queueing the gate exists to refuse.
  const std::size_t cap =
      std::max<std::size_t>(1, std::thread::hardware_concurrency() / 2);
  std::vector<std::size_t> fleet_sizes = smoke
                                             ? std::vector<std::size_t>{1, 4, 16}
                                             : std::vector<std::size_t>{1, 2, 4,
                                                                        8, 16,
                                                                        32};
  const int requests_per_client =
      std::max(10, static_cast<int>((smoke ? 30 : 60) * scale));

  const auto run_phase = [&](const std::string& mode, std::size_t clients,
                             double rate) {
    Row row;
    row.mode = mode;
    row.clients = clients;
    row.fault_rate = rate;
    server.set_max_inflight(mode == "admission" ? cap : 0);
    obs::Registry::global().reset_values();
    const std::uint64_t admitted0 = server.admission().admitted();
    const std::uint64_t shed0 = server.admission().shed();

    load::Workload w;
    w.host = "127.0.0.1";
    w.payloads = payloads;
    w.clients = clients;
    w.seed = seed ^ (clients << 8) ^ (mode == "admission" ? 1 : 0);
    w.client.requests = requests_per_client;
    // A shed client sits out ~several service times before re-offering —
    // real clients honor the shed as a backoff signal, and on small boxes
    // the pause also keeps shed churn from stealing CPU from admitted
    // queries (which would recreate the very queueing the gate prevents).
    w.client.shed_pause_ms = 15.0;
    w.client.policy.io_timeout_ms = 20'000;
    w.client.policy.connect_timeout_ms = 5000;
    if (rate > 0) {
      // Faulty rows measure the retry ledger, not clean SLO: transport
      // retries and overload retries are both on.
      w.client.policy.max_attempts = 10;
      w.client.policy.backoff_ms = 2.0;
      w.client.policy.max_backoff_ms = 20.0;
      w.client.policy.io_timeout_ms = 500;
      w.client.policy.retry_overloaded = true;
      FaultProxy proxy(listener.port(), FaultConfig::uniform(rate, seed));
      w.port = proxy.port();
      row.report = load::run_closed_loop(w);
      proxy.stop();
    } else {
      // Clean SLO rows: a shed is an outcome to count, not to hide.
      w.client.policy.retry_overloaded = false;
      w.port = listener.port();
      row.report = load::run_closed_loop(w);
    }

    row.gate_admitted = server.admission().admitted() - admitted0;
    row.gate_shed = server.admission().shed() - shed0;
    row.p50 = row.report.served_percentile_ms(50);
    row.p95 = row.report.served_percentile_ms(95);
    row.p99 = row.report.served_percentile_ms(99);
    const auto snap = obs::Registry::global().snapshot();
    row.stage_decode = stage_p50_ms(snap, "stage.decode");
    row.stage_retrieve = stage_p50_ms(snap, "stage.lsh.retrieve");
    row.stage_cluster = stage_p50_ms(snap, "stage.cluster");
    return row;
  };

  std::printf(
      "%2d places x %zu keypoints, %zu-feature queries, pool=16, cap=%zu\n\n",
      kPlaces, kp_per_place, kFeaturesPerQuery, cap);
  std::printf("%10s %8s %8s %9s %9s %9s %8s %8s %9s\n", "mode", "clients",
              "offered", "p50 ms", "p95 ms", "p99 ms", "shed", "retries",
              "good/s");

  bool invariants_ok = true;
  std::vector<Row> rows;
  double unloaded_p99 = 0;
  for (const std::string mode : {"admission", "none"}) {
    for (const std::size_t clients : fleet_sizes) {
      Row row = run_phase(mode, clients, 0.0);
      const auto& r = row.report;
      if (mode == "admission" && clients == 1) unloaded_p99 = row.p99;

      // Ledger identities every clean row must satisfy: each offered
      // request has exactly one outcome, and the server's gate accounted
      // for exactly the requests the clients saw answered or shed.
      if (r.offered() != r.served() + r.shed() + r.errors()) {
        std::printf("INVARIANT VIOLATION: offered %llu != %llu+%llu+%llu\n",
                    static_cast<unsigned long long>(r.offered()),
                    static_cast<unsigned long long>(r.served()),
                    static_cast<unsigned long long>(r.shed()),
                    static_cast<unsigned long long>(r.errors()));
        invariants_ok = false;
      }
      if (r.errors() == 0 &&
          (row.gate_admitted != r.served() || row.gate_shed != r.shed())) {
        std::printf(
            "INVARIANT VIOLATION: gate admitted/shed %llu/%llu vs client "
            "served/shed %llu/%llu\n",
            static_cast<unsigned long long>(row.gate_admitted),
            static_cast<unsigned long long>(row.gate_shed),
            static_cast<unsigned long long>(r.served()),
            static_cast<unsigned long long>(r.shed()));
        invariants_ok = false;
      }

      std::printf("%10s %8zu %8llu %9.2f %9.2f %9.2f %8llu %8llu %9.1f\n",
                  row.mode.c_str(), clients,
                  static_cast<unsigned long long>(r.offered()), row.p50,
                  row.p95, row.p99,
                  static_cast<unsigned long long>(r.shed()),
                  static_cast<unsigned long long>(r.retries()),
                  r.goodput_rps());
      rows.push_back(std::move(row));
    }
  }

  // One faulty row: the retry machinery and the admission gate working the
  // same fleet (loss/jitter from the seeded FaultProxy).
  const double faulty_rate = fault_rate > 0 ? fault_rate : 0.05;
  Row faulty = run_phase("admission", smoke ? 4 : 8, faulty_rate);
  std::printf("%10s %8zu %8llu %9.2f %9.2f %9.2f %8llu %8llu %9.1f  "
              "(fault rate %.0f%%)\n",
              "adm+fault", faulty.clients,
              static_cast<unsigned long long>(faulty.report.offered()),
              faulty.p50, faulty.p95, faulty.p99,
              static_cast<unsigned long long>(faulty.report.shed()),
              static_cast<unsigned long long>(faulty.report.retries()),
              faulty.report.goodput_rps(), faulty_rate * 100);
  rows.push_back(std::move(faulty));

  run.store(false);
  serve_thread.join();

  // --- JSON artifact rows.
  for (const Row& row : rows) {
    const auto& r = row.report;
    std::printf(
        "{\"bench\":\"load\",\"section\":\"sweep\",\"mode\":\"%s\","
        "\"clients\":%zu,\"cap\":%zu,\"fault_rate\":%.2f,"
        "\"offered\":%llu,\"served\":%llu,\"shed\":%llu,\"errors\":%llu,"
        "\"retries\":%llu,\"overloaded_replies\":%llu,"
        "\"gate_admitted\":%llu,\"gate_shed\":%llu,"
        "\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"p99_vs_unloaded\":%.2f,\"goodput_rps\":%.1f,\"wall_ms\":%.1f,"
        "\"stage_decode_p50_ms\":%.4f,\"stage_retrieve_p50_ms\":%.4f,"
        "\"stage_cluster_p50_ms\":%.4f}\n",
        row.mode.c_str(), row.clients,
        row.mode == "none" ? std::size_t{0} : cap, row.fault_rate,
        static_cast<unsigned long long>(r.offered()),
        static_cast<unsigned long long>(r.served()),
        static_cast<unsigned long long>(r.shed()),
        static_cast<unsigned long long>(r.errors()),
        static_cast<unsigned long long>(r.retries()),
        static_cast<unsigned long long>(r.overloaded_replies()),
        static_cast<unsigned long long>(row.gate_admitted),
        static_cast<unsigned long long>(row.gate_shed), row.p50, row.p95,
        row.p99, unloaded_p99 > 0 ? row.p99 / unloaded_p99 : 0.0,
        r.goodput_rps(), r.wall_ms, row.stage_decode, row.stage_retrieve,
        row.stage_cluster);
  }

  // --- The saturation verdict the artifact exists to show.
  const auto saturated = [&](const std::string& mode) -> const Row* {
    const Row* best = nullptr;
    for (const Row& row : rows) {
      if (row.mode == mode && row.fault_rate == 0 &&
          (best == nullptr || row.clients > best->clients)) {
        best = &row;
      }
    }
    return best;
  };
  const Row* adm = saturated("admission");
  const Row* none = saturated("none");
  if (adm != nullptr && none != nullptr && unloaded_p99 > 0) {
    std::printf(
        "\nsaturated (%zu clients): admission p99 %.2f ms (%.1fx unloaded, "
        "shed %llu), uncapped p99 %.2f ms (%.1fx unloaded, shed %llu)\n",
        adm->clients, adm->p99, adm->p99 / unloaded_p99,
        static_cast<unsigned long long>(adm->report.shed()), none->p99,
        none->p99 / unloaded_p99,
        static_cast<unsigned long long>(none->report.shed()));
  }

  // --- Deterministic harness ledger (diffed across CI runs).
  if (smoke) {
    const load::DeterministicLedger ledger = load::deterministic_smoke(seed);
    std::printf("%s\n", ledger.to_json().c_str());
  }

  emit_metrics_jsonl("load");
  if (!invariants_ok) {
    std::printf("\nFAILED: ledger invariants violated (see above)\n");
    return 1;
  }
  return 0;
}
