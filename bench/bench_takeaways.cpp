// "Evaluation Takeaways" (paper §4): one run that re-checks the paper's
// seven headline numbers in a single table — paper value vs measured value
// vs whether the *shape* (who wins, by roughly what factor) holds.
#include <cstdio>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "core/session.hpp"
#include "energy/power.hpp"
#include "imaging/codec.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Takeaways", "paper §4 headline numbers, re-measured");

  // --- Shared world + database ------------------------------------------
  Rng rng(4242);
  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24;
  const World world = build_gallery(gallery, rng);
  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 3.0;
  wardrive_cfg.views_per_stop = 2;
  auto snapshots = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snapshots, {});
  const auto mappings = extract_mappings(snapshots, merged.corrected_poses);

  ServerConfig server_cfg;
  // Size the oracle for the actual database (as a deployment would): the
  // Fig. 15-style footprint comparison is only meaningful when both
  // structures hold the same content.
  server_cfg.oracle.capacity =
      std::max<std::size_t>(20'000, mappings.size() * 2);
  world.bounds(server_cfg.localize.search_lo, server_cfg.localize.search_hi);
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(mappings);

  Table table("Paper takeaway vs this reproduction");
  table.header({"#", "claim (paper)", "measured here", "shape holds?"});

  // 2. Bandwidth: VisualPrint ~1/10th of whole frames (51.2 KB vs 523 KB).
  {
    auto run_mode = [&](OffloadMode mode) {
      SessionConfig cfg;
      cfg.duration_s = 25.0 * std::min(1.0, scale);
      cfg.camera_fps = 10.0;
      cfg.intrinsics = {480, 270, 1.15192};
      cfg.mode = mode;
      cfg.client.top_k = 200;
      cfg.client.blur_threshold = 2.0;
      cfg.localize_on_server = false;
      cfg.phone_slowdown = 8.0;
      Session session(world, server, cfg);
      const auto stats = session.run();
      std::size_t sent = 0;
      for (const auto& f : stats.frames) {
        sent += f.status == FrameResult::Status::kQueued;
      }
      return sent ? static_cast<double>(stats.total_upload_bytes) /
                        static_cast<double>(sent)
                  : 0.0;
    };
    const double vp = run_mode(OffloadMode::kVisualPrint);
    const double frame = run_mode(OffloadMode::kFramePng);
    char buf[128];
    std::snprintf(buf, sizeof buf, "%.1f KB vs %.1f KB (%.1fx)", vp / 1e3,
                  frame / 1e3, frame / std::max(1.0, vp));
    table.row({"2", "51.2 KB vs 523 KB per frame (10.2x)", buf,
               frame > 4 * vp ? "yes" : "NO"});
  }

  // 3+4. Oracle footprint vs server LSH index.
  {
    const Bytes blob = server.oracle().serialize();
    const Bytes compressed = zlib_compress(blob, 9);
    const double oracle_disk = static_cast<double>(compressed.size());
    const double oracle_ram = static_cast<double>(server.oracle().byte_size());
    const double lsh_ram =
        static_cast<double>(server.index().reference_e2lsh_byte_size());
    char buf[160];
    std::snprintf(buf, sizeof buf, "oracle %s disk / %s RAM; LSH %s RAM (%.0fx)",
                  Table::bytes_human(oracle_disk).c_str(),
                  Table::bytes_human(oracle_ram).c_str(),
                  Table::bytes_human(lsh_ram).c_str(), lsh_ram / oracle_ram);
    table.row({"3/4", "10.5 MB disk (1/124 LSH); 162 MB RAM (1/58 LSH)", buf,
               lsh_ram > 2 * oracle_ram ? "yes" : "NO"});
  }

  // 5. Compute latency: SIFT dominates Bloom lookups.
  {
    const auto frames = render_walk_frames(static_cast<int>(8 * scale) + 4,
                                           920, 540, 1605);
    ClientConfig client_cfg;
    client_cfg.top_k = 200;
    client_cfg.blur_threshold = 0.5;
    VisualPrintClient client(client_cfg);
    client.install_oracle(server.oracle_snapshot());
    std::vector<double> sift_ms, score_ms;
    for (const auto& f : frames) {
      const auto r = client.process_frame(to_gray(f), 0.0, 0.0);
      if (r.status != FrameResult::Status::kQueued) continue;
      sift_ms.push_back(r.sift_ms);
      score_ms.push_back(r.scoring_ms);
    }
    const double s50 = percentile(sift_ms, 50);
    const double b50 = percentile(score_ms, 50);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "host: SIFT %.0f ms vs lookups %.0f ms (%.0fx)", s50, b50,
                  s50 / std::max(1e-9, b50));
    table.row({"5", "SIFT 3300 ms >> Bloom 217 ms on S6 (15x)", buf,
               s50 > 3 * b50 ? "yes" : "NO"});
  }

  // 6. Energy: full pipeline ~6.5 W.
  {
    SessionConfig cfg;
    cfg.duration_s = 20.0 * std::min(1.0, scale);
    cfg.camera_fps = 10.0;
    cfg.intrinsics = {480, 270, 1.15192};
    cfg.client.top_k = 200;
    cfg.client.blur_threshold = 2.0;
    cfg.localize_on_server = false;
    cfg.phone_slowdown = 8.0;
    Session session(world, server, cfg);
    const auto stats = session.run();
    const PowerModel model;
    const double w = mean(model.timeline(stats.activity));
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f W", w);
    table.row({"6", "complete VisualPrint ~6.5 W", buf,
               (w > 4.0 && w < 8.0) ? "yes" : "NO"});
  }

  // 7. Localization: ~2.5 m median (checked thoroughly in Fig. 19 bench;
  // here a quick gallery-world spot check).
  {
    ClientConfig client_cfg;
    client_cfg.top_k = 200;
    client_cfg.blur_threshold = 2.0;
    VisualPrintClient client(client_cfg);
    client.install_oracle(server.oracle_snapshot());
    const auto quads = scene_quads(world);
    std::vector<double> errors;
    for (std::size_t s = 0; s < quads.size(); ++s) {
      Rng view_rng(600 + static_cast<std::uint64_t>(s));
      const Camera cam = view_of_quad(world, quads[s], wardrive_cfg.intrinsics,
                                      view_rng.uniform(-20, 20), 2.4, view_rng);
      auto photo = render(world, cam, {}, view_rng);
      const auto fr = client.process_frame(photo.image, 0.0, 0.0);
      if (fr.status != FrameResult::Status::kQueued) continue;
      Rng solver_rng(700 + static_cast<std::uint64_t>(s));
      const auto resp = server.localize_query(*fr.query, solver_rng);
      if (resp.found) {
        errors.push_back(resp.position.distance(cam.pose.translation));
      }
    }
    char buf[64];
    if (errors.empty()) {
      std::snprintf(buf, sizeof buf, "no queries localized");
      table.row({"7", "median 3D error ~2.5 m", buf, "NO"});
    } else {
      const double med = percentile(errors, 50);
      std::snprintf(buf, sizeof buf, "%.2f m median (%zu queries)", med,
                    errors.size());
      table.row({"7", "median 3D error ~2.5 m", buf,
                 med < 6.0 ? "yes" : "NO"});
    }
  }

  table.print();
  std::printf(
      "\n(takeaway #1, precision/recall parity, is checked by the Fig. 13\n"
      "bench, which takes the longest and runs standalone.)\n");
  return 0;
}
