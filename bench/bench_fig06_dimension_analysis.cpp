// Figure 6: (a) per-rank boxplots of sorted squared per-dimension
// differences between each descriptor and its database nearest neighbor —
// a few dimensions carry most of the Euclidean distance; (b) normalized
// eigenvalues of the descriptor covariance (PCA) — few components explain
// most variance. Together these justify projecting descriptors into a
// low-dimensional LSH space.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "features/pca.hpp"
#include "index/brute_force.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 6",
                      "descriptor dimension analysis (NN diffs + PCA)");

  DatasetConfig cfg;
  cfg.num_scenes = static_cast<int>(16 * scale);
  cfg.num_distractors = static_cast<int>(24 * scale);
  cfg.queries_per_scene = 1;
  cfg.image_width = 320;
  cfg.image_height = 240;
  const auto ds = build_retrieval_dataset(cfg);

  std::vector<Descriptor> database;
  for (const auto& img : ds.database) {
    for (const auto& f : img.features) database.push_back(f.descriptor);
  }
  std::printf("database: %zu descriptors from %zu images\n\n",
              database.size(), ds.database.size());

  // (a) Match each query descriptor to its database nearest neighbor.
  ThreadPool pool;
  const BruteForceMatcher brute(database, &pool);
  std::vector<std::pair<Descriptor, Descriptor>> pairs;
  std::vector<Descriptor> query_descs;
  for (const auto& img : ds.queries) {
    for (const auto& f : img.features) query_descs.push_back(f.descriptor);
  }
  // Cap the match workload to keep the single-core default under a minute.
  const std::size_t cap = static_cast<std::size_t>(1500 * scale);
  if (query_descs.size() > cap) query_descs.resize(cap);
  const auto matches = brute.nearest_batch(query_descs);
  pairs.reserve(query_descs.size());
  for (std::size_t i = 0; i < query_descs.size(); ++i) {
    pairs.emplace_back(query_descs[i], database[matches[i].id]);
  }
  const auto profile = dimension_difference_profile(pairs);

  Table a("Fig. 6(a): sorted squared per-dimension NN differences");
  a.header({"rank", "q1", "median", "q3", "max"});
  for (const std::size_t rank : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u, 127u}) {
    const Summary& s = profile[rank];
    a.row({std::to_string(rank + 1), Table::num(s.q1, 0),
           Table::num(s.median, 0), Table::num(s.q3, 0),
           Table::num(s.max, 0)});
  }
  a.print();

  // How concentrated is the distance? Fraction carried by top-k ranks.
  double total = 0, top8 = 0, top16 = 0;
  for (std::size_t r = 0; r < profile.size(); ++r) {
    total += profile[r].mean;
    if (r < 8) top8 += profile[r].mean;
    if (r < 16) top16 += profile[r].mean;
  }
  std::printf(
      "\ndistance concentration: top-8 dims carry %.0f%%, top-16 carry "
      "%.0f%% of squared NN distance\n\n",
      100 * top8 / total, 100 * top16 / total);

  // (b) PCA of the database descriptors.
  const auto eigen = pca_normalized_eigenvalues(database);
  Table b("Fig. 6(b): normalized covariance eigenvalues");
  b.header({"component", "normalized eigenvalue", "variance captured"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    b.row({std::to_string(k), Table::num(eigen[k - 1], 4),
           Table::num(pca_variance_captured(eigen, k), 3)});
  }
  b.print();
  std::printf(
      "\npaper shape: 'only a few PCA dimensions (far less than 128) are\n"
      "enough to account for the majority of covariance' -> %.0f%% at 16 "
      "components\n",
      100 * pca_variance_captured(eigen, 16));
  return 0;
}
