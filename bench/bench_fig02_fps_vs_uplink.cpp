// Figure 2: uplink bandwidth (Mbps) versus sustainable camera FPS, by
// encoding (H264 / lossy JPEG / lossless PNG / RAW). Paper shape: at 10
// FPS even H264 needs ~2 Mbps; PNG and RAW are 1-2 orders costlier —
// making continuous frame offload infeasible on real uplinks.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "imaging/codec.hpp"
#include "imaging/video_model.hpp"
#include "net/link.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 2",
                      "uplink bandwidth vs sustainable FPS by encoding");

  const int width = scale >= 2 ? 1920 : 1280;
  const int height = scale >= 2 ? 1080 : 720;
  const int n_frames = static_cast<int>(16 * scale);
  std::printf("frames: %d x (%dx%d) rendered along a walking path\n\n",
              n_frames, width, height);
  const auto frames = render_walk_frames(n_frames, width, height, 42);

  // Per-encoding mean frame size, measured with real codecs. The paper's
  // JPEG point is "lossy compress" at a quality matched to H264-like
  // ratios; we use quality 60 (H264 intra model) and PNG default.
  RunningStats raw, png, jpeg, h264;
  H264SizeModel video({.gop_length = 30, .intra_jpeg_quality = 60});
  for (const auto& f : frames) {
    raw.add(static_cast<double>(f.byte_size()));
    png.add(static_cast<double>(png_encode(f).size()));
    jpeg.add(static_cast<double>(jpeg_encode(f, 60).size()));
    h264.add(static_cast<double>(video.frame_bytes(f)));
  }

  Table sizes("Mean encoded frame size");
  sizes.header({"encoding", "bytes/frame"});
  sizes.row({"RAW", Table::bytes_human(raw.mean())});
  sizes.row({"PNG (lossless)", Table::bytes_human(png.mean())});
  sizes.row({"JPEG (lossy)", Table::bytes_human(jpeg.mean())});
  sizes.row({"H264 (GOP 30)", Table::bytes_human(h264.mean())});
  sizes.print();
  std::printf("\n");

  // The figure: FPS = bandwidth / bytes-per-frame at each uplink rate.
  Table fig("Fig. 2 series: sustainable FPS by uplink (log-log in paper)");
  fig.header({"uplink (Mbps)", "H264", "JPEG", "PNG", "RAW"});
  for (const double mbps : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    auto fps = [&](double bytes) {
      return Table::num(
          SimulatedLink::sustainable_fps(mbps,
                                         static_cast<std::size_t>(bytes)),
          2);
    };
    fig.row({Table::num(mbps, 0), fps(h264.mean()), fps(jpeg.mean()),
             fps(png.mean()), fps(raw.mean())});
  }
  fig.print();

  const double h264_at_10fps =
      10.0 * h264.mean() * 8.0 / 1e6;  // Mbps needed for 10 FPS
  std::printf(
      "\npaper claim: ~2 Mbps for 10 FPS H264 -> measured %.2f Mbps\n"
      "paper shape: RAW/PNG >= 1-2 orders above H264 -> measured %.0fx / %.0fx\n",
      h264_at_10fps, raw.mean() / h264.mean(), png.mean() / h264.mean());
  return 0;
}
