#include "bench_common.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/client.hpp"
#include "core/server.hpp"
#include "obs/export.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"

namespace vp::bench {

RetrievalDataset build_retrieval_dataset(const DatasetConfig& cfg) {
  Rng rng(cfg.seed);
  GalleryConfig gallery;
  gallery.num_scenes = cfg.num_scenes;
  // Long enough that paintings don't crowd: ~2.2 m of wall per painting
  // on each side.
  gallery.hall_length = std::max(20.0, cfg.num_scenes * 1.1 + 4.0);
  gallery.texture_px_per_m = 170;
  const World world = build_gallery(gallery, rng);
  const auto quads = scene_quads(world);
  const CameraIntrinsics intr{cfg.image_width, cfg.image_height, 1.15192};

  RetrievalDataset ds;

  // Database: one image per scene. Like a real catalog photo, each shot
  // inevitably includes surrounding context (floor, doors, nameplates) —
  // shared content across scene images is the paper's source of
  // cross-scene match confusion.
  for (int s = 0; s < cfg.num_scenes; ++s) {
    Rng view_rng(cfg.seed + 10'000 + static_cast<std::uint64_t>(s));
    const Camera cam = view_of_quad(world, quads[static_cast<std::size_t>(s)],
                                    intr, view_rng.uniform(-10, 10),
                                    view_rng.uniform(2.5, 3.5), view_rng);
    auto frame = render(world, cam, {}, view_rng);
    LabeledImage img;
    img.features = sift_detect(frame.image, cfg.sift);
    img.scene_id = s;
    if (cfg.keep_images) img.image = frame.image;
    ds.total_db_descriptors += img.features.size();
    ds.database.push_back(std::move(img));
  }

  // Distractors: close-ups of repeated, low-entropy content — "ceiling,
  // floor, name-plates, furniture, etc." — by pointing the camera at
  // unlabeled quads (floor, ceiling, doors, plates).
  std::vector<std::size_t> distractor_quads;
  for (std::size_t qi = 0; qi < world.quads().size(); ++qi) {
    if (world.quads()[qi].scene_id == kBackgroundScene) {
      distractor_quads.push_back(qi);
    }
  }
  for (int d = 0; d < cfg.num_distractors; ++d) {
    Rng view_rng(cfg.seed + 20'000 + static_cast<std::uint64_t>(d));
    const std::size_t qi =
        distractor_quads[view_rng.uniform_u64(distractor_quads.size())];
    const Camera cam = view_of_quad(world, qi, intr,
                                    view_rng.uniform(-25, 25),
                                    view_rng.uniform(1.2, 2.5), view_rng);
    auto frame = render(world, cam, {}, view_rng);
    LabeledImage img;
    img.features = sift_detect(frame.image, cfg.sift);
    img.scene_id = -1;
    if (cfg.keep_images) img.image = frame.image;
    ds.total_db_descriptors += img.features.size();
    ds.database.push_back(std::move(img));
  }

  // Queries: strong angular offsets, the paper's stress condition. In the
  // hard regime the camera stands back and aims off-center, so the frame
  // is dominated by repeated content and the unique scene covers only a
  // fraction of it.
  double feature_sum = 0;
  for (int s = 0; s < cfg.num_scenes; ++s) {
    for (int q = 0; q < cfg.queries_per_scene; ++q) {
      Rng view_rng(cfg.seed + 30'000 +
                   static_cast<std::uint64_t>(s * 97 + q));
      const double max_az = cfg.max_query_azimuth_deg;
      const double angle =
          (q - cfg.queries_per_scene / 2) *
              (2.0 * max_az / std::max(1, cfg.queries_per_scene)) +
          view_rng.uniform(-5, 5);
      const double distance =
          cfg.hard_queries ? view_rng.uniform(2.2, cfg.max_query_distance)
                           : view_rng.uniform(1.8, 2.8);
      Camera cam = view_of_quad(world, quads[static_cast<std::size_t>(s)],
                                intr, angle, distance, view_rng);
      RenderOptions ro;
      if (cfg.hard_queries) {
        // Re-aim slightly past the painting so it sits off-center.
        const auto& quad = world.quads()[quads[static_cast<std::size_t>(s)]];
        Vec3 target = quad.center();
        target.x += view_rng.uniform(-1.0, 1.0);
        target.z += view_rng.uniform(-0.3, 0.3);
        cam = look_at(cam.intrinsics, cam.pose.translation, target,
                      view_rng.gaussian(0, 0.02));
        ro.noise_stddev = 3.0;
        // Handheld capture: a fraction of frames carry motion blur (the
        // paper's users scan "by simply moving hands at fast speed").
        if (view_rng.chance(0.5)) {
          ro.motion_blur_px = view_rng.uniform(1.5, 4.0);
          ro.motion_dir = {view_rng.gaussian(), view_rng.gaussian()};
        }
      }
      auto frame = render(world, cam, ro, view_rng);
      LabeledImage img;
      img.features = sift_detect(frame.image, cfg.sift);
      img.scene_id = s;
      if (cfg.keep_images) img.image = frame.image;
      img.visible_scenes = visible_scene_ids(world, cam);
      feature_sum += static_cast<double>(img.features.size());
      ds.queries.push_back(std::move(img));
    }
  }
  if (!ds.queries.empty()) {
    ds.mean_query_features = feature_sum / static_cast<double>(ds.queries.size());
  }
  return ds;
}

std::vector<ImageU8> render_walk_frames(int n, int width, int height,
                                        std::uint64_t seed) {
  Rng rng(seed);
  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24;
  gallery.texture_px_per_m = 150;
  const World world = build_gallery(gallery, rng);
  const CameraIntrinsics intr{width, height, 1.15192};

  std::vector<ImageU8> frames;
  frames.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / std::max(1, n - 1);
    const Vec3 pos{3.0 + t * (gallery.hall_length - 6.0), 3.0, 1.5};
    const double yaw = 0.6 * std::sin(t * 9.0);
    const Vec3 target = pos + Vec3{std::sin(yaw), std::cos(yaw), 0.0} * 3.0;
    const Camera cam = look_at(intr, pos, target);
    auto out = render(world, cam, {}, rng);
    frames.push_back(to_u8(out.image));
  }
  return frames;
}

double parse_scale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) return 2.5;
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      return std::atof(argv[i] + 8);
    }
  }
  return 1.0;
}

std::vector<LocalizationResult> run_localization_experiment(
    double scale, std::uint64_t seed) {
  struct Env {
    std::string name;
    World world;
  };
  Rng rng(seed);
  const double size_scale = std::min(1.0, 0.5 + scale / 2);
  RoomConfig office{.width = 36 * size_scale, .depth = 14, .height = 3,
                    .num_scenes = 8};
  RoomConfig cafeteria{.width = 36 * size_scale, .depth = 12, .height = 3,
                       .num_scenes = 8};
  RoomConfig grocery{.width = 40 * size_scale, .depth = 20, .height = 3.5,
                     .num_scenes = 6};
  std::vector<Env> envs;
  envs.push_back({"office", build_office(office, rng)});
  envs.push_back({"cafeteria", build_cafeteria(cafeteria, rng)});
  envs.push_back({"grocery", build_grocery(grocery, rng)});

  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 2.2;
  wardrive_cfg.lane_spacing = 3.5;
  wardrive_cfg.views_per_stop = 2;

  std::vector<LocalizationResult> results;
  for (auto& env : envs) {
    Rng env_rng(std::hash<std::string>{}(env.name) ^ seed);
    const auto snapshots = wardrive(env.world, wardrive_cfg, env_rng);
    const auto merged = merge_snapshots(snapshots, {});
    const auto mappings = extract_mappings(snapshots, merged.corrected_poses);

    ServerConfig server_cfg;
    server_cfg.oracle.capacity =
        std::max<std::size_t>(100'000, mappings.size() * 2);
    env.world.bounds(server_cfg.localize.search_lo,
                     server_cfg.localize.search_hi);
    server_cfg.localize.de.time_budget_sec = 0.35;
    VisualPrintServer server(server_cfg);
    server.ingest_wardrive(mappings);

    ClientConfig client_cfg;
    client_cfg.top_k = 200;
    client_cfg.blur_threshold = 2.0;
    VisualPrintClient client(client_cfg);
    client.install_oracle(server.oracle_snapshot());

    LocalizationResult result;
    result.name = env.name;
    result.mappings = mappings.size();
    const auto quads = scene_quads(env.world);
    const int views_per_scene = static_cast<int>(3 * scale) + 2;
    for (std::size_t s = 0; s < quads.size(); ++s) {
      for (int v = 0; v < views_per_scene; ++v) {
        Rng view_rng(9000 + static_cast<std::uint64_t>(s) * 31 +
                     static_cast<std::uint64_t>(v));
        const double angle = view_rng.uniform(-30, 30);
        const Camera cam =
            view_of_quad(env.world, quads[s], wardrive_cfg.intrinsics, angle,
                         view_rng.uniform(1.8, 3.0), view_rng);
        auto photo = render(env.world, cam, {}, view_rng);
        const auto fr = client.process_frame(photo.image, 0.0, 0.0);
        if (fr.status != FrameResult::Status::kQueued) continue;
        ++result.attempted;
        Rng solver_rng(7000 + static_cast<std::uint64_t>(s) * 31 +
                       static_cast<std::uint64_t>(v));
        const auto resp = server.localize_query(*fr.query, solver_rng);
        if (!resp.found) continue;
        const Vec3 truth = cam.pose.translation;
        result.errors.push_back(resp.position.distance(truth));
        result.per_axis.push_back({std::abs(resp.position.x - truth.x),
                                   std::abs(resp.position.y - truth.y),
                                   std::abs(resp.position.z - truth.z)});
      }
    }
    std::printf("  %-10s %zu mappings, %zu/%d queries localized\n",
                env.name.c_str(), mappings.size(), result.errors.size(),
                result.attempted);
    results.push_back(std::move(result));
  }
  return results;
}

void print_figure_header(const std::string& figure, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure.c_str(), what.c_str());
  std::printf("==========================================================\n");
}

void emit_metrics_jsonl(const std::string& bench, bool include_zeros) {
  obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  if (!include_zeros) {
    std::erase_if(snap.counters,
                  [](const obs::CounterSample& c) { return c.value == 0; });
    std::erase_if(snap.gauges,
                  [](const obs::GaugeSample& g) { return g.value == 0; });
    std::erase_if(snap.histograms,
                  [](const obs::HistogramSample& h) { return h.count == 0; });
  }
  const std::string lines = obs::to_json_lines(snap, bench);
  if (!lines.empty()) std::fputs(lines.c_str(), stdout);
}

void emit_trace_json(const std::string& path,
                     std::span<const obs::StitchedTrace> traces) {
  std::ofstream out(path, std::ios::trunc);
  out << obs::to_chrome_trace(traces);
  std::printf("chrome trace (%zu frames) written to %s\n", traces.size(),
              path.c_str());
}

}  // namespace vp::bench
