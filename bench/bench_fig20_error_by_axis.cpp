// Figure 20: localization error decomposed by axis. Paper shape: error on
// the horizontal X/Y plane (parallel to floor/ceiling, the plane the
// wardriving motion covers) is smaller than vertical (Z) error.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 20", "localization error by axis (X, Y, Z)");

  const auto results = run_localization_experiment(scale, 20);
  std::printf("\n");

  Table table("Fig. 20: per-axis error boxplot values (meters)");
  table.header({"environment", "axis", "q1", "median", "q3", "p90"});
  double xy_median_sum = 0, z_median_sum = 0;
  int envs_counted = 0;
  for (const auto& r : results) {
    if (r.per_axis.empty()) continue;
    std::vector<double> ex, ey, ez;
    for (const auto& e : r.per_axis) {
      ex.push_back(e.x);
      ey.push_back(e.y);
      ez.push_back(e.z);
    }
    const auto row = [&](const char* axis, const std::vector<double>& v) {
      const Summary s = summarize(v);
      table.row({r.name, axis, Table::num(s.q1, 2), Table::num(s.median, 2),
                 Table::num(s.q3, 2), Table::num(percentile(v, 90), 2)});
    };
    row("X", ex);
    row("Y", ey);
    row("Z", ez);
    xy_median_sum +=
        0.5 * (percentile(ex, 50) + percentile(ey, 50));
    z_median_sum += percentile(ez, 50);
    ++envs_counted;
  }
  table.print();

  if (envs_counted > 0) {
    std::printf(
        "\npaper shape: horizontal (X/Y) error < vertical (Z) error, since\n"
        "wardriving motion spans the X/Y plane. measured mean medians:\n"
        "horizontal %.2f m vs vertical %.2f m\n",
        xy_median_sum / envs_counted, z_median_sum / envs_counted);
  }
  return 0;
}
