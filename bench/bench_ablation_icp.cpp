// Ablation: ICP map merging vs raw dead reckoning, across drift severity.
// (Paper §3, "Challenge, Positioning Error and Uniqueness": Tango's VSLAM
// drifts; snapshots are merged into one coherent point cloud with ICP.)
//
// Expectation: at negligible drift ICP adds little (its own residual can
// even dominate); as drift grows, the ICP-corrected map becomes
// substantially better than dead reckoning — the regime the paper's
// post-processing targets.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Ablation", "ICP map merge vs dead reckoning drift");

  Rng rng(321);
  GalleryConfig gallery;
  gallery.num_scenes = 6;
  gallery.hall_length = 20.0 * std::min(1.5, scale + 0.5);
  gallery.hall_width = 8.0;
  const World world = build_gallery(gallery, rng);

  Table table("Mean wardriving pose error (meters)");
  table.header({"drift (m per m walked)", "dead reckoning", "with ICP merge",
                "corrected snaps", "improvement"});

  for (const double drift : {0.005, 0.02, 0.05, 0.10}) {
    WardriveConfig cfg;
    cfg.intrinsics = {200, 150, 1.15192};
    cfg.stop_spacing = 2.5;
    cfg.lane_spacing = 3.5;
    cfg.views_per_stop = 3;
    cfg.drift.pos_per_meter = drift;
    cfg.drift.yaw_per_meter = drift / 10.0;
    cfg.render.depth_downscale = 2;  // Tango-like depth density
    Rng run_rng(static_cast<std::uint64_t>(drift * 1e4) + 5);
    const auto snapshots = wardrive(world, cfg, run_rng);

    MapMergeConfig icp_on;
    icp_on.cloud_stride = 2;
    MapMergeConfig icp_off;
    icp_off.enabled = false;
    const auto with = merge_snapshots(snapshots, icp_on);
    const auto without = merge_snapshots(snapshots, icp_off);
    const double err_raw = mean_pose_error(snapshots, without.corrected_poses);
    const double err_icp = mean_pose_error(snapshots, with.corrected_poses);

    char improvement[32];
    std::snprintf(improvement, sizeof improvement, "%+.0f%%",
                  100.0 * (err_raw - err_icp) / err_raw);
    table.row({Table::num(drift, 3), Table::num(err_raw, 3),
               Table::num(err_icp, 3),
               std::to_string(with.snapshots_corrected) + "/" +
                   std::to_string(snapshots.size()),
               improvement});
  }
  table.print();

  std::printf(
      "\nexpected shape: ICP pays off increasingly as drift grows; at\n"
      "near-zero drift its own residual makes it a wash.\n");
  return 0;
}
