// Tiered shard residency: what does paging place shards cost?
//
// A server carrying thousands of places cannot keep every shard resident
// (DESIGN.md §14). This bench quantifies the machinery on one axis at a
// time, over a saved v4 database of equally-sized synthetic places:
//
//   - registration: `--lazy` startup (mmap + manifest scan, no payloads)
//     vs eager load of the same file;
//   - cold fault: first-query latency per place (segment checksum, bucket
//     rebuild over the mmap'd descriptors, oracle inflate);
//   - warm hit: the same lookup once resident (one atomic map load);
//   - budget sweep: round-robin queries over all places under resident-
//     byte budgets of 100/50/25% of the full working set — the 100% row
//     never evicts (faults = places), the tighter rows churn, and the
//     hit/miss/evict ledger quantifies the thrash.
//
// Queries here are direct fault_in probes: the bench isolates the paging
// machinery, not retrieval or the solver (bench_map_scale covers those).
//
// Usage: bench_shard_residency [--scale=<f>] [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/server.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;

std::vector<KeypointMapping> synthetic_mappings(Rng& rng, std::size_t n,
                                                double base_x) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {10.0f, 10.0f, 2.0f, 0.0f, 1.0f, 0};
    for (auto& v : f.descriptor) {
      v = static_cast<std::uint8_t>(rng.uniform_u64(80));
    }
    ms.push_back({f,
                  {base_x + rng.uniform(0, 20), rng.uniform(0, 20),
                   rng.uniform(0, 3)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

double median_ms(std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  return ms.empty() ? 0.0 : ms[ms.size() / 2];
}

std::string place_name(int p) { return "place-" + std::to_string(p); }

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  print_figure_header("shard residency",
                      "mmap-backed cold shards, LRU resident budget");

  const int places = smoke ? 6 : 12;
  const auto kp_per_place = static_cast<std::size_t>(
      std::lround((smoke ? 800 : 2000) * std::max(scale, 0.1)));
  const int rounds = smoke ? 2 : 4;
  std::printf("%d places x %zu keypoints, %d sweep rounds\n\n", places,
              kp_per_place, rounds);

  const std::string db_path =
      (std::filesystem::temp_directory_path() / "vp_bench_residency.db")
          .string();
  {
    ServerConfig cfg;
    cfg.oracle.capacity = std::max<std::size_t>(50'000, 2 * kp_per_place);
    cfg.place_label = place_name(0);
    VisualPrintServer builder(cfg);
    Rng rng(2016);
    for (int p = 0; p < places; ++p) {
      builder.ingest_wardrive(place_name(p),
                              synthetic_mappings(rng, kp_per_place, 20.0 * p),
                              &cfg);
    }
    builder.save(db_path);
  }
  const auto file_bytes =
      static_cast<double>(std::filesystem::file_size(db_path));

  // Eager load vs lazy registration of the same file.
  Timer eager_timer;
  double eager_ms = 0;
  {
    VisualPrintServer eager = VisualPrintServer::load(db_path);
    eager_ms = eager_timer.millis();
  }
  DbLoadOptions lazy_opts;
  lazy_opts.lazy = true;
  Timer lazy_timer;
  VisualPrintServer server = VisualPrintServer::load(db_path, lazy_opts);
  const double lazy_ms = lazy_timer.millis();

  // Cold faults (first touch per place), then warm hits.
  std::vector<double> cold_ms, warm_ms;
  for (int p = 0; p < places; ++p) {
    Timer t;
    if (server.store().fault_in(place_name(p)) == nullptr) return 1;
    cold_ms.push_back(t.millis());
  }
  for (int p = 0; p < places; ++p) {
    Timer t;
    if (server.store().fault_in(place_name(p)) == nullptr) return 1;
    warm_ms.push_back(t.millis());
  }
  const std::size_t full_bytes =
      server.store().residency().stats().resident_bytes;

  std::printf("file %.1f MB on disk, %.1f MB resident when fully loaded\n",
              file_bytes / 1e6, static_cast<double>(full_bytes) / 1e6);
  std::printf("eager load %8.2f ms | lazy registration %8.2f ms (%.0fx)\n",
              eager_ms, lazy_ms, eager_ms / std::max(lazy_ms, 1e-6));
  std::printf("cold fault %8.3f ms | warm hit %10.4f ms (medians)\n\n",
              median_ms(cold_ms), median_ms(warm_ms));
  std::printf("{\"bench\":\"shard_residency\",\"section\":\"load\","
              "\"places\":%d,\"file_mb\":%.3f,\"resident_mb\":%.3f,"
              "\"eager_ms\":%.3f,\"lazy_ms\":%.3f,"
              "\"cold_fault_ms\":%.4f,\"warm_hit_ms\":%.5f}\n",
              places, file_bytes / 1e6,
              static_cast<double>(full_bytes) / 1e6, eager_ms, lazy_ms,
              median_ms(cold_ms), median_ms(warm_ms));

  // Budget sweep: round-robin over every place (the LRU-adversarial order)
  // under shrinking budgets.
  std::printf("\n%8s %12s %10s %8s %8s %8s %10s\n", "budget", "resident MB",
              "fault ms", "hits", "misses", "evicts", "loads");
  for (const double frac : {1.0, 0.5, 0.25}) {
    const auto budget = static_cast<std::size_t>(
        std::max(1.0, static_cast<double>(full_bytes) * frac));
    DbLoadOptions opts = lazy_opts;
    opts.resident_budget = budget;
    VisualPrintServer swept = VisualPrintServer::load(db_path, opts);
    std::vector<double> fault_ms;
    for (int r = 0; r < rounds; ++r) {
      for (int p = 0; p < places; ++p) {
        Timer t;
        if (swept.store().fault_in(place_name(p)) == nullptr) return 1;
        fault_ms.push_back(t.millis());
      }
    }
    const auto st = swept.store().residency().stats();
    std::printf("%7.0f%% %12.1f %10.3f %8llu %8llu %8llu %10llu\n",
                frac * 100, static_cast<double>(st.resident_bytes) / 1e6,
                median_ms(fault_ms),
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.evictions),
                static_cast<unsigned long long>(st.loads));
    std::printf("{\"bench\":\"shard_residency\",\"section\":\"sweep\","
                "\"budget_frac\":%.2f,\"budget_mb\":%.3f,"
                "\"resident_mb\":%.3f,\"median_fault_ms\":%.4f,"
                "\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
                "\"loads\":%llu}\n",
                frac, static_cast<double>(budget) / 1e6,
                static_cast<double>(st.resident_bytes) / 1e6,
                median_ms(fault_ms),
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.evictions),
                static_cast<unsigned long long>(st.loads));
  }

  emit_metrics_jsonl("shard_residency");
  std::filesystem::remove(db_path);
  return 0;
}
