// Map-store scaling: what does carrying many places cost a query?
//
// Builds servers holding 1/2/4/8 equally-sized place shards and measures,
// per shard count: wardrive publish latency (the copy-on-publish price),
// targeted-query latency (client names its place -> one shard, shard-count
// independent), and fan-out latency (no place named -> every shard is
// tried), serial and on a worker pool. Queries reuse stored descriptors,
// so they exercise the full LSH retrieval + clustering path in every
// shard; the cluster acceptance threshold is set beyond any query's
// candidate count, so every query returns a structured miss before the
// solver — the solve cost is place-count independent and would only blur
// the scaling signal this bench isolates.
//
// Usage: bench_map_scale [--scale=<f>]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/server.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;

std::vector<KeypointMapping> synthetic_mappings(Rng& rng, std::size_t n,
                                                double base_x) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {10.0f, 10.0f, 2.0f, 0.0f, 1.0f, 0};
    for (auto& v : f.descriptor) {
      v = static_cast<std::uint8_t>(rng.uniform_u64(80));
    }
    // Spread positions so retrieved candidates never form a cluster: the
    // query stops after retrieval + clustering, the part that scales.
    ms.push_back({f,
                  {base_x + rng.uniform(0, 20), rng.uniform(0, 20),
                   rng.uniform(0, 3)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

double median_ms(std::vector<double>& ms) {
  std::sort(ms.begin(), ms.end());
  return ms.empty() ? 0.0 : ms[ms.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("map scale",
                      "query latency vs place-shard count (MapStore)");

  const auto kp_per_place =
      static_cast<std::size_t>(std::lround(2000 * scale));
  constexpr int kQueries = 30;
  constexpr std::size_t kFeaturesPerQuery = 100;
  ThreadPool pool(4);

  std::printf("%zu keypoints per place, %d queries x %zu features\n\n",
              kp_per_place, kQueries, kFeaturesPerQuery);
  std::printf("%7s %12s %12s %12s %14s\n", "shards", "publish ms",
              "targeted ms", "fanout ms", "fanout+pool ms");

  for (const int shards : {1, 2, 4, 8}) {
    ServerConfig cfg;
    cfg.oracle.capacity = std::max<std::size_t>(50'000, 2 * kp_per_place);
    // No cluster can reach this support: the query path ends after
    // retrieval + clustering (see header comment).
    cfg.clustering.min_points = 1'000'000;
    VisualPrintServer server(cfg);
    Rng rng(2016 + static_cast<std::uint64_t>(shards));

    std::vector<KeypointMapping> first_place;
    double publish_ms_total = 0;
    Timer t;
    for (int s = 0; s < shards; ++s) {
      auto mappings = synthetic_mappings(rng, kp_per_place, 100.0 * s);
      t.lap();
      server.ingest_wardrive("place-" + std::to_string(s), mappings, &cfg);
      publish_ms_total += t.lap() * 1e3;
      if (s == 0) first_place = std::move(mappings);
    }

    // Queries reuse place-0 descriptors so every shard's LSH does real
    // candidate work (identical descriptors in shard 0, near-miss probes
    // elsewhere).
    std::vector<FingerprintQuery> queries(kQueries);
    for (int q = 0; q < kQueries; ++q) {
      queries[q].frame_id = static_cast<std::uint32_t>(q);
      for (std::size_t i = 0; i < kFeaturesPerQuery; ++i) {
        queries[q].features.push_back(
            first_place[(q * kFeaturesPerQuery + i * 7) % first_place.size()]
                .feature);
      }
    }

    const auto run = [&](const std::string& place) {
      std::vector<double> ms;
      ms.reserve(queries.size());
      for (const auto& base : queries) {
        FingerprintQuery q = base;
        q.place = place;
        Rng solver_rng(17 + q.frame_id);
        t.lap();
        (void)server.localize_query(q, solver_rng);
        ms.push_back(t.lap() * 1e3);
      }
      return median_ms(ms);
    };

    const double targeted = run("place-0");
    server.store().set_pool(nullptr);
    const double fanout_serial = run("");
    server.store().set_pool(&pool);
    const double fanout_pool = run("");

    std::printf("%7d %12.2f %12.3f %12.3f %14.3f\n", shards,
                publish_ms_total / shards, targeted, fanout_serial,
                fanout_pool);
    std::printf(
        "{\"bench\":\"map_scale\",\"shards\":%d,"
        "\"keypoints_per_place\":%zu,\"pool_threads\":%zu,"
        "\"publish_ms\":%.3f,"
        "\"targeted_p50_ms\":%.4f,\"fanout_p50_ms\":%.4f,"
        "\"fanout_pool_p50_ms\":%.4f}\n",
        shards, kp_per_place, pool.thread_count(),
        publish_ms_total / shards, targeted, fanout_serial, fanout_pool);
  }

  std::printf(
      "\ntargeted latency should stay flat as shards grow; serial fan-out\n"
      "grows ~linearly and the pooled fan-out flattens toward the slowest\n"
      "single shard (given as many cores as pool threads).\n");
  emit_metrics_jsonl("map_scale");
  return 0;
}
