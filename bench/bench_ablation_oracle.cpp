// Ablation of the uniqueness-oracle design choices (§3 challenges):
// multiprobe (false-negative rescue), verification filter (false-positive
// control), quantization width W (hotspots), counter saturation, table
// count L, hash count K, and the client's top-k selection size.
//
// Workload: a synthetic descriptor population with known ground-truth
// multiplicities (Zipf-like: a few very common features, many unique) —
// the same structure the oracle must rank in real scenes. Metrics:
//   * rank corr. — Spearman correlation between oracle count and true
//     multiplicity on perturbed probes (higher = better ranking)
//   * FN rate    — inserted-but-scored-zero probes
//   * FP rate    — never-inserted descriptors scoring nonzero
//   * memory     — oracle RAM
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "hashing/oracle.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace vp;
using namespace vp::bench;

/// Synthetic descriptors matching real SIFT statistics: sparse (roughly a
/// quarter of dimensions active), heavy-tailed magnitudes, L2 norm ≈ 512
/// (the norm Lowe's normalize-clamp-quantize pipeline produces). Getting
/// these statistics right matters: the W sweep below is only meaningful
/// against the distance scale real descriptors live at.
Descriptor random_descriptor(Rng& rng) {
  double vals[kDescriptorDims] = {};
  double norm2 = 0;
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    if (rng.chance(0.28)) {
      const double v = -std::log(1.0 - rng.uniform());  // Exp(1)
      vals[i] = v;
      norm2 += v * v;
    }
  }
  const double scale = norm2 > 0 ? 512.0 / std::sqrt(norm2) : 0.0;
  Descriptor d{};
  for (std::size_t i = 0; i < kDescriptorDims; ++i) {
    d[i] = static_cast<std::uint8_t>(
        std::min(255.0, std::floor(vals[i] * scale)));
  }
  return d;
}

Descriptor perturb(const Descriptor& d, Rng& rng, int magnitude) {
  Descriptor out = d;
  for (auto& v : out) {
    const int nv = static_cast<int>(v) +
                   static_cast<int>(rng.uniform_int(-magnitude, magnitude));
    v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
  }
  return out;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size();
  auto ranks = [n](std::span<const double> v) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return v[i] < v[j]; });
    std::vector<double> rank(n);
    for (std::size_t r = 0; r < n; ++r) rank[order[r]] = static_cast<double>(r);
    return rank;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  const double ma = mean(ra), mb = mean(rb);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

struct Workload {
  std::vector<Descriptor> bases;       ///< distinct feature identities
  std::vector<int> multiplicity;       ///< ground-truth insert count
};

Workload make_workload(std::size_t distinct, Rng& rng) {
  Workload w;
  for (std::size_t i = 0; i < distinct; ++i) {
    w.bases.push_back(random_descriptor(rng));
    // Zipf-ish multiplicities: rank 0 very common, tail unique.
    w.multiplicity.push_back(
        std::max(1, static_cast<int>(60.0 / static_cast<double>(i % 30 + 1))));
  }
  return w;
}

struct Metrics {
  double rank_corr = 0;
  double fn_rate = 0;
  double fp_rate = 0;
  std::size_t memory = 0;
};

Metrics evaluate(const OracleConfig& cfg, const Workload& w,
                 std::uint64_t seed) {
  UniquenessOracle oracle(cfg);
  Rng rng(seed);
  for (std::size_t i = 0; i < w.bases.size(); ++i) {
    for (int m = 0; m < w.multiplicity[i]; ++m) {
      oracle.insert(perturb(w.bases[i], rng, 1));
    }
  }
  Metrics out;
  out.memory = oracle.byte_size();
  // Probe with fresh perturbations of each base, slightly stronger than
  // the insert-time jitter (magnitude 2 vs 1) — the regime where LSH
  // quantization boundaries cause false negatives and multiprobe matters.
  std::vector<double> truth, scored;
  int fn = 0;
  for (std::size_t i = 0; i < w.bases.size(); ++i) {
    const Descriptor probe = perturb(w.bases[i], rng, 2);
    const auto count = oracle.count(probe);
    truth.push_back(static_cast<double>(w.multiplicity[i]));
    scored.push_back(static_cast<double>(count));
    fn += count == 0;
  }
  out.rank_corr = spearman(truth, scored);
  out.fn_rate = static_cast<double>(fn) / static_cast<double>(w.bases.size());
  int fp = 0;
  const int fp_probes = 400;
  for (int i = 0; i < fp_probes; ++i) {
    fp += oracle.count(random_descriptor(rng)) > 0;
  }
  out.fp_rate = static_cast<double>(fp) / fp_probes;
  return out;
}

OracleConfig base_config() {
  OracleConfig cfg;
  cfg.capacity = 60'000;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_figure_header("Ablation", "uniqueness-oracle design choices");

  Rng rng(3001);
  const auto workload =
      make_workload(static_cast<std::size_t>(400 * scale), rng);
  std::size_t inserts = 0;
  for (int m : workload.multiplicity) inserts += static_cast<std::size_t>(m);
  std::printf("workload: %zu distinct features, %zu insertions\n\n",
              workload.bases.size(), inserts);

  Table table("Oracle ablations");
  table.header({"variant", "rank corr", "FN rate", "FP rate", "memory"});
  auto run = [&](const std::string& name, const OracleConfig& cfg) {
    const Metrics m = evaluate(cfg, workload, 77);
    table.row({name, Table::num(m.rank_corr, 3), Table::num(m.fn_rate, 3),
               Table::num(m.fp_rate, 3),
               Table::bytes_human(static_cast<double>(m.memory))});
  };

  run("paper defaults (L10 M7 W500 K8 10b)", base_config());

  {
    OracleConfig c = base_config();
    c.multiprobe = false;
    run("- multiprobe off", c);
  }
  {
    OracleConfig c = base_config();
    c.verification = false;
    run("- verification off", c);
  }
  {
    OracleConfig c = base_config();
    c.multiprobe = false;
    c.verification = false;
    run("- both off", c);
  }
  for (const double w : {100.0, 250.0, 1000.0, 2000.0}) {
    OracleConfig c = base_config();
    c.lsh.width = w;
    run("W = " + std::to_string(static_cast<int>(w)), c);
  }
  for (const std::size_t l : {5u, 20u}) {
    OracleConfig c = base_config();
    c.lsh.tables = l;
    run("L = " + std::to_string(l), c);
  }
  for (const std::size_t k : {4u, 12u}) {
    OracleConfig c = base_config();
    c.hashes = k;
    run("K = " + std::to_string(k), c);
  }
  for (const unsigned bits : {4u, 6u, 8u}) {
    OracleConfig c = base_config();
    c.counter_bits = bits;
    run(std::to_string(bits) + "-bit counters", c);
  }
  {
    OracleConfig c = base_config();
    c.counters_override = BloomFilter::optimal_bits(c.capacity, 0.01) / 4;
    run("undersized filter (hotspots)", c);
  }
  table.print();

  // Top-k selection sweep on a small retrieval dataset: how many unique
  // keypoints does a query actually need?
  std::printf("\n");
  DatasetConfig ds_cfg;
  ds_cfg.num_scenes = static_cast<int>(16 * scale);
  ds_cfg.num_distractors = static_cast<int>(40 * scale);
  ds_cfg.queries_per_scene = 3;
  ds_cfg.image_width = 320;
  ds_cfg.image_height = 240;
  const auto ds = build_retrieval_dataset(ds_cfg);

  RetrievalConfig retrieval;
  retrieval.min_votes = 4;
  SceneDatabase database(retrieval);
  OracleConfig oracle_cfg = base_config();
  oracle_cfg.capacity = std::max<std::size_t>(60'000, ds.total_db_descriptors);
  UniquenessOracle oracle(oracle_cfg);
  for (const auto& img : ds.database) {
    database.add_image(img.features, img.scene_id);
    for (const auto& f : img.features) oracle.insert(f.descriptor);
  }
  VisualPrintClient client({});
  client.install_oracle(UniquenessOracle::deserialize(oracle.serialize()));

  Table topk("Top-k selection sweep (retrieval accuracy vs bytes)");
  topk.header({"top-k", "accuracy", "bytes/query"});
  for (const std::size_t k : {25u, 50u, 100u, 200u, 500u}) {
    int correct = 0;
    for (const auto& q : ds.queries) {
      const auto sel = client.select_features(q.features, k);
      const auto pred = database.predict(sel, MatcherKind::kLsh);
      correct += pred && *pred == q.scene_id;
    }
    topk.row({std::to_string(k),
              Table::num(static_cast<double>(correct) /
                             static_cast<double>(ds.queries.size()),
                         3),
              Table::bytes_human(static_cast<double>(
                  std::min<std::size_t>(k, static_cast<std::size_t>(
                                               ds.mean_query_features)) *
                  kFeatureWireBytes))});
  }
  topk.print();
  return 0;
}
