// Client frame-path throughput: full frame -> SIFT -> oracle scoring ->
// top-200 descriptors, timed at 1, 2, and hardware_concurrency threads.
// Emits one JSON line per thread config so successive PRs can track the
// latency trajectory (append the lines to a log and diff).
//
// Usage: bench_client_pipeline [--scale=<f>] (scale multiplies iterations)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

struct RunStats {
  double median_frame_ms = 0;
  double median_sift_ms = 0;
  double median_scoring_ms = 0;
  std::size_t keypoints = 0;
  std::size_t selected = 0;
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

RunStats run_config(const vp::ImageF& frame, const vp::Bytes& oracle_blob,
                    vp::ThreadPool* pool, int iters) {
  using namespace vp;
  ClientConfig cc;
  cc.top_k = 200;
  cc.blur_threshold = 0.5;
  cc.sift.pool = pool;
  VisualPrintClient client(cc);
  client.install_oracle(UniquenessOracle::deserialize(oracle_blob));

  RunStats stats;
  std::vector<double> frame_ms, sift_ms, scoring_ms;
  (void)client.process_frame(frame, 0.0, 0.0);  // warm caches and pool
  Timer t;
  for (int it = 0; it < iters; ++it) {
    t.lap();
    const auto result = client.process_frame(frame, 0.0, 0.0);
    frame_ms.push_back(t.lap_millis());
    sift_ms.push_back(result.sift_ms);
    scoring_ms.push_back(result.scoring_ms);
    stats.keypoints = result.total_keypoints;
    stats.selected = result.selected_keypoints;
  }
  stats.median_frame_ms = median_of(frame_ms);
  stats.median_sift_ms = median_of(sift_ms);
  stats.median_scoring_ms = median_of(scoring_ms);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("client pipeline",
                      "frame -> top-200 descriptors at 1/2/N threads");

  constexpr int kW = 640, kH = 480;
  const auto frames = render_walk_frames(4, kW, kH, 77);
  const ImageF frame = to_gray(frames.front());

  // A populated oracle so scoring walks realistic filter content.
  OracleConfig ocfg;
  ocfg.capacity = 200'000;
  UniquenessOracle oracle(ocfg);
  for (const auto& f : frames) {
    for (const auto& feat : sift_detect(to_gray(f))) {
      oracle.insert(feat.descriptor);
    }
  }
  const Bytes oracle_blob = oracle.serialize();

  const int iters = std::max(3, static_cast<int>(std::lround(5 * scale)));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<unsigned> thread_configs{1, 2, hw};
  std::sort(thread_configs.begin(), thread_configs.end());
  thread_configs.erase(
      std::unique(thread_configs.begin(), thread_configs.end()),
      thread_configs.end());

  double baseline_ms = 0;
  for (unsigned threads : thread_configs) {
    // threads == 1 measures the sequential path (no pool), i.e. the
    // cache-friendly blur/scan rewrite on its own.
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    const RunStats s = run_config(frame, oracle_blob, pool.get(), iters);
    if (threads == 1) baseline_ms = s.median_frame_ms;
    const double speedup =
        s.median_frame_ms > 0 ? baseline_ms / s.median_frame_ms : 0.0;
    std::printf(
        "{\"bench\":\"client_pipeline\",\"threads\":%u,"
        "\"frame_w\":%d,\"frame_h\":%d,\"iters\":%d,"
        "\"frame_ms\":%.2f,\"sift_ms\":%.2f,\"scoring_ms\":%.2f,"
        "\"keypoints\":%zu,\"selected\":%zu,\"speedup_vs_1t\":%.2f}\n",
        threads, kW, kH, iters, s.median_frame_ms, s.median_sift_ms,
        s.median_scoring_ms, s.keypoints, s.selected, speedup);
  }
  emit_metrics_jsonl("client_pipeline");
  return 0;
}
