// Microbenchmarks (google-benchmark): the hot primitives of the pipeline —
// Murmur3, Bloom operations, E2LSH projection, oracle insert/lookup,
// descriptor distance, SIFT extraction, DE localization, ICP alignment.
#include <benchmark/benchmark.h>

#include "features/sift.hpp"
#include "geometry/icp.hpp"
#include "geometry/localize.hpp"
#include "hashing/bloom.hpp"
#include "hashing/lsh.hpp"
#include "hashing/murmur3.hpp"
#include "hashing/oracle.hpp"
#include "index/lsh_index.hpp"
#include "scene/texture.hpp"
#include "util/rng.hpp"

namespace {

using namespace vp;

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

void BM_Murmur3_128_Descriptor(benchmark::State& state) {
  Rng rng(1);
  const Descriptor d = random_descriptor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        murmur3_x64_128(std::span(d.data(), d.size()), 7));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_Murmur3_128_Descriptor);

void BM_DescriptorDistance(benchmark::State& state) {
  Rng rng(2);
  const Descriptor a = random_descriptor(rng);
  const Descriptor b = random_descriptor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(descriptor_distance2(a, b));
  }
}
BENCHMARK(BM_DescriptorDistance);

void BM_CountingBloomIncrement(benchmark::State& state) {
  CountingBloomFilter filter(1 << 20, 10);
  Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.increment(i));
    i = (i * 2654435761u + 1) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_CountingBloomIncrement);

void BM_LshBucket(benchmark::State& state) {
  const E2Lsh lsh(10, 7, 500.0, 42);
  Rng rng(4);
  const Descriptor d = random_descriptor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.bucket(d, 3));
  }
}
BENCHMARK(BM_LshBucket);

void BM_OracleInsert(benchmark::State& state) {
  OracleConfig cfg;
  cfg.capacity = 100'000;
  UniquenessOracle oracle(cfg);
  Rng rng(5);
  for (auto _ : state) {
    oracle.insert(random_descriptor(rng));
  }
}
BENCHMARK(BM_OracleInsert);

void BM_OracleCount(benchmark::State& state) {
  OracleConfig cfg;
  cfg.capacity = 100'000;
  cfg.multiprobe = state.range(0) != 0;
  UniquenessOracle oracle(cfg);
  Rng rng(6);
  for (int i = 0; i < 5'000; ++i) oracle.insert(random_descriptor(rng));
  const Descriptor q = random_descriptor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.count(q));
  }
  state.SetLabel(cfg.multiprobe ? "multiprobe" : "exact-only");
}
BENCHMARK(BM_OracleCount)->Arg(0)->Arg(1);

void BM_LshIndexQuery(benchmark::State& state) {
  LshIndex index;
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i) index.insert(random_descriptor(rng));
  const Descriptor q = random_descriptor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(q, 2));
  }
}
BENCHMARK(BM_LshIndexQuery);

void BM_SiftDetect(benchmark::State& state) {
  Rng rng(8);
  const int side = static_cast<int>(state.range(0));
  const ImageF img = painting_texture(side, side * 3 / 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sift_detect(img));
  }
  state.SetLabel(std::to_string(side) + "x" + std::to_string(side * 3 / 4));
}
BENCHMARK(BM_SiftDetect)->Arg(160)->Arg(320)->Arg(640)->Unit(benchmark::kMillisecond);

void BM_LocalizeSolve(benchmark::State& state) {
  CameraIntrinsics intr{640, 480, 1.15};
  const Pose pose = Pose::from_euler({3, 4, 1.5}, 0.4, 0.05, 0);
  Rng rng(9);
  std::vector<Observation> obs;
  while (obs.size() < 30) {
    const Vec3 body{rng.uniform(-1.5, 1.5), rng.uniform(-1.0, 1.0),
                    rng.uniform(2.5, 7.0)};
    if (const auto px = intr.project(body)) {
      obs.push_back({*px, pose.to_world(body)});
    }
  }
  LocalizeConfig cfg;
  cfg.search_lo = {-10, -10, 0};
  cfg.search_hi = {15, 15, 4};
  cfg.de.time_budget_sec = 10.0;  // let generations, not time, bound it
  cfg.de.max_generations = 120;
  for (auto _ : state) {
    Rng solver_rng(11);
    benchmark::DoNotOptimize(localize(obs, intr, cfg, solver_rng));
  }
}
BENCHMARK(BM_LocalizeSolve)->Unit(benchmark::kMillisecond);

void BM_IcpAlign(benchmark::State& state) {
  Rng rng(10);
  std::vector<Vec3> target;
  for (int i = 0; i < 2'000; ++i) {
    if (i % 2 == 0) {
      target.push_back({rng.uniform(0, 10), rng.uniform(0, 10), 0});
    } else {
      target.push_back({rng.uniform(0, 10), 0, rng.uniform(0, 3)});
    }
  }
  const Pose truth = Pose::from_euler({0.2, -0.1, 0.05}, 0.03, 0, 0);
  std::vector<Vec3> source;
  const Pose inv = truth.inverse();
  for (const auto& p : target) source.push_back(inv.to_world(p));
  for (auto _ : state) {
    benchmark::DoNotOptimize(icp_align(source, target, {}));
  }
}
BENCHMARK(BM_IcpAlign)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
