// Server query hot path: where does a localization query spend its time,
// and what do the PR's three optimizations buy?
//
// Three sections, each emitting one JSON line per configuration:
//
//   rank      exact descriptor ranking (BruteForceMatcher::knn) over a
//             synthetic database, single-threaded, once per compiled
//             distance kernel. The scalar/SIMD ratio is the kernel
//             speedup — the acceptance target is >= 3x on AVX2 hosts.
//   adc       PQ candidate-scan throughput (16-byte ADC codes vs exact
//             128-byte u8-L2 at matched counts, per kernel; target >= 4x
//             SIMD ADC vs exact), recall@1 of the two-stage query vs
//             exact-only per rerank depth, raw-vs-PQ shard bytes.
//   de        the pool-parallel differential-evolution solver on a fixed
//             localization-shaped objective, pools of 0/1/2/4 workers.
//             Results are bit-identical across pool sizes (asserted in
//             tests); this section measures the scaling alone.
//   pipeline  end-to-end MapStore queries, kernel x pool x shard-count,
//             with per-stage splits (retrieve / cluster / solve) read
//             from the vp_obs span histograms. Splits print as zeros when
//             the build has VP_OBS=OFF.
//
// Usage: bench_server_pipeline [--scale=<f>] [--smoke]
//   --smoke   CI-sized run: shrunken database, fewer queries, active
//             kernel only.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/server.hpp"
#include "features/distance.hpp"
#include "features/pq.hpp"
#include "geometry/optimize.hpp"
#include "index/brute_force.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

/// Wardrive mappings whose positions form genuine spatial clusters (a few
/// meters across), so retrieved candidates survive the largest-cluster
/// filter and every query reaches the solver.
std::vector<KeypointMapping> clustered_mappings(Rng& rng, std::size_t n,
                                                double base_x) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {static_cast<float>(rng.uniform(40, 680)),
                  static_cast<float>(rng.uniform(40, 500)),
                  2.0f,
                  0.0f,
                  1.0f,
                  0};
    f.descriptor = random_descriptor(rng);
    ms.push_back({f,
                  {base_x + rng.uniform(0, 4), rng.uniform(0, 4),
                   rng.uniform(0, 2)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

/// Mean milliseconds recorded in the "stage.<name>" histogram, or 0 when
/// the stage never ran (or VP_OBS is off).
double stage_mean_ms(const obs::MetricsSnapshot& snap,
                     const std::string& stage) {
  const std::string name = "stage." + stage;
  for (const auto& h : snap.histograms) {
    if (h.name == name && h.count > 0) {
      return h.sum / static_cast<double>(h.count);
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------- rank --

void run_rank_section(double scale, bool smoke) {
  const auto db_size = static_cast<std::size_t>(
      std::lround((smoke ? 20'000 : 200'000) * scale));
  const int queries = smoke ? 8 : 40;
  Rng rng(31);
  std::vector<Descriptor> db;
  db.reserve(db_size);
  for (std::size_t i = 0; i < db_size; ++i) db.push_back(random_descriptor(rng));
  std::vector<Descriptor> qs;
  for (int i = 0; i < queries; ++i) qs.push_back(random_descriptor(rng));

  const BruteForceMatcher brute(db);  // no pool: single-thread by design
  const DistanceKernel original = active_distance_kernel();
  Timer t;
  double scalar_ms = 0;
  std::printf("\n-- rank: exact knn over %zu descriptors, %d queries, "
              "1 thread --\n", db_size, queries);
  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    if (!set_distance_kernel(kernel)) continue;
    // Warm once (page in the database), then time.
    (void)brute.knn(qs[0], 2);
    t.lap();
    for (const auto& q : qs) (void)brute.knn(q, 2);
    const double ms = t.lap() * 1e3;
    if (kernel == DistanceKernel::kScalar) scalar_ms = ms;
    const double speedup = ms > 0 ? scalar_ms / ms : 0.0;
    const std::string name(kernel_name(kernel));
    std::printf("%8s: %9.2f ms  (%.2fx vs scalar)\n", name.c_str(), ms,
                speedup);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"rank\","
        "\"kernel\":\"%s\",\"db\":%zu,\"queries\":%d,\"ms\":%.3f,"
        "\"speedup_vs_scalar\":%.3f}\n",
        name.c_str(), db_size, queries, ms, speedup);
  }
  set_distance_kernel(original);
}

// ----------------------------------------------------------------- adc --

/// Coarse-scan throughput and retrieval quality of the PQ path:
///   1. ADC scan over 16-byte codes vs exact u8-L2 over 128-byte
///      descriptors, same candidate count, once per compiled kernel of
///      each family — the acceptance target is >= 4x SIMD ADC vs exact.
///   2. recall@1 of the two-stage (ADC top-R, exact rerank) LshIndex
///      query against the exact-only index at several rerank depths.
///   3. per-shard descriptor bytes, raw vs PQ (codes + codebook).
void run_adc_section(double scale, bool smoke) {
  const auto n = static_cast<std::size_t>(
      std::lround((smoke ? 20'000 : 200'000) * scale));
  const int sweeps = smoke ? 10 : 25;
  Rng rng(41);
  std::vector<std::uint8_t> flat(n * kDescriptorDims);
  for (auto& v : flat) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  const PqCodebook book = PqCodebook::train(flat.data(), n);
  std::vector<std::uint8_t> codes(n * kPqCodeBytes);
  for (std::size_t i = 0; i < n; ++i) {
    book.encode(flat.data() + i * kDescriptorDims,
                codes.data() + i * kPqCodeBytes);
  }
  Descriptor query;
  for (auto& v : query) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  AdcTable table;
  book.build_adc_table(query.data(), table);
  // Candidates arrive as scattered ids (LSH bucket unions), not a linear
  // sweep — both stages of query_into walk an id list. Shuffled ids make
  // the scans touch memory the way the server does: 128-byte pulls from
  // the descriptor array vs 16-byte pulls from the code array.
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<std::uint32_t>(i);
  shuffle(ids.begin(), ids.end(), rng);

  std::printf("\n-- adc: candidate scan over %zu scattered ids, "
              "%d sweeps --\n", n, sweeps);
  std::vector<std::uint32_t> out(n);
  std::uint64_t sink = 0;
  Timer t;
  double best_exact_ms = 0, best_adc_ms = 0;
  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    const std::string name(kernel_name(kernel));
    t.lap();
    for (int s = 0; s < sweeps; ++s) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = distance2_u8_128_with(
            kernel, flat.data() + ids[i] * kDescriptorDims, query.data());
      }
      sink += out[n - 1];
    }
    const double ms = t.lap() * 1e3 / sweeps;
    best_exact_ms = ms;  // compiled list is ordered fastest-last
    const double mcand = ms > 0 ? n / ms / 1e3 : 0.0;
    std::printf("exact %8s: %8.3f ms/scan  (%7.1f Mcand/s)\n", name.c_str(),
                ms, mcand);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"adc_scan\","
        "\"path\":\"exact\",\"kernel\":\"%s\",\"candidates\":%zu,"
        "\"ms_per_scan\":%.4f,\"mcand_per_sec\":%.2f}\n",
        name.c_str(), n, ms, mcand);
  }
  for (const DistanceKernel kernel : compiled_adc_kernels()) {
    const std::string name(kernel_name(kernel));
    t.lap();
    for (int s = 0; s < sweeps; ++s) {
      adc_scan_with(kernel, table, codes.data(), ids.data(), n, out.data());
      sink += out[n - 1];
    }
    const double ms = t.lap() * 1e3 / sweeps;
    best_adc_ms = ms;
    const double mcand = ms > 0 ? n / ms / 1e3 : 0.0;
    std::printf("adc   %8s: %8.3f ms/scan  (%7.1f Mcand/s)\n", name.c_str(),
                ms, mcand);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"adc_scan\","
        "\"path\":\"adc\",\"kernel\":\"%s\",\"candidates\":%zu,"
        "\"ms_per_scan\":%.4f,\"mcand_per_sec\":%.2f}\n",
        name.c_str(), n, ms, mcand);
  }
  const double speedup = best_adc_ms > 0 ? best_exact_ms / best_adc_ms : 0.0;
  std::printf("best adc vs best exact: %.2fx  (checksum %llu)\n", speedup,
              static_cast<unsigned long long>(sink & 0xFFFF));
  std::printf(
      "{\"bench\":\"server_pipeline\",\"section\":\"adc_scan\","
      "\"path\":\"summary\",\"candidates\":%zu,"
      "\"speedup_adc_vs_exact\":%.3f}\n",
      n, speedup);

  // Recall + latency of the full two-stage index query vs exact-only.
  const auto db_n =
      static_cast<std::size_t>(std::lround((smoke ? 2'000 : 8'000) * scale));
  const int queries = smoke ? 60 : 200;
  Rng drng(42);
  // Re-observation model: stored keypoints form dense clusters (repeated
  // structure across the venue — the candidate mass the ADC stage must
  // plow through), and each query is a *tight* perturbation of one stored
  // descriptor, the way a second photo of the same keypoint lands near
  // the wardriven one. The true neighbor is close; its cluster mates are
  // the distractors.
  std::vector<Descriptor> bases(std::max<std::size_t>(8, db_n / 250));
  for (auto& b : bases) {
    for (auto& v : b) v = static_cast<std::uint8_t>(drng.uniform_u64(80));
  }
  const auto perturbed = [&drng](const Descriptor& base, int magnitude) {
    Descriptor d = base;
    for (auto& v : d) {
      const int nv = static_cast<int>(v) +
                     static_cast<int>(drng.uniform_int(-magnitude, magnitude));
      v = static_cast<std::uint8_t>(std::clamp(nv, 0, 255));
    }
    return d;
  };
  LshIndexConfig exact_cfg;
  exact_cfg.multiprobe = true;
  LshIndex exact_index(exact_cfg);
  std::vector<Descriptor> db;
  db.reserve(db_n);
  for (std::size_t i = 0; i < db_n; ++i) {
    db.push_back(perturbed(bases[i % bases.size()], 6));
    exact_index.insert(db.back());
  }
  std::vector<Descriptor> qs;
  for (int i = 0; i < queries; ++i) {
    const std::size_t stored = (static_cast<std::size_t>(i) * 37) % db_n;
    qs.push_back(perturbed(db[stored], 2));
  }
  t.lap();
  const auto truth = exact_index.query_batch(qs, 1, nullptr);
  const double exact_query_ms = t.lap() * 1e3 / queries;
  std::printf("\n-- adc recall: %zu stored, %d queries, exact-only %.3f "
              "ms/query --\n", db_n, queries, exact_query_ms);
  for (const std::uint32_t depth : {4u, 16u, 64u}) {
    LshIndexConfig cfg = exact_cfg;
    cfg.pq.enabled = true;
    cfg.pq.rerank_depth = depth;
    LshIndex pq(cfg);
    for (const auto& d : db) pq.insert(d);
    pq.train_pq();
    t.lap();
    const auto got = pq.query_batch(qs, 1, nullptr);
    const double ms = t.lap() * 1e3 / queries;
    int total = 0, hit = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (truth[i].empty()) continue;
      ++total;
      hit += (!got[i].empty() && got[i][0].id == truth[i][0].id);
    }
    const double recall =
        total > 0 ? static_cast<double>(hit) / static_cast<double>(total)
                  : 0.0;
    std::printf("rerank %3u: recall@1 %.4f  %.3f ms/query\n", depth, recall,
                ms);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"adc_recall\","
        "\"rerank_depth\":%u,\"db\":%zu,\"queries\":%d,\"recall_at_1\":%.4f,"
        "\"query_ms\":%.4f,\"exact_query_ms\":%.4f}\n",
        depth, db_n, queries, recall, ms, exact_query_ms);
    if (depth == 64u) {
      const double code_ratio =
          pq.pq_codes().empty()
              ? 0.0
              : static_cast<double>(pq.descriptor_bytes()) /
                    static_cast<double>(pq.pq_codes().size());
      const double total_ratio =
          pq.pq_bytes() > 0 ? static_cast<double>(pq.descriptor_bytes()) /
                                  static_cast<double>(pq.pq_bytes())
                            : 0.0;
      std::printf("bytes: raw %zu, codes %zu (%.2fx smaller), +codebook %zu "
                  "fixed -> %.2fx total\n",
                  pq.descriptor_bytes(), pq.pq_codes().size(), code_ratio,
                  kPqCodebookBytes, total_ratio);
      std::printf(
          "{\"bench\":\"server_pipeline\",\"section\":\"adc_bytes\","
          "\"descriptors\":%zu,\"raw_bytes\":%zu,\"pq_bytes\":%zu,"
          "\"code_bytes\":%zu,\"code_ratio\":%.3f,\"ratio\":%.3f}\n",
          db_n, pq.descriptor_bytes(), pq.pq_bytes(), pq.pq_codes().size(),
          code_ratio, total_ratio);
    }
  }
}

// ------------------------------------------------------------------ de --

void run_de_section(bool smoke) {
  // Localization-shaped objective: a smooth multimodal surface whose
  // per-evaluation cost (transcendental math over max_pairs-many terms)
  // matches the Fig. 12 angular-residual sum.
  constexpr std::size_t kTerms = 400;
  const auto objective = [](std::span<const double> v) {
    double s = 0;
    for (std::size_t p = 0; p < kTerms; ++p) {
      const double phase = static_cast<double>(p) * 0.37;
      double dot = 0;
      for (double x : v) dot += std::atan2(x, 1.0 + phase);
      s += (dot - std::sin(phase)) * (dot - std::sin(phase));
    }
    return s;
  };
  const double lo[6] = {-50, -50, -5, -3, -3, -3};
  const double hi[6] = {50, 50, 10, 3, 3, 3};
  DeConfig cfg;
  cfg.population = 48;
  cfg.max_generations = smoke ? 20 : 120;
  cfg.stall_generations = cfg.max_generations;  // fixed work per run
  cfg.tolerance = 0.0;
  cfg.time_budget_sec = 1e9;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\n-- de: pool-parallel solve, population %zu, "
              "%zu generations, %u hardware threads --\n",
              cfg.population, cfg.max_generations, hw);
  Timer t;
  double serial_ms = 0;
  for (const std::size_t threads : {0u, 1u, 2u, 4u}) {
    std::unique_ptr<ThreadPool> pool;
    DeConfig c = cfg;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      c.pool = pool.get();
    }
    Rng rng(55);
    t.lap();
    const DeResult result = differential_evolution(objective, lo, hi, c, rng);
    const double ms = t.lap() * 1e3;
    if (threads == 0) serial_ms = ms;
    const double speedup = ms > 0 ? serial_ms / ms : 0.0;
    std::printf("%zu threads: %9.2f ms  (%.2fx vs serial, cost %.4g)\n",
                threads, ms, speedup, result.cost);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"de\","
        "\"pool_threads\":%zu,\"hw_threads\":%u,\"population\":%zu,"
        "\"generations\":%zu,\"ms\":%.3f,\"speedup_vs_serial\":%.3f,"
        "\"cost\":%.6g}\n",
        threads, hw, cfg.population, result.generations, ms, speedup,
        result.cost);
  }
}

// ------------------------------------------------------------ pipeline --

void run_pipeline_section(double scale, bool smoke) {
  const auto kp_per_place = static_cast<std::size_t>(
      std::lround((smoke ? 1'500 : 6'000) * scale));
  const int queries = smoke ? 6 : 20;
  constexpr std::size_t kFeaturesPerQuery = 80;
  const std::vector<int> shard_counts = smoke ? std::vector<int>{1}
                                              : std::vector<int>{1, 4};
  const std::vector<std::size_t> pool_sizes =
      smoke ? std::vector<std::size_t>{0, 4}
            : std::vector<std::size_t>{0, 2, 4};

  std::printf("\n-- pipeline: %zu keypoints/place, %d queries x %zu "
              "features --\n", kp_per_place, queries, kFeaturesPerQuery);
  const DistanceKernel original = active_distance_kernel();
  for (const int shards : shard_counts) {
    ServerConfig cfg;
    cfg.oracle.capacity = std::max<std::size_t>(50'000, 2 * kp_per_place);
    cfg.localize.de.max_generations = 40;
    cfg.localize.de.time_budget_sec = 0.05;
    cfg.localize.refine_rounds = 0;
    VisualPrintServer server(cfg);
    Rng rng(2016 + static_cast<std::uint64_t>(shards));

    std::vector<KeypointMapping> first_place;
    for (int s = 0; s < shards; ++s) {
      auto mappings = clustered_mappings(rng, kp_per_place, 100.0 * s);
      server.ingest_wardrive("place-" + std::to_string(s), mappings, &cfg);
      if (s == 0) first_place = std::move(mappings);
    }

    // Queries reuse place-0 descriptors: exact matches in shard 0 (whose
    // clustered positions carry them through to the solver), near-miss
    // probe work everywhere else.
    std::vector<FingerprintQuery> qs(static_cast<std::size_t>(queries));
    for (int q = 0; q < queries; ++q) {
      auto& fq = qs[static_cast<std::size_t>(q)];
      fq.frame_id = static_cast<std::uint32_t>(q);
      for (std::size_t i = 0; i < kFeaturesPerQuery; ++i) {
        fq.features.push_back(
            first_place[(static_cast<std::size_t>(q) * kFeaturesPerQuery +
                         i * 7) % first_place.size()]
                .feature);
      }
    }

    for (const DistanceKernel kernel : compiled_distance_kernels()) {
      if (smoke && kernel != original) continue;  // CI: active kernel only
      if (!set_distance_kernel(kernel)) continue;
      const std::string name(kernel_name(kernel));
      for (const std::size_t threads : pool_sizes) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
        server.store().set_pool(pool.get());

        obs::Registry::global().reset_values();
        Timer t;
        t.lap();
        int fixes = 0;
        for (const auto& base : qs) {
          FingerprintQuery q = base;  // no place: fan out across shards
          Rng solver_rng(17 + q.frame_id);
          fixes += server.localize_query(q, solver_rng).found ? 1 : 0;
        }
        const double total_ms = t.lap() * 1e3;
        const auto snap = obs::Registry::global().snapshot();
        const double retrieve = stage_mean_ms(snap, "lsh.retrieve");
        const double cluster = stage_mean_ms(snap, "cluster");
        const double solve = stage_mean_ms(snap, "localize.solve");
        std::printf(
            "%8s  shards=%d pool=%zu: %8.2f ms/query  "
            "(retrieve %.3f, cluster %.3f, solve %.3f; %d/%d fixes)\n",
            name.c_str(), shards, threads, total_ms / queries, retrieve,
            cluster, solve, fixes, queries);
        std::printf(
            "{\"bench\":\"server_pipeline\",\"section\":\"pipeline\","
            "\"kernel\":\"%s\",\"pool_threads\":%zu,\"shards\":%d,"
            "\"keypoints_per_place\":%zu,\"queries\":%d,"
            "\"query_ms\":%.4f,\"retrieve_ms\":%.4f,\"cluster_ms\":%.4f,"
            "\"solve_ms\":%.4f,\"fixes\":%d}\n",
            name.c_str(), threads, shards, kp_per_place, queries,
            total_ms / queries, retrieve, cluster, solve, fixes);
      }
    }
    server.store().set_pool(nullptr);
  }
  set_distance_kernel(original);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  print_figure_header("server hot path",
                      "SIMD ranking, pool-parallel DE, stage splits");
  std::printf("active kernel: %s%s\n",
              std::string(vp::kernel_name(vp::active_distance_kernel()))
                  .c_str(),
              smoke ? "  [smoke]" : "");

  run_rank_section(scale, smoke);
  run_adc_section(scale, smoke);
  run_de_section(smoke);
  run_pipeline_section(scale, smoke);

  std::printf(
      "\nexpectations: the widest SIMD kernel ranks >= 3x faster than\n"
      "scalar; DE scales near-linearly to 4 threads given as many cores\n"
      "(identical cost at every pool size regardless); pipeline stage\n"
      "splits shift from retrieve-bound to solve-bound as the pool\n"
      "absorbs the retrieval sweep.\n");
  // include_zeros: this bench runs both exact and ADC ranking paths, so a
  // zero `index.adc_scans` is evidence (the exact path served the mix),
  // not noise — it must survive into the artifact.
  emit_metrics_jsonl("server_pipeline", /*include_zeros=*/true);
  return 0;
}
