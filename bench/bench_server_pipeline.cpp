// Server query hot path: where does a localization query spend its time,
// and what do the PR's three optimizations buy?
//
// Three sections, each emitting one JSON line per configuration:
//
//   rank      exact descriptor ranking (BruteForceMatcher::knn) over a
//             synthetic database, single-threaded, once per compiled
//             distance kernel. The scalar/SIMD ratio is the kernel
//             speedup — the acceptance target is >= 3x on AVX2 hosts.
//   de        the pool-parallel differential-evolution solver on a fixed
//             localization-shaped objective, pools of 0/1/2/4 workers.
//             Results are bit-identical across pool sizes (asserted in
//             tests); this section measures the scaling alone.
//   pipeline  end-to-end MapStore queries, kernel x pool x shard-count,
//             with per-stage splits (retrieve / cluster / solve) read
//             from the vp_obs span histograms. Splits print as zeros when
//             the build has VP_OBS=OFF.
//
// Usage: bench_server_pipeline [--scale=<f>] [--smoke]
//   --smoke   CI-sized run: shrunken database, fewer queries, active
//             kernel only.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/server.hpp"
#include "features/distance.hpp"
#include "geometry/optimize.hpp"
#include "index/brute_force.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;

Descriptor random_descriptor(Rng& rng) {
  Descriptor d;
  for (auto& v : d) v = static_cast<std::uint8_t>(rng.uniform_u64(80));
  return d;
}

/// Wardrive mappings whose positions form genuine spatial clusters (a few
/// meters across), so retrieved candidates survive the largest-cluster
/// filter and every query reaches the solver.
std::vector<KeypointMapping> clustered_mappings(Rng& rng, std::size_t n,
                                                double base_x) {
  std::vector<KeypointMapping> ms;
  ms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint = {static_cast<float>(rng.uniform(40, 680)),
                  static_cast<float>(rng.uniform(40, 500)),
                  2.0f,
                  0.0f,
                  1.0f,
                  0};
    f.descriptor = random_descriptor(rng);
    ms.push_back({f,
                  {base_x + rng.uniform(0, 4), rng.uniform(0, 4),
                   rng.uniform(0, 2)},
                  static_cast<std::uint32_t>(i)});
  }
  return ms;
}

/// Mean milliseconds recorded in the "stage.<name>" histogram, or 0 when
/// the stage never ran (or VP_OBS is off).
double stage_mean_ms(const obs::MetricsSnapshot& snap,
                     const std::string& stage) {
  const std::string name = "stage." + stage;
  for (const auto& h : snap.histograms) {
    if (h.name == name && h.count > 0) {
      return h.sum / static_cast<double>(h.count);
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------- rank --

void run_rank_section(double scale, bool smoke) {
  const auto db_size = static_cast<std::size_t>(
      std::lround((smoke ? 20'000 : 200'000) * scale));
  const int queries = smoke ? 8 : 40;
  Rng rng(31);
  std::vector<Descriptor> db;
  db.reserve(db_size);
  for (std::size_t i = 0; i < db_size; ++i) db.push_back(random_descriptor(rng));
  std::vector<Descriptor> qs;
  for (int i = 0; i < queries; ++i) qs.push_back(random_descriptor(rng));

  const BruteForceMatcher brute(db);  // no pool: single-thread by design
  const DistanceKernel original = active_distance_kernel();
  Timer t;
  double scalar_ms = 0;
  std::printf("\n-- rank: exact knn over %zu descriptors, %d queries, "
              "1 thread --\n", db_size, queries);
  for (const DistanceKernel kernel : compiled_distance_kernels()) {
    if (!set_distance_kernel(kernel)) continue;
    // Warm once (page in the database), then time.
    (void)brute.knn(qs[0], 2);
    t.lap();
    for (const auto& q : qs) (void)brute.knn(q, 2);
    const double ms = t.lap() * 1e3;
    if (kernel == DistanceKernel::kScalar) scalar_ms = ms;
    const double speedup = ms > 0 ? scalar_ms / ms : 0.0;
    const std::string name(kernel_name(kernel));
    std::printf("%8s: %9.2f ms  (%.2fx vs scalar)\n", name.c_str(), ms,
                speedup);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"rank\","
        "\"kernel\":\"%s\",\"db\":%zu,\"queries\":%d,\"ms\":%.3f,"
        "\"speedup_vs_scalar\":%.3f}\n",
        name.c_str(), db_size, queries, ms, speedup);
  }
  set_distance_kernel(original);
}

// ------------------------------------------------------------------ de --

void run_de_section(bool smoke) {
  // Localization-shaped objective: a smooth multimodal surface whose
  // per-evaluation cost (transcendental math over max_pairs-many terms)
  // matches the Fig. 12 angular-residual sum.
  constexpr std::size_t kTerms = 400;
  const auto objective = [](std::span<const double> v) {
    double s = 0;
    for (std::size_t p = 0; p < kTerms; ++p) {
      const double phase = static_cast<double>(p) * 0.37;
      double dot = 0;
      for (double x : v) dot += std::atan2(x, 1.0 + phase);
      s += (dot - std::sin(phase)) * (dot - std::sin(phase));
    }
    return s;
  };
  const double lo[6] = {-50, -50, -5, -3, -3, -3};
  const double hi[6] = {50, 50, 10, 3, 3, 3};
  DeConfig cfg;
  cfg.population = 48;
  cfg.max_generations = smoke ? 20 : 120;
  cfg.stall_generations = cfg.max_generations;  // fixed work per run
  cfg.tolerance = 0.0;
  cfg.time_budget_sec = 1e9;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\n-- de: pool-parallel solve, population %zu, "
              "%zu generations, %u hardware threads --\n",
              cfg.population, cfg.max_generations, hw);
  Timer t;
  double serial_ms = 0;
  for (const std::size_t threads : {0u, 1u, 2u, 4u}) {
    std::unique_ptr<ThreadPool> pool;
    DeConfig c = cfg;
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      c.pool = pool.get();
    }
    Rng rng(55);
    t.lap();
    const DeResult result = differential_evolution(objective, lo, hi, c, rng);
    const double ms = t.lap() * 1e3;
    if (threads == 0) serial_ms = ms;
    const double speedup = ms > 0 ? serial_ms / ms : 0.0;
    std::printf("%zu threads: %9.2f ms  (%.2fx vs serial, cost %.4g)\n",
                threads, ms, speedup, result.cost);
    std::printf(
        "{\"bench\":\"server_pipeline\",\"section\":\"de\","
        "\"pool_threads\":%zu,\"hw_threads\":%u,\"population\":%zu,"
        "\"generations\":%zu,\"ms\":%.3f,\"speedup_vs_serial\":%.3f,"
        "\"cost\":%.6g}\n",
        threads, hw, cfg.population, result.generations, ms, speedup,
        result.cost);
  }
}

// ------------------------------------------------------------ pipeline --

void run_pipeline_section(double scale, bool smoke) {
  const auto kp_per_place = static_cast<std::size_t>(
      std::lround((smoke ? 1'500 : 6'000) * scale));
  const int queries = smoke ? 6 : 20;
  constexpr std::size_t kFeaturesPerQuery = 80;
  const std::vector<int> shard_counts = smoke ? std::vector<int>{1}
                                              : std::vector<int>{1, 4};
  const std::vector<std::size_t> pool_sizes =
      smoke ? std::vector<std::size_t>{0, 4}
            : std::vector<std::size_t>{0, 2, 4};

  std::printf("\n-- pipeline: %zu keypoints/place, %d queries x %zu "
              "features --\n", kp_per_place, queries, kFeaturesPerQuery);
  const DistanceKernel original = active_distance_kernel();
  for (const int shards : shard_counts) {
    ServerConfig cfg;
    cfg.oracle.capacity = std::max<std::size_t>(50'000, 2 * kp_per_place);
    cfg.localize.de.max_generations = 40;
    cfg.localize.de.time_budget_sec = 0.05;
    cfg.localize.refine_rounds = 0;
    VisualPrintServer server(cfg);
    Rng rng(2016 + static_cast<std::uint64_t>(shards));

    std::vector<KeypointMapping> first_place;
    for (int s = 0; s < shards; ++s) {
      auto mappings = clustered_mappings(rng, kp_per_place, 100.0 * s);
      server.ingest_wardrive("place-" + std::to_string(s), mappings, &cfg);
      if (s == 0) first_place = std::move(mappings);
    }

    // Queries reuse place-0 descriptors: exact matches in shard 0 (whose
    // clustered positions carry them through to the solver), near-miss
    // probe work everywhere else.
    std::vector<FingerprintQuery> qs(static_cast<std::size_t>(queries));
    for (int q = 0; q < queries; ++q) {
      auto& fq = qs[static_cast<std::size_t>(q)];
      fq.frame_id = static_cast<std::uint32_t>(q);
      for (std::size_t i = 0; i < kFeaturesPerQuery; ++i) {
        fq.features.push_back(
            first_place[(static_cast<std::size_t>(q) * kFeaturesPerQuery +
                         i * 7) % first_place.size()]
                .feature);
      }
    }

    for (const DistanceKernel kernel : compiled_distance_kernels()) {
      if (smoke && kernel != original) continue;  // CI: active kernel only
      if (!set_distance_kernel(kernel)) continue;
      const std::string name(kernel_name(kernel));
      for (const std::size_t threads : pool_sizes) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 0) pool = std::make_unique<ThreadPool>(threads);
        server.store().set_pool(pool.get());

        obs::Registry::global().reset_values();
        Timer t;
        t.lap();
        int fixes = 0;
        for (const auto& base : qs) {
          FingerprintQuery q = base;  // no place: fan out across shards
          Rng solver_rng(17 + q.frame_id);
          fixes += server.localize_query(q, solver_rng).found ? 1 : 0;
        }
        const double total_ms = t.lap() * 1e3;
        const auto snap = obs::Registry::global().snapshot();
        const double retrieve = stage_mean_ms(snap, "lsh.retrieve");
        const double cluster = stage_mean_ms(snap, "cluster");
        const double solve = stage_mean_ms(snap, "localize.solve");
        std::printf(
            "%8s  shards=%d pool=%zu: %8.2f ms/query  "
            "(retrieve %.3f, cluster %.3f, solve %.3f; %d/%d fixes)\n",
            name.c_str(), shards, threads, total_ms / queries, retrieve,
            cluster, solve, fixes, queries);
        std::printf(
            "{\"bench\":\"server_pipeline\",\"section\":\"pipeline\","
            "\"kernel\":\"%s\",\"pool_threads\":%zu,\"shards\":%d,"
            "\"keypoints_per_place\":%zu,\"queries\":%d,"
            "\"query_ms\":%.4f,\"retrieve_ms\":%.4f,\"cluster_ms\":%.4f,"
            "\"solve_ms\":%.4f,\"fixes\":%d}\n",
            name.c_str(), threads, shards, kp_per_place, queries,
            total_ms / queries, retrieve, cluster, solve, fixes);
      }
    }
    server.store().set_pool(nullptr);
  }
  set_distance_kernel(original);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  print_figure_header("server hot path",
                      "SIMD ranking, pool-parallel DE, stage splits");
  std::printf("active kernel: %s%s\n",
              std::string(vp::kernel_name(vp::active_distance_kernel()))
                  .c_str(),
              smoke ? "  [smoke]" : "");

  run_rank_section(scale, smoke);
  run_de_section(smoke);
  run_pipeline_section(scale, smoke);

  std::printf(
      "\nexpectations: the widest SIMD kernel ranks >= 3x faster than\n"
      "scalar; DE scales near-linearly to 4 threads given as many cores\n"
      "(identical cost at every pool size regardless); pipeline stage\n"
      "splits shift from retrieve-bound to solve-bound as the pool\n"
      "absorbs the retrieval sweep.\n");
  emit_metrics_jsonl("server_pipeline");
  return 0;
}
