// Observability overhead: what does the instrumentation cost on the client
// frame path? Measures the primitive costs (counter add, histogram record,
// span open/close with and without an active FrameTrace), counts the spans
// one traced frame emits, and reports the estimated frame-path overhead:
//   overhead_pct = spans_per_frame * span_cost / frame_time
// The acceptance bar is <2% with VP_OBS=ON; a VP_OBS=OFF build compiles
// the call sites out entirely, so its pipeline overhead is exactly zero
// (reported as such — the primitives below still exist in the library).
//
// A second section measures the end-to-end cost of wire-level tracing
// sampled at 100%: the same query served through an in-process server,
// untraced (v2 frames) vs traced (v3 trace context + echoed server span
// block + client-side stitching).
//
// Usage: bench_obs_overhead [--scale=<f>] [--check]
// --check exits nonzero when a VP_OBS=ON build exceeds the 2% budget —
// the CI smoke job runs it as a regression gate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/remote.hpp"
#include "core/server.hpp"
#include "obs/trace.hpp"
#include "slam/mapping.hpp"
#include "util/timer.hpp"

namespace {

double ns_per_op(vp::Timer& t, std::size_t ops) {
  return t.lap() * 1e9 / static_cast<double>(ops);
}

double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values.empty() ? 0.0 : values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }
  print_figure_header("obs overhead",
                      "instrumentation cost on the client frame path");

  auto& reg = obs::Registry::global();
  constexpr std::size_t kPrimOps = 2'000'000;

  Timer t;
  auto& counter = reg.counter("bench.counter");
  for (std::size_t i = 0; i < kPrimOps; ++i) counter.add(1);
  const double counter_ns = ns_per_op(t, kPrimOps);

  auto& hist = reg.histogram("bench.hist");
  for (std::size_t i = 0; i < kPrimOps; ++i) {
    hist.record(static_cast<double>(i & 1023) * 0.01);
  }
  const double record_ns = ns_per_op(t, kPrimOps);

  constexpr std::size_t kSpanOps = 200'000;
  for (std::size_t i = 0; i < kSpanOps; ++i) {
    obs::Span span("bench.span");
  }
  const double span_ns = ns_per_op(t, kSpanOps);

  // Spans inside an active trace also append a SpanRecord. Batch the
  // traces so no single trace buffer grows unboundedly.
  constexpr std::size_t kSpansPerTrace = 512;
  t.lap();
  for (std::size_t batch = 0; batch < kSpanOps / kSpansPerTrace; ++batch) {
    obs::FrameTrace trace;
    for (std::size_t i = 0; i < kSpansPerTrace; ++i) {
      obs::Span span("bench.span");
    }
  }
  const double traced_span_ns = ns_per_op(t, kSpanOps);

  std::printf(
      "primitives: counter add %.0f ns, histogram record %.0f ns,\n"
      "            span %.0f ns, span-in-trace %.0f ns\n\n",
      counter_ns, record_ns, span_ns, traced_span_ns);

  // The real frame path, traced the way Session::run traces it.
  const auto frames = render_walk_frames(2, 640, 480, 77);
  const ImageF frame = to_gray(frames.front());
  OracleConfig ocfg;
  ocfg.capacity = 100'000;
  UniquenessOracle oracle(ocfg);
  for (const auto& f : frames) {
    for (const auto& feat : sift_detect(to_gray(f))) {
      oracle.insert(feat.descriptor);
    }
  }
  ClientConfig cc;
  cc.top_k = 200;
  cc.blur_threshold = 0.5;
  VisualPrintClient client(cc);
  client.install_oracle(std::move(oracle));

  (void)client.process_frame(frame, 0.0, 0.0);  // warm-up
  const int iters = std::max(3, static_cast<int>(std::lround(5 * scale)));
  std::vector<double> frame_ms;
  std::size_t spans_per_frame = 0;
  for (int it = 0; it < iters; ++it) {
    obs::FrameTrace trace;
    t.lap();
    (void)client.process_frame(frame, 0.0, 0.0);
    frame_ms.push_back(t.lap() * 1e3);
    spans_per_frame = trace.records().size();
  }
  const double median_frame_ms = median_of(frame_ms);

  // Per-frame instrumentation cost: every span pays the traced-span price
  // (trace append + histogram record); a handful of counters ride along.
  const double per_frame_ns =
      static_cast<double>(spans_per_frame) * traced_span_ns + 4 * counter_ns;
  const double overhead_pct =
      VP_OBS_ENABLED != 0
          ? per_frame_ns / (median_frame_ms * 1e6) * 100.0
          : 0.0;  // call sites compiled out: nothing runs on the frame path

  // End-to-end wire tracing at 100% sampling: the same query, served by an
  // in-process server, untraced (v2 frames) vs traced (v3 trace context,
  // the server's echoed span block, client-side stitching). Alternating
  // the two modes keeps thermal/cache drift out of the comparison.
  std::vector<KeypointMapping> mappings;
  {
    Rng map_rng(99);
    std::uint32_t snap = 0;
    for (const auto& f : frames) {
      for (const auto& feat : sift_detect(to_gray(f))) {
        mappings.push_back({feat,
                            {map_rng.uniform(0.0, 10.0),
                             map_rng.uniform(0.0, 10.0), 1.5},
                            snap});
      }
      ++snap;
    }
  }
  ServerConfig scfg;
  scfg.oracle.capacity = std::max<std::size_t>(50'000, mappings.size() * 2);
  // Short solver budget: the comparison needs identical work in both
  // modes, not a good fix.
  scfg.localize.de.time_budget_sec = 0.02;
  VisualPrintServer server(scfg);
  server.ingest_wardrive(mappings);

  double e2e_untraced_ms = 0, e2e_traced_ms = 0, e2e_overhead_pct = 0;
  const auto fr = client.process_frame(frame, 0.0, 0.0);
  if (fr.query) {
    RemoteLocalizer::Transport transport =
        [&](std::span<const std::uint8_t> req) {
          return server.handle_request(req, /*solver_seed=*/7);
        };
    RemoteLocalizer plain(transport);
    RemoteLocalizer traced(transport);
    traced.enable_tracing(/*sample_rate=*/1.0);
    (void)plain.localize(*fr.query);  // warm-up both paths
    (void)traced.localize(*fr.query);
    const int queries = std::max(8, static_cast<int>(std::lround(16 * scale)));
    std::vector<double> plain_ms, traced_ms;
    for (int i = 0; i < queries; ++i) {
      t.lap();
      (void)plain.localize(*fr.query);
      plain_ms.push_back(t.lap() * 1e3);
      (void)traced.localize(*fr.query);
      traced_ms.push_back(t.lap() * 1e3);
    }
    e2e_untraced_ms = median_of(plain_ms);
    e2e_traced_ms = median_of(traced_ms);
    e2e_overhead_pct = e2e_untraced_ms > 0
                           ? (e2e_traced_ms - e2e_untraced_ms) /
                                 e2e_untraced_ms * 100.0
                           : 0.0;
    std::printf("e2e query: untraced %.3f ms, traced@100%% %.3f ms "
                "(%+.2f%%), %zu stitched traces\n\n",
                e2e_untraced_ms, e2e_traced_ms, e2e_overhead_pct,
                traced.traces().size());
  } else {
    std::printf("e2e query skipped: frame did not queue a query\n\n");
  }

  std::printf(
      "{\"bench\":\"obs_overhead\",\"obs_enabled\":%d,"
      "\"counter_add_ns\":%.1f,\"hist_record_ns\":%.1f,"
      "\"span_ns\":%.1f,\"span_in_trace_ns\":%.1f,"
      "\"frame_ms\":%.2f,\"spans_per_frame\":%zu,"
      "\"overhead_pct\":%.4f,"
      "\"e2e_untraced_ms\":%.3f,\"e2e_traced_ms\":%.3f,"
      "\"e2e_overhead_pct\":%.2f}\n",
      VP_OBS_ENABLED, counter_ns, record_ns, span_ns, traced_span_ns,
      median_frame_ms, spans_per_frame, overhead_pct, e2e_untraced_ms,
      e2e_traced_ms, e2e_overhead_pct);
  std::printf("\nframe path %.1f ms, %zu spans/frame -> %.4f%% overhead "
              "(budget: 2%%)\n",
              median_frame_ms, spans_per_frame, overhead_pct);

  if (check && VP_OBS_ENABLED != 0) {
    // CI regression gate. The frame-path model is the primary budget; the
    // e2e delta also gates, but only past an absolute floor (0.05 ms) so
    // scheduler jitter on a fast query can't fail the job.
    bool failed = false;
    if (overhead_pct > 2.0) {
      std::fprintf(stderr, "FAIL: frame-path overhead %.4f%% > 2%% budget\n",
                   overhead_pct);
      failed = true;
    }
    if (e2e_overhead_pct > 2.0 &&
        e2e_traced_ms - e2e_untraced_ms > 0.05) {
      std::fprintf(stderr,
                   "FAIL: e2e tracing overhead %.2f%% (%.3f -> %.3f ms) "
                   "> 2%% budget\n",
                   e2e_overhead_pct, e2e_untraced_ms, e2e_traced_ms);
      failed = true;
    }
    if (failed) return 1;
    std::printf("check passed: within the 2%% budget\n");
  }
  return 0;
}
