// Observability overhead: what does the instrumentation cost on the client
// frame path? Measures the primitive costs (counter add, histogram record,
// span open/close with and without an active FrameTrace), counts the spans
// one traced frame emits, and reports the estimated frame-path overhead:
//   overhead_pct = spans_per_frame * span_cost / frame_time
// The acceptance bar is <2% with VP_OBS=ON; a VP_OBS=OFF build compiles
// the call sites out entirely, so its pipeline overhead is exactly zero
// (reported as such — the primitives below still exist in the library).
//
// Usage: bench_obs_overhead [--scale=<f>]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace {

double ns_per_op(vp::Timer& t, std::size_t ops) {
  return t.lap() * 1e9 / static_cast<double>(ops);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("obs overhead",
                      "instrumentation cost on the client frame path");

  auto& reg = obs::Registry::global();
  constexpr std::size_t kPrimOps = 2'000'000;

  Timer t;
  auto& counter = reg.counter("bench.counter");
  for (std::size_t i = 0; i < kPrimOps; ++i) counter.add(1);
  const double counter_ns = ns_per_op(t, kPrimOps);

  auto& hist = reg.histogram("bench.hist");
  for (std::size_t i = 0; i < kPrimOps; ++i) {
    hist.record(static_cast<double>(i & 1023) * 0.01);
  }
  const double record_ns = ns_per_op(t, kPrimOps);

  constexpr std::size_t kSpanOps = 200'000;
  for (std::size_t i = 0; i < kSpanOps; ++i) {
    obs::Span span("bench.span");
  }
  const double span_ns = ns_per_op(t, kSpanOps);

  // Spans inside an active trace also append a SpanRecord. Batch the
  // traces so no single trace buffer grows unboundedly.
  constexpr std::size_t kSpansPerTrace = 512;
  t.lap();
  for (std::size_t batch = 0; batch < kSpanOps / kSpansPerTrace; ++batch) {
    obs::FrameTrace trace;
    for (std::size_t i = 0; i < kSpansPerTrace; ++i) {
      obs::Span span("bench.span");
    }
  }
  const double traced_span_ns = ns_per_op(t, kSpanOps);

  std::printf(
      "primitives: counter add %.0f ns, histogram record %.0f ns,\n"
      "            span %.0f ns, span-in-trace %.0f ns\n\n",
      counter_ns, record_ns, span_ns, traced_span_ns);

  // The real frame path, traced the way Session::run traces it.
  const auto frames = render_walk_frames(2, 640, 480, 77);
  const ImageF frame = to_gray(frames.front());
  OracleConfig ocfg;
  ocfg.capacity = 100'000;
  UniquenessOracle oracle(ocfg);
  for (const auto& f : frames) {
    for (const auto& feat : sift_detect(to_gray(f))) {
      oracle.insert(feat.descriptor);
    }
  }
  ClientConfig cc;
  cc.top_k = 200;
  cc.blur_threshold = 0.5;
  VisualPrintClient client(cc);
  client.install_oracle(std::move(oracle));

  (void)client.process_frame(frame, 0.0, 0.0);  // warm-up
  const int iters = std::max(3, static_cast<int>(std::lround(5 * scale)));
  std::vector<double> frame_ms;
  std::size_t spans_per_frame = 0;
  for (int it = 0; it < iters; ++it) {
    obs::FrameTrace trace;
    t.lap();
    (void)client.process_frame(frame, 0.0, 0.0);
    frame_ms.push_back(t.lap() * 1e3);
    spans_per_frame = trace.records().size();
  }
  std::sort(frame_ms.begin(), frame_ms.end());
  const double median_frame_ms = frame_ms[frame_ms.size() / 2];

  // Per-frame instrumentation cost: every span pays the traced-span price
  // (trace append + histogram record); a handful of counters ride along.
  const double per_frame_ns =
      static_cast<double>(spans_per_frame) * traced_span_ns + 4 * counter_ns;
  const double overhead_pct =
      VP_OBS_ENABLED != 0
          ? per_frame_ns / (median_frame_ms * 1e6) * 100.0
          : 0.0;  // call sites compiled out: nothing runs on the frame path

  std::printf(
      "{\"bench\":\"obs_overhead\",\"obs_enabled\":%d,"
      "\"counter_add_ns\":%.1f,\"hist_record_ns\":%.1f,"
      "\"span_ns\":%.1f,\"span_in_trace_ns\":%.1f,"
      "\"frame_ms\":%.2f,\"spans_per_frame\":%zu,"
      "\"overhead_pct\":%.4f}\n",
      VP_OBS_ENABLED, counter_ns, record_ns, span_ns, traced_span_ns,
      median_frame_ms, spans_per_frame, overhead_pct);
  std::printf("\nframe path %.1f ms, %zu spans/frame -> %.4f%% overhead "
              "(budget: 2%%)\n",
              median_frame_ms, spans_per_frame, overhead_pct);
  return 0;
}
