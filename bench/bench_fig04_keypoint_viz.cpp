// Figure 4: visualization of SIFT keypoints — circle center = location,
// radius = detection scale, radial segment = orientation. Writes
// fig04_keypoints.ppm (and .png) next to the binary.
#include <cstdio>

#include "bench_common.hpp"
#include "features/draw.hpp"
#include "features/sift.hpp"
#include "imaging/codec.hpp"
#include "imaging/pnm.hpp"

#include <fstream>

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  (void)argc;
  (void)argv;
  print_figure_header("Fig. 4", "SIFT keypoint visualization");

  const auto frames = render_walk_frames(3, 800, 450, 99);
  const ImageU8& frame = frames[1];
  const ImageF gray = to_gray(frame);
  const auto features = sift_detect(gray);
  std::vector<Keypoint> keypoints;
  keypoints.reserve(features.size());
  for (const auto& f : features) keypoints.push_back(f.keypoint);

  const ImageU8 overlay = draw_keypoints(frame, keypoints);
  write_pnm("fig04_keypoints.ppm", overlay);
  const Bytes png = png_encode(overlay);
  std::ofstream out("fig04_keypoints.png", std::ios::binary);
  out.write(reinterpret_cast<const char*>(png.data()),
            static_cast<std::streamsize>(png.size()));

  std::printf("%zu keypoints drawn -> fig04_keypoints.ppm / .png\n",
              keypoints.size());
  std::printf("circle center = location, radius = scale, segment = "
              "orientation (as in the paper's Fig. 4)\n");
  return 0;
}
