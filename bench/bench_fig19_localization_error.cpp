// Figure 19: CDF of 3-D localization error in three wardriven indoor
// environments (office, cafeteria, grocery store). Paper shape: median
// ~2.5 m overall, with a tail of failure cases (local minima of the
// time-bounded differential evolution); repetition-heavy environments
// (grocery) do worst.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 19",
                      "CDF of 3-D localization error, 3 environments");

  const auto results = run_localization_experiment(scale, 19);
  std::printf("\n");

  for (const auto& r : results) {
    if (r.errors.empty()) continue;
    const EmpiricalCdf cdf(r.errors);
    print_series(r.name, cdf.sample_points(11), "error (m)", "CDF");
  }

  Table summary("Fig. 19 summary (3-D error, meters)");
  summary.header({"environment", "median", "p75", "p90", "localized"});
  std::vector<double> all;
  for (const auto& r : results) {
    if (r.errors.empty()) continue;
    all.insert(all.end(), r.errors.begin(), r.errors.end());
    summary.row({r.name, Table::num(percentile(r.errors, 50), 2),
                 Table::num(percentile(r.errors, 75), 2),
                 Table::num(percentile(r.errors, 90), 2),
                 std::to_string(r.errors.size()) + "/" +
                     std::to_string(r.attempted)});
  }
  summary.print();
  if (!all.empty()) {
    std::printf(
        "\npaper: ~2.5 m median 3-D error. measured overall median: %.2f m\n",
        percentile(all, 50));
  }
  return 0;
}
