// Figure 14: cumulative data uploaded over a 70 s AR session — VisualPrint
// fingerprints versus whole-frame upload. Paper shape: at least one order
// of magnitude less data for VisualPrint (51.2 KB vs 523 KB per frame).
#include <cstdio>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 14",
                      "cumulative upload over a session: VisualPrint vs frames");

  Rng rng(14);
  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24;
  const World world = build_gallery(gallery, rng);

  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 3.0;
  wardrive_cfg.views_per_stop = 2;
  auto snapshots = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snapshots, {});
  ServerConfig server_cfg;
  server_cfg.oracle.capacity = 400'000;
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(extract_mappings(snapshots, merged.corrected_poses));

  const double duration = 70.0 * std::min(1.0, scale);
  auto run_mode = [&](OffloadMode mode) {
    SessionConfig cfg;
    cfg.duration_s = duration;
    cfg.camera_fps = 10.0;
    cfg.intrinsics = {480, 270, 1.15192};
    cfg.mode = mode;
    cfg.client.top_k = 200;
    cfg.client.blur_threshold = 2.0;
    cfg.localize_on_server = false;
    cfg.phone_slowdown = 8.0;
    Session session(world, server, cfg);
    return session.run();
  };

  const auto vp_stats = run_mode(OffloadMode::kVisualPrint);
  const auto frame_stats = run_mode(OffloadMode::kFramePng);

  auto print_curve = [](const char* name, const SessionStats& stats) {
    const auto curve = stats.cumulative_upload();
    std::vector<std::pair<double, double>> mb;
    // Sample every ~5 s for readability.
    double next_t = 0;
    for (const auto& [t, bytes] : curve) {
      if (t >= next_t) {
        mb.emplace_back(t, bytes / 1e6);
        next_t = t + 5.0;
      }
    }
    if (!curve.empty()) {
      mb.emplace_back(curve.back().first, curve.back().second / 1e6);
    }
    print_series(name, mb, "time (s)", "uploaded (MB)");
  };
  print_curve("VisualPrint", vp_stats);
  print_curve("Frame Upload (PNG)", frame_stats);

  auto sent_frames = [](const SessionStats& s) {
    std::size_t n = 0;
    for (const auto& f : s.frames) {
      n += f.status == FrameResult::Status::kQueued;
    }
    return n;
  };
  const std::size_t vp_sent = sent_frames(vp_stats);
  const std::size_t fr_sent = sent_frames(frame_stats);

  Table summary("Fig. 14 summary");
  summary.header({"mode", "total uploaded", "frames sent", "bytes/frame"});
  summary.row({"VisualPrint",
               Table::bytes_human(static_cast<double>(vp_stats.total_upload_bytes)),
               std::to_string(vp_sent),
               vp_sent ? Table::bytes_human(
                             static_cast<double>(vp_stats.total_upload_bytes) /
                             static_cast<double>(vp_sent))
                       : "-"});
  summary.row({"Frame upload",
               Table::bytes_human(static_cast<double>(frame_stats.total_upload_bytes)),
               std::to_string(fr_sent),
               fr_sent ? Table::bytes_human(
                             static_cast<double>(frame_stats.total_upload_bytes) /
                             static_cast<double>(fr_sent))
                       : "-"});
  summary.print();

  if (vp_sent && fr_sent) {
    const double per_vp = static_cast<double>(vp_stats.total_upload_bytes) /
                          static_cast<double>(vp_sent);
    const double per_fr = static_cast<double>(frame_stats.total_upload_bytes) /
                          static_cast<double>(fr_sent);
    std::printf(
        "\npaper claim: 51.2 KB vs 523 KB per frame (10.2x). measured: "
        "%.1f KB vs %.1f KB (%.1fx)\n",
        per_vp / 1e3, per_fr / 1e3, per_fr / per_vp);
  }
  emit_metrics_jsonl("fig14_upload_timeline");
  return 0;
}
