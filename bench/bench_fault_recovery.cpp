// Fault recovery on the offload link: what does a lossy mobile uplink cost
// the client in end-to-end query latency once the retry machinery absorbs
// it? Drives paper-scale fingerprint queries (~200 keypoints, ~29 KB)
// through the in-process FaultProxy at increasing seeded fault rates and
// reports recovered-request latency percentiles plus the retry ledger.
// Rate 0 is the control: it must match the clean transport within noise.
//
// Usage: bench_fault_recovery [--scale=<f>]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/fault.hpp"
#include "net/retry.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;

FingerprintQuery paper_scale_query() {
  FingerprintQuery q;
  q.frame_id = 1;
  q.features.resize(200);  // the paper's ~30 KB "short description"
  Rng rng(4);
  for (auto& f : q.features) {
    f.keypoint.x = static_cast<float>(rng.uniform(0, 480));
    f.keypoint.y = static_cast<float>(rng.uniform(0, 360));
    for (auto& v : f.descriptor) {
      v = static_cast<std::uint8_t>(rng.uniform_u64(256));
    }
  }
  return q;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("fault recovery",
                      "query latency through an injected-fault link");

  const int requests = std::max(10, static_cast<int>(40 * scale));
  const Bytes query_bytes = [&] {
    ByteWriter w;
    w.u8('Q');
    w.raw(paper_scale_query().encode());
    return w.take();
  }();
  std::printf("%d requests of %zu B per fault rate\n\n", requests,
              query_bytes.size());

  // Lightweight handler: decode the query, answer a canned fix. The bench
  // isolates transport recovery; the solver has its own benches.
  TcpListener listener(0);
  ThreadPool pool(2);
  ServeOptions options;
  options.pool = &pool;
  options.io_timeout_ms = 2000;
  options.poll_interval_ms = 10;
  std::atomic<bool> run{true};
  std::thread server([&] {
    listener.serve(
        [](std::span<const std::uint8_t> req) {
          if (req.empty() || req[0] != 'Q') throw DecodeError{"bad tag"};
          const FingerprintQuery q = FingerprintQuery::decode(req.subspan(1));
          LocationResponse resp;
          resp.frame_id = q.frame_id;
          resp.found = true;
          resp.matched_keypoints = static_cast<std::uint32_t>(q.features.size());
          return resp.encode();
        },
        [&] { return run.load(); }, options);
  });

  std::printf("%8s %10s %10s %10s %9s %9s %9s %8s\n", "rate", "p50 ms",
              "p95 ms", "max ms", "retries", "timeouts", "drops", "faults");
  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    FaultProxy proxy(listener.port(), FaultConfig::uniform(rate, 20260805));
    RetryPolicy policy;
    policy.max_attempts = 12;
    policy.backoff_ms = 2.0;
    policy.max_backoff_ms = 20.0;
    policy.io_timeout_ms = 150;
    RetryingClient client("127.0.0.1", proxy.port(), policy, /*seed=*/9);

    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<std::size_t>(requests));
    int answered = 0;
    for (int i = 0; i < requests; ++i) {
      Timer t;
      try {
        const Bytes reply = client.request(query_bytes);
        const LocationResponse resp = LocationResponse::decode(reply);
        if (resp.found) ++answered;
        latencies_ms.push_back(t.millis());
      } catch (const Error&) {
        // Budget exhausted or corrupted-but-framed reply: the soak test
        // retries at the application layer; the bench just skips the point.
      }
    }
    const RetryStats& rs = client.stats();
    client.close();
    proxy.stop();

    const double p50 = percentile(latencies_ms, 0.50);
    const double p95 = percentile(latencies_ms, 0.95);
    const double mx = percentile(latencies_ms, 1.0);
    std::printf("%7.0f%% %10.2f %10.2f %10.2f %9llu %9llu %9llu %8llu\n",
                rate * 100, p50, p95, mx,
                static_cast<unsigned long long>(rs.retries),
                static_cast<unsigned long long>(rs.timeouts),
                static_cast<unsigned long long>(rs.conn_dropped),
                static_cast<unsigned long long>(proxy.stats().faults()));
    std::printf(
        "{\"bench\":\"fault_recovery\",\"rate\":%.2f,\"requests\":%d,"
        "\"answered\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"max_ms\":%.3f,"
        "\"attempts\":%llu,\"retries\":%llu,\"timeouts\":%llu,"
        "\"conn_dropped\":%llu,\"injected_faults\":%llu}\n",
        rate, requests, answered, p50, p95, mx,
        static_cast<unsigned long long>(rs.attempts),
        static_cast<unsigned long long>(rs.retries),
        static_cast<unsigned long long>(rs.timeouts),
        static_cast<unsigned long long>(rs.conn_dropped),
        static_cast<unsigned long long>(proxy.stats().faults()));
  }

  run.store(false);
  server.join();
  emit_metrics_jsonl("fault_recovery");
  return 0;
}
