// Figure 3: CDF of SIFT keypoint count per frame, PNG (lossless) versus
// JPEG (lossy at the Fig. 2-matched ratio). Paper shape: compression
// artifacts destroy a large fraction of extractable keypoints; lossless
// frames are required for full extraction efficacy.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "features/sift.hpp"
#include "imaging/codec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header(
      "Fig. 3", "CDF of SIFT keypoint count, PNG vs JPEG compression");

  const int n_frames = static_cast<int>(30 * scale);
  const auto frames = render_walk_frames(n_frames, 640, 360, 1234);
  const int jpeg_quality = 35;  // matches the Fig. 2 "lossy" ratio regime

  // Raw keypoint counts, plus "surviving" keypoints: JPEG keypoints that
  // spatially coincide with a lossless-extraction keypoint. Compression
  // both destroys true keypoints and invents spurious ones on block/ring
  // artifacts; survival measures real extraction efficacy (the quantity
  // that determines downstream matching).
  std::vector<double> png_counts, jpeg_counts, surviving_counts;
  for (const auto& frame : frames) {
    const ImageU8 via_png = png_decode(png_encode(frame));
    const auto png_kps = sift_detect_keypoints(to_gray(via_png));
    const ImageU8 via_jpeg = jpeg_decode(jpeg_encode(frame, jpeg_quality));
    const auto jpeg_kps = sift_detect_keypoints(to_gray(via_jpeg));
    png_counts.push_back(static_cast<double>(png_kps.size()));
    jpeg_counts.push_back(static_cast<double>(jpeg_kps.size()));
    std::size_t survived = 0;
    for (const auto& j : jpeg_kps) {
      for (const auto& p : png_kps) {
        if (std::abs(j.x - p.x) < 1.5 && std::abs(j.y - p.y) < 1.5) {
          ++survived;
          break;
        }
      }
    }
    surviving_counts.push_back(static_cast<double>(survived));
  }

  const EmpiricalCdf png_cdf(png_counts), jpeg_cdf(jpeg_counts),
      surv_cdf(surviving_counts);
  print_series("PNG", png_cdf.sample_points(15), "keypoints", "CDF");
  print_series("JPEG (raw count)", jpeg_cdf.sample_points(15), "keypoints",
               "CDF");
  print_series("JPEG (surviving true keypoints)", surv_cdf.sample_points(15),
               "keypoints", "CDF");

  Table summary("Keypoint count summary");
  summary.header({"encoding", "p25", "median", "p75", "mean"});
  for (const auto& [name, counts] :
       {std::pair<const char*, const std::vector<double>&>{"PNG", png_counts},
        {"JPEG raw", jpeg_counts},
        {"JPEG surviving", surviving_counts}}) {
    const Summary s = summarize(counts);
    summary.row({name, Table::num(s.q1, 0), Table::num(s.median, 0),
                 Table::num(s.q3, 0), Table::num(s.mean, 0)});
  }
  summary.print();

  const double loss = 1.0 - mean(surviving_counts) / mean(png_counts);
  std::printf(
      "\npaper shape: JPEG extraction efficacy drops substantially vs PNG\n"
      "measured: %.0f%% of true keypoints lost at quality %d (raw JPEG\n"
      "counts are inflated by spurious block-artifact keypoints)\n",
      loss * 100.0, jpeg_quality);
  return 0;
}
