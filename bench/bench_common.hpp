// Shared dataset builders for the figure-reproduction benches.
//
// The paper's evaluation datasets are photographs: 100 scenes + 400
// distractor images of the CSL building (Fig. 3/5/6/13), plus wardriven
// office/cafeteria/grocery environments (Fig. 19/20). These helpers render
// the synthetic equivalents at configurable scale — scale factors below
// the paper's keep single-core runtimes sane; pass --paper-scale to a
// bench to run closer to the paper's sizes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "features/sift.hpp"
#include "obs/trace.hpp"
#include "scene/environments.hpp"
#include "scene/render.hpp"
#include "util/rng.hpp"

namespace vp::bench {

struct DatasetConfig {
  int num_scenes = 40;          ///< paper: 100
  int num_distractors = 160;    ///< paper: 400
  int queries_per_scene = 5;    ///< paper: 5, "substantially different angles"
  int image_width = 720;
  int image_height = 540;
  std::uint64_t seed = 2016;
  SiftConfig sift{};
  /// Hard query regime: wide, off-center, strongly angled, noisy shots in
  /// which the target scene covers only part of the frame and repeated
  /// content (floor/doors/plates) supplies most keypoints — the condition
  /// under which keypoint subselection actually matters.
  bool hard_queries = true;
  double max_query_azimuth_deg = 60.0;
  double max_query_distance = 5.5;
  bool keep_images = false;  ///< retain rendered frames in LabeledImage
};

/// One image worth of extracted features with its ground-truth label.
struct LabeledImage {
  std::vector<Feature> features;
  std::int32_t scene_id = -1;  ///< -1 for distractors
  /// For queries: every scene actually visible in the frame (ground truth
  /// for the paper's "frames containing scene k").
  std::vector<int> visible_scenes;
  /// Populated only when DatasetConfig::keep_images is set (used by the
  /// alternate-descriptor ablation, which re-describes the same frames).
  ImageF image;
};

/// The Fig. 13-style dataset: database images (scenes + distractors) and
/// query views with truth labels.
struct RetrievalDataset {
  std::vector<LabeledImage> database;
  std::vector<LabeledImage> queries;  ///< scene_id is the truth label
  std::size_t total_db_descriptors = 0;
  double mean_query_features = 0;
};

/// Render the gallery world and extract everything. Distractor images are
/// close-ups of repeated content (floor, ceiling, doors, nameplates).
RetrievalDataset build_retrieval_dataset(const DatasetConfig& config);

/// Render `n` full frames along a walking path (for the codec benches).
std::vector<ImageU8> render_walk_frames(int n, int width, int height,
                                        std::uint64_t seed);

/// Parse a "--scale=<f>" or "--paper-scale" argument (1.0 default).
double parse_scale(int argc, char** argv);

/// Results of the Fig. 19/20 localization experiment for one environment.
struct LocalizationResult {
  std::string name;
  std::vector<double> errors;   ///< 3-D error per localized query, meters
  std::vector<Vec3> per_axis;   ///< |dx|, |dy|, |dz| per localized query
  int attempted = 0;
  std::size_t mappings = 0;
};

/// Wardrive + ingest + query the three paper environments (office,
/// cafeteria, grocery) and localize oblique views of each scene.
std::vector<LocalizationResult> run_localization_experiment(double scale,
                                                            std::uint64_t seed);

/// Print a standard bench header naming the figure being reproduced.
void print_figure_header(const std::string& figure, const std::string& what);

/// The shared metrics emitter: print the global registry as JSON lines
/// tagged "bench":"<bench>" (see src/obs/export.hpp) — one format across
/// every bench, so downstream tooling parses a single stream. By default
/// metrics with zero recorded events are skipped to keep the output
/// focused; pass include_zeros=true when a zero is itself the signal
/// (e.g. `index.adc_scans` staying 0 proves the exact path served every
/// query — silently dropping it makes "didn't run" indistinguishable from
/// "didn't happen"). Prints nothing when the registry is empty (e.g.
/// VP_OBS=OFF builds).
void emit_metrics_jsonl(const std::string& bench, bool include_zeros = false);

/// Render stitched traces as a Chrome-trace JSON file next to the bench's
/// stdout stream (see obs::to_chrome_trace); prints a pointer line so the
/// artifact is discoverable from the log.
void emit_trace_json(const std::string& path,
                     std::span<const obs::StitchedTrace> traces);

}  // namespace vp::bench
