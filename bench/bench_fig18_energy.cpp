// Figure 18: average power over a 70 s session, by configuration —
// display only, display+camera, VisualPrint computation only, upload
// only, and the complete pipeline. Paper shape: complete VisualPrint
// ~6.5 W (vs ~4.9 W whole-frame offload), dominated by camera + SIFT.
#include <cstdio>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "energy/power.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  using namespace vp::bench;
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 18", "average power by configuration over a session");

  Rng rng(18);
  GalleryConfig gallery;
  gallery.num_scenes = 6;
  gallery.hall_length = 20;
  const World world = build_gallery(gallery, rng);
  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 3.5;
  wardrive_cfg.views_per_stop = 1;
  auto snapshots = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snapshots, {});
  ServerConfig server_cfg;
  server_cfg.oracle.capacity = 300'000;
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(extract_mappings(snapshots, merged.corrected_poses));

  // One real session provides the measured compute/tx activity trace.
  SessionConfig session_cfg;
  session_cfg.duration_s = 70.0 * std::min(1.0, scale);
  session_cfg.camera_fps = 10.0;
  session_cfg.intrinsics = {480, 270, 1.15192};
  session_cfg.client.top_k = 200;
  session_cfg.client.blur_threshold = 2.0;
  session_cfg.localize_on_server = false;
  session_cfg.phone_slowdown = 8.0;
  Session session(world, server, session_cfg);
  const SessionStats stats = session.run();

  const PowerModel model;
  // Derive the figure's configurations from the same activity trace.
  auto masked = [&](bool display, bool camera, bool compute, bool tx) {
    std::vector<ActivitySlot> slots = stats.activity;
    for (auto& s : slots) {
      s.display_on = display;
      s.camera_on = camera;
      if (!compute) s.compute_fraction = 0;
      if (!tx) s.tx_fraction = 0;
    }
    return slots;
  };

  struct Config {
    const char* name;
    std::vector<ActivitySlot> slots;
  };
  const std::vector<Config> configs{
      {"Display", masked(true, false, false, false)},
      {"Android Camera", masked(true, true, false, false)},
      {"VisualPrint (only computation)", masked(true, true, true, false)},
      {"VisualPrint (only upload)", masked(true, true, false, true)},
      {"VisualPrint (computation+upload)", masked(true, true, true, true)},
  };

  Table table("Fig. 18: average power by configuration");
  table.header({"configuration", "avg power (W)", "energy (J)"});
  for (const auto& c : configs) {
    const auto series = model.timeline(c.slots);
    table.row({c.name, Table::num(mean(series), 2),
               Table::num(model.total_energy(c.slots), 0)});
  }
  table.print();

  // The figure's time series for the complete pipeline (sampled).
  const auto full = model.timeline(configs.back().slots);
  std::vector<std::pair<double, double>> pts;
  for (std::size_t t = 0; t < full.size(); t += 5) {
    pts.emplace_back(static_cast<double>(t), full[t]);
  }
  print_series("VisualPrint (computation+upload)", pts, "time (s)",
               "power (W)");

  // Whole-frame offload comparison (paper: ~4.9 W, not shown in figure).
  SessionConfig frame_cfg = session_cfg;
  frame_cfg.mode = OffloadMode::kFramePng;
  Session frame_session(world, server, frame_cfg);
  const auto frame_stats = frame_session.run();
  const double frame_w = mean(model.timeline(frame_stats.activity));
  const double vp_w = mean(full);
  std::printf(
      "\npaper: complete VisualPrint ~6.5 W, whole-frame offload ~4.9 W\n"
      "measured: VisualPrint %.2f W, whole-frame %.2f W\n",
      vp_w, frame_w);
  emit_metrics_jsonl("fig18_energy");
  return 0;
}
