// Figure 13: per-scene precision/recall CDFs for the five matching regimes
// — Random-500, VisualPrint-200, VisualPrint-500, LSH (all keypoints), and
// BruteForce (all keypoints, exact NN). Paper shape: VisualPrint-500 ~=
// or > LSH; VisualPrint-200 roughly comparable; Random clearly worst;
// BruteForce best recall but precision hurt by homogeneous keypoints.
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace vp;
using namespace vp::bench;

struct SchemeResult {
  std::string name;
  PrecisionRecall pr;       ///< paper definition: V_k = photos taken OF k
  PrecisionRecall pr_sets;  ///< stricter: V_k = frames where k is visible
  double mean_query_features = 0;
  std::size_t query_bytes = 0;  ///< mean wire bytes per query
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = parse_scale(argc, argv);
  print_figure_header("Fig. 13",
                      "precision/recall CDFs across matching schemes");

  DatasetConfig cfg;
  cfg.num_scenes = static_cast<int>(40 * scale);
  cfg.num_distractors = static_cast<int>(160 * scale);
  cfg.queries_per_scene = 5;
  // One lap-timer covers every phase of this bench (dataset build, then
  // each scheme sweep): lap() restarts the split clock at each phase edge.
  Timer phase_timer;
  const auto ds = build_retrieval_dataset(cfg);
  std::printf(
      "database: %d scenes + %d distractors, %zu descriptors; "
      "%zu queries (avg %.0f features) [built in %.0f s]\n\n",
      cfg.num_scenes, cfg.num_distractors, ds.total_db_descriptors,
      ds.queries.size(), ds.mean_query_features, phase_timer.lap());

  // Server-side structures. Plain argmax voting (no margin filter): the
  // evaluation measures raw matching quality, not deployment-tuned
  // abstention.
  RetrievalConfig retrieval;
  retrieval.min_votes = 3;
  retrieval.min_margin = 1.0;
  ThreadPool pool;
  SceneDatabase database(retrieval, &pool);
  OracleConfig oracle_cfg;
  oracle_cfg.capacity =
      std::max<std::size_t>(100'000, ds.total_db_descriptors * 2);
  UniquenessOracle oracle(oracle_cfg);
  for (const auto& img : ds.database) {
    database.add_image(img.features, img.scene_id);
    for (const auto& f : img.features) oracle.insert(f.descriptor);
  }

  // Clients for the subselection schemes.
  ClientConfig vp_client_cfg;
  VisualPrintClient vp_client(vp_client_cfg);
  vp_client.install_oracle(UniquenessOracle::deserialize(oracle.serialize()));
  ClientConfig random_cfg;
  random_cfg.policy = SelectionPolicy::kRandom;
  VisualPrintClient random_client(random_cfg, 99);

  // Two ground-truth readings: the paper's ("the query database consists
  // of five additional photographs OF each scene" -> V_k = queries
  // targeted at k) and a stricter visibility-set one (V_k = frames where
  // scene k actually appears, possibly several per frame).
  std::vector<std::optional<std::int32_t>> truth_targeted;
  std::vector<std::vector<int>> truth_sets;
  truth_targeted.reserve(ds.queries.size());
  truth_sets.reserve(ds.queries.size());
  for (const auto& q : ds.queries) {
    truth_targeted.push_back(q.scene_id);
    auto set = q.visible_scenes;
    if (set.empty()) set.push_back(q.scene_id);  // targeted scene fallback
    truth_sets.push_back(std::move(set));
  }

  struct Scheme {
    std::string name;
    std::size_t top_k;            // 0 = all features
    bool use_oracle;              // VisualPrint vs random subselection
    MatcherKind matcher;
  };
  const std::vector<Scheme> schemes{
      {"Random-500", 500, false, MatcherKind::kLsh},
      {"VisualPrint-200", 200, true, MatcherKind::kLsh},
      {"VisualPrint-500", 500, true, MatcherKind::kLsh},
      {"LSH", 0, false, MatcherKind::kLsh},
      {"BruteForce", 0, false, MatcherKind::kBruteForce},
  };

  std::vector<SchemeResult> results;
  for (const auto& scheme : schemes) {
    phase_timer.lap();  // exclude setup since the previous scheme
    std::vector<std::optional<std::int32_t>> predicted;
    predicted.reserve(ds.queries.size());
    double feat_sum = 0, byte_sum = 0;
    for (const auto& q : ds.queries) {
      std::vector<Feature> selected = q.features;
      if (scheme.top_k != 0) {
        selected = scheme.use_oracle
                       ? vp_client.select_features(std::move(selected),
                                                   scheme.top_k)
                       : random_client.select_features(std::move(selected),
                                                       scheme.top_k);
      }
      feat_sum += static_cast<double>(selected.size());
      byte_sum += static_cast<double>(selected.size() * kFeatureWireBytes);
      predicted.push_back(database.predict(selected, scheme.matcher));
    }
    SchemeResult r;
    r.name = scheme.name;
    r.pr = precision_recall(truth_targeted, predicted, cfg.num_scenes);
    r.pr_sets = precision_recall_sets(truth_sets, predicted, cfg.num_scenes);
    r.mean_query_features = feat_sum / static_cast<double>(ds.queries.size());
    r.query_bytes =
        static_cast<std::size_t>(byte_sum / static_cast<double>(ds.queries.size()));
    results.push_back(std::move(r));
    std::printf("  %-16s done in %5.1f s\n", scheme.name.c_str(),
                phase_timer.lap());
  }
  std::printf("\n");

  // Per-scheme precision/recall CDFs (printed at deciles).
  for (const auto& r : results) {
    const EmpiricalCdf p_cdf(r.pr.precision), r_cdf(r.pr.recall);
    print_series(r.name + " precision", p_cdf.sample_points(11), "precision",
                 "CDF");
    print_series(r.name + " recall", r_cdf.sample_points(11), "recall",
                 "CDF");
  }

  Table summary("Fig. 13 summary (per-scene medians, paper truth definition)");
  summary.header({"scheme", "median precision", "median recall",
                  "features/query", "bytes/query"});
  for (const auto& r : results) {
    summary.row(
        {r.name,
         r.pr.precision.empty() ? "-" : Table::num(percentile(r.pr.precision, 50), 3),
         r.pr.recall.empty() ? "-" : Table::num(percentile(r.pr.recall, 50), 3),
         Table::num(r.mean_query_features, 0),
         Table::bytes_human(static_cast<double>(r.query_bytes))});
  }
  summary.print();

  Table strict("Secondary: visibility-set truth (a frame may contain "
               "several scenes)");
  strict.header({"scheme", "median precision", "median recall"});
  for (const auto& r : results) {
    strict.row({r.name,
                r.pr_sets.precision.empty()
                    ? "-"
                    : Table::num(percentile(r.pr_sets.precision, 50), 3),
                r.pr_sets.recall.empty()
                    ? "-"
                    : Table::num(percentile(r.pr_sets.recall, 50), 3)});
  }
  strict.print();

  std::printf(
      "\npaper shape to check: Random worst; VisualPrint-500 >= LSH;\n"
      "VisualPrint-200 comparable to LSH at ~1/10 the bytes of whole\n"
      "keypoint upload; BruteForce best recall, precision dented by\n"
      "homogeneous keypoints.\n");
  return 0;
}
