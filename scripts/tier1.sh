#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer pass
# over the threading-sensitive test binaries (test_util, test_obs,
# test_features, test_net, test_tcp, test_faults, test_load, test_index)
# plus the MapStore ingest-while-serving soak from test_core, the
# pool-parallel differential-evolution suite from test_geometry, and the
# shard-residency fault/evict churn soak from test_residency.
#
# Usage: scripts/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
tsan_dir="${2:-$repo_root/build-tsan}"

echo "== tier-1: regular build + full test suite =="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j

echo "== tier-1: ThreadSanitizer pass (threaded + network suites) =="
# Benchmarks/examples are irrelevant to the TSan pass; skip them for speed.
tsan_targets=(test_util test_obs test_features test_net test_tcp test_faults
              test_load test_index test_core test_geometry test_residency)
cmake -B "$tsan_dir" -S "$repo_root" \
  -DVP_SANITIZE=thread \
  -DVP_BUILD_BENCHMARKS=OFF \
  -DVP_BUILD_EXAMPLES=OFF
cmake --build "$tsan_dir" -j --target "${tsan_targets[@]}"
for t in "${tsan_targets[@]}"; do
  if [ "$t" = test_core ]; then
    # Only the MapStore suites (snapshot-swap store, concurrent
    # ingest-while-serving soak); the rest of test_core is single-threaded
    # solver work that is slow under TSan and races nothing.
    "$tsan_dir/tests/$t" --gtest_filter='MapStore*'
  elif [ "$t" = test_geometry ]; then
    # Only the DE suite: its pool-size bit-identity test runs the chunked
    # objective evaluation across 1/4/16 workers.
    "$tsan_dir/tests/$t" --gtest_filter='DifferentialEvolution*'
  elif [ "$t" = test_residency ]; then
    # The threaded residency suites: single-flight cold faults and the
    # fault/evict churn soak (queries racing eviction + unmap). The format
    # fuzz tests are single-threaded and slow under TSan.
    "$tsan_dir/tests/$t" \
      --gtest_filter='Residency.SingleFlight*:Residency.Concurrent*:Residency.QueryRacing*'
  else
    "$tsan_dir/tests/$t"
  fi
done

echo "tier-1: all checks passed"
