#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer pass
# over the threading-sensitive test binaries (test_util, test_obs,
# test_features).
#
# Usage: scripts/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
tsan_dir="${2:-$repo_root/build-tsan}"

echo "== tier-1: regular build + full test suite =="
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j

echo "== tier-1: ThreadSanitizer pass (test_util, test_obs, test_features) =="
# Benchmarks/examples are irrelevant to the TSan pass; skip them for speed.
cmake -B "$tsan_dir" -S "$repo_root" \
  -DVP_SANITIZE=thread \
  -DVP_BUILD_BENCHMARKS=OFF \
  -DVP_BUILD_EXAMPLES=OFF
cmake --build "$tsan_dir" -j --target test_util test_obs test_features
"$tsan_dir/tests/test_util"
"$tsan_dir/tests/test_obs"
"$tsan_dir/tests/test_features"

echo "tier-1: all checks passed"
