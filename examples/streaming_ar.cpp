// Streaming AR session: a user walks a gallery for 30 seconds pointing the
// camera around while the client streams queries. Compares the three
// offload strategies the paper weighs — whole PNG frames, whole JPEG
// frames, and VisualPrint fingerprints — on bytes uploaded, frames
// delivered, and estimated battery power.
//
// Run:  ./streaming_ar
#include <cstdio>

#include "core/session.hpp"
#include "energy/power.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace vp;
  Rng rng(7);

  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24.0;
  const World world = build_gallery(gallery, rng);

  // Offline: wardrive + ingest so the oracle has real content.
  std::printf("preparing database (wardrive + ingest)...\n");
  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 3.0;
  wardrive_cfg.views_per_stop = 2;
  auto snapshots = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snapshots, {});
  ServerConfig server_cfg;
  server_cfg.oracle.capacity = 400'000;
  world.bounds(server_cfg.localize.search_lo, server_cfg.localize.search_hi);
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(extract_mappings(snapshots, merged.corrected_poses));
  std::printf("database: %zu keypoints\n\n", server.keypoint_count());

  const PowerModel power;
  Table table("30 s streaming session, 8 Mbps uplink, 10 FPS camera");
  table.header({"strategy", "uploaded", "avg per frame", "frames sent",
                "frames stale", "avg power (W)"});

  struct Mode {
    const char* name;
    OffloadMode mode;
  };
  for (const Mode m : {Mode{"VisualPrint-200", OffloadMode::kVisualPrint},
                       Mode{"JPEG frames", OffloadMode::kFrameJpeg},
                       Mode{"PNG frames", OffloadMode::kFramePng}}) {
    SessionConfig cfg;
    cfg.duration_s = 30.0;
    cfg.camera_fps = 10.0;
    cfg.intrinsics = {480, 270, 1.15192};
    cfg.mode = m.mode;
    cfg.client.top_k = 200;
    cfg.client.blur_threshold = 2.0;
    cfg.localize_on_server = false;  // measured separately above
    cfg.phone_slowdown = 8.0;
    Session session(world, server, cfg);
    const SessionStats stats = session.run();

    std::size_t sent = 0, stale = 0;
    for (const auto& f : stats.frames) {
      sent += f.status == FrameResult::Status::kQueued;
      stale += f.status == FrameResult::Status::kStale;
    }
    const auto series = power.timeline(stats.activity);
    const double avg_power = mean(series);
    table.row({m.name,
               Table::bytes_human(static_cast<double>(stats.total_upload_bytes)),
               sent ? Table::bytes_human(
                          static_cast<double>(stats.total_upload_bytes) /
                          static_cast<double>(sent))
                    : "-",
               std::to_string(sent), std::to_string(stale),
               Table::num(avg_power, 2)});
  }
  table.print();
  std::printf(
      "\nThe headline effect: fingerprint queries cost ~1/10th of frame\n"
      "upload (paper Fig. 14: 51.2 KB vs 523 KB per offloaded frame).\n");
  return 0;
}
