// Wardrive-and-localize: the paper's §4 "Localization" experiment in
// miniature, across the three environments (office, cafeteria, grocery).
// Shows the full offline pipeline — drifting Tango poses, ICP map merge,
// keypoint-to-3D extraction — then localizes fresh query photographs and
// reports per-environment error, with and without ICP correction.
//
// All three environments live in ONE server as named places (MapStore
// shards): each wardrive is ingested under its place id with its own
// search bounds and label, the client caches one oracle per place and
// switches with select_place, and queries route to the place they are
// stamped with. A final unplaced query demonstrates fan-out: the server
// tries every shard and answers from the best-scoring place.
//
// Run:  ./wardrive_and_localize [--fast]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/server.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct EnvironmentRun {
  std::string name;
  vp::World world;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
  Rng rng(88);

  RoomConfig office{.width = fast ? 18.0 : 30.0, .depth = 10.0, .height = 3.0,
                    .num_scenes = 6};
  RoomConfig cafeteria = office;
  RoomConfig grocery{.width = fast ? 20.0 : 34.0, .depth = 14.0, .height = 3.5,
                     .num_scenes = 5};

  std::vector<EnvironmentRun> envs;
  envs.push_back({"office", build_office(office, rng)});
  envs.push_back({"cafeteria", build_cafeteria(cafeteria, rng)});
  envs.push_back({"grocery", build_grocery(grocery, rng)});

  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 2.5;
  wardrive_cfg.lane_spacing = 4.0;
  wardrive_cfg.views_per_stop = 2;

  // One server for every environment: each wardrive becomes a named place
  // (its own shard, bounds, and oracle epoch). One client, caching one
  // oracle per place.
  VisualPrintServer server(ServerConfig{});
  ClientConfig client_cfg;
  client_cfg.top_k = 200;
  client_cfg.blur_threshold = 2.0;
  VisualPrintClient client(client_cfg);

  Table table("Localization by environment (meters)");
  table.header({"place", "mappings", "wardrive err (raw)",
                "wardrive err (ICP)", "median loc err", "p90 loc err",
                "localized"});

  for (auto& env : envs) {
    Rng env_rng(std::hash<std::string>{}(env.name));
    const auto snapshots = wardrive(env.world, wardrive_cfg, env_rng);

    // Pose correction: with and without ICP merge.
    MapMergeConfig icp_on;
    MapMergeConfig icp_off;
    icp_off.enabled = false;
    const auto merged_on = merge_snapshots(snapshots, icp_on);
    const auto merged_off = merge_snapshots(snapshots, icp_off);
    const double raw_err = mean_pose_error(snapshots, merged_off.corrected_poses);
    const double icp_err = mean_pose_error(snapshots, merged_on.corrected_poses);

    const PlaceMappings place =
        extract_place_mappings(env.name, snapshots, merged_on.corrected_poses);

    ServerConfig place_cfg;
    place_cfg.oracle.capacity = 400'000;
    env.world.bounds(place_cfg.localize.search_lo,
                     place_cfg.localize.search_hi);
    place_cfg.localize.de.time_budget_sec = 0.3;
    place_cfg.place_label = env.name;
    server.ingest_wardrive(place.place, place.mappings, &place_cfg);
    client.install_oracle(server.oracle_snapshot(env.name));

    // Query photos of each unique scene, from angles the wardrive never
    // exactly visited. The client stamps each query with the active place,
    // so the server routes it straight to this environment's shard.
    client.select_place(env.name);
    const auto quads = scene_quads(env.world);
    std::vector<double> errors;
    int localized = 0, attempted = 0;
    for (std::size_t s = 0; s < quads.size(); ++s) {
      for (const double angle : {-20.0, 15.0}) {
        Rng view_rng(1000 + static_cast<int>(s) * 7 +
                     static_cast<int>(angle));
        const Camera cam = view_of_quad(env.world, quads[s],
                                        wardrive_cfg.intrinsics, angle, 2.5,
                                        view_rng);
        auto photo = render(env.world, cam, {}, view_rng);
        const auto result = client.process_frame(photo.image, 0.0, 0.0);
        if (result.status != FrameResult::Status::kQueued) continue;
        ++attempted;
        Rng solver_rng(2000 + static_cast<int>(s));
        const auto resp = server.localize_query(*result.query, solver_rng);
        if (!resp.found) continue;
        ++localized;
        errors.push_back(resp.position.distance(cam.pose.translation));
      }
    }

    std::string med = "-", p90 = "-";
    if (!errors.empty()) {
      med = Table::num(percentile(errors, 50), 2);
      p90 = Table::num(percentile(errors, 90), 2);
    }
    table.row({env.name, std::to_string(place.mappings.size()),
               Table::num(raw_err, 3), Table::num(icp_err, 3), med, p90,
               std::to_string(localized) + "/" + std::to_string(attempted)});
  }
  table.print();

  std::printf("\nserver places:");
  for (const auto& p : server.places()) {
    std::printf(" %s@epoch%u", p.c_str(), server.store().epoch(p));
  }
  std::printf("\n");

  // Fan-out demo: a query that names no place. The server runs it against
  // every shard and answers from the best-scoring one — the "which
  // building am I even in" cold-start case.
  {
    const auto& env = envs.front();
    const auto quads = scene_quads(env.world);
    Rng view_rng(9000);
    const Camera cam = view_of_quad(env.world, quads[0],
                                    wardrive_cfg.intrinsics, 10.0, 2.5,
                                    view_rng);
    auto photo = render(env.world, cam, {}, view_rng);
    client.select_place(env.name);
    const auto result = client.process_frame(photo.image, 0.0, 0.0);
    if (result.status == FrameResult::Status::kQueued) {
      FingerprintQuery q = *result.query;
      q.place.clear();      // "I don't know where I am"
      q.oracle_epoch = 0;   // no staleness check without a placed oracle
      Rng solver_rng(9001);
      const auto resp = server.localize_query(q, solver_rng);
      if (resp.found) {
        std::printf(
            "fan-out query (no place named) answered by '%s': "
            "%.2f m from truth\n",
            resp.place.c_str(), resp.position.distance(cam.pose.translation));
      } else {
        std::printf("fan-out query (no place named): no fix\n");
      }
    }
  }

  std::printf(
      "\nNote: the paper reports ~2.5 m median 3-D error (Fig. 19) on\n"
      "full-building databases; this miniature run uses far sparser\n"
      "wardriving, so expect the same order of magnitude, not equality.\n");
  return 0;
}
