// AR overlay: the end-use the whole system exists for (Fig. 1). A virtual
// annotation is anchored at a known 3-D point (a painting's center, with a
// label). A phone photographs the scene from an arbitrary pose, localizes
// through the VisualPrint query, and the recovered 6-DoF pose is used to
// project the anchor back into the photo — drawing the label marker where
// the artwork is. Writes ar_overlay.png with the marker drawn from the
// *estimated* pose; the marker should land on the painting.
//
// Run:  ./ar_overlay
#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/client.hpp"
#include "core/server.hpp"
#include "features/draw.hpp"
#include "imaging/codec.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"

namespace {

void save_png(const vp::ImageU8& img, const char* path) {
  const vp::Bytes png = vp::png_encode(img);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(png.data()),
            static_cast<std::streamsize>(png.size()));
}

}  // namespace

int main() {
  using namespace vp;
  Rng rng(11);

  GalleryConfig gallery;
  gallery.num_scenes = 6;
  gallery.hall_length = 20;
  gallery.texture_px_per_m = 200;
  const World world = build_gallery(gallery, rng);
  const auto quads = scene_quads(world);

  // Offline pipeline.
  std::printf("wardriving + ingest...\n");
  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {480, 360, 1.15192};
  wardrive_cfg.stop_spacing = 2.0;
  wardrive_cfg.views_per_stop = 3;
  auto snaps = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snaps, {});
  ServerConfig server_cfg;
  server_cfg.oracle.capacity = 400'000;
  world.bounds(server_cfg.localize.search_lo, server_cfg.localize.search_hi);
  server_cfg.localize.de.time_budget_sec = 0.6;
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(extract_mappings(snaps, merged.corrected_poses));

  ClientConfig client_cfg;
  client_cfg.top_k = 250;
  client_cfg.blur_threshold = 2.0;
  VisualPrintClient client(client_cfg);
  client.install_oracle(server.oracle_snapshot());

  // The AR anchor: painting #3's center, with a label.
  const Vec3 anchor = world.quads()[quads[3]].center();
  const char* label = "Mona Lisa Room";

  // The user photographs painting #3 from an oblique viewpoint.
  Rng view_rng(400);
  const Camera cam =
      view_of_quad(world, quads[3], wardrive_cfg.intrinsics, 18.0, 2.6,
                   view_rng);
  auto photo = render(world, cam, {}, view_rng);

  const auto fr = client.process_frame(photo.image, 0.0, 0.0);
  if (fr.status != FrameResult::Status::kQueued) {
    std::printf("frame rejected, try again\n");
    return 1;
  }
  Rng solver(77);
  const auto resp = server.localize_query(*fr.query, solver);
  if (!resp.found) {
    std::printf("localization failed\n");
    return 1;
  }

  // Reconstruct the estimated camera and project the anchor through it.
  Camera estimated;
  estimated.intrinsics = cam.intrinsics;
  estimated.pose = Pose::from_euler(resp.position, resp.yaw, resp.pitch,
                                    resp.roll);
  const auto est_px = estimated.project_world(anchor);
  const auto true_px = cam.project_world(anchor);

  ImageU8 canvas = gray_to_rgb(to_u8(photo.image));
  if (true_px) {  // ground-truth position, thin green cross
    draw_line(canvas, static_cast<int>(true_px->x) - 8,
              static_cast<int>(true_px->y), static_cast<int>(true_px->x) + 8,
              static_cast<int>(true_px->y), {0, 255, 0});
    draw_line(canvas, static_cast<int>(true_px->x),
              static_cast<int>(true_px->y) - 8, static_cast<int>(true_px->x),
              static_cast<int>(true_px->y) + 8, {0, 255, 0});
  }
  if (est_px) {  // AR marker from the ESTIMATED pose, red diamond
    const int cx = static_cast<int>(est_px->x);
    const int cy = static_cast<int>(est_px->y);
    for (int r : {10, 11}) {
      draw_line(canvas, cx - r, cy, cx, cy - r, {255, 40, 40});
      draw_line(canvas, cx, cy - r, cx + r, cy, {255, 40, 40});
      draw_line(canvas, cx + r, cy, cx, cy + r, {255, 40, 40});
      draw_line(canvas, cx, cy + r, cx - r, cy, {255, 40, 40});
    }
  }
  save_png(canvas, "ar_overlay.png");

  const double pos_err = resp.position.distance(cam.pose.translation);
  std::printf("\nlabel: \"%s\"\n", label);
  std::printf("camera position error: %.2f m\n", pos_err);
  if (est_px && true_px) {
    const double px_err = std::hypot(est_px->x - true_px->x,
                                     est_px->y - true_px->y);
    std::printf("AR marker reprojection error: %.0f px (image %dx%d)\n",
                px_err, canvas.width(), canvas.height());
    std::printf("wrote ar_overlay.png — red diamond = AR label anchor from "
                "the estimated pose,\ngreen cross = ground truth\n");
  } else {
    std::printf("anchor did not project into the frame (pose estimate too "
                "far off)\n");
  }
  return 0;
}
