// Per-stage observability demo: runs a short end-to-end session (client
// pipeline -> link -> server localization) with VP_OBS instrumentation and
// shows where the milliseconds went, three ways:
//   1. the per-frame stage breakdown the tracer stored in
//      SessionFrame::stages,
//   2. the aggregated stage histograms as JSON-lines,
//   3. the same snapshot as a Prometheus text exposition,
//   4. stitched client/link/server traces written as Chrome-trace JSON
//      (load session_trace.json in chrome://tracing or Perfetto).
//
// Run:  ./session_stages
#include <cstdio>
#include <fstream>

#include "core/session.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"

int main() {
  using namespace vp;
  Rng rng(7);

  GalleryConfig gallery;
  gallery.num_scenes = 6;
  gallery.hall_length = 18.0;
  const World world = build_gallery(gallery, rng);

  std::printf("preparing database (wardrive + ingest)...\n");
  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 3.0;
  wardrive_cfg.views_per_stop = 2;
  auto snapshots = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snapshots, {});
  ServerConfig server_cfg;
  server_cfg.oracle.capacity = 400'000;
  world.bounds(server_cfg.localize.search_lo, server_cfg.localize.search_hi);
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(extract_mappings(snapshots, merged.corrected_poses));
  std::printf("database: %zu keypoints\n\n", server.keypoint_count());

  // Setup ran SIFT too; reset so the export reflects the session only.
  obs::Registry::global().reset_values();

  SessionConfig cfg;
  cfg.duration_s = 8.0;
  cfg.camera_fps = 10.0;
  cfg.intrinsics = {480, 270, 1.15192};
  cfg.mode = OffloadMode::kVisualPrint;
  // Low top-k so frames exceed it and the oracle ranking stage runs.
  cfg.client.top_k = 40;
  cfg.client.blur_threshold = 2.0;
  cfg.localize_on_server = true;
  cfg.phone_slowdown = 8.0;
  cfg.collect_traces = true;
  Session session(world, server, cfg);
  const SessionStats stats = session.run();

  // 1. Per-frame stage breakdown from the tracer.
  for (const auto& f : stats.frames) {
    if (f.status != FrameResult::Status::kQueued) continue;
    std::printf("stage breakdown of the frame captured at %.2f s "
                "(phone-scaled ms):\n", f.capture_time);
    for (const auto& [stage, ms] : f.stages.entries()) {
      std::printf("  %-16s %8.2f\n", stage.c_str(), ms);
    }
    break;  // one frame is enough for the demo
  }

  std::size_t localized = 0;
  for (const auto& f : stats.frames) localized += f.localized;
  std::printf("\n%zu frames localized on the server\n", localized);

  // 2 + 3. The aggregated registry through both exporters.
  const auto snap = obs::Registry::global().snapshot();
  std::printf("\n--- json-lines export ---\n%s",
              obs::to_json_lines(snap, "session_stages").c_str());
  std::printf("\n--- prometheus export ---\n%s", obs::to_prometheus(snap).c_str());

  // 4. Stitched traces: one timeline per offloaded frame, client lane in
  // phone-scaled ms, link lane from the simulated network, server lane
  // from the real handler spans.
  if (!stats.traces.empty()) {
    const auto& first = stats.traces.front();
    std::printf("\n%zu stitched traces (first: trace %016llx, frame %u: "
                "%zu client / %zu link / %zu server spans)\n",
                stats.traces.size(),
                static_cast<unsigned long long>(first.trace_id),
                first.frame_id, first.client.size(), first.link.size(),
                first.server.size());
    std::ofstream out("session_trace.json", std::ios::trunc);
    out << obs::to_chrome_trace(stats.traces);
    std::printf("chrome trace written to session_trace.json\n");
  }
  return 0;
}
