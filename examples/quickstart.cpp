// Quickstart: the smallest end-to-end VisualPrint run.
//
//   1. Build a synthetic indoor world (a small gallery corridor).
//   2. Wardrive it (simulated Tango: RGB + depth + drifting pose).
//   3. Ingest keypoint-to-3D mappings into the cloud server.
//   4. Download the uniqueness oracle to a client.
//   5. Photograph a painting, ship only the ~200 most unique keypoints,
//      and get a 3-D location back.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/client.hpp"
#include "core/server.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/table.hpp"

int main() {
  using namespace vp;
  Rng rng(2016);

  // 1. A 20 m gallery hall with six unique paintings and repeated doors,
  //    tiles, and nameplates.
  std::printf("[1/5] building world...\n");
  GalleryConfig gallery;
  gallery.num_scenes = 6;
  gallery.hall_length = 20.0;
  const World world = build_gallery(gallery, rng);
  std::printf("      %zu surfaces, %d unique scenes\n", world.quads().size(),
              world.scene_count());

  // 2. Wardrive: walk the hall, capture RGB + depth + (drifted) poses,
  //    then correct drift with ICP map merging.
  std::printf("[2/5] wardriving...\n");
  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 2.0;
  wardrive_cfg.views_per_stop = 2;
  const auto snapshots = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snapshots, {});
  const auto mappings = extract_mappings(snapshots, merged.corrected_poses);
  std::printf("      %zu snapshots -> %zu keypoint-to-3D mappings\n",
              snapshots.size(), mappings.size());

  // 3. Cloud ingest: every mapping updates the LSH lookup table and the
  //    counting-Bloom uniqueness oracle, in constant time each.
  std::printf("[3/5] ingesting into cloud service...\n");
  ServerConfig server_cfg;
  server_cfg.oracle.capacity = 200'000;  // sized for this small demo
  world.bounds(server_cfg.localize.search_lo, server_cfg.localize.search_hi);
  server_cfg.place_label = "Demo Gallery, Hall 1";
  VisualPrintServer server(server_cfg);
  server.ingest_wardrive(mappings);

  // 4. Client boots: downloads the compressed oracle ("~10 MB" in the
  //    paper; proportionally smaller here).
  std::printf("[4/5] client downloads uniqueness oracle...\n");
  const OracleDownload download = server.oracle_snapshot();
  std::printf("      oracle: %s compressed (%s in RAM)\n",
              Table::bytes_human(static_cast<double>(download.compressed.size())).c_str(),
              Table::bytes_human(static_cast<double>(server.oracle().byte_size())).c_str());
  ClientConfig client_cfg;
  client_cfg.top_k = 200;
  client_cfg.blur_threshold = 2.0;
  VisualPrintClient client(client_cfg);
  client.install_oracle(download);

  // 5. Photograph painting #2 from an oblique angle and localize.
  std::printf("[5/5] query: photographing a painting...\n");
  const auto quads = scene_quads(world);
  const Camera camera =
      view_of_quad(world, quads[2], wardrive_cfg.intrinsics, 15.0, 2.2, rng);
  RenderOptions render_opts;
  auto photo = render(world, camera, render_opts, rng);

  const FrameResult result = client.process_frame(photo.image, 0.0, 0.0);
  if (result.status != FrameResult::Status::kQueued) {
    std::printf("frame rejected (blur/stale/empty) - try another view\n");
    return 1;
  }
  std::printf("      %zu keypoints extracted, %zu most-unique selected "
              "(%s on the wire)\n",
              result.total_keypoints, result.selected_keypoints,
              Table::bytes_human(static_cast<double>(result.query->wire_size())).c_str());

  Rng solver_rng(7);
  const LocationResponse response =
      server.localize_query(*result.query, solver_rng);
  if (!response.found) {
    std::printf("localization failed - database too sparse here\n");
    return 1;
  }
  const Vec3 truth = camera.pose.translation;
  std::printf("\nlocation: \"%s\"\n", response.place_label.c_str());
  std::printf("estimated (%.2f, %.2f, %.2f) m, truth (%.2f, %.2f, %.2f) m, "
              "error %.2f m, %u keypoints matched\n",
              response.position.x, response.position.y, response.position.z,
              truth.x, truth.y, truth.z, response.position.distance(truth),
              response.matched_keypoints);
  return 0;
}
