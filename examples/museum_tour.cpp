// Museum tour: the paper's Fig. 1 scenario. A gallery of one-of-a-kind
// paintings is catalogued server-side with human-readable labels
// ("Paris, Louvre, Denon Wing, ..."). A visitor photographs paintings
// from arbitrary angles; the client ships a compact fingerprint and the
// service answers with the artwork's metadata — comparing VisualPrint's
// selected-keypoint queries against the random-selection strawman.
//
// Run:  ./museum_tour
#include <cstdio>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/retrieval.hpp"
#include "features/sift.hpp"
#include "scene/environments.hpp"
#include "scene/render.hpp"
#include "util/table.hpp"

namespace {

const char* kArtworks[] = {
    "Denon Wing, Room 711: La Gioconda",
    "Denon Wing, Room 700: The Raft",
    "Sully Wing, Room 660: The Lacemaker",
    "Richelieu Wing, Room 844: The Astronomer",
    "Denon Wing, Room 702: Coronation",
    "Sully Wing, Room 662: The Bather",
    "Richelieu Wing, Room 820: Gabrielle",
    "Denon Wing, Room 77: Liberty",
};

}  // namespace

int main() {
  using namespace vp;
  Rng rng(1503);

  constexpr int kNumArtworks = 8;
  GalleryConfig gallery;
  gallery.num_scenes = kNumArtworks;
  gallery.hall_length = 30.0;
  gallery.texture_px_per_m = 170;
  const World world = build_gallery(gallery, rng);
  const auto quads = scene_quads(world);
  const CameraIntrinsics intrinsics{480, 360, 1.15192};

  // Curate the database: one frontal catalog photo per artwork, plus the
  // oracle learning every catalog descriptor.
  std::printf("cataloguing %d artworks...\n", kNumArtworks);
  RetrievalConfig retrieval;
  retrieval.min_votes = 4;
  SceneDatabase database(retrieval);
  OracleConfig oracle_cfg;
  oracle_cfg.capacity = 200'000;
  UniquenessOracle oracle(oracle_cfg);
  for (int s = 0; s < kNumArtworks; ++s) {
    Rng view_rng(100 + s);
    const Camera cam = view_of_quad(world, quads[static_cast<std::size_t>(s)],
                                    intrinsics, 0.0, 1.8, view_rng);
    auto photo = render(world, cam, {}, view_rng);
    const auto features = sift_detect(photo.image);
    database.add_image(features, s);
    for (const auto& f : features) oracle.insert(f.descriptor);
  }
  std::printf("database: %zu descriptors\n\n", database.descriptor_count());

  // Two visitors: one runs VisualPrint selection, one random selection.
  ClientConfig vp_cfg;
  vp_cfg.top_k = 60;
  VisualPrintClient vp_client(vp_cfg);
  vp_client.install_oracle(UniquenessOracle::deserialize(oracle.serialize()));
  ClientConfig random_cfg;
  random_cfg.policy = SelectionPolicy::kRandom;
  random_cfg.top_k = 60;
  VisualPrintClient random_client(random_cfg);

  Table table("Museum tour: who is looking at what?");
  table.header({"view", "truth", "VisualPrint says", "Random-60 says"});

  int vp_hits = 0, random_hits = 0, views = 0;
  for (int s = 0; s < kNumArtworks; ++s) {
    for (const double angle : {-30.0, 20.0}) {
      Rng view_rng(500 + s * 10 + static_cast<int>(angle));
      const Camera cam =
          view_of_quad(world, quads[static_cast<std::size_t>(s)], intrinsics,
                       angle, 3.2, view_rng);
      auto photo = render(world, cam, {}, view_rng);
      auto features = sift_detect(photo.image);
      if (features.size() < 20) continue;
      ++views;

      const auto vp_sel = vp_client.select_features(features, 60);
      const auto rnd_sel =
          random_client.select_features(features, 60);
      const auto vp_pred = database.predict(vp_sel, MatcherKind::kLsh);
      const auto rnd_pred = database.predict(rnd_sel, MatcherKind::kLsh);

      auto name = [&](const std::optional<std::int32_t>& p) -> std::string {
        return p ? kArtworks[*p] : "(no confident match)";
      };
      vp_hits += vp_pred && *vp_pred == s;
      random_hits += rnd_pred && *rnd_pred == s;
      table.row({"#" + std::to_string(views), kArtworks[s], name(vp_pred),
                 name(rnd_pred)});
    }
  }
  table.print();
  std::printf("\naccuracy: VisualPrint %d/%d, Random %d/%d\n", vp_hits, views,
              random_hits, views);
  return 0;
}
