// RF fingerprinting: the paper's conclusion applied — "the VisualPrint
// approach can be productively reapplied in other high-dimensional sensory
// domains, such as wireless RF."
//
// A building is "wardriven" for WiFi RSSI fingerprints. Open areas near
// many APs produce distinctive fingerprints; a long corridor segment far
// from APs produces near-identical ones. The SAME uniqueness oracle that
// ranks visual keypoints ranks these locations: a localization client
// should spend its budget where the oracle says the RF environment is
// distinctive, not in RF-bland corridors.
//
// Run:  ./rf_fingerprint
#include <cstdio>

#include "hashing/oracle.hpp"
#include "rf/rssi.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace vp;
  Rng rng(2022);

  RfEnvironmentConfig env_cfg;
  env_cfg.width = 60;
  env_cfg.depth = 30;
  env_cfg.num_aps = 24;
  // APs live in the western wing only: the eastern wing is an RF desert
  // (the maze-of-blank-walls analogue from the paper's intro).
  env_cfg.ap_region_fraction = 0.45;
  env_cfg.path_loss_exponent = 3.5;
  const RfEnvironment env(env_cfg);
  std::printf("building: %.0fx%.0f m, %d access points\n", env_cfg.width,
              env_cfg.depth, env_cfg.num_aps);

  // Wardrive: fingerprints on a 1.5 m survey grid, several visits each
  // (an RF location's fingerprint recurs visit after visit, so common ==
  // "this RF pattern exists in many survey cells").
  OracleConfig oracle_cfg;
  oracle_cfg.capacity = 200'000;
  oracle_cfg.lsh.width = 120.0;  // finer than SIFT: RSSI vectors are low-energy
  UniquenessOracle oracle(oracle_cfg);
  std::size_t samples = 0;
  for (double x = 1; x < env_cfg.width; x += 1.5) {
    for (double y = 1; y < env_cfg.depth; y += 1.5) {
      for (int visit = 0; visit < 3; ++visit) {
        oracle.insert(env.fingerprint({x, y, 1.5}, rng));
        ++samples;
      }
    }
  }
  std::printf("survey: %zu fingerprints ingested\n\n", samples);

  // Probe a line across the building and score RF uniqueness. Locations
  // whose fingerprint pattern recurs across many cells (bland RF) score
  // high counts; distinctive spots score low.
  Table table("RF uniqueness along a walk (y = 15 m)");
  table.header({"x (m)", "oracle count", "APs audible", "verdict"});
  std::vector<double> counts;
  for (double x = 2; x <= env_cfg.width - 2; x += 4.0) {
    const auto rssi = env.measure_rssi({x, 15.0, 1.5}, rng);
    int audible = 0;
    for (double r : rssi) audible += r > env_cfg.noise_floor_dbm;
    const auto count = oracle.count(env.to_descriptor(rssi));
    counts.push_back(static_cast<double>(count));
    table.row({Table::num(x, 0), std::to_string(count),
               std::to_string(audible),
               count <= 9 ? "distinctive (fingerprint here)" : "common"});
  }
  table.print();

  const double med = percentile(counts, 50);
  std::printf(
      "\nmedian recurrence count: %.0f — the oracle separates RF-distinctive\n"
      "spots (low counts) from bland ones exactly as it separates unique\n"
      "visual keypoints from ceiling tiles. Same data structure, different\n"
      "sensory domain.\n",
      med);
  return 0;
}
