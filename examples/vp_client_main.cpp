// vp_client: the VisualPrint client as a real process, talking to
// vp_server over TCP. Downloads the uniqueness oracle of a place,
// "photographs" the same demo gallery (the simulated camera), selects the
// most unique keypoints, ships fingerprint queries, and prints the
// locations the service returns against ground truth.
//
// All traffic goes through RetryingClient (per-attempt deadlines, then
// reconnect-and-resend with bounded exponential backoff) wrapped in a
// RemoteLocalizer: a flaky or restarting server costs retries, and a
// server that republished its map mid-session (kStaleOracle) costs one
// transparent oracle refresh — never a crash.
//
// With --compact-uplink, queries to a PQ-serving place go out as v4
// compact frames: 16-byte PQ codes (encoded against the codebook that
// rode the oracle download) plus quantized keypoint coordinates — 20
// bytes per feature on the wire instead of 144. The exit summary prints
// the measured per-frame uplink/downlink split from the net.bytes.*
// counters.
//
// Run:   ./vp_server         (first, in another terminal)
//        ./vp_client [--port N] [--views N] [--place ID]
//                    [--trace-out FILE] [--metrics-out FILE]
//                    [--compact-uplink]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/client.hpp"
#include "core/remote.hpp"
#include "net/retry.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "scene/environments.hpp"
#include "scene/render.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace vp;
  std::uint16_t port = 47001;
  int views = 6;
  std::string place;  // "" = the server's default place
  std::string trace_out;    // Chrome-trace JSON of the stitched traces
  std::string metrics_out;  // write the stats scrape here too
  bool compact_uplink = false;  // v4 PQ-coded query fingerprints
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--views") == 0 && i + 1 < argc) {
      views = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--place") == 0 && i + 1 < argc) {
      place = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--compact-uplink") == 0) {
      compact_uplink = true;
    }
  }

  // The same demo gallery the server wardrove (seed-identical): this is
  // the world the simulated camera photographs.
  Rng rng(2016);
  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24;
  const World world = build_gallery(gallery, rng);
  const auto quads = scene_quads(world);
  const CameraIntrinsics intr{480, 360, 1.15192};

  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.io_timeout_ms = 10'000;  // oracle download + cold solver latencies
  RetryingClient net("127.0.0.1", port, policy);

  ClientConfig cfg;
  cfg.top_k = 200;
  cfg.blur_threshold = 2.0;
  VisualPrintClient client(cfg);

  RemoteLocalizer localizer(
      [&net](std::span<const std::uint8_t> req) { return net.request(req); });
  // End-to-end tracing: every query carries a trace_id and asks the server
  // to echo its span block, which the localizer stitches with its own
  // spans and the measured round trip.
  if (!trace_out.empty()) localizer.enable_tracing(1.0);
  if (compact_uplink) localizer.enable_compact_uplink();
  // Every oracle the localizer downloads — first fetch or mid-session
  // stale refresh — lands in the client's per-place cache.
  localizer.on_oracle_refresh(
      [&client](const OracleDownload& d) { client.install_oracle(d); });

  // First launch: fetch the place's uniqueness oracle.
  const OracleDownload download = localizer.fetch_oracle(place);
  std::printf("oracle for place '%s' @ epoch %u downloaded: %s compressed\n",
              download.place.c_str(), download.epoch,
              Table::bytes_human(static_cast<double>(download.compressed.size())).c_str());
  if (compact_uplink) {
    if (download.codebook.empty()) {
      std::printf(
          "compact uplink requested, but the place serves no PQ codebook; "
          "queries stay raw\n");
    } else {
      std::printf(
          "compact uplink on: %s codebook cached, queries go out PQ-coded\n",
          Table::bytes_human(static_cast<double>(download.codebook.size()))
              .c_str());
    }
  }

  Table table("Localization over TCP");
  table.header({"view", "uploaded", "server says", "truth", "error (m)"});
  std::uint64_t queries_sent = 0;
  for (int v = 0; v < views; ++v) {
    Rng view_rng(9100 + v);
    const std::size_t scene = static_cast<std::size_t>(v) % quads.size();
    const Camera cam = view_of_quad(world, quads[scene], intr,
                                    view_rng.uniform(-20, 20), 2.4, view_rng);
    auto photo = render(world, cam, {}, view_rng);
    const auto fr = client.process_frame(photo.image, 0.0, 0.0);
    if (fr.status != FrameResult::Status::kQueued) {
      table.row({std::to_string(v), "-", "(frame rejected)", "-", "-"});
      continue;
    }
    const LocationResponse resp = localizer.localize(*fr.query);
    ++queries_sent;

    char est[64], truth[64];
    std::snprintf(est, sizeof est, "(%.1f, %.1f, %.1f)", resp.position.x,
                  resp.position.y, resp.position.z);
    std::snprintf(truth, sizeof truth, "(%.1f, %.1f, %.1f)",
                  cam.pose.translation.x, cam.pose.translation.y,
                  cam.pose.translation.z);
    table.row({std::to_string(v),
               Table::bytes_human(static_cast<double>(fr.query->wire_size())),
               resp.found ? std::string(est) : std::string("(no fix)"),
               std::string(truth),
               resp.found
                   ? Table::num(resp.position.distance(cam.pose.translation), 2)
                   : "-"});
  }
  table.print();

  // Scrape the server's per-stage metrics over the same connection: the
  // decode/retrieve/cluster/solve breakdown for the queries just served.
  StatsRequest stats_req;
  stats_req.format = StatsRequest::kFormatPrometheus;
  ByteWriter sw;
  sw.u8(kStatsRequest);
  sw.raw(stats_req.encode());
  const Bytes reply = net.request(sw.bytes());
  const StatsResponse stats = StatsResponse::decode(reply);
  std::printf("\nserver metrics (prometheus):\n%s", stats.text.c_str());
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::trunc);
    out << stats.text;
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::trunc);
    out << obs::to_chrome_trace(localizer.traces());
    std::printf(
        "%zu stitched traces written to %s (open in chrome://tracing "
        "or Perfetto)\n",
        localizer.traces().size(), trace_out.c_str());
  }

  // Measured traffic split from this process's net.bytes.* counters (the
  // localizer counts every request/reply it exchanges, by message kind).
  {
    auto& reg = obs::Registry::global();
    const auto up_q = reg.counter("net.bytes.up.query").value();
    const auto down_q = reg.counter("net.bytes.down.query").value();
    const auto up_o = reg.counter("net.bytes.up.oracle").value();
    const auto down_o = reg.counter("net.bytes.down.oracle").value();
    const std::uint64_t frames = queries_sent > 0 ? queries_sent : 1;
    std::printf(
        "\nuplink:   %s total (%s/frame over %llu frames; %llu compact)\n"
        "downlink: %s query replies + %s oracle (oracle requests: %s)\n",
        Table::bytes_human(static_cast<double>(up_q)).c_str(),
        Table::bytes_human(static_cast<double>(up_q) /
                           static_cast<double>(frames))
            .c_str(),
        static_cast<unsigned long long>(frames),
        static_cast<unsigned long long>(localizer.compact_queries()),
        Table::bytes_human(static_cast<double>(down_q)).c_str(),
        Table::bytes_human(static_cast<double>(down_o)).c_str(),
        Table::bytes_human(static_cast<double>(up_o)).c_str());
  }

  const RetryStats& rs = net.stats();
  if (rs.retries > 0 || rs.timeouts > 0 || rs.conn_dropped > 0 ||
      rs.stale_oracles > 0) {
    std::printf(
        "\nlink faults absorbed: %llu retries (%llu timeouts, "
        "%llu drops, %llu remote errors, %llu stale oracles)\n",
        static_cast<unsigned long long>(rs.retries),
        static_cast<unsigned long long>(rs.timeouts),
        static_cast<unsigned long long>(rs.conn_dropped),
        static_cast<unsigned long long>(rs.remote_errors),
        static_cast<unsigned long long>(rs.stale_oracles));
  }
  return 0;
}
