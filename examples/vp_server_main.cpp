// vp_server: the VisualPrint cloud service as a real process.
//
// On first run it wardrives a synthetic gallery, ingests the mappings, and
// saves the database; later runs load the database file directly. Then it
// serves the wire protocol over TCP (loopback), handling connections
// concurrently on a borrowed ThreadPool with per-socket deadlines:
//   request 'O'            -> OracleDownload (zlib'd uniqueness tables)
//   request 'Q' + VPQ! ... -> LocationResponse
//   request 'S' + VPS! ... -> StatsResponse (metrics scrape, JSON/Prometheus)
// Handler failures answer with a structured ErrorResponse (VPE!) instead of
// dropping the connection; the exit summary reports every failure class.
//
// `--db` is repeatable: the first file is the primary database (built from
// a demo wardrive when missing); every further file is merged in, shard by
// shard, so one process can serve many places. Queries naming a place
// route to its shard; unplaced queries fan out across all shards on the
// worker pool.
//
// `--pq` builds the demo database with product-quantized shard storage:
// descriptors are coarse-ranked through 16-byte ADC codes and only the
// top rerank_depth survivors touch the raw 128-byte descriptors. Loaded
// databases keep whatever storage mode they were saved with.
//
// `--slow-log` prints the worst-N slow-query log (per-stage milliseconds,
// trace ids, candidate counts) at exit; clients can fetch the same data
// live as StatsRequest format 2.
//
// `--max-inflight` bounds concurrently executing queries (DESIGN.md §13):
// excess 'Q' requests are shed with a structured kOverloaded reply that
// clients retry with backoff, instead of queueing until their deadline
// blows out. Defaults to 4x the worker count; 0 disables the gate. Oracle
// downloads and stats scrapes are never shed.
//
// Run:   ./vp_server [--port N] [--db FILE]... [--threads N] [--pq] [--once]
//                    [--slow-log] [--max-inflight N]
// Pair:  ./vp_client [--place ID] (in another terminal)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/server.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

vp::VisualPrintServer build_demo_database(const std::string& db_path,
                                          bool pq) {
  using namespace vp;
  std::printf("no database found; wardriving the demo gallery...\n");
  Rng rng(2016);
  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24;
  const World world = build_gallery(gallery, rng);

  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 2.5;
  wardrive_cfg.views_per_stop = 3;
  auto snaps = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snaps, {});
  const auto mappings = extract_mappings(snaps, merged.corrected_poses);

  ServerConfig cfg;
  cfg.oracle.capacity =
      std::max<std::size_t>(50'000, mappings.size() * 2);
  world.bounds(cfg.localize.search_lo, cfg.localize.search_hi);
  cfg.place_label = "Demo Gallery (vp_server)";
  cfg.index.pq.enabled = pq;
  VisualPrintServer server(cfg);
  server.ingest_wardrive(mappings);
  server.save(db_path);
  std::printf("database built: %zu keypoints, saved to %s\n",
              server.keypoint_count(), db_path.c_str());
  return server;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  std::uint16_t port = 47001;
  std::vector<std::string> db_paths;
  std::size_t threads = 4;
  bool once = false;
  bool pq = false;
  bool slow_log = false;
  std::size_t max_inflight = 0;
  bool max_inflight_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      db_paths.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--pq") == 0) {
      pq = true;  // demo database stores PQ codes + ADC coarse ranking
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;  // serve a single connection then exit (used in tests)
    } else if (std::strcmp(argv[i], "--slow-log") == 0) {
      slow_log = true;  // print the worst-N slow-query log at exit
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      max_inflight = static_cast<std::size_t>(std::atoll(argv[++i]));
      max_inflight_set = true;
    }
  }
  if (db_paths.empty()) db_paths.push_back("vp_demo.db");

  VisualPrintServer server =
      std::filesystem::exists(db_paths[0])
          ? VisualPrintServer::load(db_paths[0])
          : build_demo_database(db_paths[0], pq);
  for (std::size_t i = 1; i < db_paths.size(); ++i) {
    if (!std::filesystem::exists(db_paths[i])) {
      std::printf("warning: --db %s not found, skipping\n",
                  db_paths[i].c_str());
      continue;
    }
    server.load_shards(db_paths[i]);
    std::printf("merged shards from %s\n", db_paths[i].c_str());
  }
  for (const auto& shard : server.store().snapshots()) {
    std::printf(
        "place '%s' (%s): %zu keypoints, epoch %u, oracle %s, storage %s\n",
        shard->place.c_str(), shard->config.place_label.c_str(),
        shard->stored.size(), shard->epoch,
        Table::bytes_human(static_cast<double>(shard->oracle.byte_size())).c_str(),
        shard->index.pq_ready() ? "pq" : "exact");
  }

  TcpListener listener(port);
  ThreadPool pool(threads);
  // Unplaced queries fan out across shards on the same borrowed pool that
  // serves connections.
  server.store().set_pool(&pool);
  // Default cap: enough concurrency to keep every worker busy, small
  // enough that a population spike sheds instead of queueing (§13).
  server.set_max_inflight(max_inflight_set ? max_inflight
                                           : 4 * pool.thread_count());
  std::printf(
      "listening on 127.0.0.1:%u (%zu workers, %zu places, "
      "max inflight queries %zu) ...\n",
      listener.port(), pool.thread_count(), server.store().place_count(),
      server.admission().max_inflight());

  ServeOptions options;
  options.pool = &pool;
  options.max_connections = 2 * pool.thread_count();
  options.io_timeout_ms = 15'000;
  ServeStats stats;
  std::atomic<std::size_t> served{0};
  listener.serve(
      [&](std::span<const std::uint8_t> request) -> Bytes {
        Bytes response = server.handle_request(request, /*solver_seed=*/7);
        ++served;
        return response;
      },
      [&] { return !(once && served.load() > 0); }, options, &stats);

  std::printf(
      "served %zu requests over %llu connections "
      "(%llu handler errors, %llu decode errors, %llu timeouts, "
      "%llu io errors)\n",
      served.load(),
      static_cast<unsigned long long>(stats.accepted.load()),
      static_cast<unsigned long long>(stats.handler_errors.load()),
      static_cast<unsigned long long>(stats.decode_errors.load()),
      static_cast<unsigned long long>(stats.timeouts.load()),
      static_cast<unsigned long long>(stats.io_errors.load()));
  std::printf(
      "admission: %llu queries admitted, %llu shed (peak %zu inflight, "
      "cap %zu)\n",
      static_cast<unsigned long long>(server.admission().admitted()),
      static_cast<unsigned long long>(server.admission().shed()),
      server.admission().peak_inflight(),
      server.admission().max_inflight());
  if (slow_log) {
    std::printf("\nslow-query log (worst %zu of %llu):\n%s",
                server.slow_log().capacity(),
                static_cast<unsigned long long>(server.slow_log().seen()),
                server.slow_log().to_json_lines().c_str());
  }
  return 0;
}
