// vp_server: the VisualPrint cloud service as a real process.
//
// On first run it wardrives a synthetic gallery, ingests the mappings, and
// saves the database; later runs load the database file directly. Then it
// serves the wire protocol over TCP (loopback), handling connections
// concurrently on a borrowed ThreadPool with per-socket deadlines:
//   request 'O'            -> OracleDownload (zlib'd uniqueness tables)
//   request 'Q' + VPQ! ... -> LocationResponse
//   request 'S' + VPS! ... -> StatsResponse (metrics scrape, JSON/Prometheus)
// Handler failures answer with a structured ErrorResponse (VPE!) instead of
// dropping the connection; the exit summary reports every failure class.
//
// `--db` is repeatable: the first file is the primary database (built from
// a demo wardrive when missing); every further file is merged in, shard by
// shard, so one process can serve many places. Queries naming a place
// route to its shard; unplaced queries fan out across all shards on the
// worker pool.
//
// `--pq` builds the demo database with product-quantized shard storage:
// descriptors are coarse-ranked through 16-byte ADC codes and only the
// top rerank_depth survivors touch the raw 128-byte descriptors. Loaded
// databases keep whatever storage mode they were saved with.
//
// `--slow-log` prints the worst-N slow-query log (per-stage milliseconds,
// trace ids, candidate counts) at exit; clients can fetch the same data
// live as StatsRequest format 2.
//
// `--max-inflight` bounds concurrently executing queries (DESIGN.md §13):
// excess 'Q' requests are shed with a structured kOverloaded reply that
// clients retry with backoff, instead of queueing until their deadline
// blows out. Defaults to 4x the worker count; 0 disables the gate. Oracle
// downloads and stats scrapes are never shed.
//
// `--lazy` registers every shard of every --db file cold (DESIGN.md §14):
// the process mmaps the files and serves place metadata immediately; the
// first query naming a place faults its shard in. `--resident-budget N`
// (bytes, k/m/g suffixes accepted; implies --lazy) caps resident shard
// bytes with LRU eviction, so a server carrying thousands of places runs
// in a bounded memory envelope.
//
// `--symmetric` serves compact (v4, PQ-coded) queries through the
// symmetric-ADC coarse stage: the per-query lookup table is gathered from
// the codebook's precomputed centroid-distance matrix instead of being
// rebuilt from the reconstructed descriptor. Bit-identical answers —
// purely a serving-cost knob, meaningful only for PQ shards.
//
// Run:   ./vp_server [--port N] [--db FILE]... [--threads N] [--pq] [--once]
//                    [--slow-log] [--max-inflight N] [--lazy]
//                    [--resident-budget BYTES] [--symmetric]
// Pair:  ./vp_client [--place ID] (in another terminal)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/server.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "scene/environments.hpp"
#include "slam/map_merge.hpp"
#include "slam/mapping.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

vp::VisualPrintServer build_demo_database(const std::string& db_path,
                                          bool pq) {
  using namespace vp;
  std::printf("no database found; wardriving the demo gallery...\n");
  Rng rng(2016);
  GalleryConfig gallery;
  gallery.num_scenes = 8;
  gallery.hall_length = 24;
  const World world = build_gallery(gallery, rng);

  WardriveConfig wardrive_cfg;
  wardrive_cfg.intrinsics = {320, 240, 1.15192};
  wardrive_cfg.stop_spacing = 2.5;
  wardrive_cfg.views_per_stop = 3;
  auto snaps = wardrive(world, wardrive_cfg, rng);
  const auto merged = merge_snapshots(snaps, {});
  const auto mappings = extract_mappings(snaps, merged.corrected_poses);

  ServerConfig cfg;
  cfg.oracle.capacity =
      std::max<std::size_t>(50'000, mappings.size() * 2);
  world.bounds(cfg.localize.search_lo, cfg.localize.search_hi);
  cfg.place_label = "Demo Gallery (vp_server)";
  cfg.index.pq.enabled = pq;
  VisualPrintServer server(cfg);
  server.ingest_wardrive(mappings);
  server.save(db_path);
  std::printf("database built: %zu keypoints, saved to %s\n",
              server.keypoint_count(), db_path.c_str());
  return server;
}

/// "1500000", "512k", "64m", "2g" -> bytes. Returns 0 on parse failure.
std::size_t parse_byte_size(const char* arg) {
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (end == arg || value < 0) return 0;
  double scale = 1;
  switch (*end) {
    case 'k': case 'K': scale = 1024.0; break;
    case 'm': case 'M': scale = 1024.0 * 1024.0; break;
    case 'g': case 'G': scale = 1024.0 * 1024.0 * 1024.0; break;
    default: break;
  }
  return static_cast<std::size_t>(value * scale);
}

const char* residency_state_name(vp::ShardResidencyManager::State s) {
  using State = vp::ShardResidencyManager::State;
  switch (s) {
    case State::kCold: return "cold";
    case State::kLoading: return "loading";
    case State::kResident: return "resident";
    case State::kPinned: return "pinned";
  }
  return "?";
}

/// Per-place residency table: resident shards with their measured bytes,
/// cold shards with their manifest estimate. Printed at startup (what the
/// process actually holds vs. merely catalogs) and at exit.
void print_residency(const vp::VisualPrintServer& server) {
  using namespace vp;
  for (const auto& st : server.store().residency().statuses()) {
    std::printf("place '%s': %s, %s %s, epoch %u, storage %s, loads %llu\n",
                st.place.c_str(), residency_state_name(st.state),
                Table::bytes_human(static_cast<double>(st.bytes)).c_str(),
                st.state == ShardResidencyManager::State::kCold ? "on disk"
                                                                : "resident",
                st.epoch, st.storage.c_str(),
                static_cast<unsigned long long>(st.loads));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vp;
  std::uint16_t port = 47001;
  std::vector<std::string> db_paths;
  std::size_t threads = 4;
  bool once = false;
  bool pq = false;
  bool slow_log = false;
  std::size_t max_inflight = 0;
  bool max_inflight_set = false;
  bool lazy = false;
  bool symmetric = false;
  std::size_t resident_budget = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      db_paths.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--pq") == 0) {
      pq = true;  // demo database stores PQ codes + ADC coarse ranking
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;  // serve a single connection then exit (used in tests)
    } else if (std::strcmp(argv[i], "--slow-log") == 0) {
      slow_log = true;  // print the worst-N slow-query log at exit
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      max_inflight = static_cast<std::size_t>(std::atoll(argv[++i]));
      max_inflight_set = true;
    } else if (std::strcmp(argv[i], "--symmetric") == 0) {
      symmetric = true;  // compact queries use the symmetric-ADC fast path
    } else if (std::strcmp(argv[i], "--lazy") == 0) {
      lazy = true;  // register shards cold; first query faults them in
    } else if (std::strcmp(argv[i], "--resident-budget") == 0 &&
               i + 1 < argc) {
      resident_budget = parse_byte_size(argv[++i]);
      lazy = true;  // a budget only means something for managed shards
    }
  }
  if (db_paths.empty()) db_paths.push_back("vp_demo.db");

  DbLoadOptions load_opts;
  load_opts.lazy = lazy;
  load_opts.resident_budget = resident_budget;
  VisualPrintServer server =
      std::filesystem::exists(db_paths[0])
          ? VisualPrintServer::load(db_paths[0], load_opts)
          : build_demo_database(db_paths[0], pq);
  for (std::size_t i = 1; i < db_paths.size(); ++i) {
    if (!std::filesystem::exists(db_paths[i])) {
      std::printf("warning: --db %s not found, skipping\n",
                  db_paths[i].c_str());
      continue;
    }
    server.load_shards(db_paths[i], load_opts);
    std::printf("merged shards from %s\n", db_paths[i].c_str());
  }
  if (lazy) {
    // Cold shards must not be faulted in just to print a banner: report
    // from the residency manifests instead of materialized snapshots.
    print_residency(server);
    if (resident_budget != 0) {
      std::printf("resident budget: %s (LRU eviction)\n",
                  Table::bytes_human(static_cast<double>(resident_budget))
                      .c_str());
    }
  } else {
    for (const auto& shard : server.store().snapshots()) {
      std::printf(
          "place '%s' (%s): %zu keypoints, epoch %u, oracle %s, storage %s\n",
          shard->place.c_str(), shard->config.place_label.c_str(),
          shard->stored.size(), shard->epoch,
          Table::bytes_human(static_cast<double>(shard->oracle.byte_size())).c_str(),
          shard->index.pq_ready() ? "pq" : "exact");
    }
  }

  TcpListener listener(port);
  ThreadPool pool(threads);
  // Unplaced queries fan out across shards on the same borrowed pool that
  // serves connections.
  server.store().set_pool(&pool);
  // Like the pool, symmetric-ADC serving is runtime plumbing — never
  // persisted, so a loaded database re-opts in per process.
  if (symmetric) server.store().set_compact_symmetric(true);
  // Default cap: enough concurrency to keep every worker busy, small
  // enough that a population spike sheds instead of queueing (§13).
  server.set_max_inflight(max_inflight_set ? max_inflight
                                           : 4 * pool.thread_count());
  std::printf(
      "listening on 127.0.0.1:%u (%zu workers, %zu places, "
      "max inflight queries %zu) ...\n",
      listener.port(), pool.thread_count(), server.store().place_count(),
      server.admission().max_inflight());

  ServeOptions options;
  options.pool = &pool;
  options.max_connections = 2 * pool.thread_count();
  options.io_timeout_ms = 15'000;
  ServeStats stats;
  std::atomic<std::size_t> served{0};
  listener.serve(
      [&](std::span<const std::uint8_t> request) -> Bytes {
        Bytes response = server.handle_request(request, /*solver_seed=*/7);
        ++served;
        return response;
      },
      [&] { return !(once && served.load() > 0); }, options, &stats);

  std::printf(
      "served %zu requests over %llu connections "
      "(%llu handler errors, %llu decode errors, %llu timeouts, "
      "%llu io errors)\n",
      served.load(),
      static_cast<unsigned long long>(stats.accepted.load()),
      static_cast<unsigned long long>(stats.handler_errors.load()),
      static_cast<unsigned long long>(stats.decode_errors.load()),
      static_cast<unsigned long long>(stats.timeouts.load()),
      static_cast<unsigned long long>(stats.io_errors.load()));
  std::printf(
      "admission: %llu queries admitted, %llu shed (peak %zu inflight, "
      "cap %zu)\n",
      static_cast<unsigned long long>(server.admission().admitted()),
      static_cast<unsigned long long>(server.admission().shed()),
      server.admission().peak_inflight(),
      server.admission().max_inflight());
  {
    const auto rs = server.store().residency().stats();
    if (rs.registered > 0) {
      std::printf(
          "residency: %zu/%zu places resident (%s of %s budget), "
          "%llu hits, %llu misses, %llu loads, %llu evictions\n",
          rs.resident, rs.registered,
          Table::bytes_human(static_cast<double>(rs.resident_bytes)).c_str(),
          rs.budget_bytes == 0
              ? "unlimited"
              : Table::bytes_human(static_cast<double>(rs.budget_bytes))
                    .c_str(),
          static_cast<unsigned long long>(rs.hits),
          static_cast<unsigned long long>(rs.misses),
          static_cast<unsigned long long>(rs.loads),
          static_cast<unsigned long long>(rs.evictions));
      print_residency(server);
    }
  }
  if (slow_log) {
    std::printf("\nslow-query log (worst %zu of %llu):\n%s",
                server.slow_log().capacity(),
                static_cast<unsigned long long>(server.slow_log().seen()),
                server.slow_log().to_json_lines().c_str());
  }
  return 0;
}
