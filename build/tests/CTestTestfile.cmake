# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_imaging[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_hashing[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_scene[1]_include.cmake")
include("/root/repo/build/tests/test_slam[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_binary[1]_include.cmake")
include("/root/repo/build/tests/test_rf[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_param_sweeps[1]_include.cmake")
