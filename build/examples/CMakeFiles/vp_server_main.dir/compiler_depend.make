# Empty compiler generated dependencies file for vp_server_main.
# This may be replaced when dependencies are built.
