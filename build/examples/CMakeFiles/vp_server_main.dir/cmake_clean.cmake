file(REMOVE_RECURSE
  "CMakeFiles/vp_server_main.dir/vp_server_main.cpp.o"
  "CMakeFiles/vp_server_main.dir/vp_server_main.cpp.o.d"
  "vp_server"
  "vp_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_server_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
