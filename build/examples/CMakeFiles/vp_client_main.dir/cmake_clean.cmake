file(REMOVE_RECURSE
  "CMakeFiles/vp_client_main.dir/vp_client_main.cpp.o"
  "CMakeFiles/vp_client_main.dir/vp_client_main.cpp.o.d"
  "vp_client"
  "vp_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_client_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
