# Empty compiler generated dependencies file for vp_client_main.
# This may be replaced when dependencies are built.
