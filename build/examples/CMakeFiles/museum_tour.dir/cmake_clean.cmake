file(REMOVE_RECURSE
  "CMakeFiles/museum_tour.dir/museum_tour.cpp.o"
  "CMakeFiles/museum_tour.dir/museum_tour.cpp.o.d"
  "museum_tour"
  "museum_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/museum_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
