# Empty compiler generated dependencies file for museum_tour.
# This may be replaced when dependencies are built.
