file(REMOVE_RECURSE
  "CMakeFiles/wardrive_and_localize.dir/wardrive_and_localize.cpp.o"
  "CMakeFiles/wardrive_and_localize.dir/wardrive_and_localize.cpp.o.d"
  "wardrive_and_localize"
  "wardrive_and_localize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wardrive_and_localize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
