# Empty dependencies file for wardrive_and_localize.
# This may be replaced when dependencies are built.
