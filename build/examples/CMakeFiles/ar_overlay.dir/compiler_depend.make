# Empty compiler generated dependencies file for ar_overlay.
# This may be replaced when dependencies are built.
