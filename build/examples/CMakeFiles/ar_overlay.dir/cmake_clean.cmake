file(REMOVE_RECURSE
  "CMakeFiles/ar_overlay.dir/ar_overlay.cpp.o"
  "CMakeFiles/ar_overlay.dir/ar_overlay.cpp.o.d"
  "ar_overlay"
  "ar_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
