# Empty compiler generated dependencies file for rf_fingerprint.
# This may be replaced when dependencies are built.
