file(REMOVE_RECURSE
  "CMakeFiles/rf_fingerprint.dir/rf_fingerprint.cpp.o"
  "CMakeFiles/rf_fingerprint.dir/rf_fingerprint.cpp.o.d"
  "rf_fingerprint"
  "rf_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rf_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
