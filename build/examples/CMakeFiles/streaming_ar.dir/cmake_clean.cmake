file(REMOVE_RECURSE
  "CMakeFiles/streaming_ar.dir/streaming_ar.cpp.o"
  "CMakeFiles/streaming_ar.dir/streaming_ar.cpp.o.d"
  "streaming_ar"
  "streaming_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
