# Empty dependencies file for streaming_ar.
# This may be replaced when dependencies are built.
