file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_client_latency.dir/bench_fig16_client_latency.cpp.o"
  "CMakeFiles/bench_fig16_client_latency.dir/bench_fig16_client_latency.cpp.o.d"
  "bench_fig16_client_latency"
  "bench_fig16_client_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_client_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
