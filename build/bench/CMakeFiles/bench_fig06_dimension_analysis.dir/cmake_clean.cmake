file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_dimension_analysis.dir/bench_fig06_dimension_analysis.cpp.o"
  "CMakeFiles/bench_fig06_dimension_analysis.dir/bench_fig06_dimension_analysis.cpp.o.d"
  "bench_fig06_dimension_analysis"
  "bench_fig06_dimension_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_dimension_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
