# Empty compiler generated dependencies file for bench_fig06_dimension_analysis.
# This may be replaced when dependencies are built.
