# Empty compiler generated dependencies file for bench_fig14_upload_timeline.
# This may be replaced when dependencies are built.
