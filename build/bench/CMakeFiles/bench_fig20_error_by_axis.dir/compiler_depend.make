# Empty compiler generated dependencies file for bench_fig20_error_by_axis.
# This may be replaced when dependencies are built.
