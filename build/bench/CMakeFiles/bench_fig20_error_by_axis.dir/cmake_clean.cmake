file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_error_by_axis.dir/bench_fig20_error_by_axis.cpp.o"
  "CMakeFiles/bench_fig20_error_by_axis.dir/bench_fig20_error_by_axis.cpp.o.d"
  "bench_fig20_error_by_axis"
  "bench_fig20_error_by_axis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_error_by_axis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
