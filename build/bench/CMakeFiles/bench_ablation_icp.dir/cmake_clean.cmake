file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_icp.dir/bench_ablation_icp.cpp.o"
  "CMakeFiles/bench_ablation_icp.dir/bench_ablation_icp.cpp.o.d"
  "bench_ablation_icp"
  "bench_ablation_icp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_icp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
