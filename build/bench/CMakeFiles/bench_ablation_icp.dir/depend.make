# Empty dependencies file for bench_ablation_icp.
# This may be replaced when dependencies are built.
