# Empty dependencies file for bench_fig03_keypoints_compression.
# This may be replaced when dependencies are built.
