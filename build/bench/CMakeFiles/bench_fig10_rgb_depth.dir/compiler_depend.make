# Empty compiler generated dependencies file for bench_fig10_rgb_depth.
# This may be replaced when dependencies are built.
