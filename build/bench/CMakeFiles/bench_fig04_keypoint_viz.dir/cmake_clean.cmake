file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_keypoint_viz.dir/bench_fig04_keypoint_viz.cpp.o"
  "CMakeFiles/bench_fig04_keypoint_viz.dir/bench_fig04_keypoint_viz.cpp.o.d"
  "bench_fig04_keypoint_viz"
  "bench_fig04_keypoint_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_keypoint_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
