# Empty compiler generated dependencies file for bench_fig04_keypoint_viz.
# This may be replaced when dependencies are built.
