# Empty compiler generated dependencies file for bench_fig19_localization_error.
# This may be replaced when dependencies are built.
