# Empty compiler generated dependencies file for bench_fig02_fps_vs_uplink.
# This may be replaced when dependencies are built.
