file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_fps_vs_uplink.dir/bench_fig02_fps_vs_uplink.cpp.o"
  "CMakeFiles/bench_fig02_fps_vs_uplink.dir/bench_fig02_fps_vs_uplink.cpp.o.d"
  "bench_fig02_fps_vs_uplink"
  "bench_fig02_fps_vs_uplink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_fps_vs_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
