file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_precision_recall.dir/bench_fig13_precision_recall.cpp.o"
  "CMakeFiles/bench_fig13_precision_recall.dir/bench_fig13_precision_recall.cpp.o.d"
  "bench_fig13_precision_recall"
  "bench_fig13_precision_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
