file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_descriptor.dir/bench_ablation_descriptor.cpp.o"
  "CMakeFiles/bench_ablation_descriptor.dir/bench_ablation_descriptor.cpp.o.d"
  "bench_ablation_descriptor"
  "bench_ablation_descriptor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_descriptor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
