# Empty compiler generated dependencies file for bench_ablation_descriptor.
# This may be replaced when dependencies are built.
