file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subsampling.dir/bench_ablation_subsampling.cpp.o"
  "CMakeFiles/bench_ablation_subsampling.dir/bench_ablation_subsampling.cpp.o.d"
  "bench_ablation_subsampling"
  "bench_ablation_subsampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
