# Empty compiler generated dependencies file for bench_ablation_subsampling.
# This may be replaced when dependencies are built.
