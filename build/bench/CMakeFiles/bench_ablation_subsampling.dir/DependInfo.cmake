
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_subsampling.cpp" "bench/CMakeFiles/bench_ablation_subsampling.dir/bench_ablation_subsampling.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_subsampling.dir/bench_ablation_subsampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/vp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/vp_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/slam/CMakeFiles/vp_slam.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/vp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/vp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/vp_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/vp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/vp_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/vp_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
