file(REMOVE_RECURSE
  "CMakeFiles/vp_imaging.dir/codec.cpp.o"
  "CMakeFiles/vp_imaging.dir/codec.cpp.o.d"
  "CMakeFiles/vp_imaging.dir/filters.cpp.o"
  "CMakeFiles/vp_imaging.dir/filters.cpp.o.d"
  "CMakeFiles/vp_imaging.dir/image.cpp.o"
  "CMakeFiles/vp_imaging.dir/image.cpp.o.d"
  "CMakeFiles/vp_imaging.dir/pnm.cpp.o"
  "CMakeFiles/vp_imaging.dir/pnm.cpp.o.d"
  "CMakeFiles/vp_imaging.dir/video_model.cpp.o"
  "CMakeFiles/vp_imaging.dir/video_model.cpp.o.d"
  "libvp_imaging.a"
  "libvp_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
