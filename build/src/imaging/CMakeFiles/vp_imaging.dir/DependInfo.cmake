
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imaging/codec.cpp" "src/imaging/CMakeFiles/vp_imaging.dir/codec.cpp.o" "gcc" "src/imaging/CMakeFiles/vp_imaging.dir/codec.cpp.o.d"
  "/root/repo/src/imaging/filters.cpp" "src/imaging/CMakeFiles/vp_imaging.dir/filters.cpp.o" "gcc" "src/imaging/CMakeFiles/vp_imaging.dir/filters.cpp.o.d"
  "/root/repo/src/imaging/image.cpp" "src/imaging/CMakeFiles/vp_imaging.dir/image.cpp.o" "gcc" "src/imaging/CMakeFiles/vp_imaging.dir/image.cpp.o.d"
  "/root/repo/src/imaging/pnm.cpp" "src/imaging/CMakeFiles/vp_imaging.dir/pnm.cpp.o" "gcc" "src/imaging/CMakeFiles/vp_imaging.dir/pnm.cpp.o.d"
  "/root/repo/src/imaging/video_model.cpp" "src/imaging/CMakeFiles/vp_imaging.dir/video_model.cpp.o" "gcc" "src/imaging/CMakeFiles/vp_imaging.dir/video_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
