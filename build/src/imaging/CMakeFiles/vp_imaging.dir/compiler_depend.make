# Empty compiler generated dependencies file for vp_imaging.
# This may be replaced when dependencies are built.
