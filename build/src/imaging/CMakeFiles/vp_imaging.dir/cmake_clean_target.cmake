file(REMOVE_RECURSE
  "libvp_imaging.a"
)
