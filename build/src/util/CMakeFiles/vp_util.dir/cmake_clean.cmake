file(REMOVE_RECURSE
  "CMakeFiles/vp_util.dir/error.cpp.o"
  "CMakeFiles/vp_util.dir/error.cpp.o.d"
  "CMakeFiles/vp_util.dir/rng.cpp.o"
  "CMakeFiles/vp_util.dir/rng.cpp.o.d"
  "CMakeFiles/vp_util.dir/stats.cpp.o"
  "CMakeFiles/vp_util.dir/stats.cpp.o.d"
  "CMakeFiles/vp_util.dir/table.cpp.o"
  "CMakeFiles/vp_util.dir/table.cpp.o.d"
  "CMakeFiles/vp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/vp_util.dir/thread_pool.cpp.o.d"
  "libvp_util.a"
  "libvp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
