# Empty compiler generated dependencies file for vp_rf.
# This may be replaced when dependencies are built.
