file(REMOVE_RECURSE
  "libvp_rf.a"
)
