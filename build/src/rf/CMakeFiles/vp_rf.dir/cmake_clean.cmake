file(REMOVE_RECURSE
  "CMakeFiles/vp_rf.dir/rssi.cpp.o"
  "CMakeFiles/vp_rf.dir/rssi.cpp.o.d"
  "libvp_rf.a"
  "libvp_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
