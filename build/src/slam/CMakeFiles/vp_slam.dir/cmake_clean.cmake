file(REMOVE_RECURSE
  "CMakeFiles/vp_slam.dir/map_merge.cpp.o"
  "CMakeFiles/vp_slam.dir/map_merge.cpp.o.d"
  "CMakeFiles/vp_slam.dir/mapping.cpp.o"
  "CMakeFiles/vp_slam.dir/mapping.cpp.o.d"
  "CMakeFiles/vp_slam.dir/wardrive.cpp.o"
  "CMakeFiles/vp_slam.dir/wardrive.cpp.o.d"
  "libvp_slam.a"
  "libvp_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
