# Empty dependencies file for vp_slam.
# This may be replaced when dependencies are built.
