file(REMOVE_RECURSE
  "libvp_slam.a"
)
