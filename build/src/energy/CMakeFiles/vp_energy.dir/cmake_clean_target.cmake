file(REMOVE_RECURSE
  "libvp_energy.a"
)
