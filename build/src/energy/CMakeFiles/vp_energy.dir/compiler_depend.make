# Empty compiler generated dependencies file for vp_energy.
# This may be replaced when dependencies are built.
