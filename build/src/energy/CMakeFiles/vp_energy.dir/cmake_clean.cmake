file(REMOVE_RECURSE
  "CMakeFiles/vp_energy.dir/power.cpp.o"
  "CMakeFiles/vp_energy.dir/power.cpp.o.d"
  "libvp_energy.a"
  "libvp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
