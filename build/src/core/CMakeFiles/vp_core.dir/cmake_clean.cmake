file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/client.cpp.o"
  "CMakeFiles/vp_core.dir/client.cpp.o.d"
  "CMakeFiles/vp_core.dir/retrieval.cpp.o"
  "CMakeFiles/vp_core.dir/retrieval.cpp.o.d"
  "CMakeFiles/vp_core.dir/server.cpp.o"
  "CMakeFiles/vp_core.dir/server.cpp.o.d"
  "CMakeFiles/vp_core.dir/server_io.cpp.o"
  "CMakeFiles/vp_core.dir/server_io.cpp.o.d"
  "CMakeFiles/vp_core.dir/session.cpp.o"
  "CMakeFiles/vp_core.dir/session.cpp.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
