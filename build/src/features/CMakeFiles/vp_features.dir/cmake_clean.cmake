file(REMOVE_RECURSE
  "CMakeFiles/vp_features.dir/brief.cpp.o"
  "CMakeFiles/vp_features.dir/brief.cpp.o.d"
  "CMakeFiles/vp_features.dir/draw.cpp.o"
  "CMakeFiles/vp_features.dir/draw.cpp.o.d"
  "CMakeFiles/vp_features.dir/keypoint.cpp.o"
  "CMakeFiles/vp_features.dir/keypoint.cpp.o.d"
  "CMakeFiles/vp_features.dir/pca.cpp.o"
  "CMakeFiles/vp_features.dir/pca.cpp.o.d"
  "CMakeFiles/vp_features.dir/sift.cpp.o"
  "CMakeFiles/vp_features.dir/sift.cpp.o.d"
  "libvp_features.a"
  "libvp_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
