# Empty compiler generated dependencies file for vp_features.
# This may be replaced when dependencies are built.
