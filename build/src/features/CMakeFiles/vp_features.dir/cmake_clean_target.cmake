file(REMOVE_RECURSE
  "libvp_features.a"
)
