
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/brief.cpp" "src/features/CMakeFiles/vp_features.dir/brief.cpp.o" "gcc" "src/features/CMakeFiles/vp_features.dir/brief.cpp.o.d"
  "/root/repo/src/features/draw.cpp" "src/features/CMakeFiles/vp_features.dir/draw.cpp.o" "gcc" "src/features/CMakeFiles/vp_features.dir/draw.cpp.o.d"
  "/root/repo/src/features/keypoint.cpp" "src/features/CMakeFiles/vp_features.dir/keypoint.cpp.o" "gcc" "src/features/CMakeFiles/vp_features.dir/keypoint.cpp.o.d"
  "/root/repo/src/features/pca.cpp" "src/features/CMakeFiles/vp_features.dir/pca.cpp.o" "gcc" "src/features/CMakeFiles/vp_features.dir/pca.cpp.o.d"
  "/root/repo/src/features/sift.cpp" "src/features/CMakeFiles/vp_features.dir/sift.cpp.o" "gcc" "src/features/CMakeFiles/vp_features.dir/sift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/vp_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
