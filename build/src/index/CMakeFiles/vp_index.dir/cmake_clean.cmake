file(REMOVE_RECURSE
  "CMakeFiles/vp_index.dir/brute_force.cpp.o"
  "CMakeFiles/vp_index.dir/brute_force.cpp.o.d"
  "CMakeFiles/vp_index.dir/lsh_index.cpp.o"
  "CMakeFiles/vp_index.dir/lsh_index.cpp.o.d"
  "libvp_index.a"
  "libvp_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
