
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/brute_force.cpp" "src/index/CMakeFiles/vp_index.dir/brute_force.cpp.o" "gcc" "src/index/CMakeFiles/vp_index.dir/brute_force.cpp.o.d"
  "/root/repo/src/index/lsh_index.cpp" "src/index/CMakeFiles/vp_index.dir/lsh_index.cpp.o" "gcc" "src/index/CMakeFiles/vp_index.dir/lsh_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/vp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/vp_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/imaging/CMakeFiles/vp_imaging.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/vp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
