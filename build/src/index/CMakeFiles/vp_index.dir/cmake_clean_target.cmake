file(REMOVE_RECURSE
  "libvp_index.a"
)
