# Empty compiler generated dependencies file for vp_index.
# This may be replaced when dependencies are built.
