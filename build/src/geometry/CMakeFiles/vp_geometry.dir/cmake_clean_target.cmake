file(REMOVE_RECURSE
  "libvp_geometry.a"
)
